// bench/hot_path — the repo's tracked perf baseline for the three hottest
// memory paths: engine event scheduling/dispatch, per-packet capture
// append, and the canonical shard merge. Unlike the table/figure benches
// this one does not run the calibrated experiment; it drives the three
// subsystems directly at a fixed synthetic workload so successive commits
// can be compared number-to-number on the same machine.
//
// Output: one JSONL metrics snapshot (through the obs registry, the same
// channel --metrics-out uses) written to BENCH_hot_path.json (override
// with V6T_BENCH_OUT or argv[1]). Scale the workload with
// V6T_HOT_PATH_SCALE (default 1.0; CI uses a small fraction).
//
//   bench.hot_path.engine_events_per_sec   schedule+cancel+dispatch rate
//   bench.hot_path.append_packets_per_sec  build+copy+append rate
//   bench.hot_path.merge_packets_per_sec   8-shard canonical merge rate
//   bench.hot_path.peak_rss_bytes          getrusage high-water mark
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "telescope/capture_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Keep a live value out of the optimizer's reach.
volatile std::uint64_t g_sink = 0;

// ------------------------------------------------------------------ engine
//
// Mixed schedule/cancel/dispatch workload. The lambda capture is sized
// like the scanner's session lambdas (a pointer plus a few counters), i.e.
// larger than std::function's 16-byte SBO — the exact shape that used to
// cost one heap allocation per scheduled event. One in eight events is
// cancelled while the queue is deep, which exercises the cancellation
// path at depth.
double benchEngine(std::uint64_t events, std::uint64_t& executed) {
  v6t::sim::Engine engine;
  v6t::sim::Rng rng{42};
  std::uint64_t acc = 0;
  const auto t0 = Clock::now();
  std::uint64_t scheduled = 0;
  std::int64_t horizon = 0;
  while (scheduled < events) {
    // Fill a wave of pending events, cancel a slice, then drain the wave.
    const std::uint64_t wave = 4096;
    std::vector<v6t::sim::EventId> ids;
    ids.reserve(wave);
    for (std::uint64_t i = 0; i < wave && scheduled < events; ++i) {
      const std::int64_t when = horizon + static_cast<std::int64_t>(rng.below(10'000));
      const std::uint64_t a = rng.next();
      const std::uint64_t b = scheduled;
      const std::uint64_t c = i;
      std::uint64_t* accPtr = &acc;
      ids.push_back(engine.schedule(v6t::sim::SimTime{when},
                                    [accPtr, a, b, c] { *accPtr += a ^ b ^ c; }));
      ++scheduled;
    }
    for (std::size_t i = 0; i < ids.size(); i += 8) engine.cancel(ids[i]);
    horizon += 10'000;
    engine.run(v6t::sim::SimTime{horizon});
  }
  engine.runAll();
  const double elapsed = secondsSince(t0);
  executed = engine.executedEvents();
  g_sink += acc;
  return elapsed;
}

// ------------------------------------------------------------------ append
//
// The fabric's per-packet delivery path in miniature: build a probe with a
// 12-byte payload, copy it once (the fabric→telescope boundary), append
// into the store. Sources cycle through a warm working set so hash-set
// accounting behaves like a telescope mid-run, not like first contact.
double benchAppend(std::uint64_t packets, v6t::telescope::CaptureStore& store) {
  v6t::sim::Rng rng{43};
  std::vector<v6t::net::Ipv6Address> sources;
  sources.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    sources.emplace_back(0x2001'0db8'0000'0000ULL | rng.below(1 << 20), rng.next());
  }
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < packets; ++i) {
    v6t::net::Packet p;
    p.ts = v6t::sim::SimTime{static_cast<std::int64_t>(i / 16)};
    p.src = sources[i % sources.size()];
    p.dst = v6t::net::Ipv6Address{0x2001'0db8'ffff'0000ULL, i};
    p.proto = v6t::net::Protocol::Icmpv6;
    p.icmpType = v6t::net::kIcmpEchoRequest;
    p.originId = static_cast<std::uint32_t>(i % 512);
    p.originSeq = i;
    for (int b = 0; b < 12; ++b) {
      p.payload.push_back(static_cast<std::uint8_t>(i + static_cast<std::uint64_t>(b)));
    }
    v6t::net::Packet delivered = p; // fabric hands each telescope its own copy
    store.append(std::move(delivered));
  }
  return secondsSince(t0);
}

// ------------------------------------------------------------------- merge
//
// 8 shards, each individually time-ordered with equal-timestamp runs whose
// (originId, originSeq) interleave across shards — the exact shape the
// sharded runner merges after every run.
double benchMerge(std::uint64_t perShard, unsigned shardCount,
                  std::uint64_t& merged) {
  v6t::sim::Rng rng{44};
  std::vector<v6t::telescope::CaptureStore> shards(shardCount);
  for (unsigned s = 0; s < shardCount; ++s) {
    for (std::uint64_t i = 0; i < perShard; ++i) {
      v6t::net::Packet p;
      p.ts = v6t::sim::SimTime{static_cast<std::int64_t>(i / 4)};
      p.src = v6t::net::Ipv6Address{0x2001'0db8'0000'0000ULL + s, i};
      p.dst = v6t::net::Ipv6Address{0x2001'0db8'ffff'0000ULL, rng.next()};
      p.originId = s + 8 * static_cast<std::uint32_t>(i % 64);
      p.originSeq = i;
      shards[s].append(std::move(p));
    }
  }
  std::vector<const v6t::telescope::CaptureStore*> ptrs;
  for (const auto& s : shards) ptrs.push_back(&s);
  v6t::telescope::CaptureStore out;
  const auto t0 = Clock::now();
  out.mergeFrom(ptrs);
  const double elapsed = secondsSince(t0);
  merged = out.packetCount();
  g_sink += out.digest();
  return elapsed;
}

} // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  if (const char* s = std::getenv("V6T_HOT_PATH_SCALE")) {
    scale = std::strtod(s, nullptr);
  }
  if (scale <= 0) scale = 1.0;
  std::string outPath = "BENCH_hot_path.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];

  const auto events = static_cast<std::uint64_t>(2'000'000 * scale);
  const auto packets = static_cast<std::uint64_t>(2'000'000 * scale);
  const auto perShard = static_cast<std::uint64_t>(250'000 * scale);

  std::cout << "== hot_path (scale " << scale << ") ==\n";

  std::uint64_t executed = 0;
  const double engineSeconds = benchEngine(events, executed);
  const double eventsPerSec =
      engineSeconds > 0 ? static_cast<double>(events) / engineSeconds : 0;
  std::cout << "engine: " << events << " events scheduled, " << executed
            << " executed in " << engineSeconds << "s -> " << eventsPerSec
            << " events/s\n";

  v6t::telescope::CaptureStore store;
  const double appendSeconds = benchAppend(packets, store);
  const double packetsPerSec =
      appendSeconds > 0 ? static_cast<double>(packets) / appendSeconds : 0;
  std::cout << "append: " << packets << " packets in " << appendSeconds
            << "s -> " << packetsPerSec << " packets/s (distinct /128 "
            << store.distinctSources128() << ")\n";

  std::uint64_t mergedPackets = 0;
  const double mergeSeconds = benchMerge(perShard, 8, mergedPackets);
  const double mergePerSec =
      mergeSeconds > 0 ? static_cast<double>(mergedPackets) / mergeSeconds : 0;
  std::cout << "merge: " << mergedPackets << " packets over 8 shards in "
            << mergeSeconds << "s -> " << mergePerSec << " packets/s\n";

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const double peakRssBytes =
      static_cast<double>(usage.ru_maxrss) * 1024.0; // Linux: KiB
  std::cout << "peak RSS: " << peakRssBytes / (1024.0 * 1024.0) << " MiB\n";

  v6t::obs::Registry registry;
  registry.gauge("bench.hot_path.scale").set(scale);
  registry.gauge("bench.hot_path.engine_events").set(static_cast<double>(events));
  registry.gauge("bench.hot_path.engine_events_executed")
      .set(static_cast<double>(executed));
  registry.gauge("bench.hot_path.engine_seconds").set(engineSeconds);
  registry.gauge("bench.hot_path.engine_events_per_sec").set(eventsPerSec);
  registry.gauge("bench.hot_path.append_packets").set(static_cast<double>(packets));
  registry.gauge("bench.hot_path.append_seconds").set(appendSeconds);
  registry.gauge("bench.hot_path.append_packets_per_sec").set(packetsPerSec);
  registry.gauge("bench.hot_path.merge_packets")
      .set(static_cast<double>(mergedPackets));
  registry.gauge("bench.hot_path.merge_shards").set(8);
  registry.gauge("bench.hot_path.merge_seconds").set(mergeSeconds);
  registry.gauge("bench.hot_path.merge_packets_per_sec").set(mergePerSec);
  registry.gauge("bench.hot_path.peak_rss_bytes").set(peakRssBytes);

  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  registry.writeJsonLine(out, {{"bench", "hot_path"}});
  std::cout << "wrote " << outPath << "\n";
  return 0;
}
