// Calibration probe: prints the headline marginals the population is tuned
// against (DESIGN.md §6). Not one of the paper's tables — a development
// aid and regression reference for the overall shape.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard("calibration overview");
  const auto& experiment = *ctx.experiment;

  analysis::TextTable table{{"metric", "T1", "T2", "T3", "T4"}};
  const core::Period initial = ctx.initialPeriod();
  const core::Period whole = ctx.wholePeriod();

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (std::size_t i = 0; i < 4; ++i) cells.push_back(getter(i));
    table.addRow(cells);
  };

  std::array<telescope::Telescope const*, 4> ts = experiment.telescopes();
  row("packets (initial 12w)", [&](std::size_t i) {
    return analysis::withThousands(
        ctx.summary.windowStats(experiment, i, initial).packets);
  });
  row("packets (full)", [&](std::size_t i) {
    return analysis::withThousands(ts[i]->capture().packetCount());
  });
  row("/128 sources (initial)", [&](std::size_t i) {
    return std::to_string(
        ctx.summary.windowStats(experiment, i, initial).sources128);
  });
  row("/64 sources (initial)", [&](std::size_t i) {
    return std::to_string(
        ctx.summary.windowStats(experiment, i, initial).sources64);
  });
  row("ASNs (initial)", [&](std::size_t i) {
    return std::to_string(
        ctx.summary.windowStats(experiment, i, initial).asns);
  });
  row("sessions /128 (full)", [&](std::size_t i) {
    return analysis::withThousands(
        ctx.summary.telescope(i).sessions128.size());
  });
  row("sessions /64 (full)", [&](std::size_t i) {
    return analysis::withThousands(
        ctx.summary.telescope(i).sessions64.size());
  });
  row("/128 sources (full)", [&](std::size_t i) {
    return std::to_string(
        ctx.summary.windowStats(experiment, i, whole).sources128);
  });
  table.render(std::cout);

  // Protocol mix across all telescopes.
  std::uint64_t perProto[3] = {0, 0, 0};
  std::uint64_t total = 0;
  for (const auto* t : ts) {
    for (int p = 0; p < 3; ++p) {
      perProto[p] +=
          t->capture().packetsPerProtocol(static_cast<net::Protocol>(p));
    }
    total += t->capture().packetCount();
  }
  std::cout << "\nprotocol mix (paper: ICMPv6 66.2% / UDP 23.4% / TCP 10.5%)\n";
  for (int p = 0; p < 3; ++p) {
    std::cout << "  " << net::toString(static_cast<net::Protocol>(p)) << " "
              << analysis::fixed(analysis::percent(perProto[p], total), 1)
              << "%\n";
  }

  std::cout << "\nfabric: sent=" << experiment.fabric().sentPackets()
            << " noRoute=" << experiment.fabric().droppedNoRoute()
            << " void=" << experiment.fabric().deliveredToVoid() << "\n";
  return 0;
}
