// Ablation — scan shapes and streaming counters on the captured corpus:
// (a) horizontal vs vertical port scanning per telescope (Table 4's
// commentary), (b) HyperLogLog live-counter accuracy against the exact
// distinct-source counts a production telescope cannot afford to keep.
#include <cmath>

#include "analysis/portscan.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"
#include "telescope/sketch.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Ablation: scan shapes and streaming counters");

  // (a) port-scan shapes per telescope.
  analysis::TextTable shapes{{"telescope", "none", "horizontal", "vertical",
                              "mixed", "sequential-port sessions"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& packets = ctx.experiment->telescope(t).capture().packets();
    const auto& sessions = ctx.summary.telescope(t).sessions128;
    std::uint64_t byShape[4] = {};
    std::uint64_t sequential = 0;
    for (const auto& s : sessions) {
      const auto profile = analysis::profilePorts(packets, s);
      ++byShape[static_cast<std::size_t>(profile.shape)];
      sequential += profile.sequentialPorts ? 1 : 0;
    }
    shapes.addRow({ctx.experiment->telescope(t).name(),
                   analysis::withThousands(byShape[0]),
                   analysis::withThousands(byShape[1]),
                   analysis::withThousands(byShape[2]),
                   analysis::withThousands(byShape[3]),
                   analysis::withThousands(sequential)});
  }
  shapes.render(std::cout);
  std::cout << "expected shape: horizontal 80/443 sweeps dominate transport "
               "sessions (Table 4: port 80 in 87% of TCP sessions)\n\n";

  // (b) streaming-counter accuracy.
  analysis::TextTable live{{"telescope", "exact /128", "HLL /128", "err %",
                            "exact /64", "HLL /64", "err %"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& capture = ctx.experiment->telescope(t).capture();
    telescope::LiveStats stats;
    for (const auto& p : capture.packets()) stats.observe(p);
    const double exact128 =
        static_cast<double>(capture.distinctSources128());
    const double exact64 = static_cast<double>(capture.distinctSources64());
    auto err = [](double estimate, double exact) {
      return exact == 0.0 ? 0.0 : 100.0 * std::abs(estimate - exact) / exact;
    };
    live.addRow(
        {ctx.experiment->telescope(t).name(),
         analysis::withThousands(capture.distinctSources128()),
         analysis::fixed(stats.estimatedSources128(), 0),
         analysis::fixed(err(stats.estimatedSources128(), exact128), 2),
         analysis::withThousands(capture.distinctSources64()),
         analysis::fixed(stats.estimatedSources64(), 0),
         analysis::fixed(err(stats.estimatedSources64(), exact64), 2)});
  }
  live.render(std::cout);
  std::cout << "a 4 KiB sketch per aggregation level tracks months of "
               "distinct sources within ~2% — the live-dashboard path for "
               "deployments that cannot retain full captures\n";
  return 0;
}
