// Fig. 5 — the heavy hitters: per telescope, sources contributing > 10% of
// packets, with their activity span and context (rDNS where present).
#include "analysis/heavy_hitter.hpp"
#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Fig. 5: heavy hitters at the four telescopes");

  analysis::TextTable table{{"Telescope", "Source", "AS type", "Packets",
                             "share %", "Sessions", "days active", "rDNS"}};
  const auto& registry = ctx.experiment->population().asRegistry;
  const auto& rdns = ctx.experiment->population().rdns;
  int total = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& capture = ctx.experiment->telescope(t).capture();
    analysis::PipelineOptions opts;
    opts.taxonomy = false;
    opts.fingerprint = false;
    const auto report = bench::analyzeWindow(
        capture.packets(), ctx.summary.telescope(t).sessions128, nullptr,
        opts);
    const auto& hitters = report.heavyHitters;
    for (const auto& h : hitters) {
      ++total;
      const auto name = rdns.lookup(h.source);
      table.addRow({ctx.experiment->telescope(t).name(),
                    h.source.toString(),
                    std::string{net::toString(registry.typeOf(h.asn))},
                    analysis::withThousands(h.packets),
                    analysis::fixed(h.shareOfTelescope, 1),
                    std::to_string(h.sessions),
                    std::to_string(h.lastDay - h.firstDay + 1),
                    name ? std::string{*name} : "-"});
    }
    const auto& impact = report.heavyHitterImpact;
    table.addRow({"  (impact)", "", "",
                  analysis::fixed(impact.packetShare, 1) + "% of packets",
                  "",
                  analysis::fixed(impact.sessionShare, 2) + "% of sessions",
                  "", ""});
    table.addSeparator();
  }
  table.render(std::cout);
  std::cout << "heavy hitters found: " << total
            << " (paper: 10 across the telescopes — 4/3/2/2, one shared "
               "T2+T4; 73% of packets, 0.04% of sessions; 7 of 10 research "
               "context)\n";
  return 0;
}
