// Fig. 12/13 — structured vs randomized target-address generation, shown
// for two sample sessions: per-nibble diversity profiles in arrival order
// (Fig. 12) and after numeric sorting (Fig. 13's traversal structure).
#include <algorithm>
#include <set>

#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

namespace {

using namespace v6t;

// Render a compact nibble-diversity strip: for each of the 32 nibble
// positions, the number of distinct hex values seen in the session
// (1 = constant, 16 = fully mixed) — the textual analogue of the color
// stripes in the paper's figure.
void nibbleProfile(const std::vector<net::Ipv6Address>& targets,
                   const char* label) {
  std::cout << label << " (" << targets.size() << " targets)\n  nibble:   ";
  for (int n = 0; n < 32; ++n) std::cout << (n % 10);
  std::cout << "\n  distinct: ";
  for (std::size_t n = 0; n < 32; ++n) {
    std::set<std::uint8_t> values;
    for (const auto& a : targets) values.insert(a.nibble(n));
    const std::size_t d = values.size();
    std::cout << (d <= 9 ? static_cast<char>('0' + d)
                         : static_cast<char>('a' + d - 10));
  }
  std::cout << "\n";
  // A few raw samples (prefix concealed like the paper's gray area).
  for (std::size_t i = 0; i < targets.size() && i < 5; ++i) {
    std::string hex = targets[i].toHexString();
    hex.replace(0, 8, "xxxxxxxx");
    std::cout << "  " << hex << "\n";
  }
}

} // namespace

int main() {
  bench::RunContext ctx = bench::runStandard(
      "Fig. 12/13: structured vs randomized target generation");

  const auto& packets = ctx.experiment->telescope(core::T1).capture().packets();
  const auto& sessions = ctx.summary.telescope(core::T1).sessions128;

  // Pick the largest structured and the largest random session (>= 100
  // packets), using the same classifier as the paper.
  const telescope::Session* structured = nullptr;
  const telescope::Session* random = nullptr;
  for (const auto& s : sessions) {
    if (s.packetCount() < 100) continue;
    std::vector<net::Ipv6Address> targets;
    targets.reserve(s.packetCount());
    for (std::uint32_t idx : s.packetIdx) targets.push_back(packets[idx].dst);
    const auto cls = analysis::classifyAddressSelection(targets);
    if (cls == analysis::AddressSelection::Structured &&
        (structured == nullptr ||
         s.packetCount() > structured->packetCount())) {
      structured = &s;
    }
    if (cls == analysis::AddressSelection::Random &&
        (random == nullptr || s.packetCount() > random->packetCount())) {
      random = &s;
    }
  }

  auto targetsOf = [&](const telescope::Session* s) {
    std::vector<net::Ipv6Address> targets;
    if (s != nullptr) {
      for (std::uint32_t idx : s->packetIdx) {
        targets.push_back(packets[idx].dst);
      }
    }
    return targets;
  };

  auto structuredTargets = targetsOf(structured);
  auto randomTargets = targetsOf(random);
  if (structuredTargets.empty() || randomTargets.empty()) {
    std::cout << "could not find both sample sessions at this scale\n";
    return 1;
  }

  std::cout << "--- Fig. 12(a): structured session, arrival order ---\n";
  nibbleProfile(structuredTargets, "structured");
  std::cout << "\n--- Fig. 12(b): randomized session, arrival order ---\n";
  nibbleProfile(randomTargets, "random");

  // Fig. 13: sorting the structured session exposes the traversal.
  std::sort(structuredTargets.begin(), structuredTargets.end());
  std::cout << "\n--- Fig. 13: structured session, numerically sorted ---\n";
  std::size_t ordered = 0;
  nibbleProfile(structuredTargets, "structured (sorted)");
  (void)ordered;
  std::cout << "\npaper shape: the structured session's subnet nibbles "
               "iterate (low distinct counts, monotone after sorting); the "
               "random session mixes all 16 values in the IID nibbles "
               "while the subnet nibbles stay structured\n";
  return 0;
}
