// Ablation — §8 guidance (ii): "the size of an IPv6 prefix is of lower
// relevance for a network telescope than the number of individually
// announced prefixes". Regress T1's per-cycle session counts against the
// number of announced prefixes (which rises 2..17) while the covered
// address space stays the same /32 throughout.
#include <cmath>

#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Ablation: announcement count vs announced space");

  const auto& schedule = ctx.experiment->schedule();
  const auto& sessions = ctx.summary.telescope(core::T1).sessions128;

  analysis::TextTable table{{"cycle", "announced prefixes",
                             "covered space (/32 units)", "sessions",
                             "sessions per prefix"}};
  double sumX = 0;
  double sumY = 0;
  double sumXX = 0;
  double sumXY = 0;
  int n = 0;
  for (const auto& cycle : schedule.cycles()) {
    if (cycle.index == 0) continue;
    const core::Period period{cycle.announceAt, cycle.endsAt};
    const auto count = core::sessionsIn(sessions, period).size();
    // Covered space in units of the /32 (it is always ~the whole /32:
    // the split partitions, it does not shrink).
    double covered = 0.0;
    for (const auto& p : cycle.announced) {
      covered += std::pow(2.0, 32.0 - static_cast<double>(p.length()));
    }
    table.addRow({std::to_string(cycle.index),
                  std::to_string(cycle.announced.size()),
                  analysis::fixed(covered, 4),
                  analysis::withThousands(count),
                  analysis::fixed(static_cast<double>(count) /
                                      static_cast<double>(
                                          cycle.announced.size()),
                                  1)});
    const double x = static_cast<double>(cycle.announced.size());
    const double y = static_cast<double>(count);
    sumX += x;
    sumY += y;
    sumXX += x * x;
    sumXY += x * y;
    ++n;
  }
  table.render(std::cout);

  const double slope =
      (n * sumXY - sumX * sumY) / (n * sumXX - sumX * sumX);
  const double mean = sumY / n;
  std::cout << "sessions grow ~" << analysis::fixed(slope, 1)
            << " per additional announced prefix (mean "
            << analysis::fixed(mean, 0)
            << " sessions/cycle) while covered space stays one /32 "
               "throughout\n"
            << "=> visibility scales with announcement count, not with "
               "announced bytes (guidance ii)\n";
  return 0;
}
