// parallel_speedup — measure the sharded runner against the serial
// reference on an identical configuration, and prove on the way that the
// merged captures are bitwise-identical for every thread count.
//
// The shard counts compared default to {1, 2, 4} plus the host's hardware
// concurrency; V6T_THREADS pins a single additional count. Speedup is
// reported against the 1-shard runner wall time. On a single-core host
// the threaded runs cannot beat serial (the workers time-slice one CPU);
// the bench prints hardware_concurrency so the numbers read honestly.
#include <array>
#include <chrono>
#include <iostream>
#include <set>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "core/runner.hpp"

int main() {
  using namespace v6t;
  using Clock = std::chrono::steady_clock;

  std::cout << "== parallel_speedup ==\n";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware_concurrency=" << hw << "\n";

  std::set<unsigned> counts{1, 2, 4, hw};
  if (const char* s = std::getenv("V6T_THREADS")) {
    const unsigned v = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    if (v >= 1 && v <= 64) counts.insert(v);
  }

  core::ExperimentConfig base = bench::standardConfig();

  struct Row {
    unsigned threads = 0;
    double wallSeconds = 0;
    std::uint64_t packets = 0;
    std::array<std::uint64_t, 4> digests{};
  };
  std::vector<Row> rows;

  for (unsigned threads : counts) {
    core::RunnerConfig config;
    config.experiment = base;
    config.experiment.threads = threads;
    core::ExperimentRunner runner{config};
    const auto start = Clock::now();
    runner.run();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    Row row;
    row.threads = threads;
    row.wallSeconds = elapsed.count();
    row.packets = runner.stats().packetsMerged;
    for (std::size_t t = 0; t < 4; ++t) {
      row.digests[t] = runner.capture(t).digest();
    }
    rows.push_back(row);
    std::cout << "threads=" << threads << " wall=" << row.wallSeconds
              << "s packets=" << row.packets << "\n";
  }

  bool identical = true;
  for (const Row& row : rows) {
    identical &= row.digests == rows.front().digests &&
                 row.packets == rows.front().packets;
  }
  std::cout << "merged captures identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  const double serial = rows.front().wallSeconds;
  for (const Row& row : rows) {
    if (row.threads == 1) continue;
    std::cout << "speedup threads=" << row.threads << ": "
              << (row.wallSeconds > 0 ? serial / row.wallSeconds : 0.0)
              << "x\n";
  }
  if (hw == 1) {
    std::cout << "(single-core host: threaded shards time-slice one CPU, so"
                 " speedup <= 1 is expected here)\n";
  }
  return identical ? 0 : 1;
}
