// Fig. 8 — UpSet intersections of (a) origin ASNs and (b) /128 scan
// sources across the four telescopes, initial observation period.
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 8: ASN and source intersections between telescopes");

  const core::Period initial = ctx.initialPeriod();
  const std::vector<std::string> names{"T1", "T2", "T3", "T4"};

  // (a) ASNs.
  {
    std::vector<std::set<std::uint32_t>> sets;
    for (std::size_t t = 0; t < 4; ++t) {
      sets.push_back(ctx.summary.sourceAsns(*ctx.experiment, t, initial));
    }
    const auto result =
        analysis::upset(std::span<const std::set<std::uint32_t>>{sets});
    std::cout << "(a) origin ASNs (set sizes: ";
    for (std::size_t t = 0; t < 4; ++t) {
      std::cout << names[t] << "=" << result.setTotals[t]
                << (t == 3 ? ")\n" : ", ");
    }
    analysis::TextTable table{{"combination", "ASNs"}};
    for (const auto& row : result.rows) {
      table.addRow({row.key(names), std::to_string(row.count)});
    }
    table.render(std::cout);
  }

  // (b) /128 sources.
  {
    std::vector<std::set<net::Ipv6Address>> sets;
    for (std::size_t t = 0; t < 4; ++t) {
      sets.push_back(ctx.summary.sources128(*ctx.experiment, t, initial));
    }
    const auto result =
        analysis::upset(std::span<const std::set<net::Ipv6Address>>{sets});
    std::cout << "\n(b) /128 scan sources (set sizes: ";
    for (std::size_t t = 0; t < 4; ++t) {
      std::cout << names[t] << "=" << result.setTotals[t]
                << (t == 3 ? ")\n" : ", ");
    }
    analysis::TextTable table{{"combination", "sources"}};
    std::uint64_t exclusive = 0;
    std::uint64_t universe = 0;
    for (const auto& row : result.rows) {
      table.addRow({row.key(names), std::to_string(row.count)});
      universe += row.count;
      int sets_in = 0;
      for (bool m : row.membership) sets_in += m;
      if (sets_in == 1) exclusive += row.count;
    }
    table.render(std::cout);
    std::cout << "sources exclusive to one telescope: "
              << analysis::fixed(analysis::percent(exclusive, universe), 1)
              << "% (paper: ~90% — differently configured telescopes "
                 "attract different scanners)\n";
  }
  return 0;
}
