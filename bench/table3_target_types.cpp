// Table 3 — distribution of target address types over all telescopes,
// full observation period (packets and /128 sources per type).
#include <unordered_map>
#include <unordered_set>

#include "analysis/addr_class.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Table 3: target address-type distribution");

  std::uint64_t packets[analysis::kAddressTypeCount] = {};
  std::unordered_set<net::Ipv6Address>
      sources[analysis::kAddressTypeCount];
  std::uint64_t totalPackets = 0;
  std::unordered_set<net::Ipv6Address> allSources;

  for (std::size_t t = 0; t < 4; ++t) {
    for (const net::Packet& p :
         ctx.experiment->telescope(t).capture().packets()) {
      const auto type =
          static_cast<std::size_t>(analysis::classifyAddress(p.dst));
      ++packets[type];
      ++totalPackets;
      sources[type].insert(p.src);
      allSources.insert(p.src);
    }
  }

  // Paper reference (packet% / source%) in Table 3's order.
  struct Row {
    analysis::AddressType type;
    const char* paper;
  };
  const Row rows[] = {
      {analysis::AddressType::Randomized, "64.24 / 5.83"},
      {analysis::AddressType::LowByte, "23.09 / 89.71"},
      {analysis::AddressType::PatternBytes, "5.96 / 1.58"},
      {analysis::AddressType::EmbeddedIpv4, "3.96 / 1.52"},
      {analysis::AddressType::SubnetAnycast, "2.29 / 4.09"},
      {analysis::AddressType::EmbeddedPort, "0.27 / 0.22"},
      {analysis::AddressType::IeeeDerived, "0.19 / 0.07"},
      {analysis::AddressType::Isatap, "<0.01 / <0.01"},
      {analysis::AddressType::Wordy, "(not separately reported)"},
  };

  analysis::TextTable table{{"Address Type", "Packets", "[%]",
                             "Sources /128", "[%]", "paper pkt% / src%"}};
  for (const Row& row : rows) {
    const auto i = static_cast<std::size_t>(row.type);
    table.addRow({std::string{analysis::toString(row.type)},
                  analysis::withThousands(packets[i]),
                  analysis::fixed(analysis::percent(packets[i], totalPackets),
                                  2),
                  analysis::withThousands(sources[i].size()),
                  analysis::fixed(
                      analysis::percent(sources[i].size(), allSources.size()),
                      2),
                  row.paper});
  }
  table.render(std::cout);
  std::cout << "(source shares may exceed 100%: scanners probe multiple "
               "types)\n";
  return 0;
}
