// Ablation — target generation strategies against a synthetic active-host
// world: the dynamic TGA (density-guided + feedback) vs static low-byte
// scanning vs uniform random probing. Quantifies why dynamic TGAs find
// responsive space (and why T4-style responsiveness attracts them, §2).
#include <cmath>
#include <iostream>
#include <unordered_set>

#include "analysis/report.hpp"
#include "net/prefix.hpp"
#include "scanner/target_gen.hpp"
#include "scanner/tga.hpp"
#include "sim/rng.hpp"

namespace {

using namespace v6t;

/// Ground truth: active hosts live at low-byte addresses inside a handful
/// of dense /48s of the /32 (a typical allocation pattern).
class HostWorld {
public:
  explicit HostWorld(std::uint64_t seed) : rng_(seed) {
    const net::Prefix base = net::Prefix::mustParse("3fff:100::/32");
    for (int region = 0; region < 6; ++region) {
      const auto subnet = rng_.below(1 << 16);
      const net::Prefix p48 = base.subPrefix(subnet, 48);
      dense_.push_back(p48);
      for (int h = 0; h < 400; ++h) {
        // Hosts: ::1..::ff in the low /64s of the /48.
        const net::Ipv6Address host =
            p48.addressAt((static_cast<net::u128>(rng_.below(16)) << 64) |
                          (1 + rng_.below(255)));
        hosts_.insert(host);
      }
    }
  }

  [[nodiscard]] bool alive(const net::Ipv6Address& a) const {
    return hosts_.contains(a);
  }
  [[nodiscard]] const std::vector<net::Prefix>& denseRegions() const {
    return dense_;
  }
  [[nodiscard]] std::size_t hostCount() const { return hosts_.size(); }

  /// A few leaked hitlist seeds (what a scanner could know up front).
  [[nodiscard]] std::vector<net::Ipv6Address> seeds(std::size_t n) {
    std::vector<net::Ipv6Address> out;
    auto it = hosts_.begin();
    for (std::size_t i = 0; i < n && it != hosts_.end(); ++i, ++it) {
      out.push_back(*it);
    }
    return out;
  }

private:
  sim::Rng rng_;
  std::vector<net::Prefix> dense_;
  std::unordered_set<net::Ipv6Address> hosts_;
};

} // namespace

int main() {
  std::cout << "== Ablation: dynamic TGA vs static strategies ==\n";
  HostWorld world{42};
  const net::Prefix base = net::Prefix::mustParse("3fff:100::/32");
  constexpr std::size_t kProbes = 200'000;

  analysis::TextTable table{{"strategy", "probes", "hits", "hit rate",
                             "dense /48s discovered"}};

  auto denseDiscovered = [&](const std::vector<net::Ipv6Address>& hits) {
    std::size_t found = 0;
    for (const net::Prefix& p : world.denseRegions()) {
      for (const net::Ipv6Address& h : hits) {
        if (p.contains(h)) {
          ++found;
          break;
        }
      }
    }
    return found;
  };

  // --- uniform random ---
  {
    sim::Rng rng{1};
    scanner::TargetGenerator gen{scanner::TargetStrategy::FullRandom, base,
                                 rng};
    std::vector<net::Ipv6Address> hits;
    for (std::size_t i = 0; i < kProbes; ++i) {
      const auto a = gen.next();
      if (world.alive(a)) hits.push_back(a);
    }
    table.addRow({"uniform random", analysis::withThousands(kProbes),
                  std::to_string(hits.size()),
                  analysis::fixed(100.0 * static_cast<double>(hits.size()) /
                                      kProbes,
                                  5) +
                      "%",
                  std::to_string(denseDiscovered(hits))});
  }

  // --- static low-byte sweep ---
  {
    sim::Rng rng{2};
    scanner::TargetGenerator gen{scanner::TargetStrategy::LowByte, base, rng};
    std::vector<net::Ipv6Address> hits;
    for (std::size_t i = 0; i < kProbes; ++i) {
      const auto a = gen.next();
      if (world.alive(a)) hits.push_back(a);
    }
    table.addRow({"static low-byte sweep", analysis::withThousands(kProbes),
                  std::to_string(hits.size()),
                  analysis::fixed(100.0 * static_cast<double>(hits.size()) /
                                      kProbes,
                                  5) +
                      "%",
                  std::to_string(denseDiscovered(hits))});
  }

  // --- dynamic TGA with 20 leaked seeds and feedback ---
  {
    scanner::DynamicTga tga{base, {}, 3};
    for (const auto& seed : world.seeds(20)) tga.addSeed(seed);
    std::vector<net::Ipv6Address> hits;
    std::size_t issued = 0;
    while (issued < kProbes) {
      const auto batch = tga.nextCandidates(512);
      issued += batch.size();
      for (const auto& a : batch) {
        const bool alive = world.alive(a);
        tga.feedback(a, alive);
        if (alive) hits.push_back(a);
      }
    }
    table.addRow({"dynamic TGA (20 seeds)", analysis::withThousands(issued),
                  std::to_string(hits.size()),
                  analysis::fixed(100.0 * static_cast<double>(hits.size()) /
                                      static_cast<double>(issued),
                                  5) +
                      "%",
                  std::to_string(denseDiscovered(hits))});
  }

  table.render(std::cout);
  std::cout << "world: " << world.hostCount() << " active hosts in "
            << world.denseRegions().size() << " dense /48s of a /32\n"
            << "expected shape: uniform random finds ~nothing; low-byte "
               "sweeps find hosts only in the subnets they happen to "
               "reach; the seeded dynamic TGA dominates by orders of "
               "magnitude\n";
  return 0;
}
