// bench/serve_load — closed-loop load generator for the v6t_serve query
// service: the cached-vs-uncached throughput contract (DESIGN.md §17).
//
// One small calibrated experiment supplies the capture; a QueryEngine and
// an epoll Server are stood up in-process (ephemeral port), and C client
// threads drive keep-alive HTTP/1.1 connections over a fixed target mix
// for a fixed wall-clock window — once with the result cache disabled
// (serve.cache_bytes = 0: every request re-runs the analysis) and once
// with the cache on. Every response body is compared against a reference
// computed directly from QueryEngine::evaluate before the server starts;
// a single byte of divergence fails the bench (cache_identical = 0, exit
// nonzero). Throughput and latency percentiles are recorded per leg.
//
// Environment knobs:
//   V6T_SEED / V6T_SOURCE_SCALE / V6T_VOLUME_SCALE   workload scale
//   V6T_SERVE_CONNECTIONS   concurrent keep-alive clients (default 8)
//   V6T_SERVE_SECONDS       measured window per leg (default 2.0)
//   V6T_SERVE_THREADS       server worker threads (default 2)
//   V6T_ANALYSIS_THREADS    cache-miss analysis fan-out (default cores)
//
// Output: one JSONL snapshot (V6T_BENCH_OUT / argv[1], default
// BENCH_serve_load.json):
//   bench.serve_load.connections / duration_seconds / cores_available
//   bench.serve_load.requests_cache_off / requests_cache_on
//   bench.serve_load.throughput_cache_off_rps / throughput_cache_on_rps
//   bench.serve_load.cache_speedup            on/off throughput ratio
//   bench.serve_load.p50_us_cache_off / p99_us_cache_off
//   bench.serve_load.p50_us_cache_on  / p99_us_cache_on
//   bench.serve_load.cache_hits / cache_misses (cache-on leg)
//   bench.serve_load.cache_identical           1 = every body byte-equal
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bgp/splitter.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "telescope/session.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace v6t;

double envDouble(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? std::strtod(s, nullptr) : fallback;
}

unsigned envUnsigned(const char* name, unsigned fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  const unsigned long v = std::strtoul(s, nullptr, 10);
  return v == 0 ? fallback : static_cast<unsigned>(std::min(v, 256ul));
}

/// Blocking keep-alive client; the server side stays non-blocking.
class Client {
public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ok_ = fd_ >= 0 &&
          ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
              0;
    const timeval tv{30, 0};
    if (ok_) ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }

  /// One request-response round trip; empty body string on any failure.
  std::string get(const std::string& target) {
    const std::string raw = "GET " + target + " HTTP/1.1\r\n\r\n";
    if (::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(raw.size())) {
      ok_ = false;
      return {};
    }
    while (true) {
      const std::size_t headEnd = buf_.find("\r\n\r\n");
      if (headEnd != std::string::npos) {
        const std::size_t bodyLen = contentLength(buf_, headEnd);
        const std::size_t total = headEnd + 4 + bodyLen;
        if (buf_.size() >= total) {
          const std::string body = buf_.substr(headEnd + 4, bodyLen);
          buf_.erase(0, total);
          return body;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ok_ = false;
        return {};
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

private:
  static std::size_t contentLength(const std::string& buf,
                                   std::size_t headEnd) {
    const std::string needle = "Content-Length: ";
    const std::size_t at = buf.find(needle);
    if (at == std::string::npos || at > headEnd) return 0;
    return static_cast<std::size_t>(
        std::strtoull(buf.c_str() + at + needle.size(), nullptr, 10));
  }

  int fd_ = -1;
  bool ok_ = false;
  std::string buf_;
};

struct LegResult {
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
  double seconds = 0;
  double p50us = 0;
  double p99us = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

LegResult runLeg(const serve::QueryEngine& engine, std::uint64_t cacheBytes,
                 unsigned serverThreads, unsigned connections,
                 double seconds, const std::vector<std::string>& targets,
                 const std::map<std::string, std::string>& expected) {
  serve::ServerOptions options;
  options.port = 0;
  options.threads = serverThreads;
  options.cacheBytes = cacheBytes;
  serve::Server server{engine, options};
  server.start();

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  const auto t0 = Clock::now();
  for (unsigned w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      Client client{server.port()};
      if (!client.ok()) {
        mismatches.fetch_add(1); // a dead client poisons the identity gate
        return;
      }
      std::size_t i = w; // stagger the mix so connections desynchronize
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& target = targets[i++ % targets.size()];
        const auto r0 = Clock::now();
        const std::string body = client.get(target);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - r0)
                .count();
        if (!client.ok()) break;
        latencies[w].push_back(us);
        requests.fetch_add(1, std::memory_order_relaxed);
        if (body != expected.at(target)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : workers) t.join();

  LegResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.requests = requests.load();
  result.mismatches = mismatches.load();
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  result.p50us = percentile(all, 0.50);
  result.p99us = percentile(all, 0.99);
  result.cacheHits = server.cache().hits();
  result.cacheMisses = server.cache().misses();
  server.stop();
  return result;
}

} // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_serve_load.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];

  std::cout << "== serve_load: cached vs uncached query throughput ==\n";

  // Reduced default workload (env-overridable) — serve_load measures the
  // service, not the simulation, so the capture just needs to be big
  // enough that a cache miss costs real analysis work.
  core::ExperimentConfig config;
  config.seed = static_cast<std::uint64_t>(envDouble("V6T_SEED", 7));
  config.sourceScale = envDouble("V6T_SOURCE_SCALE", 0.05);
  config.volumeScale = envDouble("V6T_VOLUME_SCALE", 0.004);
  config.baseline = sim::weeks(4);
  config.splits = 6;
  config.routeObjectAt = sim::weeks(6);

  const unsigned connections = envUnsigned("V6T_SERVE_CONNECTIONS", 8);
  const double seconds = envDouble("V6T_SERVE_SECONDS", 2.0);
  const unsigned serverThreads = envUnsigned("V6T_SERVE_THREADS", 2);
  unsigned analysisThreads = envUnsigned("V6T_ANALYSIS_THREADS", 0);
  if (analysisThreads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    analysisThreads = hw == 0 ? 1 : hw;
  }

  std::cout << "running calibrated simulation (seed=" << config.seed
            << ", sourceScale=" << config.sourceScale
            << ", volumeScale=" << config.volumeScale << ") ...\n";
  core::Experiment experiment{config};
  experiment.run();
  const auto& capture = experiment.telescope(core::T1).capture();
  const auto sessions =
      telescope::sessionize(capture.packets(), telescope::SourceAgg::Addr128);
  std::cout << "workload: T1, " << capture.packetCount() << " packets, "
            << sessions.size() << " sessions\n";

  serve::QueryEngineOptions engineOptions;
  engineOptions.analysisThreads = analysisThreads;
  const serve::QueryEngine engine{capture.packets(), sessions,
                                  &experiment.schedule(), engineOptions};

  // Busiest source for the /sources target — a real key, not a 404.
  std::map<net::Ipv6Address, std::uint64_t> bySource;
  for (const net::Packet& p : capture.packets()) ++bySource[p.src];
  net::Ipv6Address top;
  std::uint64_t topCount = 0;
  for (const auto& [addr, count] : bySource) {
    if (count > topCount) {
      top = addr;
      topCount = count;
    }
  }

  const std::vector<std::string> targets = {
      "/reports/table6",
      "/heavy-hitters?k=10",
      "/heavy-hitters?k=25&threshold=5",
      "/reaction-delays",
      "/sources/" + top.toString(),
  };
  std::map<std::string, std::string> expected;
  for (const std::string& t : targets) {
    const auto response = engine.evaluate(t);
    if (response.status != 200) {
      std::cerr << "reference request failed: " << t << " -> "
                << response.status << "\n";
      return 1;
    }
    expected[t] = response.body;
  }

  std::cout << "load: " << connections << " connections x " << seconds
            << "s per leg, " << serverThreads << " server threads, "
            << analysisThreads << " analysis threads\n";
  const LegResult off = runLeg(engine, 0, serverThreads, connections,
                               seconds, targets, expected);
  const LegResult on = runLeg(engine, 64ull << 20, serverThreads,
                              connections, seconds, targets, expected);

  const double offRps =
      off.seconds > 0 ? static_cast<double>(off.requests) / off.seconds : 0;
  const double onRps =
      on.seconds > 0 ? static_cast<double>(on.requests) / on.seconds : 0;
  const double speedup = offRps > 0 ? onRps / offRps : 0;
  const bool identical = off.mismatches == 0 && on.mismatches == 0 &&
                         off.requests > 0 && on.requests > 0;

  std::cout << "cache-off: " << off.requests << " requests in "
            << off.seconds << "s = " << offRps << " rps (p50 " << off.p50us
            << "us, p99 " << off.p99us << "us)\n";
  std::cout << "cache-on:  " << on.requests << " requests in " << on.seconds
            << "s = " << onRps << " rps (p50 " << on.p50us << "us, p99 "
            << on.p99us << "us; " << on.cacheHits << " hits, "
            << on.cacheMisses << " misses)\n";
  std::cout << "speedup: " << speedup << "x, byte-identity "
            << (identical ? "OK" : "FAILED") << "\n";

  obs::Registry registry;
  auto gauge = [&](const char* name, double v) {
    registry.gauge(std::string{"bench.serve_load."} + name).set(v);
  };
  const unsigned hw = std::thread::hardware_concurrency();
  gauge("cores_available", static_cast<double>(hw == 0 ? 1u : hw));
  gauge("connections", connections);
  gauge("duration_seconds", seconds);
  gauge("server_threads", serverThreads);
  gauge("analysis_threads", analysisThreads);
  gauge("packets", static_cast<double>(capture.packetCount()));
  gauge("sessions", static_cast<double>(sessions.size()));
  gauge("targets", static_cast<double>(targets.size()));
  gauge("requests_cache_off", static_cast<double>(off.requests));
  gauge("requests_cache_on", static_cast<double>(on.requests));
  gauge("throughput_cache_off_rps", offRps);
  gauge("throughput_cache_on_rps", onRps);
  gauge("cache_speedup", speedup);
  gauge("p50_us_cache_off", off.p50us);
  gauge("p99_us_cache_off", off.p99us);
  gauge("p50_us_cache_on", on.p50us);
  gauge("p99_us_cache_on", on.p99us);
  gauge("cache_hits", static_cast<double>(on.cacheHits));
  gauge("cache_misses", static_cast<double>(on.cacheMisses));
  gauge("cache_identical", identical ? 1.0 : 0.0);

  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  registry.writeJsonLine(out, {{"bench", "serve_load"}});
  std::cout << "wrote " << outPath << "\n";
  return identical ? 0 : 1;
}
