// bench/simd_kernels — the tracked perf baseline for the columnar/SIMD
// analysis kernels (DESIGN.md §16): scalar reference vs word/vector path
// for the three hot kernels, plus the bit-identity gate the whole design
// rests on — the full pipeline digest must be equal at every thread count
// with the kernels toggled both ways.
//
// All legs run in ONE binary: the vectorized kernels are compiled in
// (V6T_SIMD=ON) and toggled at runtime via ScopedSimdKernels, so "before"
// and "after" share the same build, workload, and memory layout. With
// V6T_SIMD=OFF both legs run the scalar reference and every speedup
// gauge reports ~1x (simd_compiled_in = 0 flags that in the artifact).
//
// Measured kernel pairs (best of V6T_BENCH_REPS, default 5):
//   freq_runs   frequencyTest+runsTest per bit (scalar) vs the packed
//               popcount kernels on the same sequences
//   classify    classifyAll per row (scalar) vs classifyLanes on the
//               contiguous IID lane column
//   acf         autocorrelation with the vector loop off vs on
//
// Digest gate: a synthetic capture (sessionized per the paper's 1-hour
// timeout) analyzed with the full stage set including the NIST battery,
// at threads {1,2,8} x simd {off,on}. All six PipelineResult digests must
// be identical; digest_match gates the exit code and the digest hex is
// exported as a JSON label so CI can compare it across build flavors
// (the V6T_SIMD=OFF cross-check build must reproduce it bit for bit).
//
// Output: one JSONL metrics snapshot (BENCH_simd_kernels.json, override
// with V6T_BENCH_OUT or argv[1]).
//
//   bench.simd_kernels.freq_runs_scalar_seconds / _simd_seconds / _speedup
//   bench.simd_kernels.classify_scalar_seconds  / _simd_seconds / _speedup
//   bench.simd_kernels.acf_scalar_seconds       / _simd_seconds / _speedup
//   bench.simd_kernels.digest_match             1 = all six digests equal
//   bench.simd_kernels.simd_compiled_in         V6T_SIMD at build time
//   bench.simd_kernels.cores_available          hardware_concurrency
//
// Workload scale: V6T_BENCH_SCALE (default 1.0; CI perf-smoke uses a
// fraction so the job stays fast).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/addr_class.hpp"
#include "analysis/autocorr.hpp"
#include "analysis/nist.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/simd.hpp"
#include "net/ipv6.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "telescope/session.hpp"

namespace {

using namespace v6t;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

volatile std::uint64_t g_sink = 0;

double envScale() {
  if (const char* s = std::getenv("V6T_BENCH_SCALE")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

int envReps() {
  if (const char* s = std::getenv("V6T_BENCH_REPS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<int>(std::min(v, 50L));
  }
  return 5;
}

/// Best-of-reps wall time of `fn` (the standard bench discipline: the
/// minimum is the least-noisy estimator on a shared host).
template <typename Fn>
double bestOf(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, secondsSince(t0));
  }
  return best;
}

std::vector<net::Packet> syntheticCapture(std::uint64_t seed, std::size_t n) {
  sim::Rng rng{seed};
  std::vector<net::Packet> packets;
  packets.reserve(n);
  std::int64_t now = 0;
  // A few hundred sources, some of them heavy with >= 100 packets per
  // session so the NIST battery and the columnar taxonomy path both get
  // real work.
  while (packets.size() < n) {
    now += 1 + static_cast<std::int64_t>(rng.below(900));
    net::Packet p;
    p.ts = sim::SimTime{now};
    p.src = net::Ipv6Address{0x2001'0db8'0000'0000ULL + rng.below(200),
                             rng.below(8)};
    p.dst = net::Ipv6Address{0x2001'0db8'ffff'0000ULL | rng.below(1ULL << 16),
                             rng.chance(0.5) ? rng.next() : rng.below(65536)};
    p.dstPort = static_cast<std::uint16_t>(rng.below(65536));
    if (rng.chance(0.25)) {
      p.payload.resize(1 + rng.below(12));
      for (std::size_t i = 0; i < p.payload.size(); ++i) {
        p.payload[i] = static_cast<std::uint8_t>(rng.below(256));
      }
    }
    packets.push_back(p);
  }
  return packets;
}

} // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_simd_kernels.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];
  const double scale = envScale();
  const int reps = envReps();

  std::cout << "== simd_kernels: columnar kernels vs scalar reference ==\n"
            << "scale=" << scale << " reps=" << reps << " simd_compiled_in="
            << (analysis::kSimdCompiledIn ? 1 : 0) << "\n";

  // --- kernel pair 1: frequency + runs, per-bit vs packed ---------------
  sim::Rng rng{42};
  const auto seqCount = static_cast<std::size_t>(2000 * scale) + 4;
  const std::size_t seqBits = 4096 + 17; // odd tail exercises the masks
  std::vector<analysis::BitSequence> sequences(seqCount);
  std::vector<std::vector<std::uint64_t>> packed(seqCount);
  for (std::size_t i = 0; i < seqCount; ++i) {
    sequences[i].resize(seqBits);
    for (auto& b : sequences[i]) b = rng.chance(0.5) ? 1 : 0;
    packed[i] = analysis::packBits(sequences[i]);
  }
  double freqRunsCheck = 0;
  const double freqRunsScalar = bestOf(reps, [&] {
    double acc = 0;
    for (const auto& bits : sequences) {
      acc += analysis::frequencyTest(bits).pValue;
      acc += analysis::runsTest(bits).pValue;
    }
    freqRunsCheck = acc;
  });
  double freqRunsPackedCheck = 0;
  const double freqRunsSimd = bestOf(reps, [&] {
    double acc = 0;
    for (std::size_t i = 0; i < seqCount; ++i) {
      const analysis::PackedBits bits{packed[i], seqBits};
      acc += analysis::frequencyTestPacked(bits).pValue;
      acc += analysis::runsTestPacked(bits).pValue;
    }
    freqRunsPackedCheck = acc;
  });
  const bool freqRunsEqual = freqRunsCheck == freqRunsPackedCheck;
  const double freqRunsSpeedup =
      freqRunsSimd > 0 ? freqRunsScalar / freqRunsSimd : 0;
  std::cout << "freq+runs: scalar " << freqRunsScalar << "s, packed "
            << freqRunsSimd << "s -> " << freqRunsSpeedup << "x"
            << (freqRunsEqual ? "" : " (P-VALUE MISMATCH)") << "\n";

  // --- kernel pair 2: address classification, rows vs lanes -------------
  const auto addrCount = static_cast<std::size_t>(2'000'000 * scale) + 64;
  std::vector<net::Ipv6Address> addrs;
  addrs.reserve(addrCount);
  for (std::size_t i = 0; i < addrCount; ++i) {
    addrs.emplace_back(0x2001'0db8'0000'0000ULL,
                       rng.chance(0.5) ? rng.next() : rng.below(1ULL << 16));
  }
  std::vector<std::uint64_t> laneHi(addrCount);
  std::vector<std::uint64_t> laneLo(addrCount);
  net::gatherLanes(addrs, laneHi, laneLo);
  analysis::AddressTypeHistogram rowsHist;
  const double classifyScalar = bestOf(reps, [&] {
    analysis::ScopedSimdKernels off{false};
    rowsHist = analysis::classifyAll(addrs);
    g_sink = g_sink + rowsHist.total();
  });
  analysis::AddressTypeHistogram lanesHist;
  const double classifySimd = bestOf(reps, [&] {
    lanesHist = analysis::classifyLanes(laneLo);
    g_sink = g_sink + lanesHist.total();
  });
  bool classifyEqual = true;
  for (std::size_t t = 0; t < analysis::kAddressTypeCount; ++t) {
    classifyEqual = classifyEqual && rowsHist.count[t] == lanesHist.count[t];
  }
  const double classifySpeedup =
      classifySimd > 0 ? classifyScalar / classifySimd : 0;
  std::cout << "classify: rows " << classifyScalar << "s, lanes "
            << classifySimd << "s -> " << classifySpeedup << "x"
            << (classifyEqual ? "" : " (HISTOGRAM MISMATCH)") << "\n";

  // --- kernel pair 3: autocorrelation, scalar vs vector loop ------------
  const auto acfLen = static_cast<std::size_t>(16384 * scale) + 256;
  std::vector<double> series(acfLen);
  for (auto& x : series) x = rng.uniform();
  const std::size_t acfMaxLag = acfLen / 4;
  std::vector<double> acfScalarOut;
  const double acfScalar = bestOf(reps, [&] {
    analysis::ScopedSimdKernels off{false};
    acfScalarOut = analysis::autocorrelation(series, acfMaxLag);
  });
  std::vector<double> acfSimdOut;
  const double acfSimd = bestOf(reps, [&] {
    analysis::ScopedSimdKernels on{true};
    acfSimdOut = analysis::autocorrelation(series, acfMaxLag);
  });
  const bool acfEqual =
      acfScalarOut.size() == acfSimdOut.size() &&
      std::memcmp(acfScalarOut.data(), acfSimdOut.data(),
                  acfScalarOut.size() * sizeof(double)) == 0;
  const double acfSpeedup = acfSimd > 0 ? acfScalar / acfSimd : 0;
  std::cout << "acf: scalar " << acfScalar << "s, vector " << acfSimd
            << "s -> " << acfSpeedup << "x"
            << (acfEqual ? "" : " (ACF MISMATCH)") << "\n";

  // --- the bit-identity gate: pipeline digest across threads x toggle ---
  const auto packetCount = static_cast<std::size_t>(120'000 * scale) + 2000;
  const std::vector<net::Packet> packets = syntheticCapture(7, packetCount);
  const std::vector<telescope::Session> sessions = telescope::sessionize(
      packets, telescope::SourceAgg::Addr128, sim::hours(1));
  std::cout << "digest workload: " << packets.size() << " packets, "
            << sessions.size() << " sessions\n";
  std::uint64_t referenceDigest = 0;
  bool digestMatch = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool simd : {false, true}) {
      analysis::ScopedSimdKernels toggle{simd};
      analysis::PipelineOptions opts;
      opts.threads = threads;
      opts.nistBattery = true;
      const analysis::PipelineResult result =
          analysis::Pipeline::analyze(packets, sessions, nullptr, opts);
      const std::uint64_t digest = result.digest();
      if (referenceDigest == 0) referenceDigest = digest;
      const bool match = digest == referenceDigest;
      digestMatch = digestMatch && match;
      std::cout << "digest threads=" << threads << " simd=" << simd << ": "
                << std::hex << digest << std::dec
                << (match ? "" : " (MISMATCH)") << "\n";
    }
  }
  const bool allEqual = digestMatch && freqRunsEqual && classifyEqual &&
                        acfEqual;

  obs::Registry registry;
  auto gauge = [&](const char* name, double v) {
    registry.gauge(std::string{"bench.simd_kernels."} + name).set(v);
  };
  const unsigned hw = std::thread::hardware_concurrency();
  gauge("cores_available", static_cast<double>(hw == 0 ? 1u : hw));
  gauge("scale", scale);
  gauge("reps", reps);
  gauge("simd_compiled_in", analysis::kSimdCompiledIn ? 1.0 : 0.0);
  gauge("nist_sequences", static_cast<double>(seqCount));
  gauge("classify_addrs", static_cast<double>(addrCount));
  gauge("acf_len", static_cast<double>(acfLen));
  gauge("digest_packets", static_cast<double>(packets.size()));
  gauge("digest_sessions", static_cast<double>(sessions.size()));
  gauge("freq_runs_scalar_seconds", freqRunsScalar);
  gauge("freq_runs_simd_seconds", freqRunsSimd);
  gauge("freq_runs_speedup", freqRunsSpeedup);
  gauge("classify_scalar_seconds", classifyScalar);
  gauge("classify_simd_seconds", classifySimd);
  gauge("classify_speedup", classifySpeedup);
  gauge("acf_scalar_seconds", acfScalar);
  gauge("acf_simd_seconds", acfSimd);
  gauge("acf_speedup", acfSpeedup);
  gauge("digest_match", allEqual ? 1.0 : 0.0);

  std::ostringstream digestHex;
  digestHex << std::hex << referenceDigest;
  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  registry.writeJsonLine(
      out, {{"bench", "simd_kernels"}, {"digest", digestHex.str()}});
  std::cout << "wrote " << outPath
            << (allEqual ? "" : " — EQUIVALENCE FAILURE") << "\n";
  return allEqual ? 0 : 1;
}
