// §8 negative result — "Are IPv6 telescopes suitable to monitor DDoS?"
// IPv4 telescopes see DDoS via backscatter from randomly spoofed sources;
// in IPv6 a randomly spoofed address virtually never falls into telescope
// space. This bench simulates attack backscatter and measures capture.
#include <cmath>
#include <iostream>

#include "analysis/report.hpp"
#include "bench/harness.hpp"
#include "bgp/rib.hpp"
#include "sim/rng.hpp"
#include "telescope/fabric.hpp"

int main() {
  using namespace v6t;
  std::cout << "== Ablation: DDoS backscatter visibility ==\n";

  // A fresh world with only the telescopes announced — no scanners.
  sim::Engine engine;
  bgp::Rib rib;
  core::ExperimentConfig config; // for the address plan
  rib.announce(config.t1Base, config.ourAsn, sim::kEpoch);
  rib.announce(config.t2Prefix, config.ourAsn, sim::kEpoch);
  rib.announce(config.covering, config.coveringAsn, sim::kEpoch);
  telescope::DeliveryFabric fabric{engine, rib};
  telescope::Telescope t1{{"T1", {config.t1Base}, telescope::Mode::Passive,
                           {}, {}}};
  telescope::Telescope t2{{"T2", {config.t2Prefix}, telescope::Mode::Passive,
                           {}, {}}};
  fabric.attach(t1);
  fabric.attach(t2);

  // A victim under attack answers spoofed SYNs with SYN/ACK backscatter.
  // Spoofed sources are uniform in the allocated 2000::/3 (generous: real
  // attackers often spoof even wider, lowering telescope hits further).
  sim::Rng rng{1};
  const net::Prefix spoofSpace = net::Prefix::mustParse("2000::/3");
  const std::uint64_t backscatter = 20'000'000;
  std::uint64_t captured = 0;
  for (std::uint64_t i = 0; i < backscatter; ++i) {
    // Cheap path: test routability without building full packets (the
    // fabric would drop unroutable ones anyway); only build a packet for
    // the rare routable case.
    const net::Ipv6Address dst = spoofSpace.addressAt(
        (static_cast<net::u128>(rng.next()) << 64) | rng.next());
    if (!rib.isRoutable(dst)) continue;
    net::Packet p;
    p.src = net::Ipv6Address::mustParse("3fff:dead::1"); // the victim
    p.dst = dst;
    p.proto = net::Protocol::Tcp;
    p.srcPort = 443;
    if (fabric.send(std::move(p)).captured) ++captured;
  }

  analysis::TextTable table{{"metric", "value"}};
  table.addRow({"backscatter packets emitted",
                analysis::withThousands(backscatter)});
  table.addRow({"captured by telescopes", analysis::withThousands(captured)});
  // Analytic expectation: covered space / 2^125 addresses of 2000::/3.
  const double coveredShare =
      (std::pow(2.0, 128.0 - 32.0) + std::pow(2.0, 128.0 - 48.0) +
       std::pow(2.0, 128.0 - 29.0)) /
      std::pow(2.0, 125.0);
  table.addRow({"P(single packet lands in covered space)",
                analysis::fixed(coveredShare * 1e9, 3) + " x 1e-9"});
  table.addRow({"expected captures at this volume",
                analysis::fixed(coveredShare * static_cast<double>(backscatter),
                                4)});
  table.render(std::cout);
  std::cout << "paper §8: telescopes cannot monitor IPv6 DDoS — randomly "
               "spoofed backscatter essentially never hits telescope "
               "space (the IPv4 technique does not carry over)\n";
  return 0;
}
