// Fig. 9 — weekly scan sessions at the four telescopes during the initial
// observation period.
#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Fig. 9: weekly scan sessions per telescope");

  const core::Period initial = ctx.initialPeriod();
  const std::int64_t weeks = initial.to.weekIndex();

  analysis::TextTable table{{"week", "T1", "T2", "T3", "T4"}};
  std::map<std::int64_t, std::uint64_t> perWeek[4];
  for (std::size_t t = 0; t < 4; ++t) {
    for (const auto& s :
         core::sessionsIn(ctx.summary.telescope(t).sessions128, initial)) {
      ++perWeek[t][s.start.weekIndex()];
    }
  }
  for (std::int64_t w = 0; w < weeks; ++w) {
    std::vector<std::string> cells{std::to_string(w)};
    for (std::size_t t = 0; t < 4; ++t) {
      const auto it = perWeek[t].find(w);
      cells.push_back(
          std::to_string(it == perWeek[t].end() ? 0 : it->second));
    }
    table.addRow(cells);
  }
  table.render(std::cout);
  std::cout << "paper shape: rather stable for T1/T2, sporadic for T3/T4 "
               "(single October campaign peak at T4)\n";
  return 0;
}
