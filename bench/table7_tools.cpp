// Table 7 — public scan tools identified at T1 during the split period,
// via payload fingerprint clustering and rDNS.
#include "analysis/fingerprint.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Table 7: identified scan tools at T1");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  const auto result = analysis::fingerprintSessions(
      capture.packets(), sessions, &ctx.experiment->population().rdns);

  std::uint64_t totalScanners = 0;
  for (const auto& [tool, count] : result.byTool) {
    totalScanners += count.scanners;
  }
  const std::uint64_t totalSessions = sessions.size();

  analysis::TextTable table{{"Scan Tool", "Scanners", "[%]", "Sessions",
                             "[%]", "paper scn% / sess%"}};
  struct Row {
    net::ScanTool tool;
    const char* paper;
  };
  const Row rows[] = {
      {net::ScanTool::RipeAtlas, "54.82 / 12.87"},
      {net::ScanTool::Yarrp6, "0.19 / 0.61"},
      {net::ScanTool::Traceroute, "0.16 / 0.18"},
      {net::ScanTool::Htrace6, "0.08 / 0.02"},
      {net::ScanTool::SixSeeks, "0.04 / 0.02"},
      {net::ScanTool::SixScan, "0.03 / 0.02"},
      {net::ScanTool::CaidaArk, "0.02 / 2.19"},
      {net::ScanTool::SixSense, "(heavy hitter rDNS)"},
      {net::ScanTool::Unknown, "(rest)"},
  };
  for (const Row& row : rows) {
    const auto it = result.byTool.find(row.tool);
    const analysis::ToolCount count =
        it == result.byTool.end() ? analysis::ToolCount{} : it->second;
    table.addRow({std::string{net::toString(row.tool)},
                  analysis::withThousands(count.scanners),
                  analysis::fixed(
                      analysis::percent(count.scanners, totalScanners), 2),
                  analysis::withThousands(count.sessions),
                  analysis::fixed(
                      analysis::percent(count.sessions, totalSessions), 2),
                  row.paper});
  }
  table.render(std::cout);
  std::cout << "payload packets: " << result.payloadPackets
            << ", payload sessions: " << result.payloadSessions
            << ", payload sources: " << result.payloadSources
            << ", DBSCAN clusters: " << result.clusterCount << "\n"
            << "(paper: 40% of packets carry payloads, from 93% of sources "
               "covering 76% of sessions)\n";
  return 0;
}
