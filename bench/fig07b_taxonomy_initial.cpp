// Fig. 7(b) — classification of scanners during the initial period: per
// telescope, sessions split by the scanner's temporal behavior (rows) and
// the session's address-selection strategy (cells).
#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 7(b): taxonomy classification per telescope, initial period");

  const core::Period initial = ctx.initialPeriod();
  analysis::TextTable table{{"Telescope", "Temporal", "structured", "random",
                             "unknown", "sessions"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& capture = ctx.experiment->telescope(t).capture();
    const auto sessions =
        core::sessionsIn(ctx.summary.telescope(t).sessions128, initial);
    analysis::PipelineOptions opts;
    opts.heavyHitters = false;
    opts.fingerprint = false;
    const auto taxonomy =
        bench::analyzeWindow(capture.packets(), sessions, nullptr, opts)
            .taxonomy;

    for (const auto cls :
         {analysis::TemporalClass::OneOff,
          analysis::TemporalClass::Intermittent,
          analysis::TemporalClass::Periodic}) {
      std::uint64_t bySel[3] = {};
      std::uint64_t total = 0;
      for (const auto& profile : taxonomy.profiles) {
        if (profile.temporal.cls != cls) continue;
        for (int sel = 0; sel < 3; ++sel) {
          bySel[sel] += profile.sessionsByAddrSel[sel];
          total += profile.sessionsByAddrSel[sel];
        }
      }
      table.addRow({ctx.experiment->telescope(t).name(),
                    std::string{analysis::toString(cls)},
                    std::to_string(bySel[0]), std::to_string(bySel[1]),
                    std::to_string(bySel[2]), std::to_string(total)});
    }
    table.addSeparator();
  }
  table.render(std::cout);
  std::cout << "paper shape: most scanners return (intermittent 41% / "
               "periodic 29%) and use structured selection; T3/T4 sessions "
               "are exclusively structured, none random\n";
  return 0;
}
