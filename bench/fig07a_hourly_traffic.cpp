// Fig. 7(a) — network traffic per hour across the four telescopes during
// the initial observation period (summary statistics + weekly profile,
// since an 2000-hour series doesn't print well).
#include <algorithm>

#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 7(a): hourly traffic per telescope, initial period");

  const core::Period initial = ctx.initialPeriod();
  const std::int64_t hours = initial.to.hourIndex();

  analysis::TextTable table{{"Telescope", "active hours", "mean pkts/h",
                             "p95", "max", "total"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& hourly = ctx.experiment->telescope(t).capture().hourlyCounts();
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto& [hour, count] : hourly) {
      if (hour >= hours) break;
      counts.push_back(count);
      total += count;
    }
    std::sort(counts.begin(), counts.end());
    const std::uint64_t p95 =
        counts.empty() ? 0 : counts[counts.size() * 95 / 100];
    const std::uint64_t max = counts.empty() ? 0 : counts.back();
    table.addRow({ctx.experiment->telescope(t).name(),
                  std::to_string(counts.size()),
                  analysis::fixed(hours == 0
                                      ? 0.0
                                      : static_cast<double>(total) /
                                            static_cast<double>(hours),
                                  2),
                  std::to_string(p95), std::to_string(max),
                  analysis::withThousands(total)});
  }
  table.render(std::cout);

  // Weekly totals as an ASCII profile (T1 and T2 carry the shape; T2 shows
  // the higher peaks from the DNS-attractor crowd).
  std::cout << "\nweekly packet profile (# = share of week's max)\n";
  for (std::size_t t = 0; t < 2; ++t) {
    const auto& weekly = ctx.experiment->telescope(t).capture().weeklyCounts();
    std::uint64_t peak = 1;
    for (const auto& [week, count] : weekly) {
      if (week < initial.to.weekIndex()) peak = std::max(peak, count);
    }
    std::cout << ctx.experiment->telescope(t).name() << ":\n";
    for (const auto& [week, count] : weekly) {
      if (week >= initial.to.weekIndex()) break;
      std::cout << "  w" << week << " "
                << analysis::bar(static_cast<double>(count),
                                 static_cast<double>(peak), 50)
                << " " << count << "\n";
    }
  }
  std::cout << "paper shape: T2 shows longer and higher peaks than T1 "
               "(scanners hammering the DNS-named address); T3 nearly "
               "silent; T4 sporadic\n";
  return 0;
}
