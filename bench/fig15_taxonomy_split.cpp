// Fig. 15 — classification of T1 scanners during the split period: the
// temporal × address-selection session grid, plus the cross-category
// breakdown of §7.1 (temporal × network selection).
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 15: taxonomy of T1 scanners during the split period");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  analysis::PipelineOptions opts;
  opts.heavyHitters = false;
  opts.fingerprint = false;
  const auto taxonomy =
      bench::analyzeWindow(capture.packets(), sessions,
                           &ctx.experiment->schedule(), opts)
          .taxonomy;

  analysis::TextTable grid{{"temporal \\ addr-sel", "structured", "random",
                            "unknown"}};
  for (const auto cls :
       {analysis::TemporalClass::OneOff, analysis::TemporalClass::Intermittent,
        analysis::TemporalClass::Periodic}) {
    std::uint64_t bySel[3] = {};
    for (const auto& profile : taxonomy.profiles) {
      if (profile.temporal.cls != cls) continue;
      for (int sel = 0; sel < 3; ++sel) {
        bySel[sel] += profile.sessionsByAddrSel[sel];
      }
    }
    grid.addRow({std::string{analysis::toString(cls)},
                 analysis::withThousands(bySel[0]),
                 analysis::withThousands(bySel[1]),
                 analysis::withThousands(bySel[2])});
  }
  grid.render(std::cout);

  std::cout << "\ncross-category: sessions by temporal x network selection\n";
  analysis::TextTable cross{{"temporal \\ netsel", "single-prefix",
                             "size-indep", "size-dep", "inconsistent"}};
  for (const auto cls :
       {analysis::TemporalClass::OneOff, analysis::TemporalClass::Intermittent,
        analysis::TemporalClass::Periodic}) {
    std::uint64_t byNet[4] = {};
    for (const auto& profile : taxonomy.profiles) {
      if (profile.temporal.cls != cls) continue;
      byNet[static_cast<std::size_t>(profile.network)] +=
          profile.sessionIdx.size();
    }
    cross.addRow({std::string{analysis::toString(cls)},
                  analysis::withThousands(byNet[0]),
                  analysis::withThousands(byNet[1]),
                  analysis::withThousands(byNet[2]),
                  analysis::withThousands(byNet[3])});
  }
  cross.render(std::cout);
  std::cout << "paper shape: one-off sessions are 95% single-prefix and "
               "structured; periodic sessions mostly inconsistent (54%) or "
               "size-independent (39%); many periodic sessions use random "
               "traversal (topology probing)\n";
  return 0;
}
