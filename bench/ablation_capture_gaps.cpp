// Ablation — capture-gap sensitivity. The paper's 11-month collection
// inevitably contains telescope downtime; this ablation injects scheduled
// capture outages of growing length (via the fault layer) and reports how
// packet counts and the session tables respond. Gap-aware sessionization
// keeps the *structure* honest — silence caused by a dark telescope splits
// sessions instead of fabricating continuity — so the interesting question
// is how fast the headline numbers drift as outages grow.
//
// Runs at a reduced scale by default (four runs of the sharded runner);
// V6T_SOURCE_SCALE / V6T_VOLUME_SCALE / V6T_THREADS override as usual.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/report.hpp"
#include "bench/harness.hpp"
#include "fault/spec.hpp"

int main() {
  using namespace v6t;
  std::cout << "== Ablation: capture-gap sensitivity ==\n";

  core::ExperimentConfig base = bench::standardConfig();
  // Reduced scale unless the environment says otherwise: this ablation
  // runs the full pipeline once per gap length.
  if (std::getenv("V6T_SOURCE_SCALE") == nullptr) base.sourceScale = 0.05;
  if (std::getenv("V6T_VOLUME_SCALE") == nullptr) base.volumeScale = 0.004;
  base.baseline = sim::weeks(4);
  base.splits = 6;
  base.routeObjectAt = sim::weeks(6);
  base.threads = 2;
  if (const char* s = std::getenv("V6T_THREADS")) {
    base.threads = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  }

  // An all-telescope outage starting mid-baseline, of growing length.
  const std::pair<const char*, const char*> gapSpecs[] = {
      {"none", ""},
      {"6 h", "gap=all@2w+6h"},
      {"1 d", "gap=all@2w+1d"},
      {"3 d", "gap=all@2w+3d"},
  };

  analysis::TextTable table{{"outage", "T1 packets", "T1 sessions /128",
                             "closed by gap", "T2 packets",
                             "T2 sessions /128"}};
  for (const auto& [label, specText] : gapSpecs) {
    const auto parsed = fault::FaultSpec::parse(specText);
    if (!parsed.ok()) {
      std::cerr << "bad spec: " << parsed.errors.front() << "\n";
      return 1;
    }
    core::RunnerConfig config;
    config.experiment = base;
    config.experiment.faults = parsed.spec;
    auto runner = std::make_unique<core::ExperimentRunner>(config);
    runner->run();
    const auto summary = core::ExperimentSummary::compute(*runner);

    const bool gapped = !parsed.spec.gaps.empty();
    const auto& t1 = summary.telescope(core::T1);
    const auto& t2 = summary.telescope(core::T2);
    table.addRow({label,
                  analysis::gapFlagged(
                      analysis::withThousands(
                          runner->capture(core::T1).packets().size()),
                      gapped),
                  analysis::withThousands(t1.sessions128.size()),
                  analysis::withThousands(t1.stats128.closedByGap),
                  analysis::gapFlagged(
                      analysis::withThousands(
                          runner->capture(core::T2).packets().size()),
                      gapped),
                  analysis::withThousands(t2.sessions128.size())});
  }
  table.render(std::cout);
  std::cout << "expected shape: packet counts shrink roughly linearly with "
               "the outage length while session counts dip and then partly "
               "recover (sources re-open sessions after the gap); "
               "closed-by-gap counts grow with outage length — cells "
               "covering an outage carry the !gap marker\n";
  return 0;
}
