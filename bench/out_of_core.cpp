// bench/out_of_core — RSS-vs-spill-budget bench for the out-of-core
// capture store (DESIGN.md §15). Two processes over the identical
// synthetic capture:
//
//   child   the in-memory reference: CaptureStore append + canonical
//           merge + analyzeOneShot. Peak RSS grows with capture size —
//           this is the path that exceeds 0.9 GB at full scale.
//   parent  the spilled path: SegmentStore under V6T_OOC_BUDGET_BYTES,
//           then StreamingAnalyzer over the segment cursor. Peak RSS must
//           stay bounded by the budget (plus a fixed slack for the
//           binary, window buffers and tracker state) no matter how large
//           the capture is.
//
// The child reports (digest, peak RSS, packet count) over a pipe; the
// bench FAILS (nonzero exit) when the streamed digest differs from the
// in-memory one or the parent's RSS escapes the budget bound — so the CI
// job that runs it gates the §15 equivalence and memory contracts, not
// just throughput.
//
// Output: one JSONL snapshot (same channel as --metrics-out) to
// BENCH_out_of_core.json (override: V6T_BENCH_OUT or argv[1]). Scale the
// workload with V6T_OOC_SCALE (default 1.0 = 8M packets; CI uses a small
// fraction) and the budget with V6T_OOC_BUDGET_BYTES (default 64 MiB).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/streaming.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "telescope/capture_store.hpp"
#include "telescope/segment_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double peakRssBytes() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) * 1024.0; // Linux: KiB
}

/// Deterministic packet stream both processes replay independently: a
/// 4096-source pool (per-source gaps stay under the session timeout, so
/// summary count stays O(sources), not O(packets)), one dominant source
/// (a guaranteed heavy hitter), ~200 ms mean pace so a full-scale capture
/// spans weeks of simulated time, and a >1h global silence every ~500k
/// packets to exercise session closure mid-stream.
class PacketGen {
public:
  explicit PacketGen(std::uint64_t seed) : rng_{seed} {}

  v6t::net::Packet next(std::uint64_t i) {
    if (rng_.below(500'000) == 0) {
      ts_ += 2 * 3'600'000; // 2h silence: closes every open session
    } else {
      ts_ += static_cast<std::int64_t>(rng_.below(400)); // ~200ms mean
    }
    v6t::net::Packet p;
    p.ts = v6t::sim::SimTime{ts_};
    const std::uint64_t source =
        rng_.below(100) < 20 ? 0 : 1 + rng_.below(4095);
    p.src = v6t::net::Ipv6Address{0x2001'0db8'0000'0000ULL | (source >> 8),
                                  source & 0xff};
    p.dst = v6t::net::Ipv6Address{0x2a00ULL << 48, rng_.next()};
    p.proto = static_cast<v6t::net::Protocol>(rng_.below(3));
    p.srcPort = static_cast<std::uint16_t>(rng_.below(65536));
    p.dstPort = static_cast<std::uint16_t>(rng_.below(65536));
    p.hopLimit = static_cast<std::uint8_t>(64 + rng_.below(64));
    p.srcAsn = v6t::net::Asn{static_cast<std::uint32_t>(64500 + source % 40)};
    p.originId = static_cast<std::uint32_t>(i % 256);
    p.originSeq = i;
    if (rng_.below(4) == 0) {
      const std::size_t len = 1 + rng_.below(12);
      for (std::size_t b = 0; b < len; ++b) {
        p.payload.push_back(static_cast<std::uint8_t>(rng_.below(256)));
      }
    }
    return p;
  }

private:
  v6t::sim::Rng rng_;
  std::int64_t ts_ = 0;
};

constexpr std::uint64_t kSeed = 0x00C0FFEE;

struct ChildReport {
  std::uint64_t digest = 0;
  std::uint64_t peakRss = 0;
  std::uint64_t packets = 0;
};

} // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  if (const char* s = std::getenv("V6T_OOC_SCALE")) {
    scale = std::strtod(s, nullptr);
  }
  if (scale <= 0) scale = 1.0;
  std::uint64_t budget = 64ull << 20;
  if (const char* s = std::getenv("V6T_OOC_BUDGET_BYTES")) {
    budget = std::strtoull(s, nullptr, 10);
  }
  if (budget == 0) budget = 64ull << 20;
  std::string outPath = "BENCH_out_of_core.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];

  const auto packets = static_cast<std::uint64_t>(8'000'000 * scale);
  std::cout << "== out_of_core (scale " << scale << ", " << packets
            << " packets, budget " << (budget >> 20) << " MiB) ==\n";

  int fds[2];
  if (pipe(fds) != 0) {
    std::cerr << "pipe() failed\n";
    return 1;
  }
  const pid_t child = fork();
  if (child < 0) {
    std::cerr << "fork() failed\n";
    return 1;
  }
  if (child == 0) {
    // ---- child: in-memory reference --------------------------------
    close(fds[0]);
    v6t::telescope::CaptureStore shard;
    shard.reserve(packets);
    {
      PacketGen gen{kSeed};
      for (std::uint64_t i = 0; i < packets; ++i) shard.append(gen.next(i));
    }
    v6t::telescope::CaptureStore canonical;
    const v6t::telescope::CaptureStore* shards[] = {&shard};
    canonical.mergeFrom(shards);
    shard.clear();
    const v6t::analysis::StreamingResult result =
        v6t::analysis::analyzeOneShot(canonical.packets());
    ChildReport report;
    report.digest = result.digest();
    report.peakRss = static_cast<std::uint64_t>(peakRssBytes());
    report.packets = result.totalPackets;
    const ssize_t written = write(fds[1], &report, sizeof(report));
    _exit(written == sizeof(report) ? 0 : 1);
  }

  // ---- parent: spilled + streamed path -----------------------------
  close(fds[1]);
  const std::filesystem::path spillDir =
      std::filesystem::temp_directory_path() /
      ("v6t-ooc-" + std::to_string(getpid()));
  std::filesystem::remove_all(spillDir);
  v6t::obs::Registry metrics;

  double ingestSeconds = 0;
  double analyzeSeconds = 0;
  std::uint64_t segments = 0;
  std::uint64_t spilledBytes = 0;
  v6t::analysis::StreamingResult streamed;
  {
    v6t::telescope::SegmentStoreOptions options;
    options.dir = spillDir;
    options.spillBytes = budget;
    options.metrics = &metrics;
    v6t::telescope::SegmentStore store{options};
    {
      PacketGen gen{kSeed};
      const auto t0 = Clock::now();
      for (std::uint64_t i = 0; i < packets; ++i) store.append(gen.next(i));
      ingestSeconds = secondsSince(t0);
    }
    segments = store.segmentCount();
    spilledBytes = store.spilledBytes();
    std::cout << "spilled: " << segments << " segments, "
              << spilledBytes / (1024.0 * 1024.0) << " MiB on disk, memtable "
              << store.memtableBytes() / (1024.0 * 1024.0) << " MiB, ingest "
              << ingestSeconds << "s\n";

    v6t::analysis::StreamingOptions opts;
    opts.metrics = &metrics;
    v6t::analysis::StreamingAnalyzer analyzer{opts};
    const auto t0 = Clock::now();
    auto cursor = store.cursor();
    analyzer.ingestAll(cursor);
    streamed = analyzer.finish();
    analyzeSeconds = secondsSince(t0);
  }
  const double parentRss = peakRssBytes();
  std::cout << "streamed: " << streamed.totalPackets << " packets, "
            << streamed.sources.size() << " sources, "
            << streamed.windows.size() << " windows, analyze "
            << analyzeSeconds << "s, peak RSS "
            << parentRss / (1024.0 * 1024.0) << " MiB\n";

  ChildReport reference;
  ssize_t got = read(fds[0], &reference, sizeof(reference));
  close(fds[0]);
  int status = 0;
  waitpid(child, &status, 0);
  const bool childOk = got == sizeof(reference) && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
  if (!childOk) {
    std::cerr << "in-memory reference child failed\n";
    std::filesystem::remove_all(spillDir);
    return 1;
  }
  std::cout << "reference: digest 0x" << std::hex << reference.digest
            << std::dec << ", peak RSS "
            << static_cast<double>(reference.peakRss) / (1024.0 * 1024.0)
            << " MiB\n";

  const bool digestMatch = streamed.digest() == reference.digest &&
                           streamed.totalPackets == reference.packets;
  // The bound: a fixed floor for code + allocator + window/tracker state,
  // plus 3x the budget (memtable + its canonical sort + compaction I/O
  // never hold more than a few budgets' worth at once).
  const double rssBound = 256.0 * 1024.0 * 1024.0 + 3.0 * static_cast<double>(budget);
  const bool rssBounded = parentRss <= rssBound;

  v6t::obs::Registry summary;
  summary.gauge("bench.out_of_core.scale").set(scale);
  summary.gauge("bench.out_of_core.packets")
      .set(static_cast<double>(packets));
  summary.gauge("bench.out_of_core.spill_budget_bytes")
      .set(static_cast<double>(budget));
  summary.gauge("bench.out_of_core.segments").set(static_cast<double>(segments));
  summary.gauge("bench.out_of_core.spilled_bytes")
      .set(static_cast<double>(spilledBytes));
  summary.gauge("bench.out_of_core.ingest_seconds").set(ingestSeconds);
  summary.gauge("bench.out_of_core.analyze_seconds").set(analyzeSeconds);
  summary.gauge("bench.out_of_core.ingest_packets_per_sec")
      .set(ingestSeconds > 0 ? static_cast<double>(packets) / ingestSeconds
                             : 0);
  summary.gauge("bench.out_of_core.spilled_peak_rss_bytes").set(parentRss);
  summary.gauge("bench.out_of_core.inmem_peak_rss_bytes")
      .set(static_cast<double>(reference.peakRss));
  summary.gauge("bench.out_of_core.rss_bound_bytes").set(rssBound);
  summary.gauge("bench.out_of_core.rss_bound_ok").set(rssBounded ? 1 : 0);
  summary.gauge("bench.out_of_core.digest_match").set(digestMatch ? 1 : 0);
  summary.gauge("bench.out_of_core.windows")
      .set(static_cast<double>(streamed.windows.size()));
  summary.gauge("bench.out_of_core.sources")
      .set(static_cast<double>(streamed.sources.size()));
  summary.aggregateFrom(metrics); // capture.spill.* / analysis.stream.*

  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    std::filesystem::remove_all(spillDir);
    return 1;
  }
  summary.writeJsonLine(out, {{"bench", "out_of_core"}});
  std::cout << "wrote " << outPath << "\n";
  std::filesystem::remove_all(spillDir);

  if (!digestMatch) {
    std::cerr << "FAIL: streamed digest diverged from the in-memory "
                 "reference\n";
    return 1;
  }
  if (!rssBounded) {
    std::cerr << "FAIL: spilled peak RSS " << parentRss
              << " exceeds bound " << rssBound << " (budget " << budget
              << ")\n";
    return 1;
  }
  std::cout << "OK: digest match, RSS bounded ("
            << parentRss / (1024.0 * 1024.0) << " MiB <= "
            << rssBound / (1024.0 * 1024.0) << " MiB)\n";
  return 0;
}
