// Fig. 11 — bi-weekly evolution of sessions and sources: the BGP
// controlled telescope (T1) grows through the split period while the
// other telescopes stay flat (paper: +275% weekly sources, +555% weekly
// sessions on average during the experiment).
#include <set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 11: bi-weekly sessions/sources, T1 vs other telescopes");

  const std::int64_t totalWeeks = ctx.experiment->experimentEnd().weekIndex();
  analysis::TextTable table{{"weeks", "T1 sessions", "T1 sources",
                             "T2-T4 sessions", "T2-T4 sources"}};

  auto statsFor = [&](std::size_t t, core::Period period,
                      std::uint64_t& sessions,
                      std::set<net::Ipv6Address>& sources) {
    sessions +=
        core::sessionsIn(ctx.summary.telescope(t).sessions128, period).size();
    for (const net::Packet& p :
         ctx.experiment->telescope(t).capture().packets()) {
      if (period.contains(p.ts)) sources.insert(p.src);
    }
  };

  double t1BaselineSessions = 0;
  double t1BaselineSources = 0;
  double t1SplitSessions = 0;
  double t1SplitSources = 0;
  int baselineBins = 0;
  int splitBins = 0;
  const std::int64_t baselineWeeks = ctx.experiment->baselineEnd().weekIndex();

  for (std::int64_t w = 0; w < totalWeeks; w += 2) {
    const core::Period bin{sim::kEpoch + sim::weeks(w),
                           sim::kEpoch + sim::weeks(w + 2)};
    std::uint64_t t1Sessions = 0;
    std::set<net::Ipv6Address> t1Sources;
    statsFor(core::T1, bin, t1Sessions, t1Sources);
    std::uint64_t otherSessions = 0;
    std::set<net::Ipv6Address> otherSources;
    for (std::size_t t = 1; t < 4; ++t) {
      statsFor(t, bin, otherSessions, otherSources);
    }
    table.addRow({std::to_string(w) + "-" + std::to_string(w + 2),
                  std::to_string(t1Sessions),
                  std::to_string(t1Sources.size()),
                  std::to_string(otherSessions),
                  std::to_string(otherSources.size())});
    if (w + 2 <= baselineWeeks) {
      t1BaselineSessions += static_cast<double>(t1Sessions);
      t1BaselineSources += static_cast<double>(t1Sources.size());
      ++baselineBins;
    } else if (w >= baselineWeeks) {
      t1SplitSessions += static_cast<double>(t1Sessions);
      t1SplitSources += static_cast<double>(t1Sources.size());
      ++splitBins;
    }
  }
  table.render(std::cout);

  const double sessionGain =
      (t1SplitSessions / splitBins) / (t1BaselineSessions / baselineBins);
  const double sourceGain =
      (t1SplitSources / splitBins) / (t1BaselineSources / baselineBins);
  std::cout << "T1 split-period vs baseline, per bi-weekly bin: sessions x"
            << analysis::fixed(sessionGain, 2) << " (+"
            << analysis::fixed((sessionGain - 1) * 100, 0)
            << "%), sources x" << analysis::fixed(sourceGain, 2) << " (+"
            << analysis::fixed((sourceGain - 1) * 100, 0) << "%)\n"
            << "paper: sessions +555%, sources +275%; other telescopes "
               "stay flat\n";
  return 0;
}
