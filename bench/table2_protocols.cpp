// Table 2 — packets, sessions, and sources per transport protocol,
// aggregated over all four telescopes, full observation period.
#include <unordered_set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Table 2: packets / sessions / sources per transport protocol");

  std::uint64_t packets[3] = {};
  std::uint64_t sessions[3] = {};
  std::unordered_set<net::Ipv6Address> sources[3];
  std::uint64_t totalPackets = 0;
  std::uint64_t totalSessions = 0;
  std::unordered_set<net::Ipv6Address> allSources;

  for (std::size_t t = 0; t < 4; ++t) {
    const auto& capture = ctx.experiment->telescope(t).capture();
    for (const net::Packet& p : capture.packets()) {
      ++packets[static_cast<std::size_t>(p.proto)];
      ++totalPackets;
      sources[static_cast<std::size_t>(p.proto)].insert(p.src);
      allSources.insert(p.src);
    }
    const auto& sessionList = ctx.summary.telescope(t).sessions128;
    totalSessions += sessionList.size();
    for (const auto& s : sessionList) {
      bool seen[3] = {};
      for (std::uint32_t idx : s.packetIdx) {
        seen[static_cast<std::size_t>(capture.packets()[idx].proto)] = true;
      }
      for (int proto = 0; proto < 3; ++proto) {
        if (seen[proto]) ++sessions[proto];
      }
    }
  }

  analysis::TextTable table{{"Protocol", "Packets", "[%]", "Sessions /128",
                             "[%]", "Sources /128", "[%]",
                             "paper pkt% / sess% / src%"}};
  const char* paperRef[3] = {"66.2 / 20.1 / 56.5", "10.5 / 92.8 / 55.4",
                             "23.4 / 5.6 / 19.7"};
  const net::Protocol order[3] = {net::Protocol::Icmpv6, net::Protocol::Tcp,
                                  net::Protocol::Udp};
  for (int row = 0; row < 3; ++row) {
    const auto proto = static_cast<std::size_t>(order[row]);
    table.addRow({std::string{net::toString(order[row])},
                  analysis::withThousands(packets[proto]),
                  analysis::fixed(analysis::percent(packets[proto],
                                                    totalPackets), 1),
                  analysis::withThousands(sessions[proto]),
                  analysis::fixed(analysis::percent(sessions[proto],
                                                    totalSessions), 1),
                  analysis::withThousands(sources[proto].size()),
                  analysis::fixed(analysis::percent(sources[proto].size(),
                                                    allSources.size()), 1),
                  paperRef[row]});
  }
  table.render(std::cout);
  std::cout << "(shares may exceed 100%: multi-protocol scanners)\n";
  return 0;
}
