// Ablation — the sessionization timeout (§3.3). The paper adopts one hour
// (Richter et al. / Zhao et al.); this bench shows how session counts and
// the temporal taxonomy respond to other choices, supporting the claim
// that sessions are a stable measure around the chosen value.
#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Ablation: sessionization timeout");

  const auto& packets = ctx.experiment->telescope(core::T1).capture().packets();

  analysis::TextTable table{{"timeout", "sessions /128", "sessions /64",
                             "one-off scn", "periodic scn",
                             "intermittent scn"}};
  const std::pair<const char*, sim::Duration> timeouts[] = {
      {"5 min", sim::minutes(5)},   {"30 min", sim::minutes(30)},
      {"1 h (paper)", sim::hours(1)}, {"2 h", sim::hours(2)},
      {"6 h", sim::hours(6)},
  };
  for (const auto& [label, timeout] : timeouts) {
    const auto s128 =
        telescope::sessionize(packets, telescope::SourceAgg::Addr128, timeout);
    const auto s64 =
        telescope::sessionize(packets, telescope::SourceAgg::Net64, timeout);
    const auto taxonomy = analysis::classifyCapture(packets, s128, nullptr);
    table.addRow({label, analysis::withThousands(s128.size()),
                  analysis::withThousands(s64.size()),
                  analysis::withThousands(
                      taxonomy.scannersOf(analysis::TemporalClass::OneOff)),
                  analysis::withThousands(
                      taxonomy.scannersOf(analysis::TemporalClass::Periodic)),
                  analysis::withThousands(taxonomy.scannersOf(
                      analysis::TemporalClass::Intermittent))});
  }
  table.render(std::cout);
  std::cout << "expected shape: session counts change sharply below ~30 min "
               "(scan bursts get fragmented) and only mildly above 1 h — "
               "the paper's choice sits on the plateau\n";
  return 0;
}
