// bench/analysis_speedup — the tracked perf baseline for the parallel
// analysis pipeline: shared-index build cost, taxonomy classification
// throughput serial vs. parallel, and the end-to-end pipeline (taxonomy +
// heavy hitters + fingerprint) under the cost-aware scheduler. The
// parallel results must be bitwise-identical to the serial reference
// (DESIGN.md §12/§13); the bench enforces that with the PipelineResult
// digest and fails hard on a mismatch.
//
// Measurement discipline: a full serial pipeline run is executed and
// DISCARDED first, so whichever leg is measured first no longer gets the
// cold page cache (the old bench measured serial after parallel and
// flattered the speedup). V6T_BENCH_ORDER=parallel-first additionally
// swaps the measured legs to expose any residual order bias.
//
// Three pipeline legs are measured:
//   serial        threads=1, the reference
//   parallel      OS threads (V6T_ANALYSIS_THREADS, default all cores) —
//                 the honest wall clock on THIS host, and the digest gate
//   virtual-time  the same scheduler replayed on virtual worker clocks
//                 (PipelineOptions::virtualTime): tasks run serially, the
//                 per-worker clocks model the `threads`-worker schedule.
//                 modeled_parallel = wall_virtual - Σbusy + Σmakespan, i.e.
//                 the serial residue plus the modeled makespan of every
//                 dispatched stage. This is the schedule-quality number a
//                 single-core CI container can still measure.
//
// `pipeline_speedup` is serial / modeled_parallel — the SCHEDULE-MODELED
// speedup (what an idle `threads`-core host would see, given the measured
// per-task durations). The raw wall ratio on this host is reported
// separately as `pipeline_wall_speedup`; on a single-core container it
// hovers near 1.0 by construction.
//
// Workload: the calibrated experiment's T1 capture over the whole
// measurement period (V6T_SEED / V6T_SOURCE_SCALE / V6T_VOLUME_SCALE
// scale it; CI uses a small fraction).
//
// Output: one JSONL metrics snapshot written to
// BENCH_analysis_speedup.json (override with V6T_BENCH_OUT or argv[1]).
//
//   bench.analysis_speedup.index_seconds            best-of-3 index build
//   bench.analysis_speedup.classify_serial_seconds  threads=1 taxonomy
//   bench.analysis_speedup.classify_parallel_seconds
//   bench.analysis_speedup.classify_speedup         serial / parallel wall
//   bench.analysis_speedup.classify_sources_per_sec parallel throughput
//   bench.analysis_speedup.pipeline_serial_seconds  full stage set
//   bench.analysis_speedup.pipeline_parallel_seconds     OS-thread wall
//   bench.analysis_speedup.pipeline_wall_speedup         serial / wall
//   bench.analysis_speedup.pipeline_modeled_parallel_seconds
//   bench.analysis_speedup.pipeline_speedup         serial / modeled (§13)
//   bench.analysis_speedup.sequential_residue_seconds    undispatched part
//   bench.analysis_speedup.sched_steals             steal ops, parallel leg
//   bench.analysis_speedup.sched_splits             heavy items split
//   bench.analysis_speedup.bench_order              0 serial-first, 1 swapped
//   bench.analysis_speedup.legacy_seconds           pre-index entry points
//   bench.analysis_speedup.index_reuse_speedup      legacy / parallel
//   bench.analysis_speedup.digest_match             1 = bitwise-identical
//
// The snapshot also carries the parallel leg's analysis.* metrics (stage
// spans, worker counters, scheduler counters, index hit counters), so the
// steal/split behavior is visible in the artifact.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "analysis/capture_index.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

volatile std::uint64_t g_sink = 0;

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;
  std::string outPath = "BENCH_analysis_speedup.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];
  const char* orderEnv = std::getenv("V6T_BENCH_ORDER");
  const bool parallelFirst =
      orderEnv != nullptr && std::strcmp(orderEnv, "parallel-first") == 0;

  bench::RunContext ctx =
      bench::runStandard("analysis_speedup: parallel pipeline vs serial");
  const unsigned threads = bench::analysisThreads();

  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto& sessions = ctx.summary.telescope(core::T1).sessions128;
  std::cout << "workload: T1 whole period, " << capture.packetCount()
            << " packets, " << sessions.size() << " sessions, threads="
            << threads << (parallelFirst ? ", parallel-first" : "") << "\n";

  // --- shared index build (best of 3; one pass over the session lists) ---
  double indexSeconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const analysis::CaptureIndex index{capture.packets(), sessions};
    indexSeconds = std::min(indexSeconds, secondsSince(t0));
    g_sink = g_sink + index.sourceCount();
  }
  std::cout << "index build: " << indexSeconds << "s ("
            << sessions.size() << " sessions)\n";

  const analysis::CaptureIndex index{capture.packets(), sessions};
  const auto* schedule = &ctx.experiment->schedule();

  // --- classify stage, serial reference vs parallel ---
  const auto c0 = Clock::now();
  const auto serialTaxonomy = analysis::classifyIndexed(index, schedule, 1);
  const double classifySerial = secondsSince(c0);
  const auto c1 = Clock::now();
  const auto parallelTaxonomy =
      analysis::classifyIndexed(index, schedule, threads);
  const double classifyParallel = secondsSince(c1);
  const double classifySpeedup =
      classifyParallel > 0 ? classifySerial / classifyParallel : 0;
  const double sourcesPerSec =
      classifyParallel > 0
          ? static_cast<double>(index.sourceCount()) / classifyParallel
          : 0;
  std::cout << "classify: serial " << classifySerial << "s, " << threads
            << " threads " << classifyParallel << "s -> " << classifySpeedup
            << "x (" << sourcesPerSec << " sources/s)\n";

  // --- end-to-end pipeline (taxonomy + heavy hitters + fingerprint) ---
  obs::Registry registry;
  analysis::PipelineOptions serialOpts;
  serialOpts.threads = 1;
  analysis::PipelineOptions parallelOpts;
  parallelOpts.threads = threads;
  analysis::PipelineOptions virtualOpts;
  virtualOpts.threads = threads;
  virtualOpts.virtualTime = true;

  // Warmup: one discarded serial run so the first measured leg doesn't
  // absorb the cold-cache cost (measurement-order bias fix).
  {
    const auto warm = analysis::Pipeline::analyze(capture.packets(), sessions,
                                                  schedule, serialOpts);
    g_sink = g_sink + warm.taxonomy.profiles.size();
  }

  analysis::PipelineResult serialResult;
  analysis::PipelineResult parallelResult;
  double pipelineSerial = 0;
  double pipelineParallel = 0;
  auto runSerial = [&] {
    const auto t0 = Clock::now();
    serialResult = analysis::Pipeline::analyze(capture.packets(), sessions,
                                               schedule, serialOpts);
    pipelineSerial = secondsSince(t0);
  };
  auto runParallel = [&] {
    const auto t0 = Clock::now();
    parallelResult = analysis::Pipeline::analyze(
        capture.packets(), sessions, schedule, parallelOpts, &registry);
    pipelineParallel = secondsSince(t0);
  };
  if (parallelFirst) {
    runParallel();
    runSerial();
  } else {
    runSerial();
    runParallel();
  }
  const double pipelineWallSpeedup =
      pipelineParallel > 0 ? pipelineSerial / pipelineParallel : 0;
  std::cout << "pipeline: serial " << pipelineSerial << "s, " << threads
            << " threads " << pipelineParallel << "s -> "
            << pipelineWallSpeedup << "x wall\n";

  // --- virtual-time leg: replay the schedule on virtual worker clocks ---
  obs::Registry virtualRegistry;
  const auto v0 = Clock::now();
  const auto virtualResult = analysis::Pipeline::analyze(
      capture.packets(), sessions, schedule, virtualOpts, &virtualRegistry);
  const double wallVirtual = secondsSince(v0);
  const double busyTotal =
      virtualRegistry.value("analysis.worker.busy_seconds").value_or(0.0);
  const double makespanTotal =
      virtualRegistry.value("analysis.sched.makespan_seconds").value_or(0.0);
  // Everything not dispatched (index build inside analyze(), heavy
  // hitters, serial folds) ran on the wall clock; the dispatched stages
  // contribute their modeled makespan instead of their serial busy time.
  const double sequentialResidue = std::max(wallVirtual - busyTotal, 0.0);
  const double modeledParallel = sequentialResidue + makespanTotal;
  const double pipelineSpeedup =
      modeledParallel > 0 ? pipelineSerial / modeledParallel : 0;
  std::cout << "pipeline modeled @" << threads << " workers: residue "
            << sequentialResidue << "s + makespan " << makespanTotal
            << "s = " << modeledParallel << "s -> " << pipelineSpeedup
            << "x modeled\n";

  const double schedSteals =
      registry.value("analysis.sched.steals_total").value_or(0.0);
  const double schedSplits =
      registry.value("analysis.sched.splits_total").value_or(0.0);
  std::cout << "scheduler: " << schedSteals << " steals, " << schedSplits
            << " splits (parallel leg)\n";

  // --- legacy entry points: what callers paid before the shared index,
  // each stage rebuilding its own view of the capture (findHeavyHitters
  // even re-sessionizes the full packet vector) ---
  const auto l0 = Clock::now();
  const auto legacyTaxonomy =
      analysis::classifyCapture(capture.packets(), sessions, schedule);
  const auto legacyHitters =
      analysis::findHeavyHitters(capture.packets(), 10.0);
  const auto legacyImpact = analysis::heavyHitterImpact(
      capture.packets(), sessions, legacyHitters);
  const auto legacyFingerprint =
      analysis::fingerprintSessions(capture.packets(), sessions);
  const double legacySeconds = secondsSince(l0);
  const double indexReuseSpeedup =
      pipelineParallel > 0 ? legacySeconds / pipelineParallel : 0;
  g_sink = g_sink + legacyTaxonomy.profiles.size() + legacyHitters.size() +
           legacyImpact.sessions + legacyFingerprint.clusterCount;
  std::cout << "legacy entry points: " << legacySeconds << "s -> "
            << indexReuseSpeedup << "x vs shared-index pipeline\n";

  // Determinism gate: the OS-thread parallel run AND the virtual-time
  // replay must both reproduce the serial report bit for bit (and both
  // taxonomy legs must agree with the pipeline's).
  const bool digestMatch =
      serialResult.digest() == parallelResult.digest() &&
      serialResult.digest() == virtualResult.digest() &&
      serialTaxonomy.profiles.size() == parallelTaxonomy.profiles.size() &&
      serialResult.taxonomy.profiles.size() == serialTaxonomy.profiles.size();
  std::cout << "digest: serial " << serialResult.digest() << ", parallel "
            << parallelResult.digest() << ", virtual "
            << virtualResult.digest()
            << (digestMatch ? " (match)" : " (MISMATCH)") << "\n";

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const double peakRssBytes =
      static_cast<double>(usage.ru_maxrss) * 1024.0; // Linux: KiB

  auto gauge = [&](const char* name, double v) {
    registry.gauge(std::string{"bench.analysis_speedup."} + name).set(v);
  };
  gauge("threads", threads);
  const unsigned hw = std::thread::hardware_concurrency();
  gauge("cores_available", static_cast<double>(hw == 0 ? 1u : hw));
  gauge("packets", static_cast<double>(capture.packetCount()));
  gauge("sessions", static_cast<double>(sessions.size()));
  gauge("sources", static_cast<double>(index.sourceCount()));
  gauge("index_seconds", indexSeconds);
  gauge("classify_serial_seconds", classifySerial);
  gauge("classify_parallel_seconds", classifyParallel);
  gauge("classify_speedup", classifySpeedup);
  gauge("classify_sources_per_sec", sourcesPerSec);
  gauge("pipeline_serial_seconds", pipelineSerial);
  gauge("pipeline_parallel_seconds", pipelineParallel);
  gauge("pipeline_wall_speedup", pipelineWallSpeedup);
  gauge("pipeline_modeled_parallel_seconds", modeledParallel);
  gauge("pipeline_speedup", pipelineSpeedup);
  gauge("sequential_residue_seconds", sequentialResidue);
  gauge("sched_steals", schedSteals);
  gauge("sched_splits", schedSplits);
  gauge("bench_order", parallelFirst ? 1.0 : 0.0);
  gauge("legacy_seconds", legacySeconds);
  gauge("index_reuse_speedup", indexReuseSpeedup);
  gauge("digest_match", digestMatch ? 1.0 : 0.0);
  gauge("peak_rss_bytes", peakRssBytes);

  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  registry.writeJsonLine(out, {{"bench", "analysis_speedup"}});
  std::cout << "wrote " << outPath << "\n";
  return digestMatch ? 0 : 1;
}
