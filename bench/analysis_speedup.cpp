// bench/analysis_speedup — the tracked perf baseline for the parallel
// analysis pipeline: shared-index build cost, taxonomy classification
// throughput serial vs. parallel, and the end-to-end pipeline (taxonomy +
// heavy hitters + fingerprint) wall-clock at both thread counts. The
// parallel results must be bitwise-identical to the serial reference
// (DESIGN.md §12); the bench enforces that with the PipelineResult digest
// and fails hard on a mismatch.
//
// Workload: the calibrated experiment's T1 capture over the whole
// measurement period (V6T_SEED / V6T_SOURCE_SCALE / V6T_VOLUME_SCALE
// scale it; CI uses a small fraction). Worker count for the parallel legs
// comes from V6T_ANALYSIS_THREADS (default: all cores).
//
// Output: one JSONL metrics snapshot written to
// BENCH_analysis_speedup.json (override with V6T_BENCH_OUT or argv[1]).
//
//   bench.analysis_speedup.index_seconds            best-of-3 index build
//   bench.analysis_speedup.classify_serial_seconds  threads=1 taxonomy
//   bench.analysis_speedup.classify_parallel_seconds
//   bench.analysis_speedup.classify_speedup         serial / parallel
//   bench.analysis_speedup.classify_sources_per_sec parallel throughput
//   bench.analysis_speedup.pipeline_serial_seconds  full stage set
//   bench.analysis_speedup.pipeline_parallel_seconds
//   bench.analysis_speedup.pipeline_speedup
//   bench.analysis_speedup.legacy_seconds           pre-index entry points
//   bench.analysis_speedup.index_reuse_speedup      legacy / parallel
//   bench.analysis_speedup.digest_match             1 = bitwise-identical
//
// The snapshot also carries the pipeline's own analysis.* metrics
// (stage spans, worker counters, and the index hit counters
// analysis.index.rescans_avoided_total / target_spans_served_total) from
// the parallel leg, so the re-scan reduction is visible in the artifact.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/capture_index.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

volatile std::uint64_t g_sink = 0;

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;
  std::string outPath = "BENCH_analysis_speedup.json";
  if (const char* s = std::getenv("V6T_BENCH_OUT")) outPath = s;
  if (argc > 1) outPath = argv[1];

  bench::RunContext ctx =
      bench::runStandard("analysis_speedup: parallel pipeline vs serial");
  const unsigned threads = bench::analysisThreads();

  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto& sessions = ctx.summary.telescope(core::T1).sessions128;
  std::cout << "workload: T1 whole period, " << capture.packetCount()
            << " packets, " << sessions.size() << " sessions, threads="
            << threads << "\n";

  // --- shared index build (best of 3; one pass over the session lists) ---
  double indexSeconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const analysis::CaptureIndex index{capture.packets(), sessions};
    indexSeconds = std::min(indexSeconds, secondsSince(t0));
    g_sink = g_sink + index.sourceCount();
  }
  std::cout << "index build: " << indexSeconds << "s ("
            << sessions.size() << " sessions)\n";

  const analysis::CaptureIndex index{capture.packets(), sessions};
  const auto* schedule = &ctx.experiment->schedule();

  // --- classify stage, serial reference vs parallel ---
  const auto c0 = Clock::now();
  const auto serialTaxonomy = analysis::classifyIndexed(index, schedule, 1);
  const double classifySerial = secondsSince(c0);
  const auto c1 = Clock::now();
  const auto parallelTaxonomy =
      analysis::classifyIndexed(index, schedule, threads);
  const double classifyParallel = secondsSince(c1);
  const double classifySpeedup =
      classifyParallel > 0 ? classifySerial / classifyParallel : 0;
  const double sourcesPerSec =
      classifyParallel > 0
          ? static_cast<double>(index.sourceCount()) / classifyParallel
          : 0;
  std::cout << "classify: serial " << classifySerial << "s, " << threads
            << " threads " << classifyParallel << "s -> " << classifySpeedup
            << "x (" << sourcesPerSec << " sources/s)\n";

  // --- end-to-end pipeline (taxonomy + heavy hitters + fingerprint) ---
  obs::Registry registry;
  analysis::PipelineOptions serialOpts;
  serialOpts.threads = 1;
  analysis::PipelineOptions parallelOpts;
  parallelOpts.threads = threads;

  const auto p0 = Clock::now();
  const auto serialResult = analysis::Pipeline::analyze(
      capture.packets(), sessions, schedule, serialOpts);
  const double pipelineSerial = secondsSince(p0);
  const auto p1 = Clock::now();
  const auto parallelResult = analysis::Pipeline::analyze(
      capture.packets(), sessions, schedule, parallelOpts, &registry);
  const double pipelineParallel = secondsSince(p1);
  const double pipelineSpeedup =
      pipelineParallel > 0 ? pipelineSerial / pipelineParallel : 0;
  std::cout << "pipeline: serial " << pipelineSerial << "s, " << threads
            << " threads " << pipelineParallel << "s -> " << pipelineSpeedup
            << "x\n";

  // --- legacy entry points: what callers paid before the shared index,
  // each stage rebuilding its own view of the capture (findHeavyHitters
  // even re-sessionizes the full packet vector) ---
  const auto l0 = Clock::now();
  const auto legacyTaxonomy =
      analysis::classifyCapture(capture.packets(), sessions, schedule);
  const auto legacyHitters =
      analysis::findHeavyHitters(capture.packets(), 10.0);
  const auto legacyImpact = analysis::heavyHitterImpact(
      capture.packets(), sessions, legacyHitters);
  const auto legacyFingerprint =
      analysis::fingerprintSessions(capture.packets(), sessions);
  const double legacySeconds = secondsSince(l0);
  const double indexReuseSpeedup =
      pipelineParallel > 0 ? legacySeconds / pipelineParallel : 0;
  g_sink = g_sink + legacyTaxonomy.profiles.size() + legacyHitters.size() +
           legacyImpact.sessions + legacyFingerprint.clusterCount;
  std::cout << "legacy entry points: " << legacySeconds << "s -> "
            << indexReuseSpeedup << "x vs shared-index pipeline\n";

  // Determinism gate: the parallel run must reproduce the serial report
  // bit for bit (and both taxonomy legs must agree with the pipeline's).
  const bool digestMatch =
      serialResult.digest() == parallelResult.digest() &&
      serialTaxonomy.profiles.size() == parallelTaxonomy.profiles.size() &&
      serialResult.taxonomy.profiles.size() == serialTaxonomy.profiles.size();
  std::cout << "digest: serial " << serialResult.digest() << ", parallel "
            << parallelResult.digest()
            << (digestMatch ? " (match)" : " (MISMATCH)") << "\n";

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const double peakRssBytes =
      static_cast<double>(usage.ru_maxrss) * 1024.0; // Linux: KiB

  auto gauge = [&](const char* name, double v) {
    registry.gauge(std::string{"bench.analysis_speedup."} + name).set(v);
  };
  gauge("threads", threads);
  gauge("packets", static_cast<double>(capture.packetCount()));
  gauge("sessions", static_cast<double>(sessions.size()));
  gauge("sources", static_cast<double>(index.sourceCount()));
  gauge("index_seconds", indexSeconds);
  gauge("classify_serial_seconds", classifySerial);
  gauge("classify_parallel_seconds", classifyParallel);
  gauge("classify_speedup", classifySpeedup);
  gauge("classify_sources_per_sec", sourcesPerSec);
  gauge("pipeline_serial_seconds", pipelineSerial);
  gauge("pipeline_parallel_seconds", pipelineParallel);
  gauge("pipeline_speedup", pipelineSpeedup);
  gauge("legacy_seconds", legacySeconds);
  gauge("index_reuse_speedup", indexReuseSpeedup);
  gauge("digest_match", digestMatch ? 1.0 : 0.0);
  gauge("peak_rss_bytes", peakRssBytes);

  std::ofstream out{outPath};
  if (!out) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  registry.writeJsonLine(out, {{"bench", "analysis_speedup"}});
  std::cout << "wrote " << outPath << "\n";
  return digestMatch ? 0 : 1;
}
