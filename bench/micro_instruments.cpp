// google-benchmark microbenches for the measurement instruments themselves:
// address parsing/formatting, longest-prefix match, sessionization, the
// NIST tests, DBSCAN, and the addr6 classifier.
#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/addr_class.hpp"
#include "analysis/dbscan.hpp"
#include "analysis/nist.hpp"
#include "net/pcap.hpp"
#include "net/prefix_trie.hpp"
#include "sim/rng.hpp"
#include "telescope/session.hpp"

namespace {

using namespace v6t;

void BM_Ipv6Parse(benchmark::State& state) {
  const std::string text = "2001:db8:1234::5678:9abc";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Ipv6Address::parse(text));
  }
}
BENCHMARK(BM_Ipv6Parse);

void BM_Ipv6Format(benchmark::State& state) {
  const net::Ipv6Address a =
      net::Ipv6Address::mustParse("2001:db8:1234::5678:9abc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.toString());
  }
}
BENCHMARK(BM_Ipv6Format);

void BM_TrieLongestMatch(benchmark::State& state) {
  sim::Rng rng{1};
  net::PrefixTrie<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(net::Prefix{net::Ipv6Address{rng.next(), 0},
                            static_cast<unsigned>(16 + rng.below(49))},
                i);
  }
  net::Ipv6Address probe{rng.next(), rng.next()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longestMatch(probe));
    probe = probe.plus(0x10000000000ULL);
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_Sessionize(benchmark::State& state) {
  sim::Rng rng{2};
  std::vector<net::Packet> packets;
  sim::SimTime t = sim::kEpoch;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    t += sim::millis(static_cast<std::int64_t>(rng.exponential(30000.0)));
    net::Packet p;
    p.ts = t;
    p.src = net::Ipv6Address{0x2400ULL << 48, rng.below(64)};
    p.dst = net::Ipv6Address{0x3fffULL << 48, rng.next()};
    packets.push_back(std::move(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        telescope::sessionize(packets, telescope::SourceAgg::Addr128));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sessionize)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NistSuite(benchmark::State& state) {
  sim::Rng rng{3};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::runAllNistTests(bits));
  }
}
BENCHMARK(BM_NistSuite)->Arg(6400)->Arg(64000);

void BM_Dbscan(benchmark::State& state) {
  sim::Rng rng{4};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform() * 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::dbscan(n, 0.5, 3, [&](std::size_t a, std::size_t b) {
          return std::abs(xs[a] - xs[b]);
        }));
  }
}
BENCHMARK(BM_Dbscan)->Arg(256)->Arg(1024);

void BM_AddrClassify(benchmark::State& state) {
  sim::Rng rng{5};
  std::vector<net::Ipv6Address> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.emplace_back(rng.next(), rng.chance(0.5) ? rng.next()
                                                   : rng.below(65536));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classifyAll(addrs));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AddrClassify);

void BM_CaptureSerialize(benchmark::State& state) {
  sim::Rng rng{6};
  std::vector<net::Packet> packets;
  for (int i = 0; i < 4096; ++i) {
    net::Packet p;
    p.ts = sim::SimTime{i};
    p.src = net::Ipv6Address{rng.next(), rng.next()};
    p.dst = net::Ipv6Address{rng.next(), rng.next()};
    p.payload.assign(12, static_cast<std::uint8_t>(i));
    packets.push_back(std::move(p));
  }
  for (auto _ : state) {
    std::ostringstream out;
    net::CaptureWriter writer{out};
    for (const auto& p : packets) writer.write(p);
    benchmark::DoNotOptimize(out.str());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CaptureSerialize);

} // namespace

BENCHMARK_MAIN();
