// google-benchmark microbenches for the measurement instruments themselves:
// address parsing/formatting, longest-prefix match, sessionization, the
// NIST tests, DBSCAN, and the addr6 classifier — plus scalar-vs-columnar
// before/after pairs for every kernel DESIGN.md §16 vectorizes.
#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/addr_class.hpp"
#include "analysis/autocorr.hpp"
#include "analysis/dbscan.hpp"
#include "analysis/nist.hpp"
#include "analysis/simd.hpp"
#include "net/pcap.hpp"
#include "net/prefix_trie.hpp"
#include "sim/rng.hpp"
#include "telescope/session.hpp"

namespace {

using namespace v6t;

void BM_Ipv6Parse(benchmark::State& state) {
  const std::string text = "2001:db8:1234::5678:9abc";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Ipv6Address::parse(text));
  }
}
BENCHMARK(BM_Ipv6Parse);

void BM_Ipv6Format(benchmark::State& state) {
  const net::Ipv6Address a =
      net::Ipv6Address::mustParse("2001:db8:1234::5678:9abc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.toString());
  }
}
BENCHMARK(BM_Ipv6Format);

void BM_TrieLongestMatch(benchmark::State& state) {
  sim::Rng rng{1};
  net::PrefixTrie<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(net::Prefix{net::Ipv6Address{rng.next(), 0},
                            static_cast<unsigned>(16 + rng.below(49))},
                i);
  }
  net::Ipv6Address probe{rng.next(), rng.next()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longestMatch(probe));
    probe = probe.plus(0x10000000000ULL);
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_Sessionize(benchmark::State& state) {
  sim::Rng rng{2};
  std::vector<net::Packet> packets;
  sim::SimTime t = sim::kEpoch;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    t += sim::millis(static_cast<std::int64_t>(rng.exponential(30000.0)));
    net::Packet p;
    p.ts = t;
    p.src = net::Ipv6Address{0x2400ULL << 48, rng.below(64)};
    p.dst = net::Ipv6Address{0x3fffULL << 48, rng.next()};
    packets.push_back(std::move(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        telescope::sessionize(packets, telescope::SourceAgg::Addr128));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sessionize)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NistSuite(benchmark::State& state) {
  sim::Rng rng{3};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::runAllNistTests(bits));
  }
}
BENCHMARK(BM_NistSuite)->Arg(6400)->Arg(64000);

// --- §16 kernel pairs: the scalar reference vs the word/vector path -----

void BM_NistFrequencyScalar(benchmark::State& state) {
  sim::Rng rng{7};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::frequencyTest(bits));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NistFrequencyScalar)->Arg(6400)->Arg(64000);

void BM_NistFrequencyPacked(benchmark::State& state) {
  sim::Rng rng{7};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const std::vector<std::uint64_t> words = analysis::packBits(bits);
  const analysis::PackedBits packed{words, bits.size()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::frequencyTestPacked(packed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NistFrequencyPacked)->Arg(6400)->Arg(64000);

void BM_NistRunsScalar(benchmark::State& state) {
  sim::Rng rng{8};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::runsTest(bits));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NistRunsScalar)->Arg(6400)->Arg(64000);

void BM_NistRunsPacked(benchmark::State& state) {
  sim::Rng rng{8};
  analysis::BitSequence bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const std::vector<std::uint64_t> words = analysis::packBits(bits);
  const analysis::PackedBits packed{words, bits.size()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::runsTestPacked(packed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NistRunsPacked)->Arg(6400)->Arg(64000);

std::vector<net::Ipv6Address> classifierAddrs(std::size_t n) {
  sim::Rng rng{5};
  std::vector<net::Ipv6Address> addrs;
  addrs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    addrs.emplace_back(rng.next(), rng.chance(0.5) ? rng.next()
                                                   : rng.below(65536));
  }
  return addrs;
}

void BM_AddrClassifyScalarRows(benchmark::State& state) {
  const auto addrs = classifierAddrs(8192);
  analysis::ScopedSimdKernels off{false}; // force the per-row reference
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classifyAll(addrs));
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_AddrClassifyScalarRows);

void BM_AddrClassifyWordLanes(benchmark::State& state) {
  const auto addrs = classifierAddrs(8192);
  std::vector<std::uint64_t> hi(addrs.size());
  std::vector<std::uint64_t> lo(addrs.size());
  net::gatherLanes(addrs, hi, lo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classifyLanes(lo));
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_AddrClassifyWordLanes);

void BM_AutocorrScalar(benchmark::State& state) {
  sim::Rng rng{9};
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& x : xs) x = rng.uniform();
  analysis::ScopedSimdKernels off{false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::autocorrelation(xs, xs.size() / 4));
  }
}
BENCHMARK(BM_AutocorrScalar)->Arg(1024)->Arg(8192);

void BM_AutocorrSimd(benchmark::State& state) {
  sim::Rng rng{9};
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& x : xs) x = rng.uniform();
  analysis::ScopedSimdKernels on{true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::autocorrelation(xs, xs.size() / 4));
  }
}
BENCHMARK(BM_AutocorrSimd)->Arg(1024)->Arg(8192);

void BM_Dbscan(benchmark::State& state) {
  sim::Rng rng{4};
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform() * 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::dbscan(n, 0.5, 3, [&](std::size_t a, std::size_t b) {
          return std::abs(xs[a] - xs[b]);
        }));
  }
}
BENCHMARK(BM_Dbscan)->Arg(256)->Arg(1024);

void BM_AddrClassify(benchmark::State& state) {
  sim::Rng rng{5};
  std::vector<net::Ipv6Address> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.emplace_back(rng.next(), rng.chance(0.5) ? rng.next()
                                                   : rng.below(65536));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classifyAll(addrs));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AddrClassify);

void BM_CaptureSerialize(benchmark::State& state) {
  sim::Rng rng{6};
  std::vector<net::Packet> packets;
  for (int i = 0; i < 4096; ++i) {
    net::Packet p;
    p.ts = sim::SimTime{i};
    p.src = net::Ipv6Address{rng.next(), rng.next()};
    p.dst = net::Ipv6Address{rng.next(), rng.next()};
    p.payload.assign(12, static_cast<std::uint8_t>(i));
    packets.push_back(std::move(p));
  }
  for (auto _ : state) {
    std::ostringstream out;
    net::CaptureWriter writer{out};
    for (const auto& p : packets) writer.write(p);
    benchmark::DoNotOptimize(out.str());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CaptureSerialize);

} // namespace

BENCHMARK_MAIN();
