// Fig. 14 — packets per temporal scanner class across the /48 subnets of
// T1's /32, ranked from most- to least-probed: one-off scanners focus on
// few subnets, intermittent scanners cover the range more evenly.
#include <unordered_map>

#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 14: packets per scanner type across /48 subnets of T1");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  analysis::Pipeline pipeline{capture.packets(), sessions};
  analysis::PipelineOptions opts;
  opts.threads = bench::analysisThreads();
  opts.heavyHitters = false;
  opts.fingerprint = false;
  const auto taxonomy = pipeline.run(&ctx.experiment->schedule(), opts).taxonomy;

  // subnet key: the /48 index within the /32 (16 bits). The per-session
  // target lists come straight from the shared index — no second walk
  // over the packet vector.
  std::unordered_map<std::uint16_t, std::uint64_t> perClass[3];
  for (const auto& profile : taxonomy.profiles) {
    const auto cls = static_cast<std::size_t>(profile.temporal.cls);
    for (std::uint32_t si : profile.sessionIdx) {
      for (const net::Ipv6Address& dst : pipeline.index().targetsOf(si)) {
        const auto subnet =
            static_cast<std::uint16_t>((dst.hi64() >> 16) & 0xffff);
        ++perClass[cls][subnet];
      }
    }
  }

  analysis::TextTable table{
      {"class", "subnets hit", "top subnet", "top pkts", "p50 pkts",
       "total pkts"}};
  const char* names[3] = {"one-off", "intermittent", "periodic"};
  for (int cls = 0; cls < 3; ++cls) {
    std::vector<std::pair<std::uint16_t, std::uint64_t>> ranked(
        perClass[cls].begin(), perClass[cls].end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    std::uint64_t total = 0;
    for (const auto& [subnet, count] : ranked) total += count;
    char top[8] = "-";
    if (!ranked.empty()) {
      std::snprintf(top, sizeof(top), "%04x", ranked.front().first);
    }
    table.addRow({names[cls], std::to_string(ranked.size()), top,
                  ranked.empty() ? "0"
                                 : analysis::withThousands(
                                       ranked.front().second),
                  ranked.empty()
                      ? "0"
                      : std::to_string(ranked[ranked.size() / 2].second),
                  analysis::withThousands(total)});
  }
  table.render(std::cout);

  // Ranked curve, coarse: share of each class's packets in its top-k
  // subnets (concentration signature).
  std::cout << "\nconcentration (share of class packets in top-k subnets)\n";
  analysis::TextTable conc{{"class", "top-1", "top-4", "top-16"}};
  for (int cls = 0; cls < 3; ++cls) {
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto& [subnet, count] : perClass[cls]) {
      counts.push_back(count);
      total += count;
    }
    std::sort(counts.rbegin(), counts.rend());
    auto topShare = [&](std::size_t k) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < counts.size() && i < k; ++i) {
        sum += counts[i];
      }
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(sum) /
                                    static_cast<double>(total);
    };
    conc.addRow({names[cls], analysis::fixed(topShare(1), 1) + "%",
                 analysis::fixed(topShare(4), 1) + "%",
                 analysis::fixed(topShare(16), 1) + "%"});
  }
  conc.render(std::cout);
  std::cout << "paper shape: one-off scanners concentrate on few subnets; "
               "intermittent scanners spread most evenly; periodic "
               "scanners cover a wide range but selectively\n";
  return 0;
}
