// Shared infrastructure for the reproduction benches: one standard
// experiment configuration (fixed seed, scaled volume) and helpers to
// print paper-vs-measured rows. Every bench binary runs the same
// simulation so numbers are consistent across tables.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "core/summary.hpp"
#include "analysis/report.hpp"

namespace v6t::bench {

/// The standard configuration used by all table/figure benches. Scale can
/// be overridden through V6T_SOURCE_SCALE / V6T_VOLUME_SCALE / V6T_SEED
/// environment variables for calibration runs.
inline core::ExperimentConfig standardConfig() {
  core::ExperimentConfig config;
  if (const char* s = std::getenv("V6T_SEED")) config.seed = std::strtoull(s, nullptr, 10);
  if (const char* s = std::getenv("V6T_SOURCE_SCALE")) config.sourceScale = std::strtod(s, nullptr);
  if (const char* s = std::getenv("V6T_VOLUME_SCALE")) config.volumeScale = std::strtod(s, nullptr);
  return config;
}

struct RunContext {
  std::unique_ptr<core::Experiment> experiment;
  core::ExperimentSummary summary;

  [[nodiscard]] core::Period wholePeriod() const {
    return {sim::kEpoch, experiment->experimentEnd()};
  }
  [[nodiscard]] core::Period initialPeriod() const {
    return {sim::kEpoch, experiment->baselineEnd()};
  }
  [[nodiscard]] core::Period splitPeriod() const {
    return {experiment->baselineEnd(), experiment->experimentEnd()};
  }
};

/// Run the standard experiment once (tens of seconds at default scale).
inline RunContext runStandard(const char* benchName) {
  std::cout << "== " << benchName << " ==\n";
  core::ExperimentConfig config = standardConfig();
  std::cout << "running calibrated simulation (seed=" << config.seed
            << ", sourceScale=" << config.sourceScale
            << ", volumeScale=" << config.volumeScale << ") ...\n";
  RunContext ctx;
  ctx.experiment = std::make_unique<core::Experiment>(config);
  ctx.experiment->run();
  ctx.summary = core::ExperimentSummary::compute(*ctx.experiment);
  std::cout << "simulated " << sim::toString(ctx.experiment->experimentEnd())
            << ", events=" << ctx.experiment->engine().executedEvents()
            << ", agents=" << ctx.experiment->population().size() << "\n\n";
  return ctx;
}

/// "paper X / measured Y" cell helper for shape comparisons.
inline std::string paperVsMeasured(const std::string& paper,
                                   const std::string& measured) {
  return paper + " | " + measured;
}

} // namespace v6t::bench
