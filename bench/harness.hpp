// Shared infrastructure for the reproduction benches: one standard
// experiment configuration (fixed seed, scaled volume) and helpers to
// print paper-vs-measured rows. Every bench binary runs the same
// simulation so numbers are consistent across tables.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "core/summary.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/report.hpp"
#include "obs/metrics.hpp"

namespace v6t::bench {

/// The standard configuration used by all table/figure benches. Scale can
/// be overridden through V6T_SOURCE_SCALE / V6T_VOLUME_SCALE / V6T_SEED
/// environment variables for calibration runs.
inline core::ExperimentConfig standardConfig() {
  core::ExperimentConfig config;
  if (const char* s = std::getenv("V6T_SEED")) config.seed = std::strtoull(s, nullptr, 10);
  if (const char* s = std::getenv("V6T_SOURCE_SCALE")) config.sourceScale = std::strtod(s, nullptr);
  if (const char* s = std::getenv("V6T_VOLUME_SCALE")) config.volumeScale = std::strtod(s, nullptr);
  return config;
}

/// Worker count for the shared analysis pipeline. Results are
/// bitwise-identical at every value (DESIGN.md §12), so benches default
/// to every core the host offers; V6T_ANALYSIS_THREADS overrides.
inline unsigned analysisThreads() {
  if (const char* s = std::getenv("V6T_ANALYSIS_THREADS")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    return v == 0 ? 1u : static_cast<unsigned>(std::min<unsigned long>(v, 64));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// One pipeline pass over a capture window: build the shared CaptureIndex
/// once and run the requested stages over analysisThreads() workers.
inline analysis::PipelineResult analyzeWindow(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    const bgp::SplitSchedule* schedule,
    analysis::PipelineOptions opts = {}) {
  opts.threads = analysisThreads();
  return analysis::Pipeline::analyze(packets, sessions, schedule, opts);
}

struct RunContext {
  std::unique_ptr<core::Experiment> experiment;
  core::ExperimentSummary summary;

  [[nodiscard]] core::Period wholePeriod() const {
    return {sim::kEpoch, experiment->experimentEnd()};
  }
  [[nodiscard]] core::Period initialPeriod() const {
    return {sim::kEpoch, experiment->baselineEnd()};
  }
  [[nodiscard]] core::Period splitPeriod() const {
    return {experiment->baselineEnd(), experiment->experimentEnd()};
  }
};

/// Run the standard experiment once (tens of seconds at default scale).
inline RunContext runStandard(const char* benchName) {
  std::cout << "== " << benchName << " ==\n";
  core::ExperimentConfig config = standardConfig();
  std::cout << "running calibrated simulation (seed=" << config.seed
            << ", sourceScale=" << config.sourceScale
            << ", volumeScale=" << config.volumeScale << ") ...\n";
  RunContext ctx;
  ctx.experiment = std::make_unique<core::Experiment>(config);
  // Bench wall-clock flows through the metrics registry (`bench.*`), the
  // same channel `--metrics-out` exports, so calibration scripts can read
  // timings from the snapshot instead of scraping stdout.
  obs::Span runSpan(ctx.experiment->metrics(), "bench.run_seconds");
  ctx.experiment->run();
  const double runSeconds = runSpan.stop();
  obs::Span analyzeSpan(ctx.experiment->metrics(), "bench.analyze_seconds");
  ctx.summary = core::ExperimentSummary::compute(*ctx.experiment);
  const double analyzeSeconds = analyzeSpan.stop();
  std::cout << "simulated " << sim::toString(ctx.experiment->experimentEnd())
            << ", events=" << ctx.experiment->engine().executedEvents()
            << ", agents=" << ctx.experiment->population().size()
            << " (run " << runSeconds << "s, analyze " << analyzeSeconds
            << "s)\n\n";
  return ctx;
}

/// Run the standard experiment through the sharded ExperimentRunner with
/// `threads` worker shards (V6T_THREADS overrides) and report per-shard
/// wall time plus the speedup over the aggregated shard work — the
/// merged result is bitwise-identical for every thread count, so benches
/// are free to pick whatever parallelism the host offers.
struct ShardedRunContext {
  std::unique_ptr<core::ExperimentRunner> runner;
  core::ExperimentSummary summary;
};

inline ShardedRunContext runSharded(const char* benchName, unsigned threads) {
  if (const char* s = std::getenv("V6T_THREADS")) {
    threads = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  }
  if (threads == 0) threads = 1;
  std::cout << "== " << benchName << " ==\n";
  core::RunnerConfig config;
  config.experiment = standardConfig();
  config.experiment.threads = threads;
  std::cout << "running sharded simulation (seed=" << config.experiment.seed
            << ", threads=" << threads << ") ...\n";
  ShardedRunContext ctx;
  ctx.runner = std::make_unique<core::ExperimentRunner>(config);
  obs::Span runSpan(ctx.runner->metrics(), "bench.run_seconds");
  ctx.runner->run();
  runSpan.stop();
  obs::Span analyzeSpan(ctx.runner->metrics(), "bench.analyze_seconds");
  ctx.summary = core::ExperimentSummary::compute(*ctx.runner);
  analyzeSpan.stop();
  const core::RunnerStats& stats = ctx.runner->stats();
  double shardWorkSeconds = 0;
  for (const core::ShardStats& shard : stats.shards) {
    std::cout << "shard " << shard.shardId << ": scanners=" << shard.scanners
              << " events=" << shard.events << " wall=" << shard.wallSeconds
              << "s\n";
    shardWorkSeconds += shard.wallSeconds;
  }
  std::cout << "shards=" << stats.shards.size() << " run="
            << stats.runWallSeconds << "s merge=" << stats.mergeWallSeconds
            << "s speedup=" << (stats.runWallSeconds > 0
                                    ? shardWorkSeconds / stats.runWallSeconds
                                    : 0.0)
            << "x (total shard work " << shardWorkSeconds << "s)\n\n";
  return ctx;
}

/// "paper X / measured Y" cell helper for shape comparisons.
inline std::string paperVsMeasured(const std::string& paper,
                                   const std::string& measured) {
  return paper + " | " + measured;
}

} // namespace v6t::bench
