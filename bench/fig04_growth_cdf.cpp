// Fig. 4 — relative growth of packets, ASes, sources (/128 and /64), and
// sessions (/128 and /64) over the full measurement, all telescopes
// aggregated. The /128-vs-/64 divergence and the discontinuous packet
// jumps from heavy hitters are the features to reproduce.
#include <set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 4: cumulative growth of packets / ASes / sources / sessions");

  // Collect (week, id) observations across all telescopes.
  std::map<std::int64_t, std::uint64_t> packetsPerWeek;
  std::vector<std::pair<std::int64_t, net::Ipv6Address>> src128;
  std::vector<std::pair<std::int64_t, net::Ipv6Address>> src64;
  std::vector<std::pair<std::int64_t, std::uint32_t>> asns;
  std::map<std::int64_t, std::uint64_t> sessions128PerWeek;
  std::map<std::int64_t, std::uint64_t> sessions64PerWeek;

  for (std::size_t t = 0; t < 4; ++t) {
    for (const net::Packet& p :
         ctx.experiment->telescope(t).capture().packets()) {
      const std::int64_t week = p.ts.weekIndex();
      ++packetsPerWeek[week];
      src128.emplace_back(week, p.src);
      src64.emplace_back(week, p.src.maskedTo(64));
      if (!p.srcAsn.unattributed()) asns.emplace_back(week, p.srcAsn.value());
    }
    for (const auto& s : ctx.summary.telescope(t).sessions128) {
      ++sessions128PerWeek[s.start.weekIndex()];
    }
    for (const auto& s : ctx.summary.telescope(t).sessions64) {
      ++sessions64PerWeek[s.start.weekIndex()];
    }
  }
  // cumulativeDistinct expects observations in time order.
  auto byWeek = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::stable_sort(src128.begin(), src128.end(), byWeek);
  std::stable_sort(src64.begin(), src64.end(), byWeek);
  std::stable_sort(asns.begin(), asns.end(), byWeek);

  const auto packetSeries = analysis::cumulative(packetsPerWeek);
  const auto s128 = analysis::cumulativeDistinct(src128);
  const auto s64 = analysis::cumulativeDistinct(src64);
  const auto asSeries = analysis::cumulativeDistinct(asns);
  const auto sess128 = analysis::cumulative(sessions128PerWeek);
  const auto sess64 = analysis::cumulative(sessions64PerWeek);

  auto at = [](const analysis::CumulativeSeries& series, std::int64_t week) {
    double value = 0.0;
    for (const auto& [w, v] : series.points) {
      if (w > week) break;
      value = static_cast<double>(v);
    }
    const double total = static_cast<double>(series.total());
    return total == 0.0 ? 0.0 : value / total;
  };

  analysis::TextTable table{{"week", "packets", "ASes", "src /128",
                             "src /64", "sess /128", "sess /64"}};
  const std::int64_t weeks = ctx.experiment->experimentEnd().weekIndex();
  for (std::int64_t w = 0; w <= weeks; w += 2) {
    table.addRow({std::to_string(w), analysis::fixed(at(packetSeries, w), 3),
                  analysis::fixed(at(asSeries, w), 3),
                  analysis::fixed(at(s128, w), 3),
                  analysis::fixed(at(s64, w), 3),
                  analysis::fixed(at(sess128, w), 3),
                  analysis::fixed(at(sess64, w), 3)});
  }
  table.render(std::cout);
  std::cout << "totals: packets=" << packetSeries.total()
            << " ASes=" << asSeries.total() << " src128=" << s128.total()
            << " src64=" << s64.total() << " sess128=" << sess128.total()
            << " sess64=" << sess64.total() << "\n"
            << "paper shape: /128 series outgrow /64 after the split phase "
               "begins; packets jump discontinuously at heavy hitters\n";
  return 0;
}
