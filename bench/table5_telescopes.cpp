// Table 5 — comparison of the four telescopes during the initial 12-week
// observation period: (a) sources, ASes, destinations, packets; (b)
// distinct sources per transport protocol.
#include <unordered_set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Table 5: telescope comparison, initial observation period");
  const core::Period initial = ctx.initialPeriod();

  // (a) volume metrics. Paper row order & values for reference.
  analysis::TextTable a{{"", "T1", "T2", "T3", "T4", "paper (T1..T4)"}};
  core::TelescopeSummary::WindowStats stats[4];
  for (std::size_t t = 0; t < 4; ++t) {
    stats[t] = ctx.summary.windowStats(*ctx.experiment, t, initial);
  }
  auto row = [&](const std::string& label, auto getter, const char* paper) {
    std::vector<std::string> cells{label};
    for (std::size_t t = 0; t < 4; ++t) cells.push_back(getter(stats[t]));
    cells.push_back(paper);
    a.addRow(cells);
  };
  row("/128 source addr.",
      [](const auto& s) { return analysis::withThousands(s.sources128); },
      "1386 / 6611 / 7 / 253");
  row("/64 source addr.",
      [](const auto& s) { return analysis::withThousands(s.sources64); },
      "1199 / 2113 / 6 / 251");
  row("ASN", [](const auto& s) { return analysis::withThousands(s.asns); },
      "418 / 478 / 6 / 9");
  row("Destination addr.",
      [](const auto& s) { return analysis::withThousands(s.destinations); },
      "796,443 / 714,169 / 20 / 1817");
  row("Packets",
      [](const auto& s) { return analysis::withThousands(s.packets); },
      "2,161,354 / 2,464,417 / 43 / 3416");
  a.render(std::cout);

  // (b) distinct sources per protocol.
  std::cout << "\n(b) distinct /128 sources per transport protocol\n";
  analysis::TextTable b{{"Protocol", "T1 [#]", "T1 [%]", "T2 [#]", "T2 [%]",
                         "T3 [#]", "T3 [%]", "T4 [#]", "T4 [%]"}};
  std::unordered_set<net::Ipv6Address> perProto[4][3];
  std::unordered_set<net::Ipv6Address> all[4];
  for (std::size_t t = 0; t < 4; ++t) {
    for (const net::Packet& p :
         ctx.experiment->telescope(t).capture().packets()) {
      if (!initial.contains(p.ts)) continue;
      perProto[t][static_cast<std::size_t>(p.proto)].insert(p.src);
      all[t].insert(p.src);
    }
  }
  const net::Protocol order[3] = {net::Protocol::Icmpv6, net::Protocol::Tcp,
                                  net::Protocol::Udp};
  for (const net::Protocol proto : order) {
    std::vector<std::string> cells{std::string{net::toString(proto)}};
    for (std::size_t t = 0; t < 4; ++t) {
      const auto& set = perProto[t][static_cast<std::size_t>(proto)];
      cells.push_back(std::to_string(set.size()));
      cells.push_back(
          analysis::fixed(analysis::percent(set.size(), all[t].size()), 1));
    }
    b.addRow(cells);
  }
  b.render(std::cout);
  std::cout << "paper 5(b): ICMPv6 80/62/100/97%, TCP 3/80/0/2%, "
               "UDP 19/27/0/0% of each telescope's sources\n";
  return 0;
}
