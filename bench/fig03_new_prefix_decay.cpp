// Fig. 3 — number of new source /64 prefixes discovered per day at T1
// during the initial observation period: a burst after the announcement
// that decays notably within about two weeks.
#include <set>

#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 3: new source prefixes per day after the first announcement");

  const core::Period initial = ctx.initialPeriod();
  const auto& packets = ctx.experiment->telescope(core::T1).capture().packets();

  std::set<net::Ipv6Address> seen;
  std::map<std::int64_t, std::uint64_t> freshPerDay;
  for (const net::Packet& p : packets) {
    if (!initial.contains(p.ts)) continue;
    if (seen.insert(p.src.maskedTo(64)).second) {
      ++freshPerDay[p.ts.dayIndex()];
    }
  }

  std::uint64_t peak = 0;
  for (const auto& [day, count] : freshPerDay) peak = std::max(peak, count);

  analysis::TextTable table{{"day", "new /64 source prefixes", ""}};
  std::uint64_t firstTwoWeeks = 0;
  std::uint64_t rest = 0;
  const std::int64_t days = initial.to.dayIndex();
  for (std::int64_t day = 0; day < days; ++day) {
    const auto it = freshPerDay.find(day);
    const std::uint64_t count = it == freshPerDay.end() ? 0 : it->second;
    (day < 14 ? firstTwoWeeks : rest) += count;
    table.addRow({std::to_string(day), std::to_string(count),
                  analysis::bar(static_cast<double>(count),
                                static_cast<double>(peak), 40)});
  }
  table.render(std::cout);
  const double dailyEarly = static_cast<double>(firstTwoWeeks) / 14.0;
  const double dailyLate =
      static_cast<double>(rest) / static_cast<double>(days - 14);
  std::cout << "first two weeks: " << firstTwoWeeks << " new prefixes ("
            << analysis::fixed(dailyEarly, 1) << "/day), remainder: " << rest
            << " (" << analysis::fixed(dailyLate, 1) << "/day)\n"
            << "paper: discovery rate drops notably after ~2 weeks, which "
               "fixed the announcement-cycle length\n";
  return 0;
}
