// Ablation — source aggregation level (§3.3 / Fig. 4). The paper analyzes
// /128 and /64 because they diverge; /48 would start merging unrelated
// scanners (especially in hosting networks). This bench quantifies all
// three on the same capture.
#include <unordered_map>
#include <unordered_set>

#include "analysis/report.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Ablation: source aggregation level");

  for (std::size_t t = 0; t < 4; ++t) {
    const auto& capture = ctx.experiment->telescope(t).capture();
    if (capture.packetCount() == 0) continue;
    analysis::TextTable table{{"aggregation", "sources", "sessions",
                               "max sources merged into one key"}};
    for (const auto agg : {telescope::SourceAgg::Addr128,
                           telescope::SourceAgg::Net64,
                           telescope::SourceAgg::Net48}) {
      std::unordered_set<net::Ipv6Address> keys;
      std::unordered_map<net::Ipv6Address,
                         std::unordered_set<net::Ipv6Address>>
          merged;
      for (const net::Packet& p : capture.packets()) {
        const auto key = p.src.maskedTo(telescope::bits(agg));
        keys.insert(key);
        merged[key].insert(p.src);
      }
      std::size_t worst = 0;
      for (const auto& [key, set] : merged) {
        worst = std::max(worst, set.size());
      }
      const auto sessions = telescope::sessionize(capture.packets(), agg);
      table.addRow({"/" + std::to_string(telescope::bits(agg)),
                    analysis::withThousands(keys.size()),
                    analysis::withThousands(sessions.size()),
                    std::to_string(worst)});
    }
    std::cout << ctx.experiment->telescope(t).name() << ":\n";
    table.render(std::cout);
  }
  std::cout << "expected shape: T2 shows the strongest /128-vs-/64 "
               "divergence (source rotators); /48 merges scanner farms "
               "into single keys\n";
  return 0;
}
