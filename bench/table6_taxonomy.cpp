// Table 6 — classification of T1 scanners during the split period:
// temporal behavior and network selection, scanners and sessions.
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Table 6: taxonomy of T1 scanners during the split period");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  analysis::PipelineOptions opts;
  opts.heavyHitters = false;
  opts.fingerprint = false;
  const auto taxonomy =
      bench::analyzeWindow(capture.packets(), sessions,
                           &ctx.experiment->schedule(), opts)
          .taxonomy;

  const auto scanners = taxonomy.profiles.size();
  std::uint64_t totalSessions = sessions.size();

  analysis::TextTable table{{"Classification", "Scanners", "[%]", "Sessions",
                             "[%]", "paper scn% / sess%"}};
  table.addRow({"Temporal behavior", "", "", "", "", ""});
  auto temporalRow = [&](analysis::TemporalClass cls, const char* paper) {
    table.addRow({"  " + std::string{analysis::toString(cls)},
                  analysis::withThousands(taxonomy.scannersOf(cls)),
                  analysis::fixed(
                      analysis::percent(taxonomy.scannersOf(cls), scanners), 2),
                  analysis::withThousands(taxonomy.sessionsOf(cls)),
                  analysis::fixed(analysis::percent(taxonomy.sessionsOf(cls),
                                                    totalSessions),
                                  2),
                  paper});
  };
  temporalRow(analysis::TemporalClass::OneOff, "69.71 / 8.95");
  temporalRow(analysis::TemporalClass::Intermittent, "15.49 / 18.28");
  temporalRow(analysis::TemporalClass::Periodic, "14.80 / 72.78");

  table.addSeparator();
  table.addRow({"Network selection", "", "", "", "", ""});
  auto networkRow = [&](analysis::NetworkSelection sel, const char* paper) {
    table.addRow({"  " + std::string{analysis::toString(sel)},
                  analysis::withThousands(taxonomy.scannersOf(sel)),
                  analysis::fixed(
                      analysis::percent(taxonomy.scannersOf(sel), scanners), 2),
                  analysis::withThousands(taxonomy.sessionsOf(sel)),
                  analysis::fixed(analysis::percent(taxonomy.sessionsOf(sel),
                                                    totalSessions),
                                  2),
                  paper});
  };
  networkRow(analysis::NetworkSelection::SinglePrefix, "90.50 / 19.47");
  networkRow(analysis::NetworkSelection::SizeIndependent, "8.75 / 30.85");
  networkRow(analysis::NetworkSelection::Inconsistent, "0.55 / 48.07");
  networkRow(analysis::NetworkSelection::SizeDependent, "0.20 / 1.61");

  table.render(std::cout);
  std::cout << "T1 split-period scanners: " << scanners
            << ", sessions: " << totalSessions << "\n";
  return 0;
}
