// Fig. 10 — cumulative scan sessions per most-specific target prefix at
// T1: silent subnets attract almost nothing until they become announced
// prefixes ("/48s receive 0.4% of sessions in the first two weeks, 15.7%
// in the final period — a 39x increase").
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 10: cumulative sessions per most-specific prefix at T1");

  const auto& schedule = ctx.experiment->schedule();
  const auto& packets = ctx.experiment->telescope(core::T1).capture().packets();
  const auto& sessions = ctx.summary.telescope(core::T1).sessions128;

  // Attribute each session to the most specific *ever announced* prefix
  // containing its first target, then accumulate per announcement cycle.
  const auto allPrefixes = schedule.allPrefixesEverAnnounced();
  std::map<net::Prefix, std::vector<std::uint64_t>> cumulativePerCycle;
  const std::size_t cycleCount = schedule.cycles().size();
  for (const auto& p : allPrefixes) {
    cumulativePerCycle[p] = std::vector<std::uint64_t>(cycleCount, 0);
  }
  for (const auto& s : sessions) {
    const auto* cycle = schedule.cycleAt(s.start);
    if (cycle == nullptr) continue;
    const net::Ipv6Address target = packets[s.packetIdx.front()].dst;
    const net::Prefix* best = nullptr;
    for (const auto& p : allPrefixes) {
      if (p.contains(target) &&
          (best == nullptr || p.length() > best->length())) {
        best = &p;
      }
    }
    if (best == nullptr) continue;
    for (std::size_t c = static_cast<std::size_t>(cycle->index);
         c < cycleCount; ++c) {
      ++cumulativePerCycle[*best][c];
    }
  }

  // Print the deepest chain members: /33 companion, /36, /40, /44, /48s.
  analysis::TextTable table{{"prefix", "len", "announced in cycle",
                             "sessions@c4", "sessions@c8", "sessions@final"}};
  for (const auto& p : allPrefixes) {
    int firstCycle = -1;
    for (const auto& cycle : schedule.cycles()) {
      if (std::find(cycle.announced.begin(), cycle.announced.end(), p) !=
          cycle.announced.end()) {
        firstCycle = cycle.index;
        break;
      }
    }
    const auto& series = cumulativePerCycle[p];
    table.addRow({p.toString(), std::to_string(p.length()),
                  firstCycle < 0 ? "-" : std::to_string(firstCycle),
                  std::to_string(series[std::min<std::size_t>(4, cycleCount - 1)]),
                  std::to_string(series[std::min<std::size_t>(8, cycleCount - 1)]),
                  std::to_string(series.back())});
  }
  table.render(std::cout);

  // The headline /48 ratio: session share of the (eventual) /48 prefixes
  // during the first split cycle vs the final cycle.
  auto shareIn48 = [&](const bgp::AnnouncementCycle& cycle) {
    std::uint64_t total = 0;
    std::uint64_t in48 = 0;
    for (const auto& s : sessions) {
      if (s.start < cycle.announceAt || s.start >= cycle.endsAt) continue;
      ++total;
      const net::Ipv6Address target = packets[s.packetIdx.front()].dst;
      for (const auto& p : allPrefixes) {
        if (p.length() == 48 && p.contains(target)) {
          ++in48;
          break;
        }
      }
    }
    return total == 0 ? 0.0 : analysis::percent(in48, total);
  };
  const double early = shareIn48(schedule.cycles()[1]);
  const double late = shareIn48(schedule.cycles().back());
  std::cout << "/48 sub-space share of sessions: first split cycle "
            << analysis::fixed(early, 2) << "% vs final cycle "
            << analysis::fixed(late, 2) << "%"
            << (early > 0 ? " (x" + analysis::fixed(late / early, 1) + ")"
                          : "")
            << "\npaper: 0.4% -> 15.7% (x39) — addresses only attract "
               "attention once their prefix is announced\n";
  return 0;
}
