// Fig. 17 (Appendix B) — NIST SP 800-22 results for T1 sessions with
// >= 100 packets, bits tested separately for the subnet part (32 bits
// after the /32) and the IID (last 64 bits), grouped by the scanner's
// temporal class. Scanners iterate IIDs more randomly than subnets.
#include "analysis/nist.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "analysis/taxonomy.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx = bench::runStandard(
      "Fig. 17: NIST randomness tests on IID vs subnet bits (T1)");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  analysis::PipelineOptions opts;
  opts.heavyHitters = false;
  opts.fingerprint = false;
  opts.nistBattery = true;
  opts.nistMinPackets = 100;
  const auto report = bench::analyzeWindow(
      capture.packets(), sessions, &ctx.experiment->schedule(), opts);
  const auto& taxonomy = report.taxonomy;

  // Session -> owning scanner's temporal class (every session belongs to
  // exactly one profile).
  std::vector<std::size_t> classOf(sessions.size(), 0);
  for (const auto& profile : taxonomy.profiles) {
    const auto cls = static_cast<std::size_t>(profile.temporal.cls);
    for (std::uint32_t si : profile.sessionIdx) classOf[si] = cls;
  }

  // temporal class x {iid, subnet} x {freq, runs, fft, cusum0, cusum1}
  std::uint64_t pass[3][2][5] = {};
  std::uint64_t totalTested[3] = {};

  for (const auto& sn : report.nist) {
    const std::size_t cls = classOf[sn.sessionIdx];
    ++totalTested[cls];
    const analysis::NistSummary* parts[2] = {&sn.iid, &sn.subnet};
    for (int part = 0; part < 2; ++part) {
      const analysis::NistResult results[5] = {
          parts[part]->frequency, parts[part]->runs, parts[part]->spectral,
          parts[part]->cusumForward, parts[part]->cusumBackward};
      for (int test = 0; test < 5; ++test) {
        if (results[test].pass()) ++pass[cls][part][test];
      }
    }
  }

  const char* classNames[3] = {"one-off", "intermittent", "periodic"};
  const char* testNames[5] = {"frequency", "runs", "fft", "cusum0", "cusum1"};
  for (int part = 0; part < 2; ++part) {
    std::cout << (part == 0 ? "IID bits (64..127)"
                            : "subnet bits (32..63)")
              << " — share of sessions passing (i.e. random)\n";
    analysis::TextTable table{{"class", "tested", testNames[0], testNames[1],
                               testNames[2], testNames[3], testNames[4]}};
    for (int cls = 0; cls < 3; ++cls) {
      std::vector<std::string> cells{classNames[cls],
                                     std::to_string(totalTested[cls])};
      for (int test = 0; test < 5; ++test) {
        cells.push_back(analysis::fixed(
            analysis::percent(pass[cls][part][test],
                              std::max<std::uint64_t>(totalTested[cls], 1)),
            1));
      }
      table.addRow(cells);
    }
    table.render(std::cout);
    std::cout << "\n";
  }
  std::uint64_t tested = totalTested[0] + totalTested[1] + totalTested[2];
  std::cout << "sessions with >= 100 packets: " << tested << " of "
            << sessions.size() << " ("
            << analysis::fixed(analysis::percent(tested, sessions.size()), 1)
            << "%; paper: 2.4% of sessions holding 94% of packets)\n"
            << "paper shape: IID selections pass far more often than subnet "
               "selections — scanners structure the subnet walk but "
               "randomize inside prefixes\n";
  return 0;
}
