// Table 4 — top-5 TCP and UDP destination ports, counted once per /64
// session, all telescopes, full period.
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Table 4: top-5 TCP/UDP destination ports");

  // Combine all telescopes; the paper aggregates sessions at /64 for this
  // analysis (vertical scanners rotate source IIDs per port).
  for (const net::Protocol proto : {net::Protocol::Tcp, net::Protocol::Udp}) {
    analysis::TextTable table{{"Rank", "Port", "Sessions", "[%]"}};
    // Rank across telescopes by summing session counts per port.
    std::map<std::string, std::pair<std::uint64_t, double>> merged;
    std::uint64_t sessionsWithProto = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      const auto& capture = ctx.experiment->telescope(t).capture();
      const auto& sessions = ctx.summary.telescope(t).sessions64;
      const auto ranks = analysis::topPorts(capture.packets(), sessions,
                                            proto, 100);
      for (const auto& r : ranks) {
        const std::string key =
            r.tracerouteRange ? "traceroute[33434-33523]"
                              : std::to_string(r.port);
        merged[key].first += r.sessions;
        if (r.share > 0) {
          sessionsWithProto += static_cast<std::uint64_t>(
              static_cast<double>(r.sessions) / r.share * 100.0 + 0.5);
        }
      }
    }
    // Recompute shares against the total sessions carrying this protocol.
    std::uint64_t carrying = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      const auto& capture = ctx.experiment->telescope(t).capture();
      for (const auto& s : ctx.summary.telescope(t).sessions64) {
        for (std::uint32_t idx : s.packetIdx) {
          if (capture.packets()[idx].proto == proto) {
            ++carrying;
            break;
          }
        }
      }
    }
    std::vector<std::pair<std::string, std::uint64_t>> sorted;
    for (const auto& [key, value] : merged) sorted.emplace_back(key, value.first);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::cout << (proto == net::Protocol::Tcp ? "TCP" : "UDP")
              << " (paper top-5: "
              << (proto == net::Protocol::Tcp
                      ? "80 87.2%, 443 29.4%, 21 4.7%, 8080 3.9%, 22 3.4%"
                      : "traceroute 71.4%, 53 19.7%, 161 17.4%, 500 17.3%, "
                        "123 16.9%")
              << ")\n";
    for (std::size_t i = 0; i < sorted.size() && i < 5; ++i) {
      table.addRow({"#" + std::to_string(i + 1), sorted[i].first,
                    analysis::withThousands(sorted[i].second),
                    analysis::fixed(
                        analysis::percent(sorted[i].second, carrying), 1)});
    }
    table.render(std::cout);
    std::cout << "distinct ports/buckets hit: " << merged.size() << "\n\n";
  }
  return 0;
}
