// Fig. 16 — source overlap across telescopes over the whole measurement:
// (a) sources observed at every telescope; (b) the share of T1∩T2 sources
// seen at both on the same day, which declines once the BGP experiment
// pulls T1's crowd away from T2's.
#include <map>
#include <set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Fig. 16: source overlap across telescopes");

  const core::Period whole = ctx.wholePeriod();

  // (a) sources seen at all four telescopes.
  std::set<net::Ipv6Address> perTelescope[4];
  for (std::size_t t = 0; t < 4; ++t) {
    perTelescope[t] = ctx.summary.sources128(*ctx.experiment, t, whole);
  }
  std::vector<net::Ipv6Address> everywhere;
  for (const auto& src : perTelescope[0]) {
    if (perTelescope[1].contains(src) && perTelescope[2].contains(src) &&
        perTelescope[3].contains(src)) {
      everywhere.push_back(src);
    }
  }
  std::cout << "(a) /128 sources observed at all four telescopes: "
            << everywhere.size() << " (paper: 10 over the full period)\n";
  const auto& registry = ctx.experiment->population().asRegistry;
  for (const auto& src : everywhere) {
    // Find its AS annotation from any capture.
    net::Asn asn;
    for (const auto& p :
         ctx.experiment->telescope(core::T1).capture().packets()) {
      if (p.src == src) {
        asn = p.srcAsn;
        break;
      }
    }
    std::cout << "    " << src.toString() << "  ("
              << net::toString(registry.typeOf(asn)) << ")\n";
  }

  // (b) same-day overlap share between T1 and T2, initial vs split.
  auto sameDayShare = [&](core::Period period) {
    std::map<net::Ipv6Address, std::set<std::int64_t>> daysAt[2];
    for (std::size_t t = 0; t < 2; ++t) {
      for (const net::Packet& p :
           ctx.experiment->telescope(t).capture().packets()) {
        if (period.contains(p.ts)) daysAt[t][p.src].insert(p.ts.dayIndex());
      }
    }
    std::uint64_t shared = 0;
    std::uint64_t sameDay = 0;
    for (const auto& [src, days1] : daysAt[0]) {
      const auto it = daysAt[1].find(src);
      if (it == daysAt[1].end()) continue;
      ++shared;
      for (std::int64_t d : days1) {
        if (it->second.contains(d)) {
          ++sameDay;
          break;
        }
      }
    }
    return std::pair{shared, sameDay};
  };
  const auto [sharedInitial, sameDayInitial] =
      sameDayShare(ctx.initialPeriod());
  const auto [sharedSplit, sameDaySplit] = sameDayShare(ctx.splitPeriod());
  std::cout << "\n(b) T1 and T2 source overlap\n"
            << "    initial: " << sharedInitial << " shared sources, "
            << analysis::fixed(
                   analysis::percent(sameDayInitial,
                                     std::max<std::uint64_t>(sharedInitial, 1)),
                   1)
            << "% seen on the same day\n"
            << "    split:   " << sharedSplit << " shared sources, "
            << analysis::fixed(
                   analysis::percent(sameDaySplit,
                                     std::max<std::uint64_t>(sharedSplit, 1)),
                   1)
            << "% seen on the same day\n"
            << "paper: ~75% same-day during the initial period, declining "
               "toward ~30% as the active experiment attracts scanners to "
               "T1 only\n";
  return 0;
}
