// §7.1 headline numbers — the BGP-reactivity results that motivate the
// paper's title: packets into the iteratively split /33 vs the stable
// companion /33 (+286%), the /48 session growth, live BGP monitors
// (< 30 min), and the hitlist non-effect.
#include <set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Headline: scanner adaption to BGP signals");

  const auto& config = ctx.experiment->config();
  const auto& schedule = ctx.experiment->schedule();
  const core::Period split = ctx.splitPeriod();
  const auto& packets = ctx.experiment->telescope(core::T1).capture().packets();

  // 1. Split /33 vs companion /33 packet counts during the split period.
  const auto [companion, splitSide] = config.t1Base.split();
  std::uint64_t companionPackets = 0;
  std::uint64_t splitPackets = 0;
  for (const net::Packet& p : packets) {
    if (!split.contains(p.ts)) continue;
    if (companion.contains(p.dst)) ++companionPackets;
    if (splitSide.contains(p.dst)) ++splitPackets;
  }
  const double gain =
      companionPackets == 0
          ? 0.0
          : (static_cast<double>(splitPackets) /
                 static_cast<double>(companionPackets) -
             1.0) *
                100.0;
  std::cout << "packets into the split /33 (" << splitSide.toString()
            << "): " << analysis::withThousands(splitPackets)
            << "\npackets into the stable companion /33 ("
            << companion.toString()
            << "): " << analysis::withThousands(companionPackets)
            << "\n=> split side +" << analysis::fixed(gain, 0)
            << "% (paper: +286%)\n\n";

  // 2. Live BGP monitors: sources whose first packet after an
  // announcement event arrives within 30 minutes, reliably (at at least
  // three separate announcement events).
  std::map<net::Ipv6Address, int> fastArrivals;
  for (const auto& cycle : schedule.cycles()) {
    if (cycle.index == 0) continue;
    std::set<net::Ipv6Address> seen;
    for (const net::Packet& p : packets) {
      if (p.ts < cycle.announceAt ||
          p.ts > cycle.announceAt + sim::minutes(30)) {
        continue;
      }
      if (seen.insert(p.src).second) ++fastArrivals[p.src];
    }
  }
  int liveMonitors = 0;
  for (const auto& [src, count] : fastArrivals) {
    if (count >= 3) ++liveMonitors;
  }
  std::cout << "sources reliably arriving < 30 min after announcements: "
            << liveMonitors << " (paper: 18; scaled by sourceScale="
            << ctx.experiment->config().sourceScale << ")\n\n";

  // 3. Hitlist non-effect: packet rate in the week before vs after each
  // prefix's hitlist listing (excluding listings that coincide with the
  // prefix's own announcement week).
  double before = 0;
  double after = 0;
  int samples = 0;
  for (const auto& prefix :
       ctx.experiment->hitlist().listedPrefixes(ctx.wholePeriod().to)) {
    const auto listedAt = ctx.experiment->hitlist().listedAt(prefix);
    if (!listedAt || !config.t1Base.covers(prefix)) continue;
    std::uint64_t b = 0;
    std::uint64_t a = 0;
    for (const net::Packet& p : packets) {
      if (!prefix.contains(p.dst)) continue;
      if (p.ts >= *listedAt - sim::days(4) && p.ts < *listedAt) ++b;
      if (p.ts >= *listedAt && p.ts < *listedAt + sim::days(4)) ++a;
    }
    before += static_cast<double>(b);
    after += static_cast<double>(a);
    ++samples;
  }
  std::cout << "hitlist listing effect over " << samples
            << " listed prefixes: " << analysis::fixed(before, 0)
            << " packets in the 4 days before vs " << analysis::fixed(after, 0)
            << " after listing ("
            << (before > 0
                    ? analysis::fixed((after / before - 1.0) * 100.0, 0) + "%"
                    : "n/a")
            << " change; paper: no noticeable impact)\n";
  return 0;
}
