// Table 8 — network types of scan sources at T1 (split period): scanners,
// sessions, and packets per AS category, with heavy-hitter exclusion rows.
#include <unordered_map>
#include <unordered_set>

#include "analysis/heavy_hitter.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace v6t;
  bench::RunContext ctx =
      bench::runStandard("Table 8: network types of scan sources at T1");

  const core::Period split = ctx.splitPeriod();
  const auto& capture = ctx.experiment->telescope(core::T1).capture();
  const auto& registry = ctx.experiment->population().asRegistry;
  const auto sessions =
      core::sessionsIn(ctx.summary.telescope(core::T1).sessions128, split);
  analysis::PipelineOptions hitterOpts;
  hitterOpts.taxonomy = false;
  hitterOpts.fingerprint = false;
  const auto hitters =
      bench::analyzeWindow(capture.packets(),
                           ctx.summary.telescope(core::T1).sessions128,
                           nullptr, hitterOpts)
          .heavyHitters;
  std::unordered_set<net::Ipv6Address> hitterSet;
  for (const auto& h : hitters) hitterSet.insert(h.source);

  constexpr std::size_t kTypes = 6;
  std::unordered_set<net::Ipv6Address> sources[kTypes];
  std::uint64_t sessionCount[kTypes] = {};
  std::uint64_t packetCount[kTypes] = {};
  std::uint64_t packetsNoHitters[kTypes] = {};
  std::uint64_t hittersPerType[kTypes] = {};

  auto typeOf = [&](net::Asn asn) {
    return static_cast<std::size_t>(registry.typeOf(asn));
  };
  std::uint64_t totalPackets = 0;
  for (const net::Packet& p : capture.packets()) {
    if (!split.contains(p.ts)) continue;
    const std::size_t type = typeOf(p.srcAsn);
    ++packetCount[type];
    ++totalPackets;
    sources[type].insert(p.src);
    if (!hitterSet.contains(p.src)) ++packetsNoHitters[type];
  }
  for (const auto& s : sessions) {
    const net::Packet& first = capture.packets()[s.packetIdx.front()];
    ++sessionCount[typeOf(first.srcAsn)];
  }
  for (const auto& h : hitters) ++hittersPerType[typeOf(h.asn)];

  std::uint64_t totalScanners = 0;
  for (const auto& set : sources) totalScanners += set.size();

  struct Row {
    net::NetworkType type;
    const char* paper;
  };
  const Row rows[] = {
      {net::NetworkType::Hosting, "56.0 scn / 25.7 sess / 65.1 pkt"},
      {net::NetworkType::Isp, "39.6 / 50.9 / 3.4"},
      {net::NetworkType::Education, "2.1 / 19.1 / 31.3"},
      {net::NetworkType::Business, "1.6 / 2.5 / 0.2"},
      {net::NetworkType::Government, "0.05 / 0.01 / 0.00"},
      {net::NetworkType::Unknown, "0.6 / 1.9 / 0.1"},
  };
  analysis::TextTable table{{"Network", "Scanners", "[%]", "Sessions", "[%]",
                             "Packets", "[%]", "Hitters", "paper %"}};
  for (const Row& row : rows) {
    const auto i = static_cast<std::size_t>(row.type);
    table.addRow(
        {std::string{net::toString(row.type)},
         analysis::withThousands(sources[i].size()),
         analysis::fixed(
             analysis::percent(sources[i].size(), totalScanners), 2),
         analysis::withThousands(sessionCount[i]),
         analysis::fixed(analysis::percent(sessionCount[i], sessions.size()),
                         2),
         analysis::withThousands(packetCount[i]),
         analysis::fixed(analysis::percent(packetCount[i], totalPackets), 2),
         std::to_string(hittersPerType[i]), row.paper});
    if (hittersPerType[i] > 0) {
      table.addRow({"  w/o heavy hitters", "", "", "", "",
                    analysis::withThousands(packetsNoHitters[i]),
                    analysis::fixed(
                        analysis::percent(packetsNoHitters[i], totalPackets),
                        2),
                    "", ""});
    }
  }
  table.render(std::cout);
  return 0;
}
