#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace v6t::serve {

namespace {

std::string toLower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// One header line without its terminator; CR already stripped.
struct HeaderLine {
  std::string key; // lowercased
  std::string value;
};

int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// %XX-decode (plus '+' as space in query components). False on a
/// truncated or non-hex escape.
bool percentDecode(std::string_view in, bool plusIsSpace, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hexDigit(in[i + 1]);
      const int lo = hexDigit(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (plusIsSpace && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return true;
}

} // namespace

ParseState RequestParser::poll(HttpRequest& out) {
  if (errorStatus_ != 0) return ParseState::Error;

  // Find the end of the head. Accept \r\n\r\n (the wire norm) and bare
  // \n\n (hand-typed netcat traffic).
  std::size_t headEnd = buf_.find("\r\n\r\n");
  std::size_t sepLen = 4;
  {
    const std::size_t bare = buf_.find("\n\n");
    if (bare != std::string::npos &&
        (headEnd == std::string::npos || bare + 1 < headEnd)) {
      headEnd = bare;
      sepLen = 2;
    }
  }
  if (headEnd == std::string::npos) {
    // Nothing parseable yet; a head that can no longer fit is fatal.
    if (buf_.size() > maxBytes_) return fail(431);
    return ParseState::NeedMore;
  }
  if (headEnd + sepLen > maxBytes_) return fail(431);

  const std::string_view head{buf_.data(), headEnd};

  // --- request line ------------------------------------------------------
  std::size_t lineEnd = head.find('\n');
  std::string_view requestLine =
      lineEnd == std::string_view::npos ? head : head.substr(0, lineEnd);
  if (!requestLine.empty() && requestLine.back() == '\r') {
    requestLine.remove_suffix(1);
  }
  const std::size_t sp1 = requestLine.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : requestLine.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return fail(400);
  }
  const std::string_view method = requestLine.substr(0, sp1);
  const std::string_view target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = requestLine.substr(sp2 + 1);
  if (method.empty() || target.empty()) return fail(400);
  if (version == "HTTP/1.1") {
    out.http11 = true;
  } else if (version == "HTTP/1.0") {
    out.http11 = false;
  } else if (version.starts_with("HTTP/")) {
    return fail(505);
  } else {
    return fail(400);
  }
  if (method != "GET" && method != "HEAD") return fail(405);
  if (target.front() != '/') return fail(400);

  // --- headers -----------------------------------------------------------
  out.keepAlive = out.http11; // 1.1 defaults to keep-alive, 1.0 to close
  std::string_view rest = lineEnd == std::string_view::npos
                              ? std::string_view{}
                              : head.substr(lineEnd + 1);
  while (!rest.empty()) {
    std::size_t e = rest.find('\n');
    std::string_view line =
        e == std::string_view::npos ? rest : rest.substr(0, e);
    rest = e == std::string_view::npos ? std::string_view{}
                                       : rest.substr(e + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return fail(400);
    const std::string key = toLower(trimSpace(line.substr(0, colon)));
    const std::string_view value = trimSpace(line.substr(colon + 1));
    if (key == "connection") {
      const std::string v = toLower(value);
      if (v.find("close") != std::string::npos) {
        out.keepAlive = false;
      } else if (v.find("keep-alive") != std::string::npos) {
        out.keepAlive = true;
      }
    } else if (key == "content-length") {
      // Read-only service: request bodies are not accepted.
      if (value != "0") return fail(400);
    } else if (key == "transfer-encoding") {
      return fail(400);
    }
  }

  out.method = std::string{method};
  out.target = std::string{target};
  buf_.erase(0, headEnd + sepLen);
  return ParseState::Ready;
}

std::string_view statusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string formatResponse(int status, std::string_view contentType,
                           std::string_view body, bool keepAlive,
                           bool headOnly) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += statusText(status);
  out += "\r\nContent-Type: ";
  out += contentType;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keepAlive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  if (!headOnly) out += body;
  return out;
}

std::optional<ParsedTarget> parseTarget(std::string_view target) {
  if (target.empty() || target.front() != '/') return std::nullopt;
  ParsedTarget out;
  const std::size_t q = target.find('?');
  const std::string_view rawPath =
      q == std::string_view::npos ? target : target.substr(0, q);
  if (!percentDecode(rawPath, /*plusIsSpace=*/false, out.path)) {
    return std::nullopt;
  }
  if (q == std::string_view::npos) return out;

  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      if (!percentDecode(pair, true, key)) return std::nullopt;
    } else {
      if (!percentDecode(pair.substr(0, eq), true, key)) return std::nullopt;
      if (!percentDecode(pair.substr(eq + 1), true, value)) {
        return std::nullopt;
      }
    }
    out.params.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::string canonicalQueryKey(const ParsedTarget& target) {
  if (target.params.empty()) return target.path;
  auto sorted = target.params;
  std::sort(sorted.begin(), sorted.end());
  std::string key = target.path;
  key += '?';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += '&';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

} // namespace v6t::serve
