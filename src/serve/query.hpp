// v6t::serve — the read-only query engine behind v6t_serve's endpoints.
//
// One immutable analysis::CaptureIndex is built at construction (the
// expensive part, paid once per loaded capture); every endpoint then
// answers from the index memos and the existing analysis entry points:
//
//   /reports/table6     classifyIndexed over the shared index (taxonomy
//                       scanner/session counts per axis — Table 6's rows)
//   /heavy-hitters      findHeavyHitters(index, threshold) + impact, top-k
//   /sources/<addr>     per-source aggregates + classifyTemporal
//   /reaction-delays    first capture into each newly announced child
//                       prefix vs its announceAt (needs the schedule)
//   /metrics            Prometheus text from the shared obs::Registry
//   /healthz            liveness probe
//
// Thread safety: the index is immutable after build (its only mutable
// state is relaxed atomic hit counters) and every analysis entry point is
// a pure function of it, so evaluate() may run concurrently from any
// number of server workers. Responses are deterministic — fixed field
// order, obs::fmt::fixed for floats — which is what makes the cached ==
// uncached byte-equality contract testable at all.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "analysis/pipeline.hpp"
#include "bgp/splitter.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "telescope/session.hpp"

namespace v6t::serve {

struct QueryEngineOptions {
  /// Worker fan-out for cache-miss analysis (classifyIndexed runs on the
  /// cost-aware scheduler, DESIGN.md §13; results are identical at every
  /// value).
  unsigned analysisThreads = 1;
  std::uint64_t minSplitCost = analysis::kDefaultMinSplitCost;
  /// Hard ceilings for the ?k= / ?threshold= query parameters.
  std::uint64_t maxK = 10000;
};

class QueryEngine {
public:
  /// `packets`/`sessions` must outlive the engine (the index stores
  /// views). `schedule` may be null — /reaction-delays then 404s, as for
  /// telescopes without a BGP experiment. `registry` backs /metrics and
  /// receives the serve.* instrumentation; may be null.
  QueryEngine(std::span<const net::Packet> packets,
              std::span<const telescope::Session> sessions,
              const bgp::SplitSchedule* schedule,
              QueryEngineOptions options = {},
              obs::Registry* registry = nullptr);

  struct Response {
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
  };

  /// Evaluate one origin-form target ("/path?query"). Never throws;
  /// malformed targets/parameters come back as 400/404 JSON errors.
  [[nodiscard]] Response evaluate(std::string_view target) const;

  /// False for endpoints whose body is not a pure function of the capture
  /// (/metrics changes under your feet; /healthz is too cheap to cache).
  [[nodiscard]] static bool cacheable(std::string_view path);

  /// Short metric label for a decoded path ("table6", "heavy_hitters",
  /// "sources", "reaction_delays", "metrics", "healthz", "other") — the
  /// per-endpoint request-counter suffix.
  [[nodiscard]] static std::string_view endpointLabel(std::string_view path);

  [[nodiscard]] const analysis::CaptureIndex& index() const {
    return pipeline_.index();
  }

private:
  [[nodiscard]] Response table6() const;
  [[nodiscard]] Response heavyHitters(
      const std::vector<std::pair<std::string, std::string>>& params) const;
  [[nodiscard]] Response sourceDetail(std::string_view addrText) const;
  [[nodiscard]] Response reactionDelays() const;
  [[nodiscard]] Response metricsText() const;
  [[nodiscard]] static Response errorResponse(int status,
                                              std::string_view message);

  std::span<const net::Packet> packets_;
  QueryEngineOptions options_;
  const bgp::SplitSchedule* schedule_;
  obs::Registry* registry_;
  analysis::Pipeline pipeline_; // owns the shared CaptureIndex
  /// /128 source address -> canonical source index, for /sources/<addr>.
  std::map<net::Ipv6Address, std::size_t> sourceByAddr_;
};

} // namespace v6t::serve
