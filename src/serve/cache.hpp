// v6t::serve — sharded, byte-bounded LRU result cache.
//
// Hot dashboard queries hit the same handful of canonical query strings
// over and over; re-running the taxonomy for each is O(capture) while the
// answer is a few hundred bytes. The cache maps canonical query key ->
// rendered response body, bounded by `serve.cache_bytes` (the RdbCache
// role in the search-engine exemplar): N independent shards, each a mutex
// + LRU list + hash map, so concurrent workers only contend when their
// keys hash to the same shard. Every entry is charged key + value + a
// fixed bookkeeping constant against its shard's slice of the byte
// budget; inserting evicts from the shard's cold end until the entry
// fits. Values larger than a whole shard's budget are never cached.
//
// totalBytes == 0 disables the cache entirely (the cache-off bench leg):
// get() always misses, put() is a no-op, and no hit/miss metrics move.
//
// Metrics (registered on the optional Registry at construction):
//   serve.cache.hits_total / misses_total / evictions_total  counters
//   serve.cache.bytes / serve.cache.entries                  gauges (Last)
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace v6t::serve {

class ResultCache {
public:
  struct Options {
    std::uint64_t totalBytes = 64ull << 20; // 0 = cache disabled
    unsigned shards = 8;
    obs::Registry* registry = nullptr;
  };

  explicit ResultCache(Options options);

  [[nodiscard]] bool enabled() const { return perShardBytes_ > 0; }

  /// The cached body for `key`, or nullopt (miss / disabled). A hit
  /// refreshes the entry's LRU position.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Insert (or refresh) `key` -> `body`, evicting cold entries until the
  /// shard fits its budget. Oversized bodies are silently not cached.
  void put(const std::string& key, const std::string& body);

  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::uint64_t entries() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

private:
  /// Fixed per-entry bookkeeping charge (list/map nodes, string headers).
  static constexpr std::uint64_t kEntryOverhead = 64;

  struct Entry {
    std::string key;
    std::string body;
  };

  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru; // front = hottest
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] static std::uint64_t charge(const Entry& e) {
    return e.key.size() + e.body.size() + kEntryOverhead;
  }
  [[nodiscard]] Shard& shardFor(const std::string& key);
  void publishGauges();

  std::uint64_t perShardBytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};

  obs::Counter* hitCounter_ = nullptr;
  obs::Counter* missCounter_ = nullptr;
  obs::Counter* evictCounter_ = nullptr;
  obs::Gauge* bytesGauge_ = nullptr;
  obs::Gauge* entriesGauge_ = nullptr;
};

} // namespace v6t::serve
