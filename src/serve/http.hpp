// v6t::serve — minimal HTTP/1.1 machinery for the query service.
//
// The server speaks just enough HTTP for read-only JSON endpoints:
// GET/HEAD request lines, a handful of headers (only Connection and
// Content-Length matter), keep-alive, and pipelining. The parser is
// incremental — bytes arrive in arbitrary fragments from a non-blocking
// socket and are buffered until one full request head is present — and it
// never allocates per byte: fragments append to one rolling buffer whose
// size is bounded by `maxRequestBytes` (oversized heads are a 431, the
// slow-loris-with-a-firehose case).
//
// Pipelined requests are natural: poll() consumes exactly one request's
// bytes and leaves the rest buffered, so the connection state machine just
// keeps polling until NeedMore.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace v6t::serve {

struct HttpRequest {
  std::string method; // "GET" or "HEAD" (anything else is a 405)
  std::string target; // origin-form: /path?query, as received
  bool http11 = true; // false => HTTP/1.0
  bool keepAlive = true; // after Connection header + version defaults
  [[nodiscard]] bool headOnly() const { return method == "HEAD"; }
};

enum class ParseState { NeedMore, Ready, Error };

/// Incremental request parser. feed() appends raw socket bytes; poll()
/// yields at most one parsed request per call and consumes its bytes,
/// leaving pipelined successors buffered. After Error the connection is
/// poisoned: errorStatus() says which 4xx/5xx to send before closing.
class RequestParser {
public:
  explicit RequestParser(std::size_t maxRequestBytes = 8192)
      : maxBytes_(maxRequestBytes) {}

  void feed(std::string_view bytes) { buf_.append(bytes); }

  ParseState poll(HttpRequest& out);

  /// HTTP status to answer with after ParseState::Error: 400 (malformed),
  /// 405 (method), 431 (head too large), 505 (version).
  [[nodiscard]] int errorStatus() const { return errorStatus_; }
  [[nodiscard]] std::size_t bufferedBytes() const { return buf_.size(); }

private:
  ParseState fail(int status) {
    errorStatus_ = status;
    return ParseState::Error;
  }

  std::string buf_;
  std::size_t maxBytes_;
  int errorStatus_ = 0;
};

/// Reason phrase for the status codes the service emits.
[[nodiscard]] std::string_view statusText(int status);

/// Serialize one response. HEAD requests get full headers (including the
/// true Content-Length) and no body, per RFC 9110.
[[nodiscard]] std::string formatResponse(int status,
                                         std::string_view contentType,
                                         std::string_view body,
                                         bool keepAlive, bool headOnly);

/// A request target split into its decoded path and query parameters.
struct ParsedTarget {
  std::string path; // %-decoded, always starts with '/'
  std::vector<std::pair<std::string, std::string>> params; // decoded k/v
};

/// Split "/path?a=1&b=x%20y" into path + decoded params. nullopt on a bad
/// %-escape or a target that does not start with '/' (both are 400s).
[[nodiscard]] std::optional<ParsedTarget> parseTarget(
    std::string_view target);

/// Canonical cache key: decoded path + '?' + params sorted by (key,
/// value) and re-joined — "?b=2&a=1" and "?a=1&b=2" hit the same entry.
/// A bare path (no params) is just the path.
[[nodiscard]] std::string canonicalQueryKey(const ParsedTarget& target);

} // namespace v6t::serve
