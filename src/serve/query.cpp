#include "serve/query.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>
#include <vector>

#include "analysis/heavy_hitter.hpp"
#include "analysis/taxonomy.hpp"
#include "obs/format.hpp"
#include "serve/http.hpp"

namespace v6t::serve {

namespace {

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void appendKv(std::string& out, std::string_view key, std::uint64_t v,
              bool comma = true) {
  appendJsonString(out, key);
  out += ':';
  out += std::to_string(v);
  if (comma) out += ',';
}

bool parseU64Param(const std::string& text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseDoubleParam(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

} // namespace

QueryEngine::QueryEngine(std::span<const net::Packet> packets,
                         std::span<const telescope::Session> sessions,
                         const bgp::SplitSchedule* schedule,
                         QueryEngineOptions options, obs::Registry* registry)
    : packets_(packets),
      options_(options),
      schedule_(schedule),
      registry_(registry),
      pipeline_(packets, sessions, registry) {
  const analysis::CaptureIndex& idx = pipeline_.index();
  for (std::size_t i = 0; i < idx.sourceCount(); ++i) {
    sourceByAddr_.emplace(idx.source(i).addr, i);
  }
}

bool QueryEngine::cacheable(std::string_view path) {
  return path != "/metrics" && path != "/healthz";
}

std::string_view QueryEngine::endpointLabel(std::string_view path) {
  if (path == "/reports/table6") return "table6";
  if (path == "/heavy-hitters") return "heavy_hitters";
  if (path.starts_with("/sources/")) return "sources";
  if (path == "/reaction-delays") return "reaction_delays";
  if (path == "/metrics") return "metrics";
  if (path == "/healthz") return "healthz";
  return "other";
}

QueryEngine::Response QueryEngine::errorResponse(int status,
                                                 std::string_view message) {
  Response r;
  r.status = status;
  r.body = "{\"error\":";
  appendJsonString(r.body, message);
  r.body += "}\n";
  return r;
}

QueryEngine::Response QueryEngine::evaluate(std::string_view target) const {
  const auto parsed = parseTarget(target);
  if (!parsed) return errorResponse(400, "malformed target");
  const std::string& path = parsed->path;

  if (path == "/healthz") {
    return Response{200, "application/json", "{\"status\":\"ok\"}\n"};
  }
  if (path == "/metrics") return metricsText();
  if (path == "/reports/table6") return table6();
  if (path == "/heavy-hitters") return heavyHitters(parsed->params);
  if (path == "/reaction-delays") return reactionDelays();
  if (path.starts_with("/sources/")) {
    return sourceDetail(std::string_view{path}.substr(9));
  }
  return errorResponse(404, "unknown endpoint");
}

QueryEngine::Response QueryEngine::table6() const {
  const analysis::CaptureIndex& idx = pipeline_.index();
  const analysis::TaxonomyResult taxonomy = analysis::classifyIndexed(
      idx, schedule_, options_.analysisThreads, {}, {}, {}, nullptr,
      {.minSplitCost = options_.minSplitCost});

  using analysis::NetworkSelection;
  using analysis::TemporalClass;
  auto axis = [&](std::string& out, std::string_view name, auto cls,
                  bool comma) {
    appendJsonString(out, name);
    out += ":{";
    appendKv(out, "scanners", taxonomy.scannersOf(cls));
    appendKv(out, "sessions", taxonomy.sessionsOf(cls), false);
    out += '}';
    if (comma) out += ',';
  };

  std::uint64_t addrSessions[3] = {0, 0, 0};
  for (const analysis::AddressSelection sel : taxonomy.sessionAddrSel) {
    ++addrSessions[static_cast<std::size_t>(sel)];
  }

  Response r;
  std::string& b = r.body;
  b += '{';
  appendJsonString(b, "endpoint");
  b += ":\"table6\",";
  appendKv(b, "packets", idx.sessionizedPackets());
  appendKv(b, "sources", idx.sourceCount());
  appendKv(b, "sessions", idx.sessions().size());
  appendJsonString(b, "temporal");
  b += ":{";
  axis(b, "one_off", TemporalClass::OneOff, true);
  axis(b, "intermittent", TemporalClass::Intermittent, true);
  axis(b, "periodic", TemporalClass::Periodic, false);
  b += "},";
  appendJsonString(b, "network");
  b += ":{";
  axis(b, "single_prefix", NetworkSelection::SinglePrefix, true);
  axis(b, "size_independent", NetworkSelection::SizeIndependent, true);
  axis(b, "size_dependent", NetworkSelection::SizeDependent, true);
  axis(b, "inconsistent", NetworkSelection::Inconsistent, false);
  b += "},";
  appendJsonString(b, "address_sessions");
  b += ":{";
  appendKv(b, "structured", addrSessions[0]);
  appendKv(b, "random", addrSessions[1]);
  appendKv(b, "unknown", addrSessions[2], false);
  b += "}}\n";
  return r;
}

QueryEngine::Response QueryEngine::heavyHitters(
    const std::vector<std::pair<std::string, std::string>>& params) const {
  std::uint64_t k = 10;
  double threshold = 10.0;
  for (const auto& [key, value] : params) {
    if (key == "k") {
      if (!parseU64Param(value, k) || k < 1 || k > options_.maxK) {
        return errorResponse(400, "k must be an integer in [1, max]");
      }
    } else if (key == "threshold") {
      if (!parseDoubleParam(value, threshold) || !(threshold > 0.0) ||
          threshold > 100.0) {
        return errorResponse(400, "threshold must be in (0, 100]");
      }
    } else {
      return errorResponse(400, "unknown parameter");
    }
  }

  const analysis::CaptureIndex& idx = pipeline_.index();
  const std::vector<analysis::HeavyHitter> hitters =
      analysis::findHeavyHitters(idx, threshold);
  const analysis::HeavyHitterImpact impact =
      analysis::heavyHitterImpact(idx, hitters);

  Response r;
  std::string& b = r.body;
  b += '{';
  appendJsonString(b, "endpoint");
  b += ":\"heavy_hitters\",";
  appendJsonString(b, "threshold_percent");
  b += ":\"" + obs::fmt::fixed(threshold, 2) + "\",";
  appendKv(b, "k", k);
  appendKv(b, "total", hitters.size());
  appendJsonString(b, "hitters");
  b += ":[";
  const std::size_t shown =
      std::min<std::size_t>(hitters.size(), static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < shown; ++i) {
    const analysis::HeavyHitter& h = hitters[i];
    if (i > 0) b += ',';
    b += '{';
    appendJsonString(b, "source");
    b += ':';
    appendJsonString(b, h.source.toString());
    b += ',';
    appendKv(b, "asn", h.asn.value());
    appendKv(b, "packets", h.packets);
    appendJsonString(b, "share_percent");
    b += ":\"" + obs::fmt::fixed(h.shareOfTelescope, 4) + "\",";
    appendKv(b, "sessions", h.sessions);
    appendKv(b, "first_day", static_cast<std::uint64_t>(h.firstDay));
    appendKv(b, "last_day", static_cast<std::uint64_t>(h.lastDay), false);
    b += '}';
  }
  b += "],";
  appendJsonString(b, "impact");
  b += ":{";
  appendKv(b, "packets", impact.packets);
  appendKv(b, "sessions", impact.sessions);
  appendJsonString(b, "packet_share_percent");
  b += ":\"" + obs::fmt::fixed(impact.packetShare, 4) + "\",";
  appendJsonString(b, "session_share_percent");
  b += ":\"" + obs::fmt::fixed(impact.sessionShare, 4) + "\"}}\n";
  return r;
}

QueryEngine::Response QueryEngine::sourceDetail(
    std::string_view addrText) const {
  const auto addr = net::Ipv6Address::parse(addrText);
  if (!addr) return errorResponse(400, "bad IPv6 address");
  const auto it = sourceByAddr_.find(*addr);
  if (it == sourceByAddr_.end()) {
    return errorResponse(404, "source not observed");
  }
  const std::size_t i = it->second;
  const analysis::CaptureIndex& idx = pipeline_.index();
  const analysis::CaptureIndex::SourceAggregates& agg = idx.aggregatesOf(i);
  const auto starts = idx.sessionStartsOf(i);
  const analysis::TemporalResult temporal =
      analysis::classifyTemporal(starts);

  Response r;
  std::string& b = r.body;
  b += '{';
  appendJsonString(b, "endpoint");
  b += ":\"source\",";
  appendJsonString(b, "source");
  b += ':';
  appendJsonString(b, addr->toString());
  b += ',';
  appendKv(b, "asn", agg.asn.value());
  appendKv(b, "packets", agg.packets);
  appendKv(b, "sessions", idx.sessionsOf(i).size());
  appendKv(b, "first_day", static_cast<std::uint64_t>(agg.firstDay));
  appendKv(b, "last_day", static_cast<std::uint64_t>(agg.lastDay));
  appendJsonString(b, "temporal");
  b += ":\"";
  b += analysis::toString(temporal.cls);
  b += "\",";
  appendJsonString(b, "period_ms");
  b += ':';
  b += temporal.period ? std::to_string(temporal.period->millis()) : "null";
  b += ',';
  appendJsonString(b, "session_starts_ms");
  b += ":[";
  for (std::size_t s = 0; s < starts.size(); ++s) {
    if (s > 0) b += ',';
    b += std::to_string(starts[s].millis());
  }
  b += "]}\n";
  return r;
}

QueryEngine::Response QueryEngine::reactionDelays() const {
  if (schedule_ == nullptr) {
    return errorResponse(404,
                         "no split schedule loaded (non-T1 capture?)");
  }
  Response r;
  std::string& b = r.body;
  b += '{';
  appendJsonString(b, "endpoint");
  b += ":\"reaction_delays\",";
  appendJsonString(b, "cycles");
  b += ":[";
  bool first = true;
  for (const bgp::AnnouncementCycle& cycle : schedule_->cycles()) {
    if (cycle.index == 0) continue;
    const std::array<net::Prefix, 2> children{cycle.newChildren.first,
                                              cycle.newChildren.second};
    for (const net::Prefix& child : children) {
      // First capture into the newly announced prefix during its cycle.
      // Packets are ts-ordered, so one lower_bound + bounded scan.
      auto it = std::lower_bound(
          packets_.begin(), packets_.end(), cycle.announceAt,
          [](const net::Packet& p, sim::SimTime t) { return p.ts < t; });
      std::int64_t firstMs = -1;
      for (; it != packets_.end() && it->ts < cycle.endsAt; ++it) {
        if (child.contains(it->dst)) {
          firstMs = it->ts.millis();
          break;
        }
      }
      if (!first) b += ',';
      first = false;
      b += '{';
      appendKv(b, "cycle", static_cast<std::uint64_t>(cycle.index));
      appendJsonString(b, "prefix");
      b += ':';
      appendJsonString(b, child.toString());
      b += ',';
      appendJsonString(b, "announce_ms");
      b += ':';
      b += std::to_string(cycle.announceAt.millis());
      b += ',';
      appendJsonString(b, "first_packet_ms");
      b += ':';
      b += std::to_string(firstMs);
      b += ',';
      appendJsonString(b, "delay_seconds");
      b += ':';
      if (firstMs < 0) {
        b += "null";
      } else {
        b += '"';
        b += obs::fmt::fixed(
            static_cast<double>(firstMs - cycle.announceAt.millis()) / 1000.0,
            3);
        b += '"';
      }
      b += '}';
    }
  }
  b += "]}\n";
  return r;
}

QueryEngine::Response QueryEngine::metricsText() const {
  Response r;
  r.contentType = "text/plain; version=0.0.4";
  if (registry_ != nullptr) {
    std::ostringstream out;
    registry_->writePrometheus(out);
    r.body = out.str();
  }
  return r;
}

} // namespace v6t::serve
