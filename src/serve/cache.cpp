#include "serve/cache.hpp"

#include <algorithm>
#include <functional>

namespace v6t::serve {

ResultCache::ResultCache(Options options) {
  const unsigned shardCount = std::max(1u, options.shards);
  perShardBytes_ = options.totalBytes / shardCount;
  if (options.totalBytes > 0 && perShardBytes_ == 0) perShardBytes_ = 1;
  shards_.reserve(shardCount);
  for (unsigned i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options.registry != nullptr) {
    hitCounter_ = &options.registry->counter("serve.cache.hits_total");
    missCounter_ = &options.registry->counter("serve.cache.misses_total");
    evictCounter_ = &options.registry->counter("serve.cache.evictions_total");
    bytesGauge_ = &options.registry->gauge("serve.cache.bytes");
    entriesGauge_ = &options.registry->gauge("serve.cache.entries");
  }
}

ResultCache::Shard& ResultCache::shardFor(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void ResultCache::publishGauges() {
  if (bytesGauge_ != nullptr) {
    bytesGauge_->set(static_cast<double>(
        bytes_.load(std::memory_order_relaxed)));
  }
  if (entriesGauge_ != nullptr) {
    entriesGauge_->set(static_cast<double>(
        entries_.load(std::memory_order_relaxed)));
  }
}

std::optional<std::string> ResultCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shardFor(key);
  std::optional<std::string> body;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      body = it->second->body;
    }
  }
  if (body) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hitCounter_ != nullptr) hitCounter_->inc();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (missCounter_ != nullptr) missCounter_->inc();
  }
  return body;
}

void ResultCache::put(const std::string& key, const std::string& body) {
  if (!enabled()) return;
  Entry entry{key, body};
  const std::uint64_t cost = charge(entry);
  if (cost > perShardBytes_) return; // could never fit; don't thrash
  Shard& shard = shardFor(key);
  std::uint64_t evicted = 0;
  std::int64_t bytesDelta = 0;
  std::int64_t entriesDelta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      bytesDelta -= static_cast<std::int64_t>(charge(*it->second));
      shard.bytes -= charge(*it->second);
      shard.lru.erase(it->second);
      shard.map.erase(it);
      --entriesDelta;
    }
    while (shard.bytes + cost > perShardBytes_ && !shard.lru.empty()) {
      const Entry& cold = shard.lru.back();
      shard.bytes -= charge(cold);
      bytesDelta -= static_cast<std::int64_t>(charge(cold));
      shard.map.erase(cold.key);
      shard.lru.pop_back();
      --entriesDelta;
      ++evicted;
    }
    shard.lru.push_front(std::move(entry));
    shard.map.emplace(shard.lru.front().key, shard.lru.begin());
    shard.bytes += cost;
    bytesDelta += static_cast<std::int64_t>(cost);
    ++entriesDelta;
  }
  bytes_.fetch_add(static_cast<std::uint64_t>(bytesDelta),
                   std::memory_order_relaxed);
  entries_.fetch_add(static_cast<std::uint64_t>(entriesDelta),
                     std::memory_order_relaxed);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (evictCounter_ != nullptr) evictCounter_->inc(evicted);
  }
  publishGauges();
}

std::uint64_t ResultCache::bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}
std::uint64_t ResultCache::entries() const {
  return entries_.load(std::memory_order_relaxed);
}
std::uint64_t ResultCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}
std::uint64_t ResultCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}
std::uint64_t ResultCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

} // namespace v6t::serve
