// v6t::serve — the single-process, epoll-based event-loop HTTP server.
//
// Shape (DESIGN.md §17): one acceptor thread owns the listening socket
// and pushes accepted, non-blocking connection fds into a bounded
// lock-free ring (single producer, multiple consumers — atomic head, CAS
// tail); N worker threads each own a private epoll instance plus their
// share of the connections, woken through one shared semaphore eventfd.
// A connection lives on exactly one worker for its whole life, so
// per-connection state (parser buffer, pending output) is touched by one
// thread at a time and needs no locks.
//
// Per-connection state machine: non-blocking reads feed the incremental
// RequestParser; each Ready request is answered immediately (cache
// lookup, else QueryEngine::evaluate — whose analysis fan-out runs on
// the cost-aware scheduler) and the response appended to the
// connection's output buffer; partial writes arm EPOLLOUT and resume
// when the socket drains. Keep-alive and pipelining fall out of the
// parser's residual buffer.
//
// Backpressure contract: at `maxConnections` concurrent connections the
// acceptor answers new arrivals with a best-effort 503 and closes them
// immediately — bounded memory beats unbounded accept queues. Stuck
// peers (slow loris) are closed after `idleTimeoutSeconds` without
// progress.
//
// Metrics (all on the shared registry, exported via the existing
// Prometheus/JSONL writers):
//   serve.connections_accepted_total / closed_total / active (gauge)
//   serve.requests_total.<endpoint>   per-endpoint request counts
//   serve.responses_total.<status>    2xx/4xx/5xx
//   serve.request_latency_seconds     log-scale histogram, 50us..4s
//   serve.backpressure_total          503-and-close accepts
//   serve.parse_errors_total          connections poisoned by bad bytes
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/http.hpp"
#include "serve/query.hpp"

namespace v6t::serve {

struct ServerOptions {
  std::uint16_t port = 0; // 0 = ephemeral (the tests/bench mode)
  unsigned threads = 2; // worker event loops
  std::uint64_t cacheBytes = 64ull << 20; // 0 disables the result cache
  unsigned cacheShards = 8;
  std::size_t maxConnections = 256;
  std::size_t maxRequestBytes = 8192;
  double idleTimeoutSeconds = 30.0;
  obs::Registry* registry = nullptr;
};

/// Log-scale latency bounds for serve.request_latency_seconds: doubling
/// buckets from 50us to ~4s, so cache hits (tens of us) and cold taxonomy
/// runs (ms..s) both resolve.
[[nodiscard]] std::span<const double> requestLatencyBoundsSeconds();

class Server {
public:
  /// The engine must outlive the server. start() binds and spawns the
  /// threads; throws std::runtime_error when the port cannot be bound.
  Server(const QueryEngine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  /// Bound port (resolves the ephemeral 0 after start()).
  [[nodiscard]] std::uint16_t port() const { return boundPort_; }
  [[nodiscard]] const ResultCache& cache() const { return *cache_; }
  [[nodiscard]] std::uint64_t requestsServed() const {
    return requestsServed_.load(std::memory_order_relaxed);
  }

private:
  struct Conn;
  struct Worker;

  /// Bounded SPMC ring of accepted fds: the acceptor is the only
  /// producer; workers CAS-claim slots. Capacity is a power of two.
  class AcceptQueue {
  public:
    explicit AcceptQueue(std::size_t capacityPow2);
    [[nodiscard]] bool push(int fd); // acceptor only; false when full
    [[nodiscard]] int pop(); // workers; -1 when empty

  private:
    std::vector<std::atomic<int>> slots_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0}; // next write (producer)
    std::atomic<std::uint64_t> tail_{0}; // next read (consumers)
  };

  void acceptLoop();
  void workerLoop(Worker& worker);
  void handleReadable(Worker& worker, Conn& conn);
  void handleWritable(Worker& worker, Conn& conn);
  void flushOutput(Worker& worker, Conn& conn);
  void respond(Conn& conn, const HttpRequest& request);
  /// Per-status / per-endpoint counters, cached thread-locally so the
  /// request hot path takes the registry mutex once per worker thread.
  void countStatus(int status);
  void countEndpoint(std::string_view label);
  void closeConn(Worker& worker, Conn& conn);
  void sweepIdle(Worker& worker);

  const QueryEngine& engine_;
  ServerOptions options_;
  std::unique_ptr<ResultCache> cache_;

  int listenFd_ = -1;
  int wakeFd_ = -1; // EFD_SEMAPHORE shared by all workers
  std::uint16_t boundPort_ = 0;
  std::atomic<bool> running_{false};
  std::unique_ptr<AcceptQueue> acceptQueue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::vector<std::thread> workerThreads_;

  std::atomic<std::size_t> activeConnections_{0};
  std::atomic<std::uint64_t> requestsServed_{0};

  // Pre-registered metric handles (null when no registry was given).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Counter* parseErrors_ = nullptr;
  obs::Gauge* active_ = nullptr;
  obs::Histogram* latency_ = nullptr;
};

} // namespace v6t::serve
