#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "serve/http.hpp"

namespace v6t::serve {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

std::span<const double> requestLatencyBoundsSeconds() {
  // Doubling buckets 50us .. ~3.3s: cache hits land in the first few,
  // cold per-query analysis in the ms..s range.
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double v = 50e-6; v < 4.0; v *= 2.0) b.push_back(v);
    return b;
  }();
  return bounds;
}

// ---------------------------------------------------------------- conn/worker

struct Server::Conn {
  explicit Conn(int fdIn, std::size_t maxRequestBytes)
      : fd(fdIn), parser(maxRequestBytes), lastActivity(Clock::now()) {}

  int fd;
  RequestParser parser;
  std::string out; // pending response bytes
  std::size_t outPos = 0;
  bool closeAfterWrite = false;
  bool wantWrite = false; // EPOLLOUT currently armed
  Clock::time_point lastActivity;
};

struct Server::Worker {
  int epollFd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
};

// ------------------------------------------------------------- accept queue

Server::AcceptQueue::AcceptQueue(std::size_t capacityPow2)
    : slots_(capacityPow2), mask_(capacityPow2 - 1) {
  for (auto& s : slots_) s.store(-1, std::memory_order_relaxed);
}

bool Server::AcceptQueue::push(int fd) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) return false; // full
  slots_[head & mask_].store(fd, std::memory_order_release);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

int Server::AcceptQueue::pop() {
  for (;;) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail >= head) return -1; // empty
    if (tail_.compare_exchange_weak(tail, tail + 1,
                                    std::memory_order_acq_rel)) {
      // The slot write happened-before the head increment we acquired.
      const int fd = slots_[tail & mask_].load(std::memory_order_acquire);
      slots_[tail & mask_].store(-1, std::memory_order_relaxed);
      return fd;
    }
  }
}

// -------------------------------------------------------------------- server

Server::Server(const QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(options) {
  ResultCache::Options cacheOptions;
  cacheOptions.totalBytes = options_.cacheBytes;
  cacheOptions.shards = options_.cacheShards;
  cacheOptions.registry = options_.registry;
  cache_ = std::make_unique<ResultCache>(cacheOptions);
  if (options_.registry != nullptr) {
    obs::Registry& r = *options_.registry;
    accepted_ = &r.counter("serve.connections_accepted_total");
    closed_ = &r.counter("serve.connections_closed_total");
    backpressure_ = &r.counter("serve.backpressure_total");
    parseErrors_ = &r.counter("serve.parse_errors_total");
    active_ = &r.gauge("serve.connections_active", obs::GaugeMode::Max);
    latency_ = &r.histogram("serve.request_latency_seconds",
                            requestLatencyBoundsSeconds());
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) return;

  listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
  if (listenFd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("serve: cannot bind port " +
                             std::to_string(options_.port));
  }
  if (::listen(listenFd_, 512) < 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  boundPort_ = ntohs(addr.sin_port);

  wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_SEMAPHORE | EFD_CLOEXEC);
  if (wakeFd_ < 0) throw std::runtime_error("serve: eventfd() failed");

  acceptQueue_ = std::make_unique<AcceptQueue>(1024);

  const unsigned threads = std::max(1u, options_.threads);
  for (unsigned i = 0; i < threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epollFd < 0) {
      throw std::runtime_error("serve: epoll_create1() failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd_;
    ::epoll_ctl(worker->epollFd, EPOLL_CTL_ADD, wakeFd_, &ev);
    workers_.push_back(std::move(worker));
  }

  running_.store(true);
  acceptor_ = std::thread([this] { acceptLoop(); });
  for (auto& worker : workers_) {
    workerThreads_.emplace_back(
        [this, w = worker.get()] { workerLoop(*w); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Wake every worker out of epoll_wait.
  if (wakeFd_ >= 0) {
    const std::uint64_t n = workers_.size() + 1;
    [[maybe_unused]] const auto ignored =
        ::write(wakeFd_, &n, sizeof(n));
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : workerThreads_) {
    if (t.joinable()) t.join();
  }
  workerThreads_.clear();
  for (auto& worker : workers_) {
    for (auto& [fd, conn] : worker->conns) ::close(fd);
    worker->conns.clear();
    if (worker->epollFd >= 0) ::close(worker->epollFd);
  }
  workers_.clear();
  // Drain fds stuck in the accept queue.
  if (acceptQueue_) {
    for (int fd = acceptQueue_->pop(); fd >= 0; fd = acceptQueue_->pop()) {
      ::close(fd);
    }
  }
  if (listenFd_ >= 0) ::close(listenFd_);
  listenFd_ = -1;
  if (wakeFd_ >= 0) ::close(wakeFd_);
  wakeFd_ = -1;
  activeConnections_.store(0);
}

// ----------------------------------------------------------------- acceptor

void Server::acceptLoop() {
  const int epollFd = ::epoll_create1(EPOLL_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listenFd_;
  ::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd_, &ev);

  while (running_.load(std::memory_order_relaxed)) {
    epoll_event events[16];
    const int n = ::epoll_wait(epollFd, events, 16, 100);
    if (n <= 0) continue;
    for (;;) {
      const int fd = ::accept4(listenFd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break; // EAGAIN or transient error: back to epoll
      const std::size_t active =
          activeConnections_.load(std::memory_order_relaxed);
      if (active >= options_.maxConnections || !acceptQueue_->push(fd)) {
        // Backpressure: a best-effort 503 tells well-behaved clients to
        // retry; closing bounds our memory either way.
        static const std::string overload = formatResponse(
            503, "application/json", "{\"error\":\"overloaded\"}\n",
            /*keepAlive=*/false, /*headOnly=*/false);
        [[maybe_unused]] const auto ignored =
            ::send(fd, overload.data(), overload.size(), MSG_NOSIGNAL);
        ::close(fd);
        if (backpressure_ != nullptr) backpressure_->inc();
        continue;
      }
      activeConnections_.fetch_add(1, std::memory_order_relaxed);
      if (accepted_ != nullptr) accepted_->inc();
      if (active_ != nullptr) {
        active_->max(static_cast<double>(active + 1));
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] const auto ignored =
          ::write(wakeFd_, &one, sizeof(one));
    }
  }
  ::close(epollFd);
}

// ------------------------------------------------------------------- worker

void Server::workerLoop(Worker& worker) {
  // Sweep period: fine-grained enough to catch sub-second test timeouts.
  const int waitMs = std::max(
      20, std::min(500, static_cast<int>(options_.idleTimeoutSeconds *
                                         1000.0 / 4.0)));
  while (running_.load(std::memory_order_relaxed)) {
    epoll_event events[64];
    const int n = ::epoll_wait(worker.epollFd, events, 64, waitMs);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        std::uint64_t tick = 0;
        [[maybe_unused]] const auto ignored =
            ::read(wakeFd_, &tick, sizeof(tick)); // semaphore decrement
        for (int newFd = acceptQueue_->pop(); newFd >= 0;
             newFd = acceptQueue_->pop()) {
          auto conn =
              std::make_unique<Conn>(newFd, options_.maxRequestBytes);
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = newFd;
          if (::epoll_ctl(worker.epollFd, EPOLL_CTL_ADD, newFd, &cev) < 0) {
            ::close(newFd);
            activeConnections_.fetch_sub(1, std::memory_order_relaxed);
            continue;
          }
          worker.conns.emplace(newFd, std::move(conn));
        }
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      Conn& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        closeConn(worker, conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handleReadable(worker, conn);
      // handleReadable may have closed the connection; re-find it.
      const auto again = worker.conns.find(fd);
      if (again == worker.conns.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) {
        handleWritable(worker, *again->second);
      }
    }
    sweepIdle(worker);
  }
}

void Server::handleReadable(Worker& worker, Conn& conn) {
  char buf[4096];
  bool sawBytes = false;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      sawBytes = true;
      conn.parser.feed(std::string_view{buf, static_cast<std::size_t>(n)});
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) { // peer closed
      closeConn(worker, conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    closeConn(worker, conn);
    return;
  }
  if (sawBytes) conn.lastActivity = Clock::now();

  HttpRequest request;
  for (;;) {
    const ParseState state = conn.parser.poll(request);
    if (state == ParseState::NeedMore) break;
    if (state == ParseState::Error) {
      if (parseErrors_ != nullptr) parseErrors_->inc();
      const int status = conn.parser.errorStatus();
      countStatus(status);
      conn.out += formatResponse(status, "application/json",
                                 "{\"error\":\"bad request\"}\n",
                                 /*keepAlive=*/false, /*headOnly=*/false);
      conn.closeAfterWrite = true;
      break;
    }
    respond(conn, request);
    if (conn.closeAfterWrite) break; // no point parsing pipelined rest
  }
  flushOutput(worker, conn);
}

void Server::respond(Conn& conn, const HttpRequest& request) {
  const auto t0 = Clock::now();
  int status = 200;
  std::string contentType = "application/json";
  std::string body;

  const auto parsed = parseTarget(request.target);
  if (!parsed) {
    status = 400;
    body = "{\"error\":\"malformed target\"}\n";
  } else if (QueryEngine::cacheable(parsed->path) && cache_->enabled()) {
    const std::string key = canonicalQueryKey(*parsed);
    if (auto cached = cache_->get(key)) {
      body = std::move(*cached);
    } else {
      QueryEngine::Response r = engine_.evaluate(request.target);
      status = r.status;
      contentType = std::move(r.contentType);
      body = std::move(r.body);
      // Only steady-state successes are worth keeping.
      if (status == 200) cache_->put(key, body);
    }
  } else {
    QueryEngine::Response r = engine_.evaluate(request.target);
    status = r.status;
    contentType = std::move(r.contentType);
    body = std::move(r.body);
  }

  conn.out += formatResponse(status, contentType, body, request.keepAlive,
                             request.headOnly());
  if (!request.keepAlive) conn.closeAfterWrite = true;
  requestsServed_.fetch_add(1, std::memory_order_relaxed);
  if (latency_ != nullptr) {
    latency_->observe(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  countStatus(status);
  countEndpoint(parsed ? QueryEngine::endpointLabel(parsed->path)
                       : std::string_view{"other"});
}

void Server::countStatus(int status) {
  if (options_.registry == nullptr) return;
  // Worker threads are created per Server, so a thread-local cache can
  // never leak handles across server instances.
  thread_local std::unordered_map<int, obs::Counter*> cache;
  auto it = cache.find(status);
  if (it == cache.end()) {
    it = cache
             .emplace(status, &options_.registry->counter(
                                  "serve.responses_total." +
                                  std::to_string(status)))
             .first;
  }
  it->second->inc();
}

void Server::countEndpoint(std::string_view label) {
  if (options_.registry == nullptr) return;
  thread_local std::unordered_map<std::string, obs::Counter*> cache;
  auto it = cache.find(std::string{label});
  if (it == cache.end()) {
    it = cache
             .emplace(std::string{label},
                      &options_.registry->counter(
                          "serve.requests_total." + std::string{label}))
             .first;
  }
  it->second->inc();
}

void Server::handleWritable(Worker& worker, Conn& conn) {
  flushOutput(worker, conn);
}

void Server::flushOutput(Worker& worker, Conn& conn) {
  while (conn.outPos < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.outPos,
               conn.out.size() - conn.outPos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outPos += static_cast<std::size_t>(n);
      conn.lastActivity = Clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.wantWrite) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn.fd;
        ::epoll_ctl(worker.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.wantWrite = true;
      }
      return; // resume on EPOLLOUT
    }
    closeConn(worker, conn); // hard write error
    return;
  }
  conn.out.clear();
  conn.outPos = 0;
  if (conn.wantWrite) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn.fd;
    ::epoll_ctl(worker.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.wantWrite = false;
  }
  if (conn.closeAfterWrite) closeConn(worker, conn);
}

void Server::closeConn(Worker& worker, Conn& conn) {
  const int fd = conn.fd;
  ::epoll_ctl(worker.epollFd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  worker.conns.erase(fd); // destroys conn — must be the last touch
  activeConnections_.fetch_sub(1, std::memory_order_relaxed);
  if (closed_ != nullptr) closed_->inc();
}

void Server::sweepIdle(Worker& worker) {
  const auto now = Clock::now();
  const auto limit = std::chrono::duration<double>(
      options_.idleTimeoutSeconds);
  for (auto it = worker.conns.begin(); it != worker.conns.end();) {
    Conn& conn = *it->second;
    ++it; // advance before a potential erase
    if (now - conn.lastActivity > limit) {
      // Slow loris: no complete request in the window — drop the line.
      closeConn(worker, conn);
    }
  }
}

} // namespace v6t::serve
