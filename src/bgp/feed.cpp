#include "bgp/feed.hpp"

namespace v6t::bgp {

BgpFeed::SubscriberId BgpFeed::subscribe(PropagationModel model,
                                         std::uint64_t streamKey,
                                         Callback cb) {
  const SubscriberId id = nextId_++;
  subscribers_.emplace(
      id, Subscriber{model, std::move(cb),
                     sim::Rng{sim::deriveStreamSeed(seed_, streamKey)}});
  return id;
}

BgpFeed::SubscriberId BgpFeed::subscribe(PropagationModel model, Callback cb) {
  // Counter-derived key: deterministic within one feed instance, but tied to
  // subscription order — consumers that must survive sharding pass a key.
  return subscribe(model, 0x5559bbbf00000000ULL | nextId_, std::move(cb));
}

void BgpFeed::unsubscribe(SubscriberId id) { subscribers_.erase(id); }

void BgpFeed::bindMetrics(obs::Registry& registry) {
  announcesMetric_ = &registry.counter("bgp.feed.announces_total");
  withdrawsMetric_ = &registry.counter("bgp.feed.withdraws_total");
  deliveriesMetric_ = &registry.counter("bgp.feed.deliveries_total");
  delayMetric_ = &registry.histogram("bgp.feed.convergence_delay_seconds",
                                     obs::delayBoundsSeconds());
}

void BgpFeed::stampTrace(BgpUpdate& update, sim::SimTime now) {
  update.seq = updateSeq_++;
  update.originTs = now;
  if (tracer_ == nullptr) return;
  update.traceId = tracer_->updateTraceId(update.seq);
  // Every shard replays the same script and stamps the same IDs, but only
  // the control-plane owner emits the root — one root per update, run-wide.
  if (tracer_->controlPlaneOwner()) {
    tracer_->record({now.millis(), update.traceId,
                     update.prefix.address().hi64(),
                     (static_cast<std::uint64_t>(update.prefix.length()) << 32) |
                         (update.kind == UpdateKind::Announce ? 1u : 0u),
                     0, obs::trace::EventKind::BgpUpdateRoot,
                     obs::trace::ClockDomain::Sim});
  }
}

void BgpFeed::announce(const net::Prefix& prefix, net::Asn origin) {
  const sim::SimTime now = engine_.now();
  rib_.announce(prefix, origin, now);
  if (announcesMetric_ != nullptr) announcesMetric_->inc();
  BgpUpdate update{UpdateKind::Announce, prefix, origin, now, now, 0, 0};
  stampTrace(update, now);
  publish(update);
}

void BgpFeed::withdraw(const net::Prefix& prefix) {
  const sim::SimTime now = engine_.now();
  const RouteEntry* entry = rib_.findExact(prefix);
  const net::Asn origin = entry != nullptr ? entry->origin : net::Asn{};
  rib_.withdraw(prefix, now);
  if (withdrawsMetric_ != nullptr) withdrawsMetric_->inc();
  BgpUpdate update{UpdateKind::Withdraw, prefix, origin, now, now, 0, 0};
  stampTrace(update, now);
  publish(update);
}

void BgpFeed::publish(const BgpUpdate& update) {
  for (auto& [id, sub] : subscribers_) {
    const sim::Duration delay = sub.model.sample(sub.rng);
    if (delayMetric_ != nullptr) {
      delayMetric_->observe(static_cast<double>(delay.millis()) / 1000.0);
      deliveriesMetric_->inc();
    }
    // Copy the callback: the subscriber may unsubscribe before delivery, in
    // which case the update must be dropped, so route through the id.
    const SubscriberId sid = id;
    BgpUpdate delivered = update;
    delivered.ts = engine_.now() + delay;
    engine_.scheduleAfter(delay, [this, sid, delivered]() {
      const auto it = subscribers_.find(sid);
      if (it != subscribers_.end()) it->second.cb(delivered);
    });
  }
}

} // namespace v6t::bgp
