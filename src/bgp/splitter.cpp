#include "bgp/splitter.hpp"

#include <algorithm>

namespace v6t::bgp {

SplitSchedule SplitSchedule::make(const Params& params) {
  SplitSchedule schedule;
  schedule.params_ = params;

  // Cycle 0: the baseline — only the base prefix, no preceding withdraw.
  AnnouncementCycle baseline;
  baseline.index = 0;
  baseline.withdrawAt = params.start; // no gap before the first announcement
  baseline.announceAt = params.start;
  baseline.endsAt = params.start + params.baseline;
  baseline.announced = {params.base};
  schedule.cycles_.push_back(baseline);

  // The split chain: `chainHead` is the prefix that gets split next — by
  // construction the child that does not contain its parent's low-byte
  // address (the upper child, since the low-byte address ::1 sits in the
  // lower half).
  std::vector<net::Prefix> keep; // lower children, kept announced
  net::Prefix chainHead = params.base;
  sim::SimTime cursor = baseline.endsAt;

  for (int i = 1; i <= params.splits; ++i) {
    const auto [lower, upper] = chainHead.split();

    AnnouncementCycle cycle;
    cycle.index = i;
    cycle.withdrawAt = cursor;
    cycle.announceAt = cursor + params.withdrawGap;
    cycle.endsAt = cycle.announceAt + params.cycle;
    cycle.splitParent = chainHead;
    cycle.newChildren = {lower, upper};

    keep.push_back(lower);
    cycle.announced = keep;
    cycle.announced.push_back(upper);

    schedule.cycles_.push_back(std::move(cycle));
    chainHead = upper;
    cursor = schedule.cycles_.back().endsAt;
  }
  return schedule;
}

const AnnouncementCycle* SplitSchedule::cycleAt(sim::SimTime t) const {
  for (const AnnouncementCycle& c : cycles_) {
    if (t >= c.announceAt && t < c.endsAt) return &c;
  }
  return nullptr;
}

std::vector<net::Prefix> SplitSchedule::allPrefixesEverAnnounced() const {
  std::vector<net::Prefix> out;
  for (const AnnouncementCycle& c : cycles_) {
    for (const net::Prefix& p : c.announced) {
      if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
    }
  }
  return out;
}

sim::SimTime SplitSchedule::endOfExperiment() const {
  return cycles_.back().endsAt;
}

SplitController::SplitController(sim::Engine& engine, BgpFeed& feed,
                                 SplitSchedule schedule, net::Asn origin)
    : engine_(engine),
      feed_(feed),
      schedule_(std::move(schedule)),
      origin_(origin) {}

void SplitController::arm() {
  if (armed_) return;
  armed_ = true;
  for (const AnnouncementCycle& cycle : schedule_.cycles()) {
    if (cycle.index > 0) {
      // Withdraw-day: pull everything announced during the previous cycle.
      const AnnouncementCycle& prev =
          schedule_.cycles()[static_cast<std::size_t>(cycle.index) - 1];
      engine_.schedule(cycle.withdrawAt, [this, prev]() {
        for (const net::Prefix& p : prev.announced) feed_.withdraw(p);
      });
    }
    engine_.schedule(cycle.announceAt, [this, cycle]() {
      for (const net::Prefix& p : cycle.announced) {
        feed_.announce(p, origin_);
      }
    });
  }
}

} // namespace v6t::bgp
