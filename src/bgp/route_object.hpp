// v6t::bgp — IRR route6 objects and RPKI ROAs.
//
// The paper probes whether creating a route6 object (and deliberately NOT
// creating a ROA) changes scanner behavior — it does not (§3.2). We model
// the registries so the experiment can reproduce that negative result: a
// registry entry is visible metadata that certain (hypothetical) scanner
// policies could consult, and validation outcomes can be queried.
#pragma once

#include <optional>
#include <vector>

#include "net/asn.hpp"
#include "net/prefix.hpp"
#include "sim/time.hpp"

namespace v6t::bgp {

struct Route6Object {
  net::Prefix prefix;
  net::Asn origin;
  sim::SimTime createdAt;
};

struct Roa {
  net::Prefix prefix;
  unsigned maxLength = 0;
  net::Asn origin;
  sim::SimTime createdAt;
};

enum class RpkiValidity : std::uint8_t { Valid, Invalid, NotFound };

class IrrRegistry {
public:
  void addRoute6(const net::Prefix& prefix, net::Asn origin, sim::SimTime t) {
    route6_.push_back(Route6Object{prefix, origin, t});
  }
  void addRoa(const net::Prefix& prefix, unsigned maxLength, net::Asn origin,
              sim::SimTime t) {
    roas_.push_back(Roa{prefix, maxLength, origin, t});
  }

  /// Is there a route6 object covering this exact announcement at time `t`?
  [[nodiscard]] bool hasRoute6(const net::Prefix& prefix, net::Asn origin,
                               sim::SimTime t) const {
    for (const Route6Object& o : route6_) {
      if (o.createdAt <= t && o.origin == origin && o.prefix.covers(prefix))
        return true;
    }
    return false;
  }

  /// RPKI origin validation (RFC 6811 semantics). With no covering ROA the
  /// result is NotFound — which upstreams do not filter, the reason the
  /// authors skipped creating one.
  [[nodiscard]] RpkiValidity validate(const net::Prefix& prefix,
                                      net::Asn origin, sim::SimTime t) const {
    bool covered = false;
    for (const Roa& r : roas_) {
      if (r.createdAt > t || !r.prefix.covers(prefix)) continue;
      covered = true;
      if (r.origin == origin && prefix.length() <= r.maxLength)
        return RpkiValidity::Valid;
    }
    return covered ? RpkiValidity::Invalid : RpkiValidity::NotFound;
  }

  [[nodiscard]] const std::vector<Route6Object>& route6Objects() const {
    return route6_;
  }
  [[nodiscard]] const std::vector<Roa>& roas() const { return roas_; }

private:
  std::vector<Route6Object> route6_;
  std::vector<Roa> roas_;
};

} // namespace v6t::bgp
