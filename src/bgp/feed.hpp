// v6t::bgp — BGP update propagation.
//
// The experiment's announcements do not become visible everywhere at once:
// route propagation through the DFZ takes seconds to minutes, and scanners
// that consume route collectors (RIS/RouteViews style) see updates with an
// additional collection lag of minutes to hours. BgpFeed models both: the
// origin RIB is updated immediately, and each subscriber receives the
// update after its own convergence delay.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "bgp/rib.hpp"
#include "bgp/update.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace v6t::bgp {

/// How quickly a subscriber learns about routing changes.
struct PropagationModel {
  sim::Duration base = sim::seconds(30); // minimum propagation time
  sim::Duration jitter = sim::minutes(10); // uniform extra lag

  [[nodiscard]] sim::Duration sample(sim::Rng& rng) const {
    const auto extra = static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(jitter.millis()));
    return base + sim::millis(extra);
  }
};

class BgpFeed {
public:
  using SubscriberId = std::uint64_t;
  using Callback = std::function<void(const BgpUpdate&)>;

  BgpFeed(sim::Engine& engine, Rib& rib, std::uint64_t seed)
      : engine_(engine), rib_(rib), rng_(seed) {}

  /// Register a consumer; `model` determines its visibility lag.
  SubscriberId subscribe(PropagationModel model, Callback cb);

  void unsubscribe(SubscriberId id);

  /// Announce at the origin: the RIB changes now; subscribers are notified
  /// after their sampled propagation delay.
  void announce(const net::Prefix& prefix, net::Asn origin);
  void withdraw(const net::Prefix& prefix);

  [[nodiscard]] const Rib& rib() const { return rib_; }
  [[nodiscard]] std::size_t subscriberCount() const {
    return subscribers_.size();
  }

private:
  struct Subscriber {
    PropagationModel model;
    Callback cb;
  };

  void publish(const BgpUpdate& update);

  sim::Engine& engine_;
  Rib& rib_;
  sim::Rng rng_;
  SubscriberId nextId_ = 1;
  // Ordered map: subscriber notification order (and thus RNG consumption)
  // must be deterministic for reproducible runs.
  std::map<SubscriberId, Subscriber> subscribers_;
};

} // namespace v6t::bgp
