// v6t::bgp — BGP update propagation.
//
// The experiment's announcements do not become visible everywhere at once:
// route propagation through the DFZ takes seconds to minutes, and scanners
// that consume route collectors (RIS/RouteViews style) see updates with an
// additional collection lag of minutes to hours. BgpFeed models both: the
// origin RIB is updated immediately, and each subscriber receives the
// update after its own convergence delay.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "bgp/rib.hpp"
#include "bgp/update.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace v6t::bgp {

/// How quickly a subscriber learns about routing changes.
struct PropagationModel {
  sim::Duration base = sim::seconds(30); // minimum propagation time
  sim::Duration jitter = sim::minutes(10); // uniform extra lag

  [[nodiscard]] sim::Duration sample(sim::Rng& rng) const {
    const auto extra = static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(jitter.millis()));
    return base + sim::millis(extra);
  }
};

class BgpFeed {
public:
  using SubscriberId = std::uint64_t;
  using Callback = std::function<void(const BgpUpdate&)>;

  BgpFeed(sim::Engine& engine, Rib& rib, std::uint64_t seed)
      : engine_(engine), rib_(rib), seed_(seed) {}

  /// Register a consumer; `model` determines its visibility lag. The lag of
  /// every delivered update is drawn from a private RNG stream derived from
  /// (feed seed, streamKey): a consumer with a stable key sees the same lag
  /// sequence regardless of which other consumers exist. This is the
  /// invariant the sharded experiment runner builds on — a scanner keyed by
  /// its id behaves identically whether it shares the feed with the whole
  /// population or with a 1/N shard of it.
  SubscriberId subscribe(PropagationModel model, std::uint64_t streamKey,
                         Callback cb);

  /// Convenience for consumers without a natural stable key (tests, ad-hoc
  /// probes): keys off the subscription counter. Not shard-invariant.
  SubscriberId subscribe(PropagationModel model, Callback cb);

  void unsubscribe(SubscriberId id);

  /// Announce at the origin: the RIB changes now; subscribers are notified
  /// after their sampled propagation delay.
  void announce(const net::Prefix& prefix, net::Asn origin);
  void withdraw(const net::Prefix& prefix);

  [[nodiscard]] const Rib& rib() const { return rib_; }
  [[nodiscard]] std::size_t subscriberCount() const {
    return subscribers_.size();
  }

  /// Attach run-time metrics: update counters plus a histogram of the
  /// per-subscriber convergence delays the propagation model samples.
  /// Purely observational — the sampled delays are recorded, not altered —
  /// so binding (or not) cannot change simulation behavior. The registry
  /// must outlive the feed.
  void bindMetrics(obs::Registry& registry);

  /// Attach the flight recorder: every update gets a deterministic trace ID
  /// stamped (a pure function of seed and sequence number — stamping happens
  /// whether or not recording is enabled, so traced and untraced runs follow
  /// identical code paths), and the control-plane-owning tracer records one
  /// BgpUpdateRoot per update. The tracer must outlive the feed.
  void bindTrace(obs::trace::Tracer* tracer) { tracer_ = tracer; }

private:
  struct Subscriber {
    PropagationModel model;
    Callback cb;
    sim::Rng rng; // private lag stream, derived from (seed_, streamKey)
  };

  void publish(const BgpUpdate& update);
  /// Assign seq/originTs/traceId and record the trace root.
  void stampTrace(BgpUpdate& update, sim::SimTime now);

  sim::Engine& engine_;
  Rib& rib_;
  std::uint64_t seed_;
  SubscriberId nextId_ = 1;
  std::uint64_t updateSeq_ = 0;
  obs::trace::Tracer* tracer_ = nullptr;
  obs::Counter* announcesMetric_ = nullptr;
  obs::Counter* withdrawsMetric_ = nullptr;
  obs::Counter* deliveriesMetric_ = nullptr;
  obs::Histogram* delayMetric_ = nullptr;
  // Ordered map: subscriber notification order must be deterministic for
  // reproducible runs (each lag comes from the subscriber's own stream, so
  // the order affects only same-instant event sequencing).
  std::map<SubscriberId, Subscriber> subscribers_;
};

} // namespace v6t::bgp
