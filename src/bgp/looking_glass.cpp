#include "bgp/looking_glass.hpp"

namespace v6t::bgp {

LookingGlass::LookingGlass(sim::Engine& engine, BgpFeed& feed,
                           std::vector<VantagePoint> vantagePoints) {
  (void)engine;
  names_.reserve(vantagePoints.size());
  ribs_.resize(vantagePoints.size());
  for (std::size_t i = 0; i < vantagePoints.size(); ++i) {
    names_.push_back(vantagePoints[i].name);
    Rib* shadow = &ribs_[i];
    feed.subscribe(vantagePoints[i].propagation,
                   [shadow](const BgpUpdate& u) {
                     if (u.kind == UpdateKind::Announce) {
                       shadow->announce(u.prefix, u.origin, u.ts);
                     } else {
                       shadow->withdraw(u.prefix, u.ts);
                     }
                   });
  }
}

std::size_t LookingGlass::visibleAt(const net::Prefix& prefix) const {
  std::size_t visible = 0;
  for (const Rib& rib : ribs_) {
    if (rib.lookup(prefix.address()).has_value()) ++visible;
  }
  return visible;
}

std::vector<std::string> LookingGlass::missingAt(
    const net::Prefix& prefix) const {
  std::vector<std::string> missing;
  for (std::size_t i = 0; i < ribs_.size(); ++i) {
    if (!ribs_[i].lookup(prefix.address()).has_value()) {
      missing.push_back(names_[i]);
    }
  }
  return missing;
}

} // namespace v6t::bgp
