// v6t::bgp — routing information base.
//
// Models the DFZ view relevant to the experiment: which prefixes are
// announced, by whom, since when. Packets in the simulation are deliverable
// to a telescope address only if the RIB has a covering route — exactly the
// condition under which real scan traffic can reach a telescope.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/update.hpp"
#include "net/prefix_trie.hpp"

namespace v6t::bgp {

struct RouteEntry {
  net::Asn origin;
  sim::SimTime announcedAt;
};

class Rib {
public:
  /// Install (or refresh) a route. Records the update in the history log.
  void announce(const net::Prefix& prefix, net::Asn origin, sim::SimTime t);

  /// Remove a route; silently ignores withdrawals of unknown prefixes
  /// (as a real speaker would).
  void withdraw(const net::Prefix& prefix, sim::SimTime t);

  /// Longest-prefix match: the most specific route covering `addr`.
  [[nodiscard]] std::optional<std::pair<net::Prefix, RouteEntry>> lookup(
      const net::Ipv6Address& addr) const;

  [[nodiscard]] bool isRoutable(const net::Ipv6Address& addr) const {
    return lookup(addr).has_value();
  }

  [[nodiscard]] const RouteEntry* findExact(const net::Prefix& prefix) const {
    return table_.findExact(prefix);
  }

  /// All currently announced prefixes, most specific last.
  [[nodiscard]] std::vector<net::Prefix> announcedPrefixes() const;

  /// All current routes with their entries (trie order).
  [[nodiscard]] std::vector<std::pair<net::Prefix, RouteEntry>>
  announcedRoutes() const;

  /// Full update history, in application order.
  [[nodiscard]] const std::vector<BgpUpdate>& history() const {
    return history_;
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  // Instrumentation counters, sampled into the obs registry by whoever
  // owns the RIB (the runner per shard; the serial Experiment at end).
  [[nodiscard]] std::uint64_t announceCount() const { return announces_; }
  [[nodiscard]] std::uint64_t withdrawCount() const { return withdraws_; }
  /// LPM lookups served (capture-path routability checks dominate).
  [[nodiscard]] std::uint64_t lpmLookups() const { return lpmLookups_; }

private:
  net::PrefixTrie<RouteEntry> table_;
  std::vector<BgpUpdate> history_;
  std::uint64_t announces_ = 0;
  std::uint64_t withdraws_ = 0;
  // mutable: lookup() is logically const; each RIB is owned by exactly one
  // shard thread, so a plain counter is race-free.
  mutable std::uint64_t lpmLookups_ = 0;
};

} // namespace v6t::bgp
