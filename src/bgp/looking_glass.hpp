// v6t::bgp — looking-glass visibility checks (§3.2).
//
// The authors confirm every (re-)announcement through a public looking
// glass and RIPEstat before trusting the cycle's data. LookingGlass models
// that verification plane: a set of vantage points, each receiving the
// update feed with its own propagation delay, that can be queried for
// which of them currently carry a route for a prefix.
//
// Note: subscribe a LookingGlass to a *dedicated* feed position (or
// construct it before the scanner population) if bit-for-bit
// reproducibility against existing seeds matters — every subscriber
// advances the feed's delay RNG.
#pragma once

#include <string>
#include <vector>

#include "bgp/feed.hpp"
#include "bgp/rib.hpp"

namespace v6t::bgp {

class LookingGlass {
public:
  struct VantagePoint {
    std::string name; // e.g. "ixp-west", "upstream-2"
    PropagationModel propagation;
  };

  /// Subscribes one feed consumer per vantage point.
  LookingGlass(sim::Engine& engine, BgpFeed& feed,
               std::vector<VantagePoint> vantagePoints);

  // Feed callbacks hold pointers into ribs_; the object must stay put.
  LookingGlass(const LookingGlass&) = delete;
  LookingGlass& operator=(const LookingGlass&) = delete;

  /// Number of vantage points that currently carry a route covering the
  /// prefix (exact-or-less-specific).
  [[nodiscard]] std::size_t visibleAt(const net::Prefix& prefix) const;

  /// Fully visible = every vantage point carries it.
  [[nodiscard]] bool fullyVisible(const net::Prefix& prefix) const {
    return visibleAt(prefix) == ribs_.size();
  }

  /// Names of vantage points currently lacking the route, for operator
  /// diagnostics ("upstream-2 has not converged yet").
  [[nodiscard]] std::vector<std::string> missingAt(
      const net::Prefix& prefix) const;

  [[nodiscard]] std::size_t vantagePointCount() const { return ribs_.size(); }

private:
  std::vector<std::string> names_;
  // One shadow RIB per vantage point, maintained from delayed updates.
  std::vector<Rib> ribs_;
};

} // namespace v6t::bgp
