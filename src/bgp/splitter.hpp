// v6t::bgp — the paper's asymmetric prefix-split experiment (Fig. 2).
//
// After a baseline period, the telescope's base /32 is recursively split on
// a fixed cycle: every cycle all prefixes are withdrawn for one day, then a
// new set is announced in which one prefix has been replaced by its two
// more-specific children. The child chosen to be split next is always the
// one that does NOT contain the parent's low-byte address, so each newly
// created pair carries low-byte addresses that do not byte-wise match any
// previously announced one (§3.1). Starting from a /32 and running 16
// splits yields 17 announced prefixes with a most-specific /48.
#pragma once

#include <utility>
#include <vector>

#include "bgp/feed.hpp"
#include "net/prefix.hpp"
#include "sim/time.hpp"

namespace v6t::bgp {

/// One two-week (configurable) announcement period.
struct AnnouncementCycle {
  int index = 0; // 0 = the baseline period (base prefix only)
  sim::SimTime withdrawAt; // all prefixes withdrawn (skipped for index 0)
  sim::SimTime announceAt; // new set announced / cycle starts
  sim::SimTime endsAt; // start of the next withdraw
  net::Prefix splitParent; // prefix replaced this cycle (index >= 1)
  std::pair<net::Prefix, net::Prefix> newChildren; // its two children
  std::vector<net::Prefix> announced; // full set live during this cycle
};

/// Static computation of the whole schedule. Pure data; the controller
/// below replays it against a BgpFeed.
class SplitSchedule {
public:
  struct Params {
    net::Prefix base; // e.g. 3fff:100::/32 (documentation range)
    sim::SimTime start; // first announcement of the base prefix
    sim::Duration baseline = sim::weeks(12); // stable initial period
    sim::Duration cycle = sim::weeks(2); // announcement period length
    sim::Duration withdrawGap = sim::days(1); // dark day between cycles
    int splits = 16; // number of split cycles
  };

  [[nodiscard]] static SplitSchedule make(const Params& params);

  [[nodiscard]] const std::vector<AnnouncementCycle>& cycles() const {
    return cycles_;
  }
  [[nodiscard]] const Params& params() const { return params_; }

  /// The cycle live at time `t`, or nullptr during a withdraw gap / before
  /// the start.
  [[nodiscard]] const AnnouncementCycle* cycleAt(sim::SimTime t) const;

  /// Every prefix that is ever announced, in first-announcement order.
  [[nodiscard]] std::vector<net::Prefix> allPrefixesEverAnnounced() const;

  /// Time of the last cycle's end.
  [[nodiscard]] sim::SimTime endOfExperiment() const;

private:
  Params params_;
  std::vector<AnnouncementCycle> cycles_;
};

/// Drives a BgpFeed through a SplitSchedule: schedules every withdraw-day
/// and announcement on the engine. This is the stand-in for the authors'
/// automated FRR reconfiguration.
class SplitController {
public:
  SplitController(sim::Engine& engine, BgpFeed& feed, SplitSchedule schedule,
                  net::Asn origin);

  /// Install all schedule events on the engine. Call once, before run().
  void arm();

  [[nodiscard]] const SplitSchedule& schedule() const { return schedule_; }

private:
  sim::Engine& engine_;
  BgpFeed& feed_;
  SplitSchedule schedule_;
  net::Asn origin_;
  bool armed_ = false;
};

} // namespace v6t::bgp
