// v6t::bgp — BGP update messages.
#pragma once

#include <string>

#include "net/asn.hpp"
#include "net/prefix.hpp"
#include "sim/time.hpp"

namespace v6t::bgp {

enum class UpdateKind : std::uint8_t { Announce, Withdraw };

/// One routing-table change as observed at the collector / by a subscriber.
struct BgpUpdate {
  UpdateKind kind = UpdateKind::Announce;
  net::Prefix prefix;
  net::Asn origin;
  sim::SimTime ts; // when the update became visible to the observer
  sim::SimTime originTs; // when the update happened at the origin
  std::uint64_t seq = 0; // feed-local update sequence number
  /// Flight-recorder causal root (obs::trace). 0 = untraced. Derived purely
  /// from (experiment seed, seq), so shard-invariant.
  std::uint64_t traceId = 0;

  [[nodiscard]] std::string toString() const;
};

} // namespace v6t::bgp
