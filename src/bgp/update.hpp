// v6t::bgp — BGP update messages.
#pragma once

#include <string>

#include "net/asn.hpp"
#include "net/prefix.hpp"
#include "sim/time.hpp"

namespace v6t::bgp {

enum class UpdateKind : std::uint8_t { Announce, Withdraw };

/// One routing-table change as observed at the collector / by a subscriber.
struct BgpUpdate {
  UpdateKind kind = UpdateKind::Announce;
  net::Prefix prefix;
  net::Asn origin;
  sim::SimTime ts; // when the update became visible to the observer

  [[nodiscard]] std::string toString() const;
};

} // namespace v6t::bgp
