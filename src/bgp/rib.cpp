#include "bgp/rib.hpp"

namespace v6t::bgp {

std::string BgpUpdate::toString() const {
  std::string out = kind == UpdateKind::Announce ? "A " : "W ";
  out += prefix.toString();
  out += " origin AS";
  out += std::to_string(origin.value());
  out += " @ ";
  out += sim::toString(ts);
  return out;
}

void Rib::announce(const net::Prefix& prefix, net::Asn origin, sim::SimTime t) {
  table_.insert(prefix, RouteEntry{origin, t});
  history_.push_back(BgpUpdate{UpdateKind::Announce, prefix, origin, t, t});
  ++announces_;
}

void Rib::withdraw(const net::Prefix& prefix, sim::SimTime t) {
  const RouteEntry* entry = table_.findExact(prefix);
  if (entry == nullptr) return;
  const net::Asn origin = entry->origin;
  table_.erase(prefix);
  history_.push_back(BgpUpdate{UpdateKind::Withdraw, prefix, origin, t, t});
  ++withdraws_;
}

std::optional<std::pair<net::Prefix, RouteEntry>> Rib::lookup(
    const net::Ipv6Address& addr) const {
  ++lpmLookups_;
  auto match = table_.longestMatch(addr);
  if (!match) return std::nullopt;
  return std::pair{match->first, *match->second};
}

std::vector<net::Prefix> Rib::announcedPrefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, entry] : table_.entries()) out.push_back(prefix);
  return out;
}

std::vector<std::pair<net::Prefix, RouteEntry>> Rib::announcedRoutes() const {
  std::vector<std::pair<net::Prefix, RouteEntry>> out;
  for (const auto& [prefix, entry] : table_.entries()) {
    out.emplace_back(prefix, *entry);
  }
  return out;
}

} // namespace v6t::bgp
