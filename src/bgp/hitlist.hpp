// v6t::bgp — model of the TUM hitlist service.
//
// The real service aggregates responsive addresses and (non-)aliased
// prefixes and republishes them daily. For the experiment only two
// behaviors matter (§3.2, §7.2): (i) newly announced prefixes appear on
// the non-aliased prefix list a few days after their announcement, and
// (ii) fully-responsive prefixes (like T4) are *not* reliably detected as
// aliased. Hitlist-driven scanners subscribe to publication events.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "bgp/feed.hpp"
#include "net/prefix.hpp"
#include "sim/engine.hpp"

namespace v6t::bgp {

class HitlistService {
public:
  struct Params {
    sim::Duration listingDelay = sim::days(5); // announcement -> listed
    sim::Duration jitter = sim::days(2); // uniform extra delay
  };

  /// Subscribes to the feed; newly announced prefixes get listed after the
  /// configured delay. Withdrawn prefixes are retained (the real hitlist
  /// ages entries out slowly; within an experiment they persist).
  HitlistService(sim::Engine& engine, BgpFeed& feed, Params params,
                 std::uint64_t seed);

  /// Prefixes listed at time `t`.
  [[nodiscard]] std::vector<net::Prefix> listedPrefixes(sim::SimTime t) const;

  [[nodiscard]] bool isListed(const net::Prefix& prefix, sim::SimTime t) const;

  /// When a prefix became listed (nullopt if never).
  [[nodiscard]] std::optional<sim::SimTime> listedAt(
      const net::Prefix& prefix) const;

  /// Register a consumer notified at publication time of each new prefix.
  void onListed(std::function<void(const net::Prefix&, sim::SimTime)> cb) {
    consumers_.push_back(std::move(cb));
  }

private:
  void handleUpdate(const BgpUpdate& update);

  sim::Engine& engine_;
  Params params_;
  sim::Rng rng_;
  std::map<net::Prefix, sim::SimTime> listed_;
  std::vector<std::function<void(const net::Prefix&, sim::SimTime)>>
      consumers_;
};

} // namespace v6t::bgp
