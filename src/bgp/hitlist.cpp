#include "bgp/hitlist.hpp"

namespace v6t::bgp {

namespace {
/// Stable feed-stream key of the hitlist service, outside the scanner-id
/// range so sharded and serial runs draw identical collection lags.
constexpr std::uint64_t kHitlistStreamKey = 0x484954'4c495354ULL; // "HITLIST"
} // namespace

HitlistService::HitlistService(sim::Engine& engine, BgpFeed& feed,
                               Params params, std::uint64_t seed)
    : engine_(engine), params_(params), rng_(seed) {
  feed.subscribe(PropagationModel{sim::minutes(5), sim::minutes(30)},
                 kHitlistStreamKey,
                 [this](const BgpUpdate& u) { handleUpdate(u); });
}

void HitlistService::handleUpdate(const BgpUpdate& update) {
  if (update.kind != UpdateKind::Announce) return;
  if (listed_.contains(update.prefix)) return; // re-announcement: keep entry
  const auto extra = static_cast<std::int64_t>(
      rng_.uniform() * static_cast<double>(params_.jitter.millis()));
  const sim::Duration delay = params_.listingDelay + sim::millis(extra);
  const net::Prefix prefix = update.prefix;
  engine_.scheduleAfter(delay, [this, prefix]() {
    const sim::SimTime now = engine_.now();
    if (listed_.contains(prefix)) return;
    listed_.emplace(prefix, now);
    for (const auto& cb : consumers_) cb(prefix, now);
  });
}

std::vector<net::Prefix> HitlistService::listedPrefixes(sim::SimTime t) const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, when] : listed_) {
    if (when <= t) out.push_back(prefix);
  }
  return out;
}

bool HitlistService::isListed(const net::Prefix& prefix, sim::SimTime t) const {
  const auto it = listed_.find(prefix);
  return it != listed_.end() && it->second <= t;
}

std::optional<sim::SimTime> HitlistService::listedAt(
    const net::Prefix& prefix) const {
  const auto it = listed_.find(prefix);
  if (it == listed_.end()) return std::nullopt;
  return it->second;
}

} // namespace v6t::bgp
