// v6t::core — metric collection glue between the simulation components
// and the obs registry.
//
// Components keep cheap private counters (engine events, RIB lookups,
// fabric drops, telescope captures); ComponentSampler copies them into
// named registry metrics as *deltas*, so it can be re-run at every epoch
// boundary — the runner's live-snapshot refresh — without double counting.
// The serial Experiment samples once at the end of run().
//
// Metric naming scheme (DESIGN.md §9): `<component>.<metric>`, dots as
// separators, `_total` suffix on monotonic counters, `_seconds` on
// durations; per-telescope metrics carry the telescope name segment
// (`telescope.T1.packets_total`), per-shard runner metrics the shard id
// (`runner.shard.0.events_total`).
#pragma once

#include <array>
#include <memory>

#include "bgp/rib.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "telescope/fabric.hpp"
#include "telescope/telescope.hpp"

namespace v6t::core {

class ExperimentSummary; // core/summary.hpp includes this header's users

/// Delta-samples one world's component counters into a registry. One
/// sampler instance per (registry, world) pair; call sample() as often as
/// freshness requires.
class ComponentSampler {
public:
  explicit ComponentSampler(obs::Registry& registry);

  void sample(
      const sim::Engine& engine, const bgp::Rib& rib,
      const telescope::DeliveryFabric& fabric,
      const std::array<std::unique_ptr<telescope::Telescope>, 4>& telescopes);

private:
  struct Delta {
    obs::Counter* counter = nullptr;
    std::uint64_t last = 0;

    void sampleTo(std::uint64_t total) {
      counter->inc(total - last);
      last = total;
    }
  };

  obs::Registry* registry_;
  Delta events_;
  Delta lookups_;
  Delta announces_;
  Delta withdraws_;
  Delta sent_;
  Delta noRoute_;
  Delta toVoid_;
  std::array<Delta, 4> packets_;
  std::array<Delta, 4> excluded_;
  obs::Gauge* queueDepth_;
  obs::Gauge* queueHighWater_;
};

/// Record the post-run analysis view: per-telescope session counts and
/// sessionizer lifecycle stats. Called once on the merged summary.
void collectSummaryMetrics(const ExperimentSummary& summary,
                           obs::Registry& registry);

} // namespace v6t::core
