#include "core/metrics.hpp"

#include <string>

#include "core/summary.hpp"

namespace v6t::core {

ComponentSampler::ComponentSampler(obs::Registry& registry)
    : registry_(&registry) {
  events_.counter = &registry.counter("sim.events_total");
  lookups_.counter = &registry.counter("bgp.rib.lpm_lookups_total");
  announces_.counter = &registry.counter("bgp.rib.announces_total");
  withdraws_.counter = &registry.counter("bgp.rib.withdraws_total");
  sent_.counter = &registry.counter("fabric.packets_sent_total");
  noRoute_.counter = &registry.counter("fabric.dropped_no_route_total");
  toVoid_.counter = &registry.counter("fabric.delivered_to_void_total");
  queueDepth_ = &registry.gauge("sim.queue_depth", obs::GaugeMode::Sum);
  queueHighWater_ =
      &registry.gauge("sim.queue_depth_high_water", obs::GaugeMode::Max);
}

void ComponentSampler::sample(
    const sim::Engine& engine, const bgp::Rib& rib,
    const telescope::DeliveryFabric& fabric,
    const std::array<std::unique_ptr<telescope::Telescope>, 4>& telescopes) {
  events_.sampleTo(engine.executedEvents());
  lookups_.sampleTo(rib.lpmLookups());
  announces_.sampleTo(rib.announceCount());
  withdraws_.sampleTo(rib.withdrawCount());
  sent_.sampleTo(fabric.sentPackets());
  noRoute_.sampleTo(fabric.droppedNoRoute());
  toVoid_.sampleTo(fabric.deliveredToVoid());
  queueDepth_->set(static_cast<double>(engine.pendingEvents()));
  queueHighWater_->max(static_cast<double>(engine.queueDepthHighWater()));
  for (std::size_t i = 0; i < 4; ++i) {
    const telescope::Telescope& t = *telescopes[i];
    if (packets_[i].counter == nullptr) {
      const std::string base = "telescope." + t.name();
      packets_[i].counter = &registry_->counter(base + ".packets_total");
      excluded_[i].counter = &registry_->counter(base + ".excluded_total");
    }
    packets_[i].sampleTo(t.capturedPackets());
    excluded_[i].sampleTo(t.excludedPackets());
  }
}

void collectSummaryMetrics(const ExperimentSummary& summary,
                           obs::Registry& registry) {
  for (std::size_t i = 0; i < 4; ++i) {
    const TelescopeSummary& t = summary.telescope(i);
    const std::string base = "telescope." + t.name;
    registry.gauge(base + ".sessions128").set(
        static_cast<double>(t.sessions128.size()));
    registry.gauge(base + ".sessions64").set(
        static_cast<double>(t.sessions64.size()));
    registry.counter(base + ".sessions_opened_total")
        .inc(t.stats128.opened);
    registry.counter(base + ".sessions_closed_by_timeout_total")
        .inc(t.stats128.closedByTimeout);
    registry.gauge(base + ".sessions_open_at_finish")
        .set(static_cast<double>(t.stats128.openAtFinish));
  }
}

} // namespace v6t::core
