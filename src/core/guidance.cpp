#include "core/guidance.hpp"

#include <algorithm>
#include <set>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "analysis/taxonomy.hpp"

namespace v6t::core {

std::vector<Finding> GuidanceEngine::derive(const Experiment& experiment,
                                            const ExperimentSummary& summary) {
  std::vector<Finding> findings;
  const Period whole{sim::kEpoch, experiment.experimentEnd()};

  const auto t1 = summary.windowStats(experiment, T1, whole);
  const auto t2 = summary.windowStats(experiment, T2, whole);
  const auto t3 = summary.windowStats(experiment, T3, whole);
  const auto t4 = summary.windowStats(experiment, T4, whole);

  // (i) Announce your prefix: separately announced vs. covered-only space.
  {
    const double announced =
        static_cast<double>(std::min(t1.packets, t2.packets));
    const double covered = static_cast<double>(
        std::max<std::uint64_t>(std::max(t3.packets, t4.packets), 1));
    findings.push_back(Finding{
        "BGP visibility",
        "Announce the telescope prefix individually in BGP; a silent "
        "subnet of a covering prefix stays near-invisible.",
        "separately announced telescopes received >= " +
            analysis::fixed(announced / covered, 0) +
            "x the packets of the busiest covered-only telescope (T1=" +
            analysis::withThousands(t1.packets) + ", T2=" +
            analysis::withThousands(t2.packets) + " vs T3=" +
            analysis::withThousands(t3.packets) + ", T4=" +
            analysis::withThousands(t4.packets) + ")"});
  }

  // (ii) Number of announced prefixes beats prefix size: compare /48
  // session share before vs. after the subnets became prefixes.
  {
    const auto& schedule = experiment.schedule();
    const auto& cycles = schedule.cycles();
    const auto& sessions = summary.telescope(T1).sessions128;
    const auto& packets = experiment.telescope(T1).capture().packets();
    // The most specific prefixes the schedule ever announces (the /48s in
    // the paper's full 16-split configuration).
    unsigned deepest = 0;
    for (const net::Prefix& p : cycles.back().announced) {
      deepest = std::max(deepest, p.length());
    }
    auto shareInDeepest = [&](Period period) {
      std::uint64_t total = 0;
      std::uint64_t inDeepest = 0;
      for (const telescope::Session& s : sessionsIn(sessions, period)) {
        ++total;
        const net::Ipv6Address dst = packets[s.packetIdx.front()].dst;
        for (const net::Prefix& p : cycles.back().announced) {
          if (p.length() == deepest && p.contains(dst)) {
            ++inDeepest;
            break;
          }
        }
      }
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(inDeepest) /
                              static_cast<double>(total);
    };
    const Period firstCycle{cycles.front().announceAt, cycles.front().endsAt};
    const Period lastCycle{cycles.back().announceAt, cycles.back().endsAt};
    // During the baseline the /48s exist only as silent subnets of the /32;
    // in the final cycle they are announced prefixes.
    const double before = shareInDeepest(firstCycle);
    const double after = shareInDeepest(lastCycle);
    findings.push_back(Finding{
        "Prefix count over prefix size",
        "Announcing more (smaller) prefixes attracts more scanners than "
        "announcing one large prefix; size matters less than visibility.",
        "/" + std::to_string(deepest) +
            " sub-space share of T1 sessions: " + analysis::fixed(before, 2) +
            "% while silent inside the covering prefix vs " +
            analysis::fixed(after, 1) + "% once announced as prefixes"});
  }

  // (iii) Different attractors draw different scanners.
  {
    const auto t1Sources = summary.sources128(experiment, T1, whole);
    const auto t2Sources = summary.sources128(experiment, T2, whole);
    std::size_t shared = 0;
    for (const auto& s : t1Sources) shared += t2Sources.contains(s) ? 1 : 0;
    const std::size_t unionSize =
        t1Sources.size() + t2Sources.size() - shared;
    findings.push_back(Finding{
        "Attractor bias",
        "BGP announcements and DNS exposure attract largely disjoint "
        "scanner crowds; deploy the attractor matching the scanners you "
        "want to observe.",
        "only " +
            analysis::fixed(unionSize == 0 ? 0.0
                                           : 100.0 * static_cast<double>(
                                                         shared) /
                                                 static_cast<double>(
                                                     unionSize),
                            1) +
            "% of T1+T2 /128 sources appear at both telescopes"});
  }

  // (iv) Active services draw scanners to neighboring space.
  {
    const double ratio =
        static_cast<double>(t4.packets) /
        static_cast<double>(std::max<std::uint64_t>(t3.packets, 1));
    findings.push_back(Finding{
        "Reactivity",
        "A responsive host multiplies the attention its surrounding "
        "address space receives; keep honeypot reactivity in mind when "
        "interpreting volumes.",
        "reactive T4 received " + analysis::fixed(ratio, 0) +
            "x the packets of the equally-covered silent T3"});
  }

  // (v) Structured target addresses dominate scanner behavior.
  {
    const auto& packets = experiment.telescope(T1).capture().packets();
    const auto& sessions = summary.telescope(T1).sessions128;
    std::uint64_t structured = 0;
    std::uint64_t lowByteScanners = 0;
    const analysis::TaxonomyResult taxonomy = analysis::classifyCapture(
        packets, sessions, nullptr);
    for (const auto& s : taxonomy.sessionAddrSel) {
      if (s == analysis::AddressSelection::Structured) ++structured;
    }
    for (const auto& profile : taxonomy.profiles) {
      // A scanner counts as low-byte-seeking if any of its sessions
      // contains a low-byte target.
      bool hit = false;
      for (std::uint32_t si : profile.sessionIdx) {
        for (std::uint32_t pi : sessions[si].packetIdx) {
          if (analysis::classifyAddress(packets[pi].dst) ==
              analysis::AddressType::LowByte) {
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
      if (hit) ++lowByteScanners;
    }
    findings.push_back(Finding{
        "Target structure",
        "Populate (or monitor) structured addresses: low-byte and other "
        "predictable IIDs are what most scanners try first.",
        analysis::fixed(
            analysis::percent(structured, taxonomy.sessionAddrSel.size()),
            1) +
            "% of T1 sessions use structured target selection; " +
            analysis::fixed(
                analysis::percent(lowByteScanners,
                                  taxonomy.profiles.size()),
                1) +
            "% of scanners probe at least one low-byte address"});
  }

  return findings;
}

} // namespace v6t::core
