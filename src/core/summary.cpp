#include "core/summary.hpp"

#include <unordered_set>

#include "analysis/parallel.hpp"

namespace v6t::core {

ExperimentSummary ExperimentSummary::compute(
    const std::array<const telescope::CaptureStore*, 4>& captures,
    const std::array<std::string, 4>& names) {
  return compute(captures, names, fault::FaultSpec{});
}

ExperimentSummary ExperimentSummary::compute(
    const std::array<const telescope::CaptureStore*, 4>& captures,
    const std::array<std::string, 4>& names,
    const fault::FaultSpec& faults) {
  return compute(captures, names, faults, 1);
}

ExperimentSummary ExperimentSummary::compute(
    const std::array<const telescope::CaptureStore*, 4>& captures,
    const std::array<std::string, 4>& names,
    const fault::FaultSpec& faults, unsigned threads) {
  ExperimentSummary summary;
  for (std::size_t i = 0; i < 4; ++i) summary.telescopes_[i].name = names[i];
  // Eight independent sessionization tasks (telescope x aggregation), each
  // writing only its own slot — identical output at any thread count.
  analysis::parallelFor(8, threads, [&](unsigned, std::size_t task) {
    const std::size_t i = task / 2;
    TelescopeSummary& out = summary.telescopes_[i];
    if (task % 2 == 0) {
      out.sessions128 = telescope::sessionize(
          captures[i]->packets(), telescope::SourceAgg::Addr128,
          telescope::kSessionTimeout, &out.stats128, faults.gapWindowsFor(i));
    } else {
      out.sessions64 = telescope::sessionize(
          captures[i]->packets(), telescope::SourceAgg::Net64,
          telescope::kSessionTimeout, &out.stats64, faults.gapWindowsFor(i));
    }
  });
  return summary;
}

ExperimentSummary ExperimentSummary::compute(const Experiment& experiment) {
  std::array<const telescope::CaptureStore*, 4> captures{};
  std::array<std::string, 4> names;
  for (std::size_t i = 0; i < 4; ++i) {
    const telescope::Telescope& t = experiment.telescope(i);
    captures[i] = &t.capture();
    names[i] = t.name();
  }
  return compute(captures, names);
}

ExperimentSummary ExperimentSummary::compute(const ExperimentRunner& runner) {
  return compute(runner, 1);
}

ExperimentSummary ExperimentSummary::compute(const ExperimentRunner& runner,
                                             unsigned threads) {
  return compute(runner.captures(),
                 {runner.telescopeName(0), runner.telescopeName(1),
                  runner.telescopeName(2), runner.telescopeName(3)},
                 runner.config().experiment.faults, threads);
}

TelescopeSummary::WindowStats ExperimentSummary::windowStats(
    const telescope::CaptureStore& capture, std::size_t telescopeIdx,
    Period period) const {
  TelescopeSummary::WindowStats stats;
  std::unordered_set<net::Ipv6Address> s128;
  std::unordered_set<net::Ipv6Address> s64;
  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<net::Ipv6Address> dsts;
  for (const net::Packet& p : capture.packets()) {
    if (!period.contains(p.ts)) continue;
    ++stats.packets;
    s128.insert(p.src);
    s64.insert(p.src.maskedTo(64));
    if (!p.srcAsn.unattributed()) asns.insert(p.srcAsn.value());
    dsts.insert(p.dst);
  }
  stats.sources128 = s128.size();
  stats.sources64 = s64.size();
  stats.asns = asns.size();
  stats.destinations = dsts.size();
  const TelescopeSummary& summary = telescopes_[telescopeIdx];
  stats.sessions128 = sessionsIn(summary.sessions128, period).size();
  stats.sessions64 = sessionsIn(summary.sessions64, period).size();
  return stats;
}

TelescopeSummary::WindowStats ExperimentSummary::windowStats(
    const Experiment& experiment, std::size_t telescopeIdx,
    Period period) const {
  return windowStats(experiment.telescope(telescopeIdx).capture(),
                     telescopeIdx, period);
}

std::set<net::Ipv6Address> ExperimentSummary::sources128(
    const telescope::CaptureStore& capture, Period period) {
  std::set<net::Ipv6Address> out;
  for (const net::Packet& p : capture.packets()) {
    if (period.contains(p.ts)) out.insert(p.src);
  }
  return out;
}

std::set<std::uint32_t> ExperimentSummary::sourceAsns(
    const telescope::CaptureStore& capture, Period period) {
  std::set<std::uint32_t> out;
  for (const net::Packet& p : capture.packets()) {
    if (period.contains(p.ts) && !p.srcAsn.unattributed()) {
      out.insert(p.srcAsn.value());
    }
  }
  return out;
}

std::set<net::Ipv6Address> ExperimentSummary::sources128(
    const Experiment& experiment, std::size_t telescopeIdx,
    Period period) const {
  return sources128(experiment.telescope(telescopeIdx).capture(), period);
}

std::set<std::uint32_t> ExperimentSummary::sourceAsns(
    const Experiment& experiment, std::size_t telescopeIdx,
    Period period) const {
  return sourceAsns(experiment.telescope(telescopeIdx).capture(), period);
}

std::vector<telescope::Session> sessionsIn(
    std::span<const telescope::Session> sessions, Period period) {
  std::vector<telescope::Session> out;
  for (const telescope::Session& s : sessions) {
    if (period.contains(s.start)) out.push_back(s);
  }
  return out;
}

} // namespace v6t::core
