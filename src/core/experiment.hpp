// v6t::core — the paper's experiment, end to end.
//
// Experiment wires together everything: the BGP control plane with the
// Fig. 2 split schedule, the four telescopes, the delivery fabric, the
// hitlist service, the IRR registry, and the calibrated scanner
// population. run() executes the full 44-week timeline on the simulated
// clock; afterwards the telescopes' capture stores hold the dataset that
// every table/figure is computed from.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/parallel.hpp"
#include "bgp/feed.hpp"
#include "bgp/hitlist.hpp"
#include "bgp/rib.hpp"
#include "bgp/route_object.hpp"
#include "bgp/splitter.hpp"
#include "fault/spec.hpp"
#include "obs/metrics.hpp"
#include "scanner/population.hpp"
#include "sim/engine.hpp"
#include "telescope/fabric.hpp"
#include "telescope/telescope.hpp"

namespace v6t::core {

struct ExperimentConfig {
  std::uint64_t seed = 42;
  double sourceScale = 0.25;
  double volumeScale = 0.02;

  // Timeline (defaults reproduce the paper: 12-week baseline, 16 bi-weekly
  // splits with a one-day withdraw gap => 17 prefixes, /48 most specific).
  sim::Duration baseline = sim::weeks(12);
  sim::Duration cycle = sim::weeks(2);
  sim::Duration withdrawGap = sim::days(1);
  int splits = 16;

  // Address plan. 3fff::/20 is reserved for documentation (RFC 9637), so
  // like the paper's 2001:db8:: narrative these are stand-in prefixes.
  net::Prefix t1Base = net::Prefix::mustParse("3fff:100::/32");
  net::Prefix t2Prefix = net::Prefix::mustParse("3fff:2::/48");
  net::Prefix t2Productive = net::Prefix::mustParse("3fff:2:0:ff00::/56");
  net::Ipv6Address t2Attractor =
      net::Ipv6Address::mustParse("3fff:2:0:5000::31");
  net::Prefix covering = net::Prefix::mustParse("3fff:e00::/29");
  net::Prefix t3Prefix = net::Prefix::mustParse("3fff:e03:3::/48");
  net::Prefix t4Prefix = net::Prefix::mustParse("3fff:e05:7::/48");

  net::Asn ourAsn{65010}; // origin of T1/T2
  net::Asn coveringAsn{65020}; // third party originating the /29

  /// When (relative to start) the route6 object for the stable /33 is
  /// created — four months in, per §3.2.
  sim::Duration routeObjectAt = sim::weeks(17);

  /// Stop the simulation early (e.g. after the baseline only); nullopt
  /// runs the complete schedule.
  std::optional<sim::Duration> runLimit;

  /// Worker shards for the parallel ExperimentRunner; the serial Experiment
  /// ignores it. The runner's results are bitwise-identical for every value
  /// — see DESIGN.md's determinism contract.
  unsigned threads = 1;

  /// Worker threads for the post-run analysis pipeline (taxonomy, NIST
  /// battery, summary sessionization) — same bitwise-identical contract,
  /// see DESIGN.md §12. 0 = inherit `threads`.
  unsigned analysisThreads = 0;
  [[nodiscard]] unsigned effectiveAnalysisThreads() const {
    return analysisThreads != 0 ? analysisThreads : threads;
  }

  /// Cost threshold at which the analysis scheduler splits a heavy
  /// source/session into subtasks (DESIGN.md §13). Never changes results
  /// — only how the work is diced for the workers.
  std::uint64_t analysisMinSplitCost = analysis::kDefaultMinSplitCost;

  /// Out-of-core capture spill (DESIGN.md §15). When non-empty, the
  /// parallel runner streams each shard's telescope captures into v6tseg
  /// segment stores under `<dir>/shard-<s>/<telescope>` at every epoch
  /// boundary instead of accumulating them in memory, and analysis runs
  /// the streaming windowed path over the merged segment cursors. Results
  /// are bitwise-identical to the in-memory path for every budget.
  std::string captureSpillDir;
  /// Per-(shard, telescope) memtable byte budget before a segment is
  /// spilled; 0 = the SegmentStore default (64 MiB).
  std::uint64_t captureSpillBytes = 0;
  [[nodiscard]] bool captureSpillEnabled() const {
    return !captureSpillDir.empty();
  }

  /// Query-service knobs (`serve.*` keys, consumed by v6t_serve; the
  /// simulation itself ignores them). serveCacheBytes = 0 disables the
  /// result cache — the cache-off leg of bench/serve_load.
  std::uint16_t servePort = 8080;
  unsigned serveThreads = 2;
  std::uint64_t serveCacheBytes = 64ull << 20;
  unsigned serveCacheShards = 8;
  unsigned serveMaxConnections = 256;
  unsigned serveMaxRequestBytes = 8192;
  unsigned serveIdleTimeoutSeconds = 30;

  /// Fault-injection spec, honored by the parallel ExperimentRunner (the
  /// serial Experiment is kept fault-free as the pristine reference). An
  /// empty spec leaves every output bitwise-identical to a build without
  /// the fault layer.
  fault::FaultSpec faults;
  /// Seed for the keyed fault streams — independent of `seed` so the same
  /// world can be replayed under different fault draws and vice versa.
  std::uint64_t faultSeed = 0xfa017;

  /// Flight-recorder event recording (obs::trace, DESIGN.md §14).
  /// Observation-only: a traced run's captures are bitwise-identical to an
  /// untraced run's. Reaction-delay metrics populate regardless.
  bool traceEnabled = false;
  /// Per-shard ring capacity (events retained for the post-mortem dump).
  std::size_t traceRingSize = 1 << 16;
  /// Retain every sim-domain event for --trace-out export (unbounded).
  bool traceRetainAll = false;
};

/// Indexes into telescopes().
enum TelescopeIndex : std::size_t { T1 = 0, T2 = 1, T3 = 2, T4 = 3 };

/// The four observation points of §3.1 for a given address plan. Shared by
/// the serial Experiment and every shard of the parallel runner, so the
/// two worlds can never drift apart.
[[nodiscard]] std::array<std::unique_ptr<telescope::Telescope>, 4>
makeTelescopes(const ExperimentConfig& config);

class Experiment {
public:
  explicit Experiment(ExperimentConfig config);

  /// Execute the full timeline. Call once.
  void run();

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const bgp::SplitSchedule& schedule() const {
    return controller_->schedule();
  }
  [[nodiscard]] const telescope::Telescope& telescope(std::size_t i) const {
    return *telescopes_[i];
  }
  [[nodiscard]] std::array<const telescope::Telescope*, 4> telescopes() const;
  [[nodiscard]] const bgp::Rib& rib() const { return rib_; }
  [[nodiscard]] const bgp::HitlistService& hitlist() const {
    return *hitlist_;
  }
  [[nodiscard]] const bgp::IrrRegistry& irr() const { return irr_; }
  [[nodiscard]] const telescope::DeliveryFabric& fabric() const {
    return *fabric_;
  }
  [[nodiscard]] const scanner::Population& population() const {
    return population_;
  }
  [[nodiscard]] const sim::Engine& engine() const { return engine_; }
  /// Run-time metrics: live convergence-delay histogram plus a full
  /// component sample taken at the end of run(). Mutable so callers can
  /// add analysis-phase metrics before exporting.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }
  /// The experiment's flight recorder (always constructed; recording is
  /// gated by config.traceEnabled).
  [[nodiscard]] obs::trace::Tracer& tracer() { return *tracer_; }
  [[nodiscard]] const obs::trace::Tracer& tracer() const { return *tracer_; }

  /// Boundary between the initial observation period and the BGP
  /// experiment.
  [[nodiscard]] sim::SimTime baselineEnd() const {
    return sim::kEpoch + config_.baseline;
  }
  [[nodiscard]] sim::SimTime experimentEnd() const;

private:
  ExperimentConfig config_;
  obs::Registry metrics_; // declared before the components that bind to it
  std::unique_ptr<obs::trace::Tracer> tracer_; // likewise bound into below
  sim::Engine engine_;
  bgp::Rib rib_;
  bgp::IrrRegistry irr_;
  std::unique_ptr<bgp::BgpFeed> feed_;
  std::unique_ptr<bgp::HitlistService> hitlist_;
  std::unique_ptr<telescope::DeliveryFabric> fabric_;
  std::array<std::unique_ptr<telescope::Telescope>, 4> telescopes_;
  std::unique_ptr<bgp::SplitController> controller_;
  scanner::Population population_;
  bool ran_ = false;
};

} // namespace v6t::core
