// v6t::core — experiment configuration files.
//
// A small key = value format (with '#' comments) so deployments can be
// described declaratively and run by the v6t_run tool:
//
//     # my-deployment.conf
//     seed          = 42
//     source_scale  = 0.25
//     volume_scale  = 0.02
//     baseline_weeks = 12
//     splits        = 16
//     t1_base       = 3fff:100::/32
//     t2_prefix     = 3fff:2::/48
//
// Unknown keys are reported as errors (typos must not silently become
// defaults). All keys are optional; defaults reproduce the paper.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace v6t::core {

struct ConfigParseResult {
  ExperimentConfig config;
  std::vector<std::string> errors; // empty on success

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse a configuration stream. Returns the config plus any errors
/// (line-tagged); on error the config holds the values parsed so far.
[[nodiscard]] ConfigParseResult parseExperimentConfig(std::istream& in);

/// Parse from a string (convenience for tests).
[[nodiscard]] ConfigParseResult parseExperimentConfig(
    const std::string& text);

/// Serialize a config back to the file format (round-trips through the
/// parser).
[[nodiscard]] std::string formatExperimentConfig(const ExperimentConfig& c);

} // namespace v6t::core
