#include "core/config.hpp"

#include <charconv>
#include <sstream>

namespace v6t::core {

namespace {

std::string trim(std::string_view text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(" \t\r");
  return std::string{text.substr(first, last - first + 1)};
}

bool parseU64(const std::string& text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseDouble(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

} // namespace

ConfigParseResult parseExperimentConfig(std::istream& in) {
  ConfigParseResult result;
  std::string line;
  int lineNo = 0;
  auto error = [&](const std::string& message) {
    result.errors.push_back("line " + std::to_string(lineNo) + ": " +
                            message);
  };

  while (std::getline(in, line)) {
    ++lineNo;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      error("expected 'key = value'");
      continue;
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty() || value.empty()) {
      error("empty key or value");
      continue;
    }

    ExperimentConfig& c = result.config;
    auto setPrefix = [&](net::Prefix& out) {
      if (auto p = net::Prefix::parse(value)) {
        out = *p;
      } else {
        error("bad prefix '" + value + "'");
      }
    };
    auto setAddress = [&](net::Ipv6Address& out) {
      if (auto a = net::Ipv6Address::parse(value)) {
        out = *a;
      } else {
        error("bad address '" + value + "'");
      }
    };
    auto setU64 = [&](std::uint64_t& out) {
      if (!parseU64(value, out)) error("bad integer '" + value + "'");
    };
    auto setScale = [&](double& out) {
      double v = 0;
      if (!parseDouble(value, v) || v <= 0.0 || v > 1.0) {
        error("scale must be in (0, 1]: '" + value + "'");
      } else {
        out = v;
      }
    };
    auto setWeeks = [&](sim::Duration& out) {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v == 0 || v > 520) {
        error("weeks must be 1..520: '" + value + "'");
      } else {
        out = sim::weeks(static_cast<std::int64_t>(v));
      }
    };

    if (key == "seed") {
      setU64(c.seed);
    } else if (key == "source_scale") {
      setScale(c.sourceScale);
    } else if (key == "volume_scale") {
      setScale(c.volumeScale);
    } else if (key == "baseline_weeks") {
      setWeeks(c.baseline);
    } else if (key == "cycle_weeks") {
      setWeeks(c.cycle);
    } else if (key == "splits") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 90) {
        error("splits must be 1..90: '" + value + "'");
      } else {
        c.splits = static_cast<int>(v);
      }
    } else if (key == "withdraw_gap_days") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v > 13) {
        error("withdraw_gap_days must be 0..13: '" + value + "'");
      } else {
        c.withdrawGap = sim::days(static_cast<std::int64_t>(v));
      }
    } else if (key == "route_object_weeks") {
      setWeeks(c.routeObjectAt);
    } else if (key == "t1_base") {
      setPrefix(c.t1Base);
    } else if (key == "t2_prefix") {
      setPrefix(c.t2Prefix);
    } else if (key == "t2_productive") {
      setPrefix(c.t2Productive);
    } else if (key == "t2_attractor") {
      setAddress(c.t2Attractor);
    } else if (key == "covering") {
      setPrefix(c.covering);
    } else if (key == "t3_prefix") {
      setPrefix(c.t3Prefix);
    } else if (key == "t4_prefix") {
      setPrefix(c.t4Prefix);
    } else if (key == "threads") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 64) {
        error("threads must be 1..64: '" + value + "'");
      } else {
        c.threads = static_cast<unsigned>(v);
      }
    } else if (key == "analysis.threads") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v > 64) {
        error("analysis.threads must be 0..64 (0 = inherit threads): '" +
              value + "'");
      } else {
        c.analysisThreads = static_cast<unsigned>(v);
      }
    } else if (key == "analysis.min_split_cost") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1) {
        error("analysis.min_split_cost must be >= 1: '" + value + "'");
      } else {
        c.analysisMinSplitCost = v;
      }
    } else if (key == "capture.spill_dir") {
      c.captureSpillDir = value;
    } else if (key == "capture.spill_bytes") {
      setU64(c.captureSpillBytes);
    } else if (key == "serve.port") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v > 65535) {
        error("serve.port must be 0..65535 (0 = ephemeral): '" + value +
              "'");
      } else {
        c.servePort = static_cast<std::uint16_t>(v);
      }
    } else if (key == "serve.threads") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 64) {
        error("serve.threads must be 1..64: '" + value + "'");
      } else {
        c.serveThreads = static_cast<unsigned>(v);
      }
    } else if (key == "serve.cache_bytes") {
      setU64(c.serveCacheBytes);
    } else if (key == "serve.cache_shards") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 256) {
        error("serve.cache_shards must be 1..256: '" + value + "'");
      } else {
        c.serveCacheShards = static_cast<unsigned>(v);
      }
    } else if (key == "serve.max_connections") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 65536) {
        error("serve.max_connections must be 1..65536: '" + value + "'");
      } else {
        c.serveMaxConnections = static_cast<unsigned>(v);
      }
    } else if (key == "serve.max_request_bytes") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 512 || v > (1u << 20)) {
        error("serve.max_request_bytes must be 512..1048576: '" + value +
              "'");
      } else {
        c.serveMaxRequestBytes = static_cast<unsigned>(v);
      }
    } else if (key == "serve.idle_timeout_seconds") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > 3600) {
        error("serve.idle_timeout_seconds must be 1..3600: '" + value +
              "'");
      } else {
        c.serveIdleTimeoutSeconds = static_cast<unsigned>(v);
      }
    } else if (key == "trace.enabled") {
      if (value == "true" || value == "1") {
        c.traceEnabled = true;
      } else if (value == "false" || value == "0") {
        c.traceEnabled = false;
      } else {
        error("trace.enabled must be true/false: '" + value + "'");
      }
    } else if (key == "trace.ring_size") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v < 1 || v > (1ULL << 28)) {
        error("trace.ring_size must be 1..2^28: '" + value + "'");
      } else {
        c.traceRingSize = static_cast<std::size_t>(v);
      }
    } else if (key == "our_asn") {
      std::uint64_t v = 0;
      if (!parseU64(value, v) || v == 0 || v > 0xffffffffULL) {
        error("bad ASN '" + value + "'");
      } else {
        c.ourAsn = net::Asn{static_cast<std::uint32_t>(v)};
      }
    } else if (key == "fault_seed") {
      setU64(c.faultSeed);
    } else if (key.starts_with("faults.")) {
      const std::string faultError =
          c.faults.applyKey(std::string_view{key}.substr(7), value);
      if (!faultError.empty()) error(faultError);
    } else {
      error("unknown key '" + key + "'");
    }
  }

  // Semantic validation.
  ++lineNo;
  if (result.ok()) {
    if (!result.config.covering.covers(result.config.t3Prefix)) {
      error("t3_prefix must lie inside covering");
    }
    if (!result.config.covering.covers(result.config.t4Prefix)) {
      error("t4_prefix must lie inside covering");
    }
    if (!result.config.t2Prefix.contains(result.config.t2Attractor)) {
      error("t2_attractor must lie inside t2_prefix");
    }
    if (result.config.t2Productive.contains(result.config.t2Attractor)) {
      error("t2_attractor must not lie inside t2_productive");
    }
    const unsigned deepest =
        result.config.t1Base.length() +
        static_cast<unsigned>(result.config.splits);
    if (deepest > 128) {
      error("splits exceed the host bits of t1_base");
    }
  }
  return result;
}

ConfigParseResult parseExperimentConfig(const std::string& text) {
  std::istringstream in{text};
  return parseExperimentConfig(in);
}

std::string formatExperimentConfig(const ExperimentConfig& c) {
  std::ostringstream out;
  out << "# v6telescope experiment configuration\n"
      << "seed = " << c.seed << "\n"
      << "source_scale = " << c.sourceScale << "\n"
      << "volume_scale = " << c.volumeScale << "\n"
      << "baseline_weeks = " << c.baseline.millis() / sim::weeks(1).millis()
      << "\n"
      << "cycle_weeks = " << c.cycle.millis() / sim::weeks(1).millis() << "\n"
      << "splits = " << c.splits << "\n"
      << "withdraw_gap_days = "
      << c.withdrawGap.millis() / sim::days(1).millis() << "\n"
      << "route_object_weeks = "
      << c.routeObjectAt.millis() / sim::weeks(1).millis() << "\n"
      << "t1_base = " << c.t1Base.toString() << "\n"
      << "t2_prefix = " << c.t2Prefix.toString() << "\n"
      << "t2_productive = " << c.t2Productive.toString() << "\n"
      << "t2_attractor = " << c.t2Attractor.toString() << "\n"
      << "covering = " << c.covering.toString() << "\n"
      << "t3_prefix = " << c.t3Prefix.toString() << "\n"
      << "t4_prefix = " << c.t4Prefix.toString() << "\n"
      << "our_asn = " << c.ourAsn.value() << "\n"
      << "threads = " << c.threads << "\n";
  // Printed only when set: 0 (inherit `threads`) formats exactly as
  // configs did before the analysis pipeline existed (golden round-trip
  // test).
  if (c.analysisThreads != 0) {
    out << "analysis.threads = " << c.analysisThreads << "\n";
  }
  if (c.analysisMinSplitCost != ExperimentConfig{}.analysisMinSplitCost) {
    out << "analysis.min_split_cost = " << c.analysisMinSplitCost << "\n";
  }
  // Spill keys only when configured: in-memory configs format exactly as
  // they did before the out-of-core store existed (golden round-trip).
  if (!c.captureSpillDir.empty()) {
    out << "capture.spill_dir = " << c.captureSpillDir << "\n";
  }
  if (c.captureSpillBytes != 0) {
    out << "capture.spill_bytes = " << c.captureSpillBytes << "\n";
  }
  // Serve keys only when non-default: configs written before the query
  // service existed keep formatting byte-identically (golden round-trip).
  {
    const ExperimentConfig defaults;
    if (c.servePort != defaults.servePort) {
      out << "serve.port = " << c.servePort << "\n";
    }
    if (c.serveThreads != defaults.serveThreads) {
      out << "serve.threads = " << c.serveThreads << "\n";
    }
    if (c.serveCacheBytes != defaults.serveCacheBytes) {
      out << "serve.cache_bytes = " << c.serveCacheBytes << "\n";
    }
    if (c.serveCacheShards != defaults.serveCacheShards) {
      out << "serve.cache_shards = " << c.serveCacheShards << "\n";
    }
    if (c.serveMaxConnections != defaults.serveMaxConnections) {
      out << "serve.max_connections = " << c.serveMaxConnections << "\n";
    }
    if (c.serveMaxRequestBytes != defaults.serveMaxRequestBytes) {
      out << "serve.max_request_bytes = " << c.serveMaxRequestBytes << "\n";
    }
    if (c.serveIdleTimeoutSeconds != defaults.serveIdleTimeoutSeconds) {
      out << "serve.idle_timeout_seconds = " << c.serveIdleTimeoutSeconds
          << "\n";
    }
  }
  // Trace keys only when non-default, same golden round-trip reasoning.
  if (c.traceEnabled) out << "trace.enabled = true\n";
  if (c.traceRingSize != ExperimentConfig{}.traceRingSize) {
    out << "trace.ring_size = " << c.traceRingSize << "\n";
  }
  // Fault keys only when configured: fault-free configs format exactly as
  // they did before the fault layer existed (golden round-trip test).
  if (c.faultSeed != ExperimentConfig{}.faultSeed || !c.faults.empty()) {
    out << "fault_seed = " << c.faultSeed << "\n";
  }
  out << c.faults.formatKeys("faults.");
  return out.str();
}

} // namespace v6t::core
