#include "core/runner.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "bgp/feed.hpp"
#include "bgp/hitlist.hpp"
#include "bgp/rib.hpp"
#include "core/metrics.hpp"
#include "fault/injector.hpp"
#include "fault/keyed.hpp"
#include "obs/format.hpp"
#include "telescope/fabric.hpp"
#include "telescope/telescope.hpp"

namespace v6t::core {

namespace {

/// The full control-plane script, chronological: the static t = 0
/// announcements plus everything the SplitController would do. Pure data —
/// shards replay it against their private feeds, so no shard ever talks to
/// another shard's control plane. Expressed as fault::FeedOp so the fault
/// layer can rewrite it (drop/duplicate/delay/flap) before broadcast.
std::vector<fault::FeedOp> feedScript(const ExperimentConfig& config,
                                      const bgp::SplitSchedule& schedule) {
  std::vector<fault::FeedOp> script;
  // The long-standing announcements exist from the first instant, in the
  // same order Experiment::run issues them.
  script.push_back({sim::kEpoch, true, config.t2Prefix, config.ourAsn});
  script.push_back({sim::kEpoch, true, config.covering, config.coveringAsn});
  for (const bgp::AnnouncementCycle& cycle : schedule.cycles()) {
    if (cycle.index > 0) {
      const bgp::AnnouncementCycle& prev =
          schedule.cycles()[static_cast<std::size_t>(cycle.index) - 1];
      for (const net::Prefix& p : prev.announced) {
        script.push_back({cycle.withdrawAt, false, p, config.ourAsn});
      }
    }
    for (const net::Prefix& p : cycle.announced) {
      script.push_back({cycle.announceAt, true, p, config.ourAsn});
    }
  }
  return script;
}

/// A shard's private world: the complete control plane plus its population
/// slice. Mirrors Experiment's construction exactly (same seeds, same
/// component order) so threads=1 reproduces the serial environment.
struct ShardWorld {
  sim::Engine engine;
  bgp::Rib rib;
  std::unique_ptr<bgp::BgpFeed> feed;
  std::unique_ptr<bgp::HitlistService> hitlist;
  std::unique_ptr<telescope::DeliveryFabric> fabric;
  std::array<std::unique_ptr<telescope::Telescope>, 4> telescopes;
  std::unique_ptr<fault::PacketFaultPlane> faultPlane;
  scanner::Population population;

  ShardWorld(const ExperimentConfig& config,
             const scanner::PopulationPlan& plan, unsigned shardCount,
             unsigned shardId, obs::Registry& metrics,
             obs::trace::Tracer* tracer) {
    feed = std::make_unique<bgp::BgpFeed>(engine, rib, config.seed ^ 0xfeed);
    feed->bindMetrics(metrics);
    feed->bindTrace(tracer);
    hitlist = std::make_unique<bgp::HitlistService>(
        engine, *feed, bgp::HitlistService::Params{}, config.seed ^ 0x417);
    fabric = std::make_unique<telescope::DeliveryFabric>(engine, rib);
    fabric->setShard(shardId, shardCount);
    telescopes = makeTelescopes(config);
    for (std::size_t i = 0; i < telescopes.size(); ++i) {
      telescopes[i]->bindTrace(tracer, static_cast<std::uint32_t>(1000 + i));
      fabric->attach(*telescopes[i]);
    }
    if (config.faults.hasPacketFaults()) {
      // Stateless per-packet draws keyed by (originId, originSeq): every
      // shard's plane makes the same call for the same packet, so sharding
      // never changes which packets are faulted.
      faultPlane = std::make_unique<fault::PacketFaultPlane>(config.faults,
                                                            config.faultSeed);
      faultPlane->bindMetrics(metrics);
      fabric->setTap(faultPlane.get());
    }
    population =
        scanner::instantiate(plan, engine, *fabric, shardCount, shardId);
  }
};

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

} // namespace

ExperimentRunner::ExperimentRunner(RunnerConfig config)
    : config_(std::move(config)) {
  obs::Span planSpan(runnerMetrics_, "runner.phase.plan_seconds");
  bgp::SplitSchedule::Params scheduleParams;
  scheduleParams.base = config_.experiment.t1Base;
  scheduleParams.start = sim::kEpoch;
  scheduleParams.baseline = config_.experiment.baseline;
  scheduleParams.cycle = config_.experiment.cycle;
  scheduleParams.withdrawGap = config_.experiment.withdrawGap;
  scheduleParams.splits = config_.experiment.splits;
  schedule_ = bgp::SplitSchedule::make(scheduleParams);

  scanner::PopulationParams populationParams;
  populationParams.seed = config_.experiment.seed;
  populationParams.sourceScale = config_.experiment.sourceScale;
  populationParams.volumeScale = config_.experiment.volumeScale;
  populationParams.t1Base = config_.experiment.t1Base;
  populationParams.t2Prefix = config_.experiment.t2Prefix;
  populationParams.t2Attractor = config_.experiment.t2Attractor;
  populationParams.t3Prefix = config_.experiment.t3Prefix;
  populationParams.t4Prefix = config_.experiment.t4Prefix;
  populationParams.coveringPrefix = config_.experiment.covering;
  populationParams.start = sim::kEpoch;
  populationParams.end = schedule_.endOfExperiment();
  // The plan is computed once, serially: the builder's RNG draw sequence
  // defines the population, and every shard instantiates from this one
  // shared (read-only) plan.
  plan_ = scanner::PopulationBuilder{populationParams}.plan();

  // Observability state must exist before run(): a live exporter may call
  // snapshotMetrics()/progressLine() the moment the runner is constructed.
  const unsigned shardCount = std::max(1u, config_.experiment.threads);
  shardMetrics_.reserve(shardCount);
  shardTracers_.reserve(shardCount);
  for (unsigned s = 0; s < shardCount; ++s) {
    shardMetrics_.push_back(std::make_unique<obs::Registry>());
    // Shard 0 is the control-plane owner: every shard replays the script
    // and stamps identical trace IDs, but exactly one emits the
    // BgpUpdateRoot events, so each update has exactly one root run-wide.
    shardTracers_.push_back(std::make_unique<obs::trace::Tracer>(
        obs::trace::TracerOptions{config_.experiment.seed,
                                  config_.experiment.traceRingSize,
                                  config_.experiment.traceEnabled,
                                  config_.experiment.traceRetainAll,
                                  /*controlPlaneOwner=*/s == 0},
        shardMetrics_.back().get()));
  }
  epochsDone_.reset(new std::atomic<std::uint64_t>[shardCount]);
  for (unsigned s = 0; s < shardCount; ++s) epochsDone_[s] = 0;
  const std::int64_t spanMs = (experimentEnd() - sim::kEpoch).millis();
  const std::int64_t epochMs = std::max<std::int64_t>(1, config_.epoch.millis());
  totalEpochs_ = static_cast<std::uint64_t>((spanMs + epochMs - 1) / epochMs);
}

sim::SimTime ExperimentRunner::experimentEnd() const {
  return config_.experiment.runLimit
             ? sim::kEpoch + *config_.experiment.runLimit
             : schedule_.endOfExperiment();
}

std::array<const telescope::CaptureStore*, 4> ExperimentRunner::captures()
    const {
  return {&captures_[0], &captures_[1], &captures_[2], &captures_[3]};
}

std::vector<const telescope::SegmentStore*> ExperimentRunner::spillStores(
    std::size_t i) const {
  std::vector<const telescope::SegmentStore*> out;
  out.reserve(spillStores_.size());
  for (const auto& shard : spillStores_) out.push_back(shard[i].get());
  return out;
}

telescope::KWayMerge<telescope::SegmentStore::Cursor>
ExperimentRunner::streamCapture(std::size_t i) const {
  std::vector<telescope::SegmentStore::Cursor> cursors;
  cursors.reserve(spillStores_.size());
  for (const auto& shard : spillStores_) {
    cursors.push_back(shard[i]->cursor());
  }
  return telescope::KWayMerge<telescope::SegmentStore::Cursor>{
      std::move(cursors)};
}

telescope::KWayMerge<telescope::SegmentStore::Cursor>
ExperimentRunner::streamCapture(std::size_t i, sim::SimTime from) const {
  std::vector<telescope::SegmentStore::Cursor> cursors;
  cursors.reserve(spillStores_.size());
  for (const auto& shard : spillStores_) {
    cursors.push_back(shard[i]->cursor(from));
  }
  return telescope::KWayMerge<telescope::SegmentStore::Cursor>{
      std::move(cursors)};
}

telescope::KWayMerge<telescope::SegmentStore::Cursor>
ExperimentRunner::streamCaptureForSource(
    std::size_t i, const net::Ipv6Address& addr,
    std::optional<sim::SimTime> from) const {
  std::vector<telescope::SegmentStore::Cursor> cursors;
  cursors.reserve(spillStores_.size());
  for (const auto& shard : spillStores_) {
    cursors.push_back(shard[i]->cursorForSource(addr, from));
  }
  return telescope::KWayMerge<telescope::SegmentStore::Cursor>{
      std::move(cursors)};
}

std::uint64_t ExperimentRunner::capturePacketCount(std::size_t i) const {
  if (!spillEnabled()) return captures_[i].packetCount();
  std::uint64_t total = 0;
  for (const auto& shard : spillStores_) total += shard[i]->recordCount();
  return total;
}

std::vector<const obs::trace::Tracer*> ExperimentRunner::tracers() const {
  std::vector<const obs::trace::Tracer*> out;
  out.reserve(shardTracers_.size());
  for (const auto& t : shardTracers_) out.push_back(t.get());
  return out;
}

std::vector<obs::trace::Tracer*> ExperimentRunner::tracersMutable() {
  std::vector<obs::trace::Tracer*> out;
  out.reserve(shardTracers_.size());
  for (const auto& t : shardTracers_) out.push_back(t.get());
  return out;
}

void ExperimentRunner::snapshotMetrics(obs::Registry& out) const {
  out.aggregateFrom(runnerMetrics_);
  for (const auto& shard : shardMetrics_) out.aggregateFrom(*shard);
}

std::string ExperimentRunner::progressLine() const {
  if (!started_.load(std::memory_order_acquire)) {
    return "progress phase=plan";
  }
  const unsigned shardCount =
      static_cast<unsigned>(shardMetrics_.size());
  std::uint64_t minEpochs = totalEpochs_;
  for (unsigned s = 0; s < shardCount; ++s) {
    minEpochs = std::min(
        minEpochs, epochsDone_[s].load(std::memory_order_relaxed));
  }
  double packets = 0.0;
  double dropped = 0.0;
  for (const auto& shard : shardMetrics_) {
    for (const char* name :
         {"telescope.T1.packets_total", "telescope.T2.packets_total",
          "telescope.T3.packets_total", "telescope.T4.packets_total"}) {
      packets += shard->value(name).value_or(0.0);
    }
    dropped += shard->value("fabric.dropped_no_route_total").value_or(0.0);
  }
  const double elapsed = secondsSince(runStart_);
  const double simWeeks = static_cast<double>(minEpochs) *
                          static_cast<double>(config_.epoch.millis()) /
                          static_cast<double>(sim::weeks(1).millis());
  std::string line = "progress epochs=" + std::to_string(minEpochs) + "/" +
                     std::to_string(totalEpochs_) +
                     " sim_weeks=" + obs::fmt::fixed(simWeeks, 1) +
                     " packets=" +
                     obs::fmt::withThousands(
                         static_cast<std::uint64_t>(packets)) +
                     " dropped_no_route=" +
                     obs::fmt::withThousands(
                         static_cast<std::uint64_t>(dropped)) +
                     " elapsed=" + obs::fmt::fixed(elapsed, 1) + "s";
  if (minEpochs > 0 && minEpochs < totalEpochs_) {
    const double eta = elapsed *
                       static_cast<double>(totalEpochs_ - minEpochs) /
                       static_cast<double>(minEpochs);
    line += " eta=" + obs::fmt::fixed(eta, 1) + "s";
  }
  return line;
}

void ExperimentRunner::run() {
  if (ran_) return;
  ran_ = true;

  using Clock = std::chrono::steady_clock;
  const unsigned shardCount = std::max(1u, config_.experiment.threads);
  const sim::SimTime end = experimentEnd();
  const fault::FaultSpec& faults = config_.experiment.faults;
  fault::ScriptFaultStats scriptFaults;
  const std::vector<fault::FeedOp> script = fault::applyBgpFaults(
      feedScript(config_.experiment, schedule_), faults,
      config_.experiment.faultSeed, config_.experiment.covering,
      &scriptFaults);
  if (!faults.empty()) {
    // Run-level, recorded exactly once: the script transform and the gap
    // schedule are global facts, so folding them per shard would make the
    // aggregate depend on the shard count. Zero-fault runs register no
    // fault.* keys at all — the metric surface stays bitwise-identical.
    fault::recordScriptFaultMetrics(scriptFaults, faults, runnerMetrics_);
  }

  std::vector<std::unique_ptr<ShardWorld>> worlds(shardCount);
  stats_.shards.assign(shardCount, ShardStats{});
  if (spillEnabled()) spillStores_.resize(shardCount);
  std::barrier<> barrier(static_cast<std::ptrdiff_t>(shardCount));
  std::mutex errorMutex;
  std::exception_ptr firstError;

  runnerMetrics_.gauge("runner.shards").set(static_cast<double>(shardCount));
  runnerMetrics_.gauge("runner.epochs_total")
      .set(static_cast<double>(totalEpochs_));
  runStart_ = Clock::now();
  started_.store(true, std::memory_order_release);

  auto worker = [&](unsigned shardId) {
    ShardStats& shard = stats_.shards[shardId];
    shard.shardId = shardId;
    obs::Registry& metrics = *shardMetrics_[shardId];
    const std::string shardTag =
        "runner.shard." + std::to_string(shardId);
    const auto t0 = Clock::now();
    try {
      obs::Span instantiateSpan(metrics, "runner.phase.instantiate_seconds");
      auto world = std::make_unique<ShardWorld>(
          config_.experiment, plan_, shardCount, shardId, metrics,
          shardTracers_[shardId].get());
      instantiateSpan.stop();

      // Spill mode: one segment store per (shard, telescope); captures
      // drain into it at every epoch boundary, so shard memory stays
      // bounded by the memtable budget instead of growing with the run.
      std::array<telescope::SegmentStore*, 4> stores{};
      if (spillEnabled()) {
        for (std::size_t i = 0; i < 4; ++i) {
          telescope::SegmentStoreOptions storeOptions;
          storeOptions.dir =
              std::filesystem::path{config_.experiment.captureSpillDir} /
              ("shard-" + std::to_string(shardId)) / names_[i];
          if (config_.experiment.captureSpillBytes != 0) {
            storeOptions.spillBytes = config_.experiment.captureSpillBytes;
          }
          storeOptions.metrics = &metrics;
          spillStores_[shardId][i] = std::make_unique<telescope::SegmentStore>(
              std::move(storeOptions));
          stores[i] = spillStores_[shardId][i].get();
        }
      }
      auto drainCaptures = [&] {
        if (stores[0] == nullptr) return;
        for (std::size_t i = 0; i < 4; ++i) {
          telescope::CaptureStore& cap = world->telescopes[i]->capture();
          if (cap.packetCount() == 0) continue;
          // Epoch slices are time-ordered, so appending each slice in
          // capture order preserves the store's time-ordered-append
          // contract across the whole run.
          for (const net::Packet& p : cap.packets()) stores[i]->append(p);
          cap.clear();
        }
      };

      shard.scanners = world->population.size();
      metrics.gauge(shardTag + ".scanners")
          .set(static_cast<double>(shard.scanners));

      // Per-shard component sampling at every epoch boundary keeps the
      // live snapshot/heartbeat fresh without touching another thread's
      // data — all reads are of this shard's own world.
      ComponentSampler sampler{metrics};
      obs::Histogram& barrierWaitHist = metrics.histogram(
          "runner.barrier_wait_seconds", obs::durationBoundsSeconds());
      obs::Histogram& epochHist = metrics.histogram(
          "runner.epoch_seconds", obs::durationBoundsSeconds());
      obs::Gauge& barrierWaitTotal = metrics.gauge(
          shardTag + ".barrier_wait_seconds_total", obs::GaugeMode::Sum);
      obs::Counter& shardEvents = metrics.counter(shardTag + ".events_total");
      // Registered only when stalls are configured, so a zero-fault run
      // exposes no fault.* keys.
      obs::Counter* stallCounter =
          faults.stallProb > 0.0
              ? &metrics.counter("fault.injected.stall_total")
              : nullptr;

      std::size_t cursor = 0;
      auto inject = [&](sim::SimTime upTo) {
        while (cursor < script.size() && script[cursor].at <= upTo) {
          const fault::FeedOp& a = script[cursor++];
          world->engine.schedule(a.at, [w = world.get(), a]() {
            if (a.announce) {
              w->feed->announce(a.prefix, a.origin);
            } else {
              w->feed->withdraw(a.prefix);
            }
          });
        }
      };

      // The first epoch's broadcast happens before any agent comes online:
      // the t = 0 announcements must be queued ahead of the scanners'
      // bootstrap events so the RIB is populated when they first send.
      inject(std::min(sim::kEpoch + config_.epoch, end));
      world->population.startAll(world->feed.get(), world->hitlist.get(),
                                 shardTracers_[shardId].get());

      std::uint64_t eventsAtEpochStart = 0;
      auto epochStart = Clock::now();
      auto closeEpoch = [&] {
        // Wall time and event count of the epoch slice that just ran.
        const std::uint64_t executed = world->engine.executedEvents();
        shard.epochEvents.push_back(executed - eventsAtEpochStart);
        shardEvents.inc(executed - eventsAtEpochStart);
        eventsAtEpochStart = executed;
        epochHist.observe(secondsSince(epochStart));
        sampler.sample(world->engine, world->rib, *world->fabric,
                       world->telescopes);
        drainCaptures();
      };

      shard.events = world->engine.runEpochs(
          end, config_.epoch, [&](int epochIndex, sim::SimTime sliceEnd) {
            if (epochIndex > 0) {
              closeEpoch();
              epochsDone_[shardId].store(
                  static_cast<std::uint64_t>(epochIndex),
                  std::memory_order_relaxed);
            }
            // Injected shard stall: a wall-clock sleep before the barrier,
            // keyed by (shard, epoch). It delays every other shard's
            // arrive_and_wait — exactly the imbalance the epoch-barrier
            // logic must absorb — while the simulated clock never notices.
            if (stallCounter != nullptr &&
                fault::drawChance(config_.experiment.faultSeed,
                                  fault::Kind::Stall, faults.stallProb,
                                  shardId,
                                  static_cast<std::uint64_t>(epochIndex))) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(faults.stallFor.millis()));
              stallCounter->inc();
            }
            const auto waitStart = Clock::now();
            barrier.arrive_and_wait();
            const double waited = secondsSince(waitStart);
            shard.barrierWaitSeconds += waited;
            barrierWaitHist.observe(waited);
            barrierWaitTotal.add(waited);
            if (epochIndex > 0) inject(sliceEnd);
            epochStart = Clock::now();
          });
      closeEpoch();
      epochsDone_[shardId].store(totalEpochs_, std::memory_order_relaxed);

      for (const auto& t : world->telescopes) {
        // capturedPackets() is the lifetime total, valid whether or not
        // the store was drained into a segment store along the way.
        shard.packetsCaptured += t->capturedPackets();
        shard.excludedPackets += t->excludedPackets();
      }
      shard.droppedNoRoute = world->fabric->droppedNoRoute();
      shard.deliveredToVoid = world->fabric->deliveredToVoid();
      shard.queueDepthHighWater = world->engine.queueDepthHighWater();
      worlds[shardId] = std::move(world);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
      // Leave the barrier so surviving shards don't deadlock; this shard's
      // world stays null and the failure is rethrown after the join.
      barrier.arrive_and_drop();
    }
    shard.wallSeconds = secondsSince(t0);
    metrics.gauge(shardTag + ".wall_seconds").set(shard.wallSeconds);
  };

  const auto runStart = Clock::now();
  {
    obs::Span epochsSpan(runnerMetrics_, "runner.phase.epochs_seconds");
    std::vector<std::thread> threads;
    threads.reserve(shardCount);
    for (unsigned s = 0; s < shardCount; ++s) {
      threads.emplace_back(worker, s);
    }
    for (std::thread& t : threads) t.join();
  }
  stats_.runWallSeconds = secondsSince(runStart);
  if (firstError) std::rethrow_exception(firstError);

  // Deterministic merge: k-way merge the per-shard buffers into the
  // canonical (ts, originId, originSeq) order — also for one shard, whose
  // buffer arrives in engine-sequence order.
  const auto mergeStart = Clock::now();
  {
    obs::Span mergeSpan(runnerMetrics_, "runner.phase.merge_seconds");
    if (spillEnabled()) {
      // The packets already sit in per-shard segment stores in canonical
      // per-shard order; the cross-shard merge happens lazily through
      // streamCapture()'s k-way cursor, so nothing materializes here.
      for (std::size_t i = 0; i < 4; ++i) {
        stats_.packetsMerged += capturePacketCount(i);
      }
    } else {
      for (std::size_t i = 0; i < 4; ++i) {
        std::vector<const telescope::CaptureStore*> shards;
        shards.reserve(shardCount);
        for (const auto& world : worlds) {
          shards.push_back(&world->telescopes[i]->capture());
        }
        captures_[i].mergeFrom(shards);
        stats_.packetsMerged += captures_[i].packetCount();
      }
    }
  }
  stats_.mergeWallSeconds = secondsSince(mergeStart);
  runnerMetrics_.counter("runner.packets_merged_total")
      .inc(stats_.packetsMerged);

  for (const ShardStats& shard : stats_.shards) {
    stats_.totalEvents += shard.events;
    stats_.droppedNoRoute += shard.droppedNoRoute;
    stats_.deliveredToVoid += shard.deliveredToVoid;
    stats_.excludedPackets += shard.excludedPackets;
  }

  // The route6 object of §3.2 is a pure registry record with no effect on
  // any agent; keep it at the runner level instead of per shard.
  if (sim::kEpoch + config_.experiment.routeObjectAt <= end) {
    const auto [lower, upper] = config_.experiment.t1Base.split();
    irr_.addRoute6(lower, config_.experiment.ourAsn,
                   sim::kEpoch + config_.experiment.routeObjectAt);
  }

  snapshotMetrics(metrics_);
}

} // namespace v6t::core
