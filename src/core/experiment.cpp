#include "core/experiment.hpp"

#include "core/metrics.hpp"

namespace v6t::core {

std::array<std::unique_ptr<telescope::Telescope>, 4> makeTelescopes(
    const ExperimentConfig& config) {
  std::array<std::unique_ptr<telescope::Telescope>, 4> telescopes;
  telescopes[T1] = std::make_unique<telescope::Telescope>(
      telescope::TelescopeConfig{"T1",
                                 {config.t1Base},
                                 telescope::Mode::Passive,
                                 std::nullopt,
                                 std::nullopt});
  telescopes[T2] = std::make_unique<telescope::Telescope>(
      telescope::TelescopeConfig{"T2",
                                 {config.t2Prefix},
                                 telescope::Mode::Traceable,
                                 config.t2Productive,
                                 config.t2Attractor});
  telescopes[T3] = std::make_unique<telescope::Telescope>(
      telescope::TelescopeConfig{"T3",
                                 {config.t3Prefix},
                                 telescope::Mode::Passive,
                                 std::nullopt,
                                 std::nullopt});
  telescopes[T4] = std::make_unique<telescope::Telescope>(
      telescope::TelescopeConfig{"T4",
                                 {config.t4Prefix},
                                 telescope::Mode::Active,
                                 std::nullopt,
                                 std::nullopt});
  return telescopes;
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  tracer_ = std::make_unique<obs::trace::Tracer>(
      obs::trace::TracerOptions{config_.seed, config_.traceRingSize,
                                config_.traceEnabled, config_.traceRetainAll,
                                /*controlPlaneOwner=*/true},
      &metrics_);
  feed_ = std::make_unique<bgp::BgpFeed>(engine_, rib_, config_.seed ^ 0xfeed);
  feed_->bindMetrics(metrics_);
  feed_->bindTrace(tracer_.get());
  hitlist_ = std::make_unique<bgp::HitlistService>(
      engine_, *feed_, bgp::HitlistService::Params{}, config_.seed ^ 0x417);
  fabric_ = std::make_unique<telescope::DeliveryFabric>(engine_, rib_);

  telescopes_ = makeTelescopes(config_);
  for (std::size_t i = 0; i < telescopes_.size(); ++i) {
    // Telescope trace rows start at 1000 so they never collide with
    // scanner ids in the exported per-thread lanes.
    telescopes_[i]->bindTrace(tracer_.get(),
                              static_cast<std::uint32_t>(1000 + i));
    fabric_->attach(*telescopes_[i]);
  }

  // The split schedule for T1.
  bgp::SplitSchedule::Params scheduleParams;
  scheduleParams.base = config_.t1Base;
  scheduleParams.start = sim::kEpoch;
  scheduleParams.baseline = config_.baseline;
  scheduleParams.cycle = config_.cycle;
  scheduleParams.withdrawGap = config_.withdrawGap;
  scheduleParams.splits = config_.splits;
  controller_ = std::make_unique<bgp::SplitController>(
      engine_, *feed_, bgp::SplitSchedule::make(scheduleParams),
      config_.ourAsn);

  // The population.
  scanner::PopulationParams populationParams;
  populationParams.seed = config_.seed;
  populationParams.sourceScale = config_.sourceScale;
  populationParams.volumeScale = config_.volumeScale;
  populationParams.t1Base = config_.t1Base;
  populationParams.t2Prefix = config_.t2Prefix;
  populationParams.t2Attractor = config_.t2Attractor;
  populationParams.t3Prefix = config_.t3Prefix;
  populationParams.t4Prefix = config_.t4Prefix;
  populationParams.coveringPrefix = config_.covering;
  populationParams.start = sim::kEpoch;
  populationParams.end = controller_->schedule().endOfExperiment();
  scanner::PopulationBuilder builder{populationParams};
  population_ = scanner::instantiate(builder.plan(), engine_, *fabric_);
}

std::array<const telescope::Telescope*, 4> Experiment::telescopes() const {
  return {telescopes_[0].get(), telescopes_[1].get(), telescopes_[2].get(),
          telescopes_[3].get()};
}

sim::SimTime Experiment::experimentEnd() const {
  return controller_->schedule().endOfExperiment();
}

void Experiment::run() {
  if (ran_) return;
  ran_ = true;

  // t = 0: the long-standing announcements exist from the first instant.
  feed_->announce(config_.t2Prefix, config_.ourAsn);
  feed_->announce(config_.covering, config_.coveringAsn);

  // The T1 split schedule (cycle 0 announces the /32 at t = 0 as well).
  controller_->arm();

  // Route6 object for the stable /33, four months in (§3.2) — recorded so
  // its (absent) effect can be evaluated, exactly the paper's negative
  // result.
  engine_.schedule(sim::kEpoch + config_.routeObjectAt, [this]() {
    const auto [lower, upper] = config_.t1Base.split();
    irr_.addRoute6(lower, config_.ourAsn, engine_.now());
  });

  // Agents online.
  population_.startAll(feed_.get(), hitlist_.get(), tracer_.get());

  const sim::SimTime end =
      config_.runLimit ? sim::kEpoch + *config_.runLimit : experimentEnd();
  {
    obs::Span span(metrics_, "experiment.phase.run_seconds");
    engine_.run(end);
  }
  ComponentSampler{metrics_}.sample(engine_, rib_, *fabric_, telescopes_);
}

} // namespace v6t::core
