// v6t::core — shared post-run computation.
//
// Most benches and examples need the same derived views: per-telescope
// session lists at both aggregation levels and time-window filters for the
// initial vs. split periods. Computing them once here keeps every bench
// binary small and consistent.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "telescope/session.hpp"

namespace v6t::core {

struct Period {
  sim::SimTime from;
  sim::SimTime to; // exclusive

  [[nodiscard]] bool contains(sim::SimTime t) const {
    return t >= from && t < to;
  }
};

struct TelescopeSummary {
  std::string name;
  std::vector<telescope::Session> sessions128;
  std::vector<telescope::Session> sessions64;
  /// Sessionizer lifecycle counters (opened / closed-by-timeout / still
  /// open at end of measurement), surfaced through the obs registry.
  telescope::Sessionizer::Stats stats128;
  telescope::Sessionizer::Stats stats64;

  /// Distinct sources/ASes/destinations within a window, straight from the
  /// packet records.
  struct WindowStats {
    std::uint64_t packets = 0;
    std::size_t sources128 = 0;
    std::size_t sources64 = 0;
    std::size_t asns = 0;
    std::size_t destinations = 0;
    std::size_t sessions128 = 0;
    std::size_t sessions64 = 0;
  };
};

class ExperimentSummary {
public:
  /// Sessionize all four captures (both aggregation levels). The three
  /// overloads are interchangeable views of the same computation: a serial
  /// Experiment, a (merged) parallel ExperimentRunner, or bare capture
  /// stores with display names. The runner overload honors the config's
  /// declared capture gaps (gap-aware session closing); the spec overload
  /// lets callers pass them explicitly.
  /// The `threads` overloads fan the eight independent sessionization
  /// tasks (4 telescopes x 2 aggregation levels) over the analysis
  /// work-queue; each task writes only its own summary slot, so the
  /// result is identical for every thread count. The thread-less
  /// overloads are the serial (threads = 1) reference.
  static ExperimentSummary compute(const Experiment& experiment);
  static ExperimentSummary compute(const ExperimentRunner& runner);
  static ExperimentSummary compute(const ExperimentRunner& runner,
                                   unsigned threads);
  static ExperimentSummary compute(
      const std::array<const telescope::CaptureStore*, 4>& captures,
      const std::array<std::string, 4>& names);
  static ExperimentSummary compute(
      const std::array<const telescope::CaptureStore*, 4>& captures,
      const std::array<std::string, 4>& names,
      const fault::FaultSpec& faults);
  static ExperimentSummary compute(
      const std::array<const telescope::CaptureStore*, 4>& captures,
      const std::array<std::string, 4>& names,
      const fault::FaultSpec& faults, unsigned threads);

  [[nodiscard]] const TelescopeSummary& telescope(std::size_t i) const {
    return telescopes_[i];
  }

  [[nodiscard]] TelescopeSummary::WindowStats windowStats(
      const Experiment& experiment, std::size_t telescopeIdx,
      Period period) const;
  [[nodiscard]] TelescopeSummary::WindowStats windowStats(
      const telescope::CaptureStore& capture, std::size_t telescopeIdx,
      Period period) const;

  /// Distinct /128 sources (or origin ASes) seen at a telescope in a
  /// window — used by the overlap analyses (Fig. 8/16).
  [[nodiscard]] std::set<net::Ipv6Address> sources128(
      const Experiment& experiment, std::size_t telescopeIdx,
      Period period) const;
  [[nodiscard]] std::set<std::uint32_t> sourceAsns(
      const Experiment& experiment, std::size_t telescopeIdx,
      Period period) const;
  [[nodiscard]] static std::set<net::Ipv6Address> sources128(
      const telescope::CaptureStore& capture, Period period);
  [[nodiscard]] static std::set<std::uint32_t> sourceAsns(
      const telescope::CaptureStore& capture, Period period);

private:
  std::array<TelescopeSummary, 4> telescopes_;
};

/// Sessions whose start time falls inside the period.
[[nodiscard]] std::vector<telescope::Session> sessionsIn(
    std::span<const telescope::Session> sessions, Period period);

} // namespace v6t::core
