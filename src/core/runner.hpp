// v6t::core — the sharded parallel experiment runner.
//
// ExperimentRunner executes the same 44-week timeline as Experiment, but
// partitioned across N worker shards. Each shard owns a complete private
// replica of the control plane — engine, RIB, BGP feed, hitlist service,
// delivery fabric, and all four telescopes — and runs a 1/N slice of the
// scanner population (spec i lands in shard i mod N). The control-plane
// actions (the split schedule's announcements/withdraws and the static
// t = 0 announcements) are precomputed once from the SplitSchedule and
// broadcast read-only to every shard at epoch boundaries; a std::barrier
// keeps the shards' simulated clocks within one epoch of each other.
//
// Determinism contract: the merged result is bitwise-identical to the
// serial run for ANY thread count. Two properties make this hold:
//
//   1. Scanners are mutually independent given the control plane. Every
//      cross-agent randomness source is keyed, not shared: a scanner's
//      BGP-feed lag stream derives from (feed seed, scanner id), the
//      hitlist's from a fixed key — so a shard that hosts 1/N of the
//      population draws exactly the lags the full population would.
//   2. Each packet carries (originId, originSeq) — the emitting scanner
//      and its emission counter — giving every capture a unique canonical
//      order (ts, originId, originSeq). The merge stage k-way-merges the
//      per-shard buffers into that order; the serial path canonicalizes
//      the same way, so equal shard interleavings are guaranteed rather
//      than hoped for.
//
// The reference for equivalence tests is runner(threads=1); the classic
// Experiment is kept unchanged as the single-engine reference
// implementation for the existing benches and examples.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route_object.hpp"
#include "bgp/splitter.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scanner/population.hpp"
#include "telescope/capture_store.hpp"
#include "telescope/segment_store.hpp"

namespace v6t::core {

struct RunnerConfig {
  ExperimentConfig experiment; // `experiment.threads` is the shard count
  /// Barrier interval: control-plane actions are broadcast to the shards
  /// one epoch at a time, and no shard's clock may run ahead of a slower
  /// shard by more than this.
  sim::Duration epoch = sim::weeks(1);
};

/// What one worker shard did, for the timing/speedup report.
struct ShardStats {
  unsigned shardId = 0;
  std::size_t scanners = 0;
  std::uint64_t events = 0;
  std::uint64_t packetsCaptured = 0; // summed over the shard's telescopes
  std::uint64_t droppedNoRoute = 0;
  std::uint64_t deliveredToVoid = 0;
  std::uint64_t excludedPackets = 0; // landed in T2's productive /56
  double wallSeconds = 0.0;
  /// Total wall time this shard spent parked at the epoch barrier — the
  /// direct measure of shard imbalance (a fast shard waits for the slow
  /// one; a balanced run has near-zero waits everywhere).
  double barrierWaitSeconds = 0.0;
  /// Events executed per epoch slice, in epoch order.
  std::vector<std::uint64_t> epochEvents;
  std::uint64_t queueDepthHighWater = 0;
};

struct RunnerStats {
  std::vector<ShardStats> shards;
  double runWallSeconds = 0.0; // parallel phase: slowest shard + sync
  double mergeWallSeconds = 0.0;
  std::uint64_t totalEvents = 0;
  std::uint64_t packetsMerged = 0;
  std::uint64_t droppedNoRoute = 0;
  std::uint64_t deliveredToVoid = 0;
  std::uint64_t excludedPackets = 0;
};

class ExperimentRunner {
public:
  explicit ExperimentRunner(RunnerConfig config);

  /// Execute the timeline across the shards and merge the captures. Call
  /// once.
  void run();

  [[nodiscard]] const RunnerConfig& config() const { return config_; }
  [[nodiscard]] const bgp::SplitSchedule& schedule() const {
    return schedule_;
  }
  /// Merged capture of telescope `i` (TelescopeIndex), in canonical order.
  /// Empty in spill mode (`captureSpillEnabled`), where the packets live
  /// in the per-shard segment stores instead — use streamCapture().
  [[nodiscard]] const telescope::CaptureStore& capture(std::size_t i) const {
    return captures_[i];
  }

  // --- out-of-core spill mode (DESIGN.md §15) ----------------------------

  [[nodiscard]] bool spillEnabled() const {
    return config_.experiment.captureSpillEnabled();
  }
  /// Per-shard segment stores of telescope `i`; empty unless spill mode.
  [[nodiscard]] std::vector<const telescope::SegmentStore*> spillStores(
      std::size_t i) const;
  /// Canonical-order stream over every shard's store for telescope `i` —
  /// the same (ts, originId, originSeq) order capture(i) holds in
  /// in-memory mode, without materializing the packet vector.
  [[nodiscard]] telescope::KWayMerge<telescope::SegmentStore::Cursor>
  streamCapture(std::size_t i) const;
  /// Ranged variant: the same stream starting at the first packet with
  /// ts >= `from` (per-store sparse-index lower bounds; nothing before
  /// `from` is read off disk).
  [[nodiscard]] telescope::KWayMerge<telescope::SegmentStore::Cursor>
  streamCapture(std::size_t i, sim::SimTime from) const;
  /// Source-pruned variant for `--dump-captures --source`: each shard
  /// store contributes a cursorForSource stream, so segments that hold
  /// nothing from `addr` (per their exact source tables) are never read.
  /// Still a superset of the source's packets — callers filter per record.
  [[nodiscard]] telescope::KWayMerge<telescope::SegmentStore::Cursor>
  streamCaptureForSource(std::size_t i, const net::Ipv6Address& addr,
                         std::optional<sim::SimTime> from = std::nullopt)
      const;
  /// Packets captured by telescope `i`, valid in both modes.
  [[nodiscard]] std::uint64_t capturePacketCount(std::size_t i) const;
  [[nodiscard]] std::array<const telescope::CaptureStore*, 4> captures() const;
  [[nodiscard]] const std::string& telescopeName(std::size_t i) const {
    return names_[i];
  }
  [[nodiscard]] const net::AsRegistry& asRegistry() const {
    return plan_.asRegistry;
  }
  [[nodiscard]] const net::RdnsRegistry& rdns() const { return plan_.rdns; }
  [[nodiscard]] const bgp::IrrRegistry& irr() const { return irr_; }
  [[nodiscard]] std::size_t populationSize() const { return plan_.size(); }
  [[nodiscard]] const RunnerStats& stats() const { return stats_; }
  [[nodiscard]] sim::SimTime experimentEnd() const;

  // --- observability -----------------------------------------------------
  //
  // Each shard writes to a private obs::Registry (lock-free relaxed
  // atomics); the observer-side calls below may run concurrently with the
  // shards and only ever *read* metric values, so attaching an exporter
  // cannot perturb the simulation.

  /// Aggregate the current state of every shard registry plus the
  /// runner-level registry into `out`. Safe to call while run() executes
  /// (the live `--metrics-out` snapshot path).
  void snapshotMetrics(obs::Registry& out) const;

  /// One-line progress heartbeat: epochs completed (slowest shard),
  /// simulated weeks, packets captured so far, wall-clock elapsed and ETA.
  [[nodiscard]] std::string progressLine() const;

  /// Final aggregated registry, filled when run() returns. Mutable so the
  /// analysis phase can add its metrics before export.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  /// Per-shard flight recorders (shard 0 owns the control-plane root
  /// events). Stable addresses for the process lifetime — safe to hand to
  /// the crash-dump registry and the trace exporter.
  [[nodiscard]] std::vector<const obs::trace::Tracer*> tracers() const;
  [[nodiscard]] std::vector<obs::trace::Tracer*> tracersMutable();

private:
  RunnerConfig config_;
  bgp::SplitSchedule schedule_;
  scanner::PopulationPlan plan_;
  std::array<telescope::CaptureStore, 4> captures_;
  /// Spill mode: per-shard segment stores, indexed [shard][telescope].
  std::vector<std::array<std::unique_ptr<telescope::SegmentStore>, 4>>
      spillStores_;
  std::array<std::string, 4> names_{"T1", "T2", "T3", "T4"};
  bgp::IrrRegistry irr_;
  RunnerStats stats_;
  bool ran_ = false;

  std::vector<std::unique_ptr<obs::Registry>> shardMetrics_;
  std::vector<std::unique_ptr<obs::trace::Tracer>> shardTracers_;
  obs::Registry runnerMetrics_; // coordinator-side phases and totals
  obs::Registry metrics_; // final aggregate, valid after run()
  std::uint64_t totalEpochs_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> epochsDone_;
  std::chrono::steady_clock::time_point runStart_{};
  std::atomic<bool> started_{false};
};

} // namespace v6t::core
