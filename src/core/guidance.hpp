// v6t::core — operational guidance for telescope operators (§8).
//
// The paper closes with five practical implications. GuidanceEngine
// recomputes each one from the measured experiment output, with the number
// that backs it, so an operator evaluating a deployment plan gets findings
// grounded in their own run rather than copied constants.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/summary.hpp"

namespace v6t::core {

struct Finding {
  std::string topic; // e.g. "BGP visibility"
  std::string statement; // the recommendation
  std::string evidence; // the measured number(s) backing it
};

class GuidanceEngine {
public:
  /// Derive the §8 guidance from a completed experiment.
  [[nodiscard]] static std::vector<Finding> derive(
      const Experiment& experiment, const ExperimentSummary& summary);
};

} // namespace v6t::core
