#include "fault/injector.hpp"

#include <algorithm>
#include <array>

#include "fault/keyed.hpp"

namespace v6t::fault {

namespace {

/// Origin AS of the most recent pristine announce of `prefix` at or before
/// `when` — what a flap's re-announce must restore. nullopt if the prefix
/// was never announced by then (the flap cycle is skipped: there is no
/// route to flap).
std::optional<net::Asn> originBefore(const std::vector<FeedOp>& script,
                                     const net::Prefix& prefix,
                                     sim::SimTime when) {
  std::optional<net::Asn> origin;
  for (const FeedOp& op : script) {
    if (op.at > when) break; // pristine script is chronological
    if (op.announce && op.prefix == prefix) origin = op.origin;
  }
  return origin;
}

} // namespace

std::vector<FeedOp> applyBgpFaults(std::vector<FeedOp> script,
                                   const FaultSpec& spec, std::uint64_t seed,
                                   const net::Prefix& covering,
                                   ScriptFaultStats* stats) {
  ScriptFaultStats local;
  if (!spec.hasBgpFaults()) {
    if (stats != nullptr) *stats = local;
    return script;
  }

  // (op, tiebreak): pristine ops keep their script index; injected ops get
  // indices past the end in a fixed construction order, so the final sort
  // is total and identical on every shard.
  std::vector<std::pair<FeedOp, std::uint64_t>> out;
  out.reserve(script.size() + spec.flaps.size() * 2 + 2);
  std::uint64_t nextSeq = script.size();

  for (std::size_t i = 0; i < script.size(); ++i) {
    FeedOp op = script[i];
    if (drawChance(seed, Kind::BgpDrop, spec.bgpDropProb, i)) {
      ++local.dropped;
      continue;
    }
    if (drawChance(seed, Kind::BgpDelay, spec.bgpDelayProb, i)) {
      const auto extra = static_cast<std::int64_t>(
          drawUniform(seed, Kind::BgpDelayAmount, i) *
          static_cast<double>(spec.bgpDelayMax.millis()));
      op.at += sim::millis(extra);
      ++local.delayed;
    }
    if (drawChance(seed, Kind::BgpDup, spec.bgpDupProb, i)) {
      const auto extra = static_cast<std::int64_t>(
          drawUniform(seed, Kind::BgpDupDelay, i) *
          static_cast<double>(spec.bgpDelayMax.millis()));
      FeedOp dup = op;
      dup.at += sim::millis(extra);
      out.emplace_back(dup, nextSeq++);
      ++local.duplicated;
    }
    out.emplace_back(op, i);
  }

  for (const PrefixFlap& flap : spec.flaps) {
    for (int k = 0; k < flap.count; ++k) {
      const sim::SimTime downAt = flap.start + flap.period * k;
      const auto origin = originBefore(script, flap.prefix, downAt);
      if (!origin) continue; // nothing announced yet — nothing to flap
      out.emplace_back(FeedOp{downAt, false, flap.prefix, *origin},
                       nextSeq++);
      out.emplace_back(
          FeedOp{downAt + flap.down, true, flap.prefix, *origin}, nextSeq++);
      local.flapOps += 2;
    }
  }

  if (spec.coveringOutageAt) {
    const auto origin = originBefore(script, covering, *spec.coveringOutageAt);
    if (origin) {
      out.emplace_back(
          FeedOp{*spec.coveringOutageAt, false, covering, *origin},
          nextSeq++);
      out.emplace_back(FeedOp{*spec.coveringOutageAt + spec.coveringOutageFor,
                              true, covering, *origin},
                       nextSeq++);
      local.outageOps += 2;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.first.at != b.first.at) return a.first.at < b.first.at;
              return a.second < b.second;
            });
  std::vector<FeedOp> result;
  result.reserve(out.size());
  for (auto& [op, seq] : out) result.push_back(op);
  if (stats != nullptr) *stats = local;
  return result;
}

std::span<const double> gapDurationBoundsSeconds() {
  static constexpr std::array<double, 8> kBounds{
      60.0,           600.0,           3600.0,          6.0 * 3600,
      24.0 * 3600,    3.0 * 24 * 3600, 7.0 * 24 * 3600, 14.0 * 24 * 3600};
  return kBounds;
}

void recordScriptFaultMetrics(const ScriptFaultStats& stats,
                              const FaultSpec& spec,
                              obs::Registry& registry) {
  registry.counter("fault.injected.bgp_dropped_total").inc(stats.dropped);
  registry.counter("fault.injected.bgp_duplicated_total")
      .inc(stats.duplicated);
  registry.counter("fault.injected.bgp_delayed_total").inc(stats.delayed);
  registry.counter("fault.injected.flap_ops_total").inc(stats.flapOps);
  registry.counter("fault.injected.covering_outage_ops_total")
      .inc(stats.outageOps);
  obs::Histogram& gapHist = registry.histogram(
      "fault.gap_duration_seconds", gapDurationBoundsSeconds());
  for (const CaptureGap& g : spec.gaps) {
    gapHist.observe(g.duration().seconds());
  }
}

void PacketFaultPlane::bindMetrics(obs::Registry& registry) {
  lossMetric_ = &registry.counter("fault.injected.packet_loss_total");
  dupMetric_ = &registry.counter("fault.injected.packet_dup_total");
  truncateMetric_ = &registry.counter("fault.injected.truncated_total");
  gapDropMetric_ = &registry.counter("fault.injected.gap_dropped_total");
}

PacketFaultPlane::Verdict PacketFaultPlane::onSend(net::Packet& p) {
  Verdict verdict;
  // Keyed by the packet's globally unique (originId, originSeq) identity:
  // the verdict is the same whichever shard emits the packet.
  if (drawChance(seed_, Kind::PacketLoss, spec_.packetLossProb, p.originId,
                 p.originSeq)) {
    verdict.drop = true;
    if (lossMetric_ != nullptr) lossMetric_->inc();
    return verdict;
  }
  if (drawChance(seed_, Kind::PacketDup, spec_.packetDupProb, p.originId,
                 p.originSeq)) {
    verdict.duplicate = true;
    if (dupMetric_ != nullptr) dupMetric_->inc();
  }
  if (!p.payload.empty() &&
      drawChance(seed_, Kind::Truncate, spec_.truncateProb, p.originId,
                 p.originSeq)) {
    p.payload.resize(p.payload.size() / 2);
    if (truncateMetric_ != nullptr) truncateMetric_->inc();
  }
  return verdict;
}

bool PacketFaultPlane::onDeliver(std::size_t telescopeIdx,
                                 const net::Packet& p) {
  for (const CaptureGap& g : spec_.gaps) {
    if (g.covers(telescopeIdx, p.ts)) {
      if (gapDropMetric_ != nullptr) gapDropMetric_->inc();
      return false;
    }
  }
  return true;
}

} // namespace v6t::fault
