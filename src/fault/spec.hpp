// v6t::fault — deterministic fault-injection specifications.
//
// The paper's 11-month measurement ran through real-world degradation:
// telescope outages and capture gaps, BGP convergence jitter, and route
// flaps. FaultSpec describes such degradation declaratively so the
// simulation can be exercised against it. Three I/O seams are wrapped:
//
//   * the BGP feed — control-plane updates dropped, duplicated, delayed
//     (and thereby reordered), plus scripted prefix flapping and a
//     transient withdrawal of the covering /29,
//   * the telescope fabric — per-packet loss, duplication, payload
//     truncation, and scheduled capture outages (gaps),
//   * the runner — injected wall-clock shard stalls that stress the
//     epoch-barrier logic without touching simulated state.
//
// Every random fault draw comes from a keyed stream derived from
// (fault seed, fault kind, entity key) — see keyed.hpp — so a chaos run
// replays bitwise for any thread count, and an empty spec leaves all
// outputs bitwise unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/prefix.hpp"
#include "sim/time.hpp"

namespace v6t::fault {

/// One scheduled capture outage: telescope `telescope` (TelescopeIndex;
/// -1 = every telescope) records nothing during [start, end).
struct CaptureGap {
  int telescope = -1;
  sim::SimTime start;
  sim::SimTime end;

  [[nodiscard]] sim::Duration duration() const { return end - start; }
  [[nodiscard]] bool applies(std::size_t telescopeIdx) const {
    return telescope < 0 || static_cast<std::size_t>(telescope) == telescopeIdx;
  }
  [[nodiscard]] bool covers(std::size_t telescopeIdx, sim::SimTime t) const {
    return applies(telescopeIdx) && t >= start && t < end;
  }
};

/// Periodic flapping of one announced prefix: starting at `start`, the
/// prefix is withdrawn for `down` at the beginning of each `period`, then
/// re-announced, `count` times. Purely schedule-driven (no randomness).
struct PrefixFlap {
  net::Prefix prefix;
  sim::SimTime start;
  sim::Duration period;
  sim::Duration down;
  int count = 1;
};

struct FaultSpec {
  // --- BGP feed faults (applied to the control-plane script) -------------
  double bgpDropProb = 0.0; // update never reaches the DFZ
  double bgpDupProb = 0.0; // update applied a second time, later
  double bgpDelayProb = 0.0; // update delayed by uniform [0, bgpDelayMax]
  sim::Duration bgpDelayMax = sim::minutes(30);
  std::vector<PrefixFlap> flaps;
  /// Transient withdrawal of the covering /29 (or whichever prefix the
  /// runner designates as covering): [at, at + coveringOutageFor).
  std::optional<sim::SimTime> coveringOutageAt;
  sim::Duration coveringOutageFor = sim::hours(6);

  // --- telescope fabric faults -------------------------------------------
  double packetLossProb = 0.0; // packet vanishes before routing
  double packetDupProb = 0.0; // packet is captured twice
  double truncateProb = 0.0; // payload cut to half its length
  std::vector<CaptureGap> gaps;

  // --- runner faults ------------------------------------------------------
  double stallProb = 0.0; // per (shard, epoch) chance of a barrier stall
  sim::Duration stallFor = sim::millis(2); // wall-clock sleep per stall

  /// True when the spec injects nothing at all — the zero-fault spec whose
  /// runs must be bitwise-identical to a fault-free build.
  [[nodiscard]] bool empty() const;
  /// Any per-packet fault or capture gap configured (= the fabric needs a
  /// fault plane installed).
  [[nodiscard]] bool hasPacketFaults() const;
  [[nodiscard]] bool hasBgpFaults() const;

  /// Gaps relevant to one telescope, in declaration order.
  [[nodiscard]] std::vector<CaptureGap> gapsFor(std::size_t telescopeIdx) const;
  /// Gap windows for one telescope as (start, end) pairs — the shape the
  /// gap-aware sessionizer consumes.
  [[nodiscard]] std::vector<std::pair<sim::SimTime, sim::SimTime>>
  gapWindowsFor(std::size_t telescopeIdx) const;

  /// Apply one key/value pair — the part after the `faults.` prefix of a
  /// config-file key, or one comma-separated element of a --faults spec.
  /// Returns an error message, or "" on success. List-valued keys (gap,
  /// flap) append on repetition.
  [[nodiscard]] std::string applyKey(std::string_view key,
                                     std::string_view value);

  struct ParseResult; // defined below (holds a FaultSpec by value)

  /// Parse a compact comma-separated spec string, e.g.
  ///   "packet_loss=0.01,bgp_drop=0.1,gap=T1@2w+3d,covering_outage=13w+6h"
  /// Durations/instants use <int><unit> with unit in {ms,s,m,h,d,w};
  /// gap scope is all|T1..T4; flap is <prefix>@<start>+<period>/<down>*<n>.
  [[nodiscard]] static ParseResult parse(std::string_view text);

  /// Render as `<prefix>key = value` config lines; "" for an empty spec,
  /// so fault-free configs format exactly as they did before faults
  /// existed. Round-trips through applyKey.
  [[nodiscard]] std::string formatKeys(std::string_view prefix) const;
};

struct FaultSpec::ParseResult {
  FaultSpec spec;
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse "<int><unit>" (ms|s|m|h|d|w) into a duration. nullopt on error.
[[nodiscard]] std::optional<sim::Duration> parseDuration(
    std::string_view text);
[[nodiscard]] std::string formatDuration(sim::Duration d);

} // namespace v6t::fault
