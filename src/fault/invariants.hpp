// v6t::fault — invariants that must hold even under injected faults.
//
// The chaos suite's oracle: each rule states a property of the pipeline
// that no fault spec is allowed to break (faults may change *what* is
// captured, never the structural guarantees of the capture). Rules append
// human-readable violation strings instead of asserting, so one run can
// report every broken property and tests can assert on specific rules
// both positively (clean input passes) and negatively (a deliberately
// broken fixture trips exactly this rule).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bgp/rib.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "telescope/capture_store.hpp"
#include "telescope/session.hpp"

namespace v6t::fault {

class InvariantChecker {
public:
  /// Rule 1 — sessions never span a declared capture gap: no two
  /// consecutive packets of one session straddle a gap window (the
  /// interval between them overlapping [start, end) of a gap means the
  /// source fell silent across an outage and must have been split).
  /// `gapWindows` are the windows applying to the capture's telescope.
  bool checkSessionsRespectGaps(
      std::span<const telescope::Session> sessions,
      std::span<const net::Packet> packets,
      std::span<const std::pair<sim::SimTime, sim::SimTime>> gapWindows);

  /// Rule 2 — RIB longest-prefix match agrees with a linear scan over
  /// `routes` (the oracle's ground truth) for every probe address. The
  /// caller supplies the route list it believes the RIB holds; a doctored
  /// list is how the negative test trips the rule.
  bool checkRibAgainstLinearScan(
      const bgp::Rib& rib,
      std::span<const std::pair<net::Prefix, net::Asn>> routes,
      std::span<const net::Ipv6Address> probes);

  /// Rule 3 — the merged capture is in canonical order: non-decreasing
  /// (ts, originId, originSeq). Exact duplicates are legal (packet
  /// duplication faults record a packet twice); inversions are not.
  bool checkCanonicalOrder(const telescope::CaptureStore& capture);

  /// Rule 4 — folding the shard registries reproduces `folded` exactly:
  /// every flattened metric of a fresh aggregate equals the run's
  /// aggregate, key for key. Trips when a metric was double-counted at
  /// the run level or recorded outside the shard fold.
  bool checkMetricFold(const obs::Registry& folded,
                       std::span<const obs::Registry* const> shards);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  void clear() { violations_.clear(); }

private:
  bool fail(std::string message);

  std::vector<std::string> violations_;
};

} // namespace v6t::fault
