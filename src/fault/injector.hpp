// v6t::fault — the fault injectors for the three I/O seams.
//
// applyBgpFaults() rewrites the runner's precomputed control-plane script:
// individual announce/withdraw ops are dropped, duplicated, or delayed
// (keyed by their index in the pristine script — NOT by execution order),
// scripted prefix flaps and the transient covering-prefix outage are woven
// in, and the result is restored to chronological order. Because every
// shard replays the same transformed script, a faulty control plane is
// shard-count-invariant by construction.
//
// PacketFaultPlane implements telescope::PacketTap: per-packet loss,
// duplication, and payload truncation keyed by the packet's globally
// unique (originId, originSeq) identity, plus scheduled capture outages
// checked against the packet timestamp. Stateless draws mean the verdict
// for a packet is independent of shard placement and arrival order.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/spec.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "telescope/fabric.hpp"

namespace v6t::fault {

/// One control-plane operation, chronological. Mirrors what the experiment
/// runner precomputes from the split schedule.
struct FeedOp {
  sim::SimTime at;
  bool announce = true;
  net::Prefix prefix;
  net::Asn origin;
};

/// What the script transform injected, for the obs registry.
struct ScriptFaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t flapOps = 0; // withdraw/announce pairs count as two
  std::uint64_t outageOps = 0;
};

/// Transform the pristine script per `spec`, keyed by `seed`.
/// `covering` names the prefix subject to the transient covering outage.
/// Deterministic in (script, spec, seed): thread counts, wall clock, and
/// call order play no part. A zero-fault spec returns the script unchanged.
[[nodiscard]] std::vector<FeedOp> applyBgpFaults(
    std::vector<FeedOp> script, const FaultSpec& spec, std::uint64_t seed,
    const net::Prefix& covering, ScriptFaultStats* stats = nullptr);

/// Record the injected script-fault counters and per-gap durations into a
/// registry. Call once at the run level (not per shard) so aggregated
/// metrics stay shard-count-invariant.
void recordScriptFaultMetrics(const ScriptFaultStats& stats,
                              const FaultSpec& spec, obs::Registry& registry);

/// Bucket bounds for the capture-gap duration histogram (seconds; minutes
/// to a fortnight).
[[nodiscard]] std::span<const double> gapDurationBoundsSeconds();

/// The data-plane fault injector, installed on a DeliveryFabric via
/// setTap(). One instance per shard; bindMetrics attaches the shard's
/// registry (counters sum shard-count-invariantly because each packet is
/// faulted exactly once, in whichever shard emits it).
class PacketFaultPlane final : public telescope::PacketTap {
public:
  PacketFaultPlane(const FaultSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}

  /// Attach fault.injected.* counters. The registry must outlive the plane.
  void bindMetrics(obs::Registry& registry);

  Verdict onSend(net::Packet& p) override;
  bool onDeliver(std::size_t telescopeIdx, const net::Packet& p) override;

private:
  FaultSpec spec_; // private copy: the plane must outlive config edits
  std::uint64_t seed_;
  obs::Counter* lossMetric_ = nullptr;
  obs::Counter* dupMetric_ = nullptr;
  obs::Counter* truncateMetric_ = nullptr;
  obs::Counter* gapDropMetric_ = nullptr;
};

} // namespace v6t::fault
