// v6t::fault — keyed fault randomness.
//
// Every fault decision is a pure function of (fault seed, fault kind,
// entity key) with NO mutable generator state: whether packet
// (originId=17, originSeq=204) is lost does not depend on which shard
// routed it, how many packets came before it, or how many other fault
// kinds are enabled. This is the property that makes a chaos run replay
// bitwise across thread counts — the same guarantee sim::deriveStreamSeed
// gives the simulation proper, extended to stateless per-event draws.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace v6t::fault {

/// Independent fault-draw stream identifiers. The numeric values are part
/// of the replay contract: changing them reshuffles every chaos run.
enum class Kind : std::uint64_t {
  BgpDrop = 1,
  BgpDup = 2,
  BgpDelay = 3,
  BgpDelayAmount = 4,
  BgpDupDelay = 5,
  PacketLoss = 6,
  PacketDup = 7,
  Truncate = 8,
  Stall = 9,
};

/// The raw 64-bit draw for (seed, kind, a, b). SplitMix64 finalization at
/// every step keeps the mapping statistically independent across kinds and
/// entity keys.
[[nodiscard]] constexpr std::uint64_t draw(std::uint64_t seed, Kind kind,
                                           std::uint64_t a,
                                           std::uint64_t b = 0) {
  const std::uint64_t stream =
      sim::deriveStreamSeed(seed, static_cast<std::uint64_t>(kind));
  return sim::deriveStreamSeed(sim::deriveStreamSeed(stream, a), b);
}

/// The draw mapped to [0, 1), matching sim::Rng::uniform's mapping.
[[nodiscard]] constexpr double drawUniform(std::uint64_t seed, Kind kind,
                                           std::uint64_t a,
                                           std::uint64_t b = 0) {
  return static_cast<double>(draw(seed, kind, a, b) >> 11) * 0x1.0p-53;
}

/// Bernoulli decision with probability p.
[[nodiscard]] constexpr bool drawChance(std::uint64_t seed, Kind kind,
                                        double p, std::uint64_t a,
                                        std::uint64_t b = 0) {
  if (p <= 0.0) return false;
  return drawUniform(seed, kind, a, b) < p;
}

} // namespace v6t::fault
