#include "fault/invariants.hpp"

#include <sstream>

#include "sim/time.hpp"

namespace v6t::fault {

namespace {

std::string timeStr(sim::SimTime t) {
  return std::to_string((t - sim::kEpoch).millis()) + "ms";
}

} // namespace

bool InvariantChecker::fail(std::string message) {
  violations_.push_back(std::move(message));
  return false;
}

bool InvariantChecker::checkSessionsRespectGaps(
    std::span<const telescope::Session> sessions,
    std::span<const net::Packet> packets,
    std::span<const std::pair<sim::SimTime, sim::SimTime>> gapWindows) {
  bool good = true;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const telescope::Session& session = sessions[s];
    for (std::size_t i = 1; i < session.packetIdx.size(); ++i) {
      const std::uint32_t prevIdx = session.packetIdx[i - 1];
      const std::uint32_t curIdx = session.packetIdx[i];
      if (prevIdx >= packets.size() || curIdx >= packets.size()) {
        good = fail("session " + std::to_string(s) +
                    " references packet index beyond the capture");
        continue;
      }
      const sim::SimTime prev = packets[prevIdx].ts;
      const sim::SimTime cur = packets[curIdx].ts;
      for (const auto& [gapStart, gapEnd] : gapWindows) {
        // Straddle: the source was last heard before the outage began and
        // next heard at or after it ended — the silence covered the whole
        // window, so a gap-aware sessionizer must have split here.
        if (prev < gapStart && cur >= gapEnd) {
          std::ostringstream msg;
          msg << "session " << s << " spans capture gap ["
              << timeStr(gapStart) << ", " << timeStr(gapEnd)
              << "): packets at " << timeStr(prev) << " and "
              << timeStr(cur) << " belong to one session";
          good = fail(msg.str());
        }
      }
    }
  }
  return good;
}

bool InvariantChecker::checkRibAgainstLinearScan(
    const bgp::Rib& rib,
    std::span<const std::pair<net::Prefix, net::Asn>> routes,
    std::span<const net::Ipv6Address> probes) {
  bool good = true;
  for (const net::Ipv6Address& probe : probes) {
    // The oracle: scan every route linearly, keep the longest match.
    const std::pair<net::Prefix, net::Asn>* best = nullptr;
    for (const auto& route : routes) {
      if (!route.first.contains(probe)) continue;
      if (best == nullptr || route.first.length() > best->first.length()) {
        best = &route;
      }
    }
    const auto got = rib.lookup(probe);
    const bool match =
        best == nullptr
            ? !got.has_value()
            : got.has_value() && got->first == best->first &&
                  got->second.origin == best->second;
    if (!match) {
      std::ostringstream msg;
      msg << "RIB LPM disagrees with linear scan for " << probe.toString()
          << ": rib="
          << (got ? got->first.toString() + " via AS" +
                        std::to_string(got->second.origin.value())
                  : std::string{"no route"})
          << " oracle="
          << (best != nullptr ? best->first.toString() + " via AS" +
                                    std::to_string(best->second.value())
                              : std::string{"no route"});
      good = fail(msg.str());
    }
  }
  return good;
}

bool InvariantChecker::checkCanonicalOrder(
    const telescope::CaptureStore& capture) {
  const std::vector<net::Packet>& packets = capture.packets();
  bool good = true;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    const net::Packet& a = packets[i - 1];
    const net::Packet& b = packets[i];
    const auto keyA = std::tuple{a.ts, a.originId, a.originSeq};
    const auto keyB = std::tuple{b.ts, b.originId, b.originSeq};
    if (keyB < keyA) {
      std::ostringstream msg;
      msg << "capture not in canonical (ts, originId, originSeq) order at "
          << "index " << i << ": (" << timeStr(a.ts) << ", " << a.originId
          << ", " << a.originSeq << ") > (" << timeStr(b.ts) << ", "
          << b.originId << ", " << b.originSeq << ")";
      good = fail(msg.str());
    }
  }
  return good;
}

bool InvariantChecker::checkMetricFold(
    const obs::Registry& folded,
    std::span<const obs::Registry* const> shards) {
  obs::Registry refold;
  for (const obs::Registry* shard : shards) {
    if (shard != nullptr) refold.aggregateFrom(*shard);
  }
  const auto want = refold.flatten();
  const auto got = folded.flatten();
  bool good = true;
  for (const auto& [name, value] : want) {
    const auto it = got.find(name);
    if (it == got.end()) {
      good = fail("metric fold lost key '" + name + "'");
    } else if (it->second != value) {
      std::ostringstream msg;
      msg << "metric fold mismatch for '" << name << "': folded "
          << it->second << " != shard sum " << value;
      good = fail(msg.str());
    }
  }
  for (const auto& [name, value] : got) {
    if (!want.contains(name)) {
      good = fail("metric fold invented key '" + name + "'");
    }
  }
  return good;
}

} // namespace v6t::fault
