#include "fault/spec.hpp"

#include <charconv>
#include <sstream>

namespace v6t::fault {

namespace {

std::string trim(std::string_view text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(" \t\r");
  return std::string{text.substr(first, last - first + 1)};
}

bool parseI64(std::string_view text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseProb(std::string_view text, double& out) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(std::string{text}, &consumed);
    if (consumed != text.size() || v < 0.0 || v > 1.0) return false;
    out = v;
    return true;
  } catch (...) {
    return false;
  }
}

/// Telescope scope name -> index; "all" -> -1; nullopt on error.
std::optional<int> parseScope(std::string_view text) {
  if (text == "all") return -1;
  if (text.size() == 2 && text[0] == 'T' && text[1] >= '1' && text[1] <= '4') {
    return text[1] - '1';
  }
  return std::nullopt;
}

} // namespace

std::optional<sim::Duration> parseDuration(std::string_view text) {
  // Unit suffix: "ms" first (so "5ms" is not read as 5 milli-"s").
  std::int64_t scale = 0;
  std::string_view digits;
  if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1;
    digits = text.substr(0, text.size() - 2);
  } else if (!text.empty()) {
    switch (text.back()) {
      case 's': scale = 1000; break;
      case 'm': scale = 60LL * 1000; break;
      case 'h': scale = 3600LL * 1000; break;
      case 'd': scale = 24LL * 3600 * 1000; break;
      case 'w': scale = 7LL * 24 * 3600 * 1000; break;
      default: return std::nullopt;
    }
    digits = text.substr(0, text.size() - 1);
  } else {
    return std::nullopt;
  }
  std::int64_t n = 0;
  if (!parseI64(digits, n) || n < 0) return std::nullopt;
  return sim::Duration{n * scale};
}

std::string formatDuration(sim::Duration d) {
  const std::int64_t ms = d.millis();
  struct Unit {
    std::int64_t scale;
    const char* suffix;
  };
  // Largest unit that divides the value exactly, so round-trips are exact.
  static constexpr Unit kUnits[] = {
      {7LL * 24 * 3600 * 1000, "w"}, {24LL * 3600 * 1000, "d"},
      {3600LL * 1000, "h"},          {60LL * 1000, "m"},
      {1000, "s"},
  };
  for (const Unit& u : kUnits) {
    if (ms != 0 && ms % u.scale == 0) {
      return std::to_string(ms / u.scale) + u.suffix;
    }
  }
  return std::to_string(ms) + "ms";
}

bool FaultSpec::empty() const {
  return !hasBgpFaults() && !hasPacketFaults() && stallProb <= 0.0;
}

bool FaultSpec::hasPacketFaults() const {
  return packetLossProb > 0.0 || packetDupProb > 0.0 || truncateProb > 0.0 ||
         !gaps.empty();
}

bool FaultSpec::hasBgpFaults() const {
  return bgpDropProb > 0.0 || bgpDupProb > 0.0 || bgpDelayProb > 0.0 ||
         !flaps.empty() || coveringOutageAt.has_value();
}

std::vector<CaptureGap> FaultSpec::gapsFor(std::size_t telescopeIdx) const {
  std::vector<CaptureGap> out;
  for (const CaptureGap& g : gaps) {
    if (g.applies(telescopeIdx)) out.push_back(g);
  }
  return out;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>> FaultSpec::gapWindowsFor(
    std::size_t telescopeIdx) const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  for (const CaptureGap& g : gaps) {
    if (g.applies(telescopeIdx)) out.emplace_back(g.start, g.end);
  }
  return out;
}

std::string FaultSpec::applyKey(std::string_view key, std::string_view value) {
  const std::string v = trim(value);
  auto prob = [&](double& out) -> std::string {
    if (!parseProb(v, out)) {
      return "probability must be in [0, 1]: '" + v + "'";
    }
    return {};
  };
  auto duration = [&](sim::Duration& out) -> std::string {
    if (const auto d = parseDuration(v)) {
      out = *d;
      return {};
    }
    return "bad duration '" + v + "' (want <int><ms|s|m|h|d|w>)";
  };

  if (key == "bgp_drop") return prob(bgpDropProb);
  if (key == "bgp_dup") return prob(bgpDupProb);
  if (key == "bgp_delay") return prob(bgpDelayProb);
  if (key == "bgp_delay_max") return duration(bgpDelayMax);
  if (key == "packet_loss") return prob(packetLossProb);
  if (key == "packet_dup") return prob(packetDupProb);
  if (key == "truncate") return prob(truncateProb);
  if (key == "stall") return prob(stallProb);
  if (key == "stall_for") return duration(stallFor);
  if (key == "covering_outage") {
    // <start>+<duration>
    const auto plus = v.find('+');
    if (plus == std::string::npos) {
      return "covering_outage wants <start>+<duration>: '" + v + "'";
    }
    const auto start = parseDuration(v.substr(0, plus));
    const auto dur = parseDuration(v.substr(plus + 1));
    if (!start || !dur || dur->millis() <= 0) {
      return "bad covering_outage '" + v + "'";
    }
    coveringOutageAt = sim::kEpoch + *start;
    coveringOutageFor = *dur;
    return {};
  }
  if (key == "gap") {
    // <all|T1..T4>@<start>+<duration>
    const auto at = v.find('@');
    const auto plus = v.find('+', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || plus == std::string::npos) {
      return "gap wants <all|T1..T4>@<start>+<duration>: '" + v + "'";
    }
    const auto scope = parseScope(v.substr(0, at));
    const auto start = parseDuration(v.substr(at + 1, plus - at - 1));
    const auto dur = parseDuration(v.substr(plus + 1));
    if (!scope || !start || !dur || dur->millis() <= 0) {
      return "bad gap '" + v + "'";
    }
    gaps.push_back(CaptureGap{*scope, sim::kEpoch + *start,
                              sim::kEpoch + *start + *dur});
    return {};
  }
  if (key == "flap") {
    // <prefix>@<start>+<period>/<down>*<count>   ('/' after '@': the
    // prefix's own '/len' comes first)
    const auto at = v.find('@');
    if (at == std::string::npos) {
      return "flap wants <prefix>@<start>+<period>/<down>*<count>: '" + v +
             "'";
    }
    const auto prefix = net::Prefix::parse(v.substr(0, at));
    const auto plus = v.find('+', at);
    const auto slash = v.find('/', at);
    const auto star = v.find('*', at);
    if (!prefix || plus == std::string::npos || slash == std::string::npos ||
        star == std::string::npos || !(plus < slash && slash < star)) {
      return "bad flap '" + v + "'";
    }
    const auto start = parseDuration(v.substr(at + 1, plus - at - 1));
    const auto period = parseDuration(v.substr(plus + 1, slash - plus - 1));
    const auto down = parseDuration(v.substr(slash + 1, star - slash - 1));
    std::int64_t count = 0;
    if (!start || !period || !down || period->millis() <= 0 ||
        down->millis() <= 0 || *down >= *period ||
        !parseI64(v.substr(star + 1), count) || count < 1 || count > 10000) {
      return "bad flap '" + v + "'";
    }
    flaps.push_back(PrefixFlap{*prefix, sim::kEpoch + *start, *period, *down,
                               static_cast<int>(count)});
    return {};
  }
  return "unknown fault key '" + std::string{key} + "'";
}

FaultSpec::ParseResult FaultSpec::parse(std::string_view text) {
  ParseResult result;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string_view element =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    const std::string entry = trim(element);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      result.errors.push_back("expected key=value: '" + entry + "'");
      continue;
    }
    const std::string key = trim(entry.substr(0, eq));
    const std::string error =
        result.spec.applyKey(key, entry.substr(eq + 1));
    if (!error.empty()) result.errors.push_back(error);
  }
  return result;
}

std::string FaultSpec::formatKeys(std::string_view prefix) const {
  if (empty()) return {};
  std::ostringstream out;
  auto emit = [&](std::string_view key, const std::string& value) {
    out << prefix << key << " = " << value << "\n";
  };
  auto prob = [](double p) {
    std::ostringstream s;
    s << p;
    return s.str();
  };
  if (bgpDropProb > 0.0) emit("bgp_drop", prob(bgpDropProb));
  if (bgpDupProb > 0.0) emit("bgp_dup", prob(bgpDupProb));
  if (bgpDelayProb > 0.0) {
    emit("bgp_delay", prob(bgpDelayProb));
    emit("bgp_delay_max", formatDuration(bgpDelayMax));
  }
  for (const PrefixFlap& f : flaps) {
    emit("flap", f.prefix.toString() + "@" +
                     formatDuration(f.start - sim::kEpoch) + "+" +
                     formatDuration(f.period) + "/" + formatDuration(f.down) +
                     "*" + std::to_string(f.count));
  }
  if (coveringOutageAt) {
    emit("covering_outage", formatDuration(*coveringOutageAt - sim::kEpoch) +
                                "+" + formatDuration(coveringOutageFor));
  }
  if (packetLossProb > 0.0) emit("packet_loss", prob(packetLossProb));
  if (packetDupProb > 0.0) emit("packet_dup", prob(packetDupProb));
  if (truncateProb > 0.0) emit("truncate", prob(truncateProb));
  for (const CaptureGap& g : gaps) {
    const std::string scope =
        g.telescope < 0 ? "all" : "T" + std::to_string(g.telescope + 1);
    emit("gap", scope + "@" + formatDuration(g.start - sim::kEpoch) + "+" +
                    formatDuration(g.duration()));
  }
  if (stallProb > 0.0) {
    emit("stall", prob(stallProb));
    emit("stall_for", formatDuration(stallFor));
  }
  return out.str();
}

} // namespace v6t::fault
