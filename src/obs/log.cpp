#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/format.hpp"

namespace v6t::obs {

std::string_view toString(Level level) {
  switch (level) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "?";
}

Level parseLevel(std::string_view name) {
  if (name == "trace") return Level::Trace;
  if (name == "debug") return Level::Debug;
  if (name == "info") return Level::Info;
  if (name == "warn") return Level::Warn;
  if (name == "error") return Level::Error;
  if (name == "off") return Level::Off;
  return Level::Info;
}

Logger& Logger::global() {
  static Logger logger;
  static const bool initialized = [] {
    if (const char* env = std::getenv("V6T_LOG_LEVEL")) {
      logger.setLevel(parseLevel(env));
    }
    return true;
  }();
  (void)initialized;
  return logger;
}

void Logger::setSink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

namespace {

void appendQuoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
}

void appendValue(std::string& out, const KV& kv) {
  switch (kv.kind) {
    case KV::Kind::Str: appendQuoted(out, kv.str); break;
    case KV::Kind::I64: out += std::to_string(kv.i64); break;
    case KV::Kind::U64: out += std::to_string(kv.u64); break;
    case KV::Kind::F64: out += fmt::fixed(kv.f64, 6); break;
    case KV::Kind::Bool: out += kv.b ? "true" : "false"; break;
  }
}

} // namespace

void Logger::log(Level level, std::string_view component,
                 std::string_view message, std::initializer_list<KV> fields) {
  if (!enabled(level) || level == Level::Off) return;
  std::string line;
  line.reserve(64 + message.size());
  line += "level=";
  line += toString(level);
  line += " comp=";
  line += component;
  line += " msg=";
  appendQuoted(line, message);
  for (const KV& kv : fields) {
    line.push_back(' ');
    line += kv.key;
    line.push_back('=');
    appendValue(line, kv);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

} // namespace v6t::obs
