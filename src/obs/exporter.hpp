// v6t::obs — real-time snapshot exporter.
//
// A background observer thread that, every `intervalSeconds` of *wall*
// time, appends one JSONL metrics snapshot to a file and prints a progress
// heartbeat line to stderr. The exporter only ever reads relaxed-atomic
// metric values through the callbacks it is given — it cannot perturb the
// simulation, which is the determinism guarantee `--metrics-out` relies
// on. stop() (or destruction) joins the thread and writes one final
// snapshot so short runs always produce at least one line.
#pragma once

#include <condition_variable>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace v6t::obs {

struct ExporterOptions {
  std::string jsonlPath; // empty: no snapshot file (heartbeat only)
  double intervalSeconds = 1.0; // wall-clock tick period
  bool heartbeat = true; // progress line to stderr each tick
};

class PeriodicExporter {
public:
  /// `writeSnapshot` appends exactly one JSONL line; `heartbeat` returns
  /// the progress line (empty string suppresses it for that tick).
  using SnapshotFn = std::function<void(std::ostream&)>;
  using HeartbeatFn = std::function<std::string()>;

  PeriodicExporter(ExporterOptions options, SnapshotFn writeSnapshot,
                   HeartbeatFn heartbeat = {});
  ~PeriodicExporter();

  PeriodicExporter(const PeriodicExporter&) = delete;
  PeriodicExporter& operator=(const PeriodicExporter&) = delete;

  /// Stop ticking, write the final snapshot, join. Idempotent.
  void stop();

  [[nodiscard]] bool fileOpen() const { return out_.is_open(); }

private:
  void loop();
  void tick();

  ExporterOptions options_;
  SnapshotFn writeSnapshot_;
  HeartbeatFn heartbeat_;
  std::ofstream out_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

} // namespace v6t::obs
