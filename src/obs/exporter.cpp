#include "obs/exporter.hpp"

#include <chrono>
#include <iostream>

#include "obs/log.hpp"

namespace v6t::obs {

PeriodicExporter::PeriodicExporter(ExporterOptions options,
                                   SnapshotFn writeSnapshot,
                                   HeartbeatFn heartbeat)
    : options_(std::move(options)),
      writeSnapshot_(std::move(writeSnapshot)),
      heartbeat_(std::move(heartbeat)) {
  if (!options_.jsonlPath.empty()) {
    out_.open(options_.jsonlPath, std::ios::trunc);
    if (!out_) {
      logError("obs", "cannot open metrics snapshot file",
               {{"path", options_.jsonlPath}});
    }
  }
  thread_ = std::thread([this] { loop(); });
}

PeriodicExporter::~PeriodicExporter() { stop(); }

void PeriodicExporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  tick(); // final snapshot + heartbeat, after the run completed
  if (out_.is_open()) out_.flush();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
}

void PeriodicExporter::loop() {
  const auto interval = std::chrono::duration<double>(
      options_.intervalSeconds > 0 ? options_.intervalSeconds : 1.0);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void PeriodicExporter::tick() {
  if (out_.is_open() && writeSnapshot_) {
    writeSnapshot_(out_);
    out_.flush();
  }
  if (options_.heartbeat && heartbeat_) {
    const std::string line = heartbeat_();
    if (!line.empty()) std::cerr << line << '\n';
  }
}

} // namespace v6t::obs
