#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace v6t::obs {

namespace {

/// Shortest float form that still round-trips (%.17g is exact for double;
/// try %g first and keep it when it parses back bit-equal).
std::string formatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string promName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, v);
}

void Histogram::combine(const Histogram& other) noexcept {
  if (other.bounds_.size() != bounds_.size()) return; // mismatched: skip
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].fetch_add(other.bucketCount(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomicAdd(sum_, other.sum());
}

std::span<const double> durationBoundsSeconds() {
  static const std::vector<double> kBounds{0.0001, 0.001, 0.01,  0.05,
                                           0.1,    0.5,   1.0,   5.0,
                                           15.0,   60.0,  300.0, 1800.0};
  return kBounds;
}

std::span<const double> delayBoundsSeconds() {
  // Log-scale (×2 per bucket, with a 15 s half-step): convergence is
  // seconds-to-minutes while reactions stretch to hours — linear bounds
  // crushed the minute-scale tail into one bucket.
  static const std::vector<double> kBounds{1.0,    2.0,    4.0,   8.0,
                                           15.0,   30.0,   60.0,  120.0,
                                           240.0,  480.0,  900.0, 1800.0,
                                           3600.0, 7200.0};
  return kBounds;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.c = std::make_unique<Counter>();
    it = metrics_.emplace(std::string{name}, std::move(m)).first;
  }
  return *it->second.c;
}

Gauge& Registry::gauge(std::string_view name, GaugeMode mode) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.g = std::make_unique<Gauge>(mode);
    it = metrics_.emplace(std::string{name}, std::move(m)).first;
  }
  return *it->second.g;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.h = std::make_unique<Histogram>(
        std::vector<double>{bounds.begin(), bounds.end()});
    it = metrics_.emplace(std::string{name}, std::move(m)).first;
  }
  return *it->second.h;
}

std::optional<double> Registry::value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return std::nullopt;
  if (it->second.c) return static_cast<double>(it->second.c->value());
  if (it->second.g) return it->second.g->value();
  return std::nullopt;
}

void Registry::aggregateFrom(const Registry& other) {
  // Snapshot other's entries under its lock, then fold without holding
  // both locks at once (handles are stable for the registry's lifetime).
  struct Seen {
    std::string name;
    const Counter* c;
    const Gauge* g;
    const Histogram* h;
  };
  std::vector<Seen> seen;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    seen.reserve(other.metrics_.size());
    for (const auto& [name, m] : other.metrics_) {
      seen.push_back({name, m.c.get(), m.g.get(), m.h.get()});
    }
  }
  for (const Seen& s : seen) {
    if (s.c != nullptr) counter(s.name).inc(s.c->value());
    if (s.g != nullptr) gauge(s.name, s.g->mode()).combine(s.g->value());
    if (s.h != nullptr) histogram(s.name, s.h->bounds()).combine(*s.h);
  }
}

std::map<std::string, double> Registry::flatten() const {
  std::map<std::string, double> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, m] : metrics_) {
    if (m.c) {
      out[name] = static_cast<double>(m.c->value());
    } else if (m.g) {
      out[name] = m.g->value();
    } else if (m.h) {
      out[name + ".count"] = static_cast<double>(m.h->count());
      out[name + ".sum"] = m.h->sum();
      std::uint64_t cumulative = 0;
      const auto bounds = m.h->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += m.h->bucketCount(i);
        out[name + ".le." + formatNumber(bounds[i])] =
            static_cast<double>(cumulative);
      }
      cumulative += m.h->bucketCount(bounds.size());
      out[name + ".le.inf"] = static_cast<double>(cumulative);
    }
  }
  return out;
}

void Registry::writeJsonLine(
    std::ostream& out,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        textFields) const {
  const auto flat = flatten();
  out << '{';
  bool first = true;
  for (const auto& [key, value] : textFields) {
    if (!first) out << ',';
    first = false;
    out << '"' << jsonEscape(key) << "\":\"" << jsonEscape(value) << '"';
  }
  for (const auto& [name, value] : flat) {
    if (!first) out << ',';
    first = false;
    out << '"' << jsonEscape(name) << "\":" << formatNumber(value);
  }
  out << "}\n";
}

void Registry::writePrometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, m] : metrics_) {
    const std::string p = promName(name);
    if (m.c) {
      out << "# TYPE " << p << " counter\n" << p << ' ' << m.c->value()
          << '\n';
    } else if (m.g) {
      out << "# TYPE " << p << " gauge\n" << p << ' '
          << formatNumber(m.g->value()) << '\n';
    } else if (m.h) {
      out << "# TYPE " << p << " histogram\n";
      std::uint64_t cumulative = 0;
      const auto bounds = m.h->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += m.h->bucketCount(i);
        out << p << "_bucket{le=\"" << formatNumber(bounds[i]) << "\"} "
            << cumulative << '\n';
      }
      cumulative += m.h->bucketCount(bounds.size());
      out << p << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
      out << p << "_sum " << formatNumber(m.h->sum()) << '\n';
      out << p << "_count " << m.h->count() << '\n';
    }
  }
}

std::optional<std::map<std::string, double>> Registry::parseJsonLine(
    std::string_view line) {
  std::map<std::string, double> out;
  std::size_t i = 0;
  auto skipWs = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\n' || line[i] == '\r')) {
      ++i;
    }
  };
  auto parseString = [&]() -> std::optional<std::string> {
    if (i >= line.size() || line[i] != '"') return std::nullopt;
    ++i;
    std::string s;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          default: s.push_back(line[i]);
        }
      } else {
        s.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) return std::nullopt;
    ++i; // closing quote
    return s;
  };

  skipWs();
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  skipWs();
  if (i < line.size() && line[i] == '}') return out; // empty object
  while (true) {
    skipWs();
    const auto key = parseString();
    if (!key) return std::nullopt;
    skipWs();
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '"') {
      if (!parseString()) return std::nullopt; // string field: skip value
    } else {
      char* end = nullptr;
      const std::string num{line.substr(i)};
      const double v = std::strtod(num.c_str(), &end);
      if (end == num.c_str()) return std::nullopt;
      out[*key] = v;
      i += static_cast<std::size_t>(end - num.c_str());
    }
    skipWs();
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return out;
    return std::nullopt;
  }
}

bool Registry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.empty();
}

} // namespace v6t::obs
