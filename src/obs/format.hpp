// v6t::obs — shared text formatting for diagnostics and reports.
//
// The one place raw printf-style buffer formatting is allowed; the sim,
// net, and analysis layers route their number/time rendering through these
// helpers instead of carrying private snprintf calls.
#pragma once

#include <cstdint>
#include <string>

namespace v6t::obs::fmt {

/// Fixed-point decimal, e.g. fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string fixed(double value, int decimals);

/// 1234567 -> "1,234,567".
[[nodiscard]] std::string withThousands(std::uint64_t value);

/// Milliseconds -> "Nd HH:MM:SS.mmm" (sign-aware when `signedValue`).
[[nodiscard]] std::string daysClock(std::int64_t ms, bool signedValue);

/// Current wall-clock time as ISO 8601 UTC ("2026-08-08T12:34:56Z") — the
/// timestamp stamped onto JSONL heartbeat/snapshot records so runs can be
/// correlated with external logs.
[[nodiscard]] std::string isoTimestampUtc();

} // namespace v6t::obs::fmt
