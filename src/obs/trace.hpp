// v6t::obs::trace — the deterministic flight recorder (DESIGN.md §14).
//
// A Tracer records typed, timestamped TraceEvents into a bounded
// overwriting ring buffer ("flight recorder"). Every shard of the parallel
// runner owns a private Tracer, mutated only from that shard's worker
// thread — the same single-writer discipline as the shard metric
// registries — so recording never takes a lock and never serializes
// shards.
//
// Determinism contract: trace IDs are pure functions of (experiment seed,
// BGP update sequence number) via sim::deriveStreamSeed — never draws from
// a simulation RNG stream — and every recorded value is simulated state.
// Because each shard replays the identical control-plane script, the
// update sequence numbers (and therefore the IDs) are shard-invariant, and
// the union of all shards' sim-domain events is the same set at any thread
// count. collectCanonicalSimEvents() sorts that union into a canonical
// total order, making exported traces byte-identical for any worker count.
//
// Two clock domains, never mixed: ClockDomain::Sim events carry simulated
// milliseconds and are canonically ordered; ClockDomain::Wall events
// (analysis scheduler slices/steals) carry wall microseconds, are recorded
// through a mutex (scheduler workers are transient OS threads), and are
// excluded from the byte-identity normalization.
//
// The tracer is observation-only by construction: it is invoked *after*
// simulation decisions, consumes no RNG draws, and its `enabled` flag only
// gates event recording — so a traced run produces bitwise-identical
// captures to an untraced one. The reaction-delay histograms
// (bgp.reaction_delay_seconds.*) are observed independently of `enabled`
// whenever a metrics registry is attached, since they are plain metrics,
// not trace data.
//
// Building with -DV6T_TRACE=OFF defines V6T_TRACE_DISABLED: recording
// compiles down to a dead never-enabled branch and test_trace skips.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace v6t::obs::trace {

#ifdef V6T_TRACE_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

enum class EventKind : std::uint8_t {
  BgpUpdateRoot = 0, // control plane announced/withdrew (trace root)
  FeedDelivery, // a scanner's feed callback fired (convergence lag over)
  PrefixLearned, // the scanner added the prefix to its known set
  SessionScheduled, // a probe session was queued against the prefix
  PacketSent, // one probe left the scanner
  PacketCaptured, // a telescope recorded the probe
  ReactionObserved, // first captured probe of an update-caused session
  SchedSlice, // analysis scheduler: one task execution (wall domain)
  SchedSteal, // analysis scheduler: a steal batch was taken (wall domain)
  Marker, // free-form annotation
};

[[nodiscard]] std::string_view toString(EventKind k);

enum class ClockDomain : std::uint8_t {
  Sim = 0, // ts is simulated milliseconds since the experiment epoch
  Wall = 1, // ts is wall-clock microseconds (steady clock)
};

/// One flight-recorder record. Plain data, trivially copyable — the ring
/// buffer is a flat slab and the canonical sort is a memcmp-grade compare.
/// `a`/`b` are kind-specific payloads (documented per record site); for
/// PacketSent/PacketCaptured they are the (originSeq, ...) / (originId,
/// originSeq) linkage keys the capture merge orders by.
struct TraceEvent {
  std::int64_t ts = 0;
  std::uint64_t traceId = 0; // 0 = not part of an update-caused chain
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t entity = 0; // scanner id, telescope slot, or worker index
  EventKind kind = EventKind::Marker;
  ClockDomain domain = ClockDomain::Sim;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "the ring buffer relies on memcpy-able events");

/// Canonical total order for sim-domain events: (ts, kind, traceId,
/// entity, a, b). Ties beyond that are identical records, so the order is
/// deterministic regardless of which shard recorded what.
[[nodiscard]] bool canonicalLess(const TraceEvent& x, const TraceEvent& y);

/// Bounded overwriting ring: push() never fails and never allocates after
/// construction; once full, the oldest event is overwritten. snapshot()
/// returns the retained window oldest-first.
class TraceRing {
public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& e) {
    slots_[static_cast<std::size_t>(recorded_ % slots_.size())] = e;
    ++recorded_;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Total events ever pushed (monotonic, survives overwrite).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to overwrite.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ > slots_.size() ? recorded_ - slots_.size() : 0;
  }
  [[nodiscard]] std::size_t size() const {
    return recorded_ < slots_.size() ? static_cast<std::size_t>(recorded_)
                                     : slots_.size();
  }

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Allocation-free slot access for the signal-handler dump path; `index`
  /// is a logical push index in [recorded()-size(), recorded()).
  [[nodiscard]] const TraceEvent& slotAt(std::uint64_t index) const {
    return slots_[static_cast<std::size_t>(index % slots_.size())];
  }

private:
  std::vector<TraceEvent> slots_;
  std::uint64_t recorded_ = 0;
};

struct TracerOptions {
  std::uint64_t seed = 0; // the experiment seed; trace IDs derive from it
  std::size_t ringSize = 1 << 16;
  bool enabled = false; // record events (forced off when compiled out)
  /// Keep every sim-domain event in an unbounded side vector for export
  /// (--trace-out); the ring stays bounded for the post-mortem dump.
  bool retainAll = false;
  /// Exactly one tracer per run owns the control plane (shard 0 / the
  /// serial Experiment) and emits BgpUpdateRoot events; the replicas that
  /// replay the script stay silent, so every update has exactly one root.
  bool controlPlaneOwner = true;
};

class Tracer {
public:
  explicit Tracer(TracerOptions options, Registry* registry = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool controlPlaneOwner() const {
    return options_.controlPlaneOwner;
  }

  /// Deterministic trace ID for the update with feed sequence number
  /// `updateSeq`: deriveStreamSeed(deriveStreamSeed(seed, kTraceStream),
  /// updateSeq). Pure function — identical across shards, thread counts,
  /// and enabled states.
  [[nodiscard]] std::uint64_t updateTraceId(std::uint64_t updateSeq) const;

  /// Record one sim-domain event. Must be called only from the owning
  /// shard's worker thread. No-op (one predictable branch) when disabled.
  void record(const TraceEvent& e) {
    if (!enabled_) return;
    ring_.push(e);
    if (options_.retainAll) retained_.push_back(e);
  }

  /// Causal context propagated through the synchronous send path: the
  /// scanner sets it around fabric send, the telescope reads it in
  /// deliver(). Single-threaded per shard, so a plain slot suffices.
  struct Context {
    std::uint64_t traceId = 0;
    std::int64_t originTsMillis = 0;
  };
  void setContext(const Context& c) { context_ = c; }
  void clearContext() { context_ = Context{}; }
  [[nodiscard]] const Context& context() const { return context_; }

  /// Observe one BGP reaction delay (seconds between the update's origin
  /// timestamp and the first *captured* probe of a session it caused) into
  /// bgp.reaction_delay_seconds.<className> and .all. Metrics-only: fires
  /// whether or not event recording is enabled.
  void observeReaction(std::size_t classIndex, std::string_view className,
                       double delaySeconds);

  /// Record one wall-domain event (analysis scheduler). Thread-safe: the
  /// scheduler's workers are concurrent OS threads, so this path takes a
  /// mutex — acceptable because slices are per-task, not per-packet.
  void recordWall(const TraceEvent& e);

  [[nodiscard]] const TraceRing& ring() const { return ring_; }
  /// Full sim-domain event retention (only populated with retainAll).
  [[nodiscard]] std::span<const TraceEvent> retained() const {
    return retained_;
  }
  [[nodiscard]] std::vector<TraceEvent> wallEvents() const;

  /// Human-readable dump of the ring window (post-mortem path).
  void dumpRing(std::ostream& out) const;
  /// Async-signal best-effort dump straight to a file descriptor; used by
  /// the fatal-signal handler, so it formats with snprintf and write(2)
  /// only.
  void dumpRingToFd(int fd) const;

private:
  TracerOptions options_;
  Registry* registry_;
  bool enabled_;
  std::uint64_t traceSeed_;
  TraceRing ring_;
  std::vector<TraceEvent> retained_;
  Context context_;
  static constexpr std::size_t kMaxClasses = 16;
  Histogram* reactionHist_[kMaxClasses] = {};
  Histogram* reactionHistAll_ = nullptr;
  mutable std::mutex wallMutex_;
  std::vector<TraceEvent> wallEvents_;
};

// --- process-global hooks ---------------------------------------------------

/// The wall-domain tracer the analysis scheduler records slices into; null
/// (the default) disables scheduler tracing entirely. Set by v6t_run
/// around the analysis phase.
[[nodiscard]] Tracer* wallTracer() noexcept;
void setWallTracer(Tracer* tracer) noexcept;

/// Register the tracers whose rings the fatal-signal handler dumps, then
/// install handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL. Call once,
/// with tracers that outlive the process's working phase.
void registerCrashDumpTracers(std::span<Tracer* const> tracers);
void installCrashHandler();
/// Dump every registered tracer's ring (the invariant-failure abort path).
void dumpRegisteredRings(std::ostream& out);

// --- export (trace_export.cpp) ----------------------------------------------

/// Union of all tracers' retained sim-domain events in canonical order —
/// the normalization under which traces are byte-identical at any thread
/// count.
[[nodiscard]] std::vector<TraceEvent> collectCanonicalSimEvents(
    std::span<const Tracer* const> tracers);

/// All wall-domain events, ordered by timestamp.
[[nodiscard]] std::vector<TraceEvent> collectWallEvents(
    std::span<const Tracer* const> tracers);

/// Chrome trace-event JSON (loads in Perfetto / chrome://tracing): sim
/// events as instants on the "simulation" process (sim clock, ms -> µs),
/// wall events as duration slices on the "analysis scheduler" process.
void writeChromeTrace(std::ostream& out, std::span<const TraceEvent> simEvents,
                      std::span<const TraceEvent> wallEvents);
[[nodiscard]] std::string chromeTraceJson(
    std::span<const TraceEvent> simEvents,
    std::span<const TraceEvent> wallEvents);

} // namespace v6t::obs::trace
