// Chrome trace-event / Perfetto JSON export for the flight recorder.
//
// The sim-domain section is written from the canonical event order, so the
// emitted bytes are identical for any thread count (the byte-identity
// acceptance gate); wall-domain scheduler events live on their own
// process row and are excluded from that normalization. All formatting is
// locale-independent (integer to_string / %llx only — no doubles).
#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"

namespace v6t::obs::trace {

namespace {

std::string hexId(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// One trace-event object. Sim events render as thread-scoped instants at
/// ts (sim ms -> trace µs); SchedSlice renders as a complete ("X") slice
/// with its measured duration; SchedSteal as an instant.
void writeEvent(std::ostream& out, const TraceEvent& e, bool& first) {
  if (!first) out << ",\n";
  first = false;
  const bool wall = e.domain == ClockDomain::Wall;
  const std::int64_t ts = wall ? e.ts : e.ts * 1000; // sim ms -> µs
  out << "{\"name\":\"" << toString(e.kind) << "\",\"pid\":"
      << (wall ? 2 : 1) << ",\"tid\":" << e.entity << ",\"ts\":" << ts;
  if (e.kind == EventKind::SchedSlice) {
    out << ",\"ph\":\"X\",\"dur\":" << e.b
        << ",\"args\":{\"index\":" << e.a << "}";
  } else {
    out << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"trace\":\""
        << hexId(e.traceId) << "\",\"a\":" << e.a << ",\"b\":" << e.b << "}";
  }
  out << "}";
}

void writeMeta(std::ostream& out, int pid, std::string_view name,
               bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
}

} // namespace

std::vector<TraceEvent> collectCanonicalSimEvents(
    std::span<const Tracer* const> tracers) {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const Tracer* t : tracers) {
    if (t != nullptr) total += t->retained().size();
  }
  out.reserve(total);
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    for (const TraceEvent& e : t->retained()) {
      if (e.domain == ClockDomain::Sim) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), canonicalLess);
  return out;
}

std::vector<TraceEvent> collectWallEvents(
    std::span<const Tracer* const> tracers) {
  std::vector<TraceEvent> out;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    for (const TraceEvent& e : t->wallEvents()) {
      if (e.domain == ClockDomain::Wall) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& x,
                                       const TraceEvent& y) {
    return std::tie(x.ts, x.entity, x.a, x.b) <
           std::tie(y.ts, y.entity, y.a, y.b);
  });
  return out;
}

void writeChromeTrace(std::ostream& out,
                      std::span<const TraceEvent> simEvents,
                      std::span<const TraceEvent> wallEvents) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  writeMeta(out, 1, "simulation (sim clock)", first);
  if (!wallEvents.empty()) {
    writeMeta(out, 2, "analysis scheduler (wall clock)", first);
  }
  for (const TraceEvent& e : simEvents) writeEvent(out, e, first);
  for (const TraceEvent& e : wallEvents) writeEvent(out, e, first);
  out << "\n]}\n";
}

std::string chromeTraceJson(std::span<const TraceEvent> simEvents,
                            std::span<const TraceEvent> wallEvents) {
  std::ostringstream out;
  writeChromeTrace(out, simEvents, wallEvents);
  return out.str();
}

} // namespace v6t::obs::trace
