#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <ostream>
#include <tuple>
#include <unistd.h>

#include "sim/rng.hpp"

namespace v6t::obs::trace {

namespace {

/// Stream tag separating trace-ID derivation from every simulation RNG
/// stream (which all derive from the same seed with entity keys).
constexpr std::uint64_t kTraceStream = 0x7ace'1d5ULL;

} // namespace

std::string_view toString(EventKind k) {
  switch (k) {
    case EventKind::BgpUpdateRoot: return "BgpUpdateRoot";
    case EventKind::FeedDelivery: return "FeedDelivery";
    case EventKind::PrefixLearned: return "PrefixLearned";
    case EventKind::SessionScheduled: return "SessionScheduled";
    case EventKind::PacketSent: return "PacketSent";
    case EventKind::PacketCaptured: return "PacketCaptured";
    case EventKind::ReactionObserved: return "ReactionObserved";
    case EventKind::SchedSlice: return "SchedSlice";
    case EventKind::SchedSteal: return "SchedSteal";
    case EventKind::Marker: return "Marker";
  }
  return "?";
}

bool canonicalLess(const TraceEvent& x, const TraceEvent& y) {
  return std::tie(x.ts, x.kind, x.traceId, x.entity, x.a, x.b) <
         std::tie(y.ts, y.kind, y.traceId, y.entity, y.a, y.b);
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = first; i < recorded_; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i % slots_.size())]);
  }
  return out;
}

Tracer::Tracer(TracerOptions options, Registry* registry)
    : options_(options),
      registry_(registry),
      enabled_(options.enabled && kCompiledIn),
      traceSeed_(sim::deriveStreamSeed(options.seed, kTraceStream)),
      ring_(options.ringSize) {}

std::uint64_t Tracer::updateTraceId(std::uint64_t updateSeq) const {
  // Never zero: zero is the "untraced" sentinel in propagated contexts.
  const std::uint64_t id = sim::deriveStreamSeed(traceSeed_, updateSeq);
  return id != 0 ? id : 1;
}

void Tracer::observeReaction(std::size_t classIndex,
                             std::string_view className,
                             double delaySeconds) {
  if (registry_ == nullptr || classIndex >= kMaxClasses) return;
  // Lazy per-class registration, cached: observe stays two relaxed atomics
  // plus a bucket scan after the first call. Single-writer per shard, like
  // every other tracer mutation.
  Histogram*& h = reactionHist_[classIndex];
  if (h == nullptr) {
    std::string name{"bgp.reaction_delay_seconds."};
    name += className;
    h = &registry_->histogram(name, delayBoundsSeconds());
  }
  if (reactionHistAll_ == nullptr) {
    reactionHistAll_ = &registry_->histogram("bgp.reaction_delay_seconds.all",
                                             delayBoundsSeconds());
  }
  h->observe(delaySeconds);
  reactionHistAll_->observe(delaySeconds);
}

void Tracer::recordWall(const TraceEvent& e) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(wallMutex_);
  wallEvents_.push_back(e);
}

std::vector<TraceEvent> Tracer::wallEvents() const {
  const std::lock_guard<std::mutex> lock(wallMutex_);
  return wallEvents_;
}

namespace {

/// snprintf-only (no allocation): shared by the ostream dump and the
/// async-signal fd dump.
int formatEventLine(char* buf, std::size_t cap, const TraceEvent& e) {
  const std::string_view kind = toString(e.kind);
  return std::snprintf(
      buf, cap, "  %.*s ts=%lld trace=%016llx entity=%lu a=%llu b=%llu\n",
      static_cast<int>(kind.size()), kind.data(),
      static_cast<long long>(e.ts),
      static_cast<unsigned long long>(e.traceId),
      static_cast<unsigned long>(e.entity),
      static_cast<unsigned long long>(e.a),
      static_cast<unsigned long long>(e.b));
}

} // namespace

void Tracer::dumpRing(std::ostream& out) const {
  out << "trace ring: " << ring_.size() << " retained of " << ring_.recorded()
      << " recorded (" << ring_.dropped() << " overwritten), oldest first\n";
  char buf[192];
  for (const TraceEvent& e : ring_.snapshot()) {
    const int n = formatEventLine(buf, sizeof(buf), e);
    if (n > 0) out.write(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

void Tracer::dumpRingToFd(int fd) const {
  char buf[192];
  int n = std::snprintf(buf, sizeof(buf),
                        "trace ring: %zu retained of %llu recorded\n",
                        ring_.size(),
                        static_cast<unsigned long long>(ring_.recorded()));
  if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
  // Walk the ring slots directly — snapshot() allocates, which a signal
  // handler must not. Reading a stale slot mid-overwrite is acceptable for
  // a best-effort post-mortem.
  const std::size_t count = ring_.size();
  const std::uint64_t first = ring_.recorded() - count;
  for (std::uint64_t i = first; i < ring_.recorded(); ++i) {
    n = formatEventLine(buf, sizeof(buf), ring_.slotAt(i));
    if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
  }
}

// --- process-global hooks ---------------------------------------------------

namespace {

std::atomic<Tracer*> g_wallTracer{nullptr};

// Fixed-capacity crash registry: set once before installCrashHandler(),
// then only read (from the signal handler), so no locking is needed.
constexpr std::size_t kMaxCrashTracers = 64;
Tracer* g_crashTracers[kMaxCrashTracers] = {};
std::size_t g_crashTracerCount = 0;

extern "C" void v6tCrashHandler(int sig) {
  char buf[96];
  int n = std::snprintf(
      buf, sizeof(buf),
      "\n=== v6t flight recorder post-mortem (signal %d) ===\n", sig);
  if (n > 0) (void)!::write(2, buf, static_cast<std::size_t>(n));
  for (std::size_t t = 0; t < g_crashTracerCount; ++t) {
    n = std::snprintf(buf, sizeof(buf), "--- tracer %zu ---\n", t);
    if (n > 0) (void)!::write(2, buf, static_cast<std::size_t>(n));
    g_crashTracers[t]->dumpRingToFd(2);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

} // namespace

Tracer* wallTracer() noexcept {
  return g_wallTracer.load(std::memory_order_acquire);
}

void setWallTracer(Tracer* tracer) noexcept {
  g_wallTracer.store(tracer, std::memory_order_release);
}

void registerCrashDumpTracers(std::span<Tracer* const> tracers) {
  g_crashTracerCount = 0;
  for (Tracer* t : tracers) {
    if (t == nullptr || g_crashTracerCount >= kMaxCrashTracers) continue;
    g_crashTracers[g_crashTracerCount++] = t;
  }
}

void installCrashHandler() {
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, v6tCrashHandler);
  }
}

void dumpRegisteredRings(std::ostream& out) {
  for (std::size_t t = 0; t < g_crashTracerCount; ++t) {
    out << "--- tracer " << t << " ---\n";
    g_crashTracers[t]->dumpRing(out);
  }
}

} // namespace v6t::obs::trace
