#include "obs/format.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>

namespace v6t::obs::fmt {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string withThousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t count = 0;
  for (std::size_t i = digits.size(); i-- > 0;) {
    out.push_back(digits[i]);
    if (++count % 3 == 0 && i != 0) out.push_back(',');
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string daysClock(std::int64_t ms, bool signedValue) {
  const bool neg = signedValue && ms < 0;
  if (neg) ms = -ms;
  const std::int64_t d = ms / (24LL * 3600 * 1000);
  ms %= 24LL * 3600 * 1000;
  const std::int64_t h = ms / (3600LL * 1000);
  ms %= 3600LL * 1000;
  const std::int64_t m = ms / 60000;
  ms %= 60000;
  const std::int64_t s = ms / 1000;
  ms %= 1000;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(d),
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

std::string isoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

} // namespace v6t::obs::fmt
