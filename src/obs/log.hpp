// v6t::obs — structured logging.
//
// One process-wide logger with severity levels, component tags, and
// machine-parseable key=value output:
//
//   level=warn comp=net msg="bad literal" literal="3fff::/zz"
//
// The default sink is stderr; tests swap in a capturing sink. Per-packet
// call sites rate-limit with `EveryN`, which counts occurrences instead of
// reading a clock — the simulation stays wall-clock-free (DESIGN.md §9).
// The initial level comes from the V6T_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off), defaulting to info.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace v6t::obs {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

[[nodiscard]] std::string_view toString(Level level);
/// Case-sensitive lowercase name -> level; unknown names map to Info.
[[nodiscard]] Level parseLevel(std::string_view name);

/// One structured field. Values are formatted at emit time; string values
/// are quoted, numerics are bare.
struct KV {
  KV(std::string_view k, std::string_view v) : key(k), str(v), kind(Kind::Str) {}
  KV(std::string_view k, const char* v) : KV(k, std::string_view{v}) {}
  KV(std::string_view k, std::int64_t v) : key(k), i64(v), kind(Kind::I64) {}
  KV(std::string_view k, std::uint64_t v) : key(k), u64(v), kind(Kind::U64) {}
  KV(std::string_view k, int v) : KV(k, static_cast<std::int64_t>(v)) {}
  KV(std::string_view k, unsigned v) : KV(k, static_cast<std::uint64_t>(v)) {}
  KV(std::string_view k, double v) : key(k), f64(v), kind(Kind::F64) {}
  KV(std::string_view k, bool v) : key(k), b(v), kind(Kind::Bool) {}

  enum class Kind : std::uint8_t { Str, I64, U64, F64, Bool };

  std::string_view key;
  std::string_view str{};
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  bool b = false;
  Kind kind = Kind::Str;
};

class Logger {
public:
  using Sink = std::function<void(std::string_view line)>;

  /// The process-wide logger (level initialized from V6T_LOG_LEVEL once).
  static Logger& global();

  void setLevel(Level level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] Level level() const noexcept {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(Level level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Replace the output sink; an empty function restores stderr.
  void setSink(Sink sink);

  void log(Level level, std::string_view component, std::string_view message,
           std::initializer_list<KV> fields = {});

private:
  std::atomic<int> level_{static_cast<int>(Level::Info)};
  std::mutex mutex_; // serializes sink calls across shard threads
  Sink sink_;
};

inline void logDebug(std::string_view comp, std::string_view msg,
                     std::initializer_list<KV> fields = {}) {
  Logger::global().log(Level::Debug, comp, msg, fields);
}
inline void logInfo(std::string_view comp, std::string_view msg,
                    std::initializer_list<KV> fields = {}) {
  Logger::global().log(Level::Info, comp, msg, fields);
}
inline void logWarn(std::string_view comp, std::string_view msg,
                    std::initializer_list<KV> fields = {}) {
  Logger::global().log(Level::Warn, comp, msg, fields);
}
inline void logError(std::string_view comp, std::string_view msg,
                     std::initializer_list<KV> fields = {}) {
  Logger::global().log(Level::Error, comp, msg, fields);
}

/// Count-based rate limiter for hot-path diagnostics: allows occurrence
/// 0, N, 2N, ... — no wall clock, so gating is deterministic given the
/// event sequence.
///
/// Thread-safety contract: the emit decision is a SINGLE atomic
/// fetch_add — each caller owns a unique occurrence index, so exactly one
/// call out of every window of N is allowed no matter how many threads
/// race (no load-then-increment split that could double- or zero-emit).
/// Callers must not re-read seen() to decide emission; allow()'s return
/// value is the decision.
class EveryN {
public:
  explicit EveryN(std::uint64_t every) : every_(every == 0 ? 1 : every) {}

  [[nodiscard]] bool allow() noexcept {
    // One fetch_add = one decision; splitting this into load + store would
    // let two threads observe the same index and both (or neither) emit.
    return count_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }
  [[nodiscard]] std::uint64_t seen() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> count_{0};
  std::uint64_t every_;
};

} // namespace v6t::obs
