// v6t::obs — run-time metrics registry.
//
// Named counters, gauges, and fixed-bucket histograms with a lock-free hot
// path: every mutation is a relaxed atomic on a handle obtained once at
// setup time, so instrumented code never takes a lock, never allocates,
// and never serializes shards. The registry mutex guards only metric
// *registration* and snapshot iteration, which happen at wiring time and
// in the observer respectively.
//
// Determinism contract (DESIGN.md §9): metrics record what the simulation
// did; they never feed back into it. Wall-clock time enters only through
// `Span` (phase profiling) and the exporter — observer-side constructs —
// and only ever lands in metric *values*, never in simulation decisions.
//
// Sharding model: each worker shard owns a private Registry and mutates it
// without coordination; `aggregateFrom` folds shard registries into one
// view at merge/export time (counters sum, gauges combine per their mode,
// histograms with identical bounds add bucket-wise).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace v6t::obs {

/// fetch_add for atomic<double> without requiring C++20 library support.
inline double atomicAdd(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
  return cur + delta;
}

inline void atomicMax(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing event count.
class Counter {
public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// How a gauge folds when shard registries are aggregated.
enum class GaugeMode : std::uint8_t {
  Last, // later registries win (config-like values, identical everywhere)
  Sum, // per-shard contributions add up (wall seconds, scanners)
  Max, // high-water marks
};

class Gauge {
public:
  explicit Gauge(GaugeMode mode) : mode_(mode) {}

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { atomicAdd(v_, d); }
  void max(double v) noexcept { atomicMax(v_, v); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] GaugeMode mode() const noexcept { return mode_; }

  /// Fold another gauge's value in, per this gauge's mode.
  void combine(double other) noexcept {
    switch (mode_) {
      case GaugeMode::Last: set(other); break;
      case GaugeMode::Sum: add(other); break;
      case GaugeMode::Max: max(other); break;
    }
  }

private:
  std::atomic<double> v_{0.0};
  GaugeMode mode_;
};

/// Fixed-bucket histogram: `bounds` are ascending upper edges (value v
/// falls into the first bucket with v <= bound); an implicit +inf bucket
/// catches the rest. Observation is two relaxed atomics plus a short scan.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::span<const double> bounds() const noexcept {
    return bounds_;
  }
  /// Non-cumulative count of bucket i, i in [0, bounds().size()]; the last
  /// index is the +inf bucket.
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bucket-wise addition; bounds must be identical.
  void combine(const Histogram& other) noexcept;

private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bounds for wall-clock phase/epoch durations (seconds).
[[nodiscard]] std::span<const double> durationBoundsSeconds();
/// Log-scale bounds (seconds) shared by the BGP convergence-delay and
/// reaction-delay histograms: doubling buckets from 1 s to 2 h, so the
/// sub-minute propagation lags and the minute-to-hour reaction tail both
/// resolve instead of collapsing into one linear bucket.
[[nodiscard]] std::span<const double> delayBoundsSeconds();

/// Named metric store. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime.
class Registry {
public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name, GaugeMode mode = GaugeMode::Last);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds =
                           durationBoundsSeconds());

  /// Scalar value of a counter or gauge, if registered.
  [[nodiscard]] std::optional<double> value(std::string_view name) const;

  /// Fold `other` into this registry: counters sum, gauges combine per
  /// mode, histograms (same bounds) add bucket-wise. Safe to call while
  /// `other` is still being mutated — reads are relaxed-atomic snapshots.
  void aggregateFrom(const Registry& other);

  /// Every metric as flat (name, value) pairs, sorted by name. Histograms
  /// flatten to `name.count`, `name.sum`, and cumulative `name.le.<bound>`
  /// / `name.le.inf` keys.
  [[nodiscard]] std::map<std::string, double> flatten() const;

  /// One JSON object per call, `\n`-terminated: the flattened metrics plus
  /// optional leading string fields (e.g. {"phase","live"}).
  void writeJsonLine(
      std::ostream& out,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          textFields = {}) const;

  /// Prometheus text exposition (counters, gauges, histograms with
  /// cumulative le-buckets). Metric names are sanitized (dots become
  /// underscores).
  void writePrometheus(std::ostream& out) const;

  /// Parse one JSONL snapshot line back into (name, value) pairs; string
  /// fields are skipped. Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<std::map<std::string, double>>
  parseJsonLine(std::string_view line);

  [[nodiscard]] bool empty() const;

private:
  struct Metric {
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  mutable std::mutex mutex_; // guards metrics_ structure, not values
  std::map<std::string, Metric, std::less<>> metrics_;
};

/// RAII wall-clock phase timer: observes the elapsed seconds into a
/// duration histogram when stopped/destroyed. This is the only sanctioned
/// way wall-clock enters the metric space from inside the pipeline.
class Span {
public:
  explicit Span(Histogram& h)
      : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  Span(Registry& r, std::string_view name)
      : Span(r.histogram(name, durationBoundsSeconds())) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Record now; further stops are no-ops. Returns the elapsed seconds.
  double stop() noexcept {
    if (h_ == nullptr) return 0.0;
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count();
    h_->observe(elapsed);
    h_ = nullptr;
    return elapsed;
  }

private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

} // namespace v6t::obs
