// v6t::analysis — the shared capture index.
//
// Every downstream analysis (taxonomy, fingerprinting, the NIST battery,
// heavy hitters) used to walk the full merged packet vector on its own:
// targets were re-extracted per axis, the capture re-sessionized for the
// heavy-hitter session counts, payloads re-scanned for fingerprints. The
// CaptureIndex is built in ONE pass over (packets, sessions) and memoizes
// everything those consumers need, CSR-style:
//
//   sources          canonical source order (first appearance in the
//                    session vector — identical to groupBySource)
//   source→sessions  per-source session-index runs (CSR offsets)
//   session→targets  per-session destination addresses, extracted once
//   session starts   per-source start-time runs for the period detector
//   payload memo     per-session first-payload packet + payload counts
//   per-source aggregates  packets, first/last day, origin ASN
//
// Besides the row-major memos the index keeps a columnar (SoA) view of the
// sessionized capture (DESIGN.md §16): per-packet timestamp / source-lane /
// target-lane / port / payload-length columns in session-major order, plus
// bit-packed NIST bit columns (an address's 64 IID bits ARE its lo64 lane
// word; subnet bits pack two addresses per word). The word-level kernels in
// nist.hpp / addr_class.hpp / autocorr.cpp run straight over these columns.
//
// The index is immutable after build and shared read-only by all pipeline
// workers; the only mutable state is a pair of relaxed atomic hit counters
// that measure how many full-capture re-scans the memoization replaced
// (exported as `analysis.index.*` in the obs snapshot). The counters — and
// their cache-line traffic — compile out under -DV6T_INDEX_STATS=OFF;
// results are identical either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/nist.hpp"
#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

/// True when the index hit counters are compiled in (V6T_INDEX_STATS=ON,
/// the default). OFF builds drop the atomics entirely; every accessor
/// below still returns the same spans/columns.
#if !defined(V6T_INDEX_STATS_DISABLED)
inline constexpr bool kIndexStatsCompiledIn = true;
#else
inline constexpr bool kIndexStatsCompiledIn = false;
#endif

class CaptureIndex {
public:
  /// Build from a capture and its session table (which indexes into
  /// `packets`). Both spans must outlive the index — it stores views, not
  /// copies, of the packet/session data.
  CaptureIndex(std::span<const net::Packet> packets,
               std::span<const telescope::Session> sessions);

  [[nodiscard]] std::span<const net::Packet> packets() const {
    return packets_;
  }
  [[nodiscard]] std::span<const telescope::Session> sessions() const {
    return sessions_;
  }

  // --- canonical source order -------------------------------------------

  [[nodiscard]] std::size_t sourceCount() const { return sources_.size(); }
  [[nodiscard]] const telescope::SourceKey& source(std::size_t i) const {
    return sources_[i];
  }
  /// Session indices of source `i`, in session-vector order.
  [[nodiscard]] std::span<const std::uint32_t> sessionsOf(
      std::size_t i) const {
    return {sessionIdx_.data() + sourceOffsets_[i],
            sourceOffsets_[i + 1] - sourceOffsets_[i]};
  }
  /// Session start times of source `i`, parallel to sessionsOf(i) — the
  /// period detector's input, gathered once at build time.
  [[nodiscard]] std::span<const sim::SimTime> sessionStartsOf(
      std::size_t i) const {
    return {sessionStarts_.data() + sourceOffsets_[i],
            sourceOffsets_[i + 1] - sourceOffsets_[i]};
  }

  // --- per-session memos -------------------------------------------------

  /// Destination addresses of session `s`, in arrival order — extracted
  /// once at build time instead of once per analysis axis. Serving a span
  /// counts as one avoided packet-vector walk (hit counter).
  [[nodiscard]] std::span<const net::Ipv6Address> targetsOf(
      std::uint32_t s) const {
    countSpanServed();
    return {targets_.data() + targetOffsets_[s],
            targetOffsets_[s + 1] - targetOffsets_[s]};
  }

  // --- columnar view (DESIGN.md §16) ------------------------------------

  /// One session's packets as parallel columns, arrival order. `hi`/`lo`
  /// are the target address lanes (lo == the IID word), `srcHi`/`srcLo`
  /// the source lanes; every span has sessionPacketCountOf(s) elements.
  struct TargetColumns {
    std::span<const std::uint64_t> hi;
    std::span<const std::uint64_t> lo;
    std::span<const sim::SimTime> ts;
    std::span<const std::uint64_t> srcHi;
    std::span<const std::uint64_t> srcLo;
    std::span<const std::uint16_t> port;
    std::span<const std::uint16_t> payloadLen;
  };
  [[nodiscard]] TargetColumns columnsOf(std::uint32_t s) const {
    countSpanServed();
    const std::size_t off = targetOffsets_[s];
    const std::size_t n = targetOffsets_[s + 1] - off;
    return {{targetHi_.data() + off, n},  {targetLo_.data() + off, n},
            {packetTs_.data() + off, n},  {srcHi_.data() + off, n},
            {srcLo_.data() + off, n},     {dstPort_.data() + off, n},
            {payloadLen_.data() + off, n}};
  }

  /// Session `s`'s IID bit sequence, bit-packed: identical bits to
  /// bitsFromAddresses(targetsOf(s), 64, 64) — the lo64 lane IS the
  /// MSB-first packed sequence, so this is a zero-copy view.
  [[nodiscard]] PackedBits iidBitsOf(std::uint32_t s) const {
    countSpanServed();
    const std::size_t off = targetOffsets_[s];
    const std::size_t n = targetOffsets_[s + 1] - off;
    return {{targetLo_.data() + off, n}, n * 64};
  }
  /// Session `s`'s subnet bit sequence (address bits 32..63), bit-packed
  /// two addresses per word: identical bits to
  /// bitsFromAddresses(targetsOf(s), 32, 32).
  [[nodiscard]] PackedBits subnetBitsOf(std::uint32_t s) const {
    countSpanServed();
    const std::size_t off = subnetWordOffsets_[s];
    const std::size_t words = subnetWordOffsets_[s + 1] - off;
    const std::size_t n = targetOffsets_[s + 1] - targetOffsets_[s];
    return {{subnetWords_.data() + off, words}, n * 32};
  }
  /// Packet index of session `s`'s first payload-carrying packet, or
  /// kNoPayload if the session carries none.
  static constexpr std::uint32_t kNoPayload = 0xffffffffu;
  [[nodiscard]] std::uint32_t firstPayloadOf(std::uint32_t s) const {
    return sessionFirstPayload_[s];
  }
  [[nodiscard]] std::uint32_t payloadPacketsOf(std::uint32_t s) const {
    return sessionPayloadPackets_[s];
  }

  // --- per-source aggregates (heavy hitters) ----------------------------

  struct SourceAggregates {
    std::uint64_t packets = 0;
    std::int64_t firstDay = 0;
    std::int64_t lastDay = 0;
    net::Asn asn;
  };
  [[nodiscard]] const SourceAggregates& aggregatesOf(std::size_t i) const {
    return aggregates_[i];
  }
  /// Total packets covered by the session table (== packets().size() when
  /// the sessions partition the capture, as Addr128 sessions do).
  [[nodiscard]] std::uint64_t sessionizedPackets() const {
    return targets_.size();
  }

  // --- scheduler cost estimates (DESIGN.md §13) -------------------------

  [[nodiscard]] std::size_t sessionCountOf(std::size_t i) const {
    return sourceOffsets_[i + 1] - sourceOffsets_[i];
  }
  /// Packets (== targets) of session `s`, without touching the hit
  /// counters — a cost probe, not a consumer read.
  [[nodiscard]] std::uint64_t sessionPacketCountOf(std::uint32_t s) const {
    return targetOffsets_[s + 1] - targetOffsets_[s];
  }
  /// Estimated taxonomy cost of source `i`, in scheduler cost units
  /// (~packets touched): the per-session address classification walks
  /// every target once, and each session adds a fixed overhead for the
  /// temporal/network axes.
  [[nodiscard]] std::uint64_t classifyCostOf(std::size_t i) const {
    return aggregates_[i].packets +
           32 * static_cast<std::uint64_t>(sessionCountOf(i));
  }
  /// Estimated NIST battery cost of session `s`: 64 IID bits + 32 subnet
  /// bits extracted per packet, with the spectral FFT adding roughly as
  /// much again.
  [[nodiscard]] std::uint64_t nistCostOf(std::uint32_t s) const {
    return 96 * sessionPacketCountOf(s);
  }

  // --- instrumentation ---------------------------------------------------

  /// A consumer that would previously have walked the whole packet vector
  /// (or re-sessionized it) calls this once instead; the counter lands in
  /// the obs snapshot as `analysis.index.rescans_avoided_total`. No-op in
  /// V6T_INDEX_STATS=OFF builds.
  void noteRescanAvoided() const {
#if !defined(V6T_INDEX_STATS_DISABLED)
    rescansAvoided_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  /// Both getters read 0 in V6T_INDEX_STATS=OFF builds.
  [[nodiscard]] std::uint64_t rescansAvoided() const {
#if !defined(V6T_INDEX_STATS_DISABLED)
    return rescansAvoided_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }
  [[nodiscard]] std::uint64_t targetSpansServed() const {
#if !defined(V6T_INDEX_STATS_DISABLED)
    return targetSpansServed_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

private:
  void countSpanServed() const {
#if !defined(V6T_INDEX_STATS_DISABLED)
    targetSpansServed_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  std::span<const net::Packet> packets_;
  std::span<const telescope::Session> sessions_;

  std::vector<telescope::SourceKey> sources_;
  std::vector<std::size_t> sourceOffsets_; // size sourceCount()+1
  std::vector<std::uint32_t> sessionIdx_; // grouped by source
  std::vector<sim::SimTime> sessionStarts_; // parallel to sessionIdx_

  std::vector<std::size_t> targetOffsets_; // size sessions.size()+1
  std::vector<net::Ipv6Address> targets_; // session-major, arrival order
  std::vector<std::uint32_t> sessionFirstPayload_;
  std::vector<std::uint32_t> sessionPayloadPackets_;

  // Columnar view, all session-major and parallel to targets_ (except the
  // subnet words, which have their own per-session word offsets).
  std::vector<std::uint64_t> targetHi_;
  std::vector<std::uint64_t> targetLo_; // == the packed IID bit column
  std::vector<sim::SimTime> packetTs_;
  std::vector<std::uint64_t> srcHi_;
  std::vector<std::uint64_t> srcLo_;
  std::vector<std::uint16_t> dstPort_;
  std::vector<std::uint16_t> payloadLen_;
  std::vector<std::uint64_t> subnetWords_; // 2 addresses per word
  std::vector<std::size_t> subnetWordOffsets_; // size sessions.size()+1

  std::vector<SourceAggregates> aggregates_;

#if !defined(V6T_INDEX_STATS_DISABLED)
  mutable std::atomic<std::uint64_t> targetSpansServed_{0};
  mutable std::atomic<std::uint64_t> rescansAvoided_{0};
#endif
};

} // namespace v6t::analysis
