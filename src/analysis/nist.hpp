// v6t::analysis — NIST SP 800-22 randomness tests (Appendix B).
//
// The four tests the paper applies to target-address bit sequences
// (sessions with >= 100 packets; IID bits and subnet bits separately):
//
//   frequency (monobit)   balance of ones vs zeros
//   runs                  oscillation rate of identical-bit runs
//   spectral (DFT)        periodic features via discrete Fourier transform
//   cumulative sums       maximum partial-sum excursion (forward/backward)
//
// Each test returns a p-value; p >= alpha (paper: 0.01) means the sequence
// is consistent with randomness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.hpp"

namespace v6t::analysis {

inline constexpr double kNistAlpha = 0.01;

struct NistResult {
  double pValue = 0.0;
  [[nodiscard]] bool pass(double alpha = kNistAlpha) const {
    return pValue >= alpha;
  }
};

/// Bits are one per element, values 0 or 1.
using BitSequence = std::vector<std::uint8_t>;

/// Bit-packed sequence view, MSB-first: sequence bit `i` is word bit
/// `63 - i % 64` of `words[i / 64]` (so an address's 64 IID bits and one
/// u64 lane are the same object, see DESIGN.md §16). Padding bits below
/// the last valid bit of the final word may hold anything — every packed
/// kernel masks them out.
struct PackedBits {
  std::span<const std::uint64_t> words;
  std::size_t bitCount = 0;
};

/// Pack a byte-per-bit sequence into MSB-first words (padding zeroed).
[[nodiscard]] std::vector<std::uint64_t> packBits(
    std::span<const std::uint8_t> bits);

/// Unpack back to one byte per bit — the bridge to the scalar reference
/// tests (unpack(pack(b)) == b for every sequence).
[[nodiscard]] BitSequence unpackBits(PackedBits bits);

/// SP 800-22 §2.1 — frequency (monobit) test. Requires n >= 100.
[[nodiscard]] NistResult frequencyTest(std::span<const std::uint8_t> bits);

/// SP 800-22 §2.3 — runs test. Returns p = 0 if the frequency precondition
/// |pi - 1/2| >= 2/sqrt(n) fails (per the spec the test is then skipped as
/// non-random).
[[nodiscard]] NistResult runsTest(std::span<const std::uint8_t> bits);

/// Word-level frequency test: popcount per word instead of one branch per
/// bit. The ±1 sum is reconstructed exactly (sum = 2·ones − n, integers),
/// so the p-value is bit-identical to frequencyTest on the unpacked bits.
[[nodiscard]] NistResult frequencyTestPacked(PackedBits bits);

/// Word-level runs test: transitions via `w ^ (w << 1)` + popcount, with
/// boundary masks for the word seams and the partial final word. vObs and
/// the ones count are exact integers, so the p-value is bit-identical to
/// runsTest on the unpacked bits.
[[nodiscard]] NistResult runsTestPacked(PackedBits bits);

/// SP 800-22 §2.6 — discrete Fourier transform (spectral) test.
[[nodiscard]] NistResult spectralTest(std::span<const std::uint8_t> bits);

/// SP 800-22 §2.13 — cumulative sums test; forward (mode 0) or backward.
[[nodiscard]] NistResult cusumTest(std::span<const std::uint8_t> bits,
                                   bool forward = true);

/// SP 800-22 §2.2 — frequency test within M-bit blocks. The paper's
/// appendix restricts itself to four tests; these additional ones are
/// provided for deeper analyses (they run fine on >=100-bit sessions).
[[nodiscard]] NistResult blockFrequencyTest(
    std::span<const std::uint8_t> bits, std::size_t blockLen = 32);

/// SP 800-22 §2.11 — serial test (overlapping m-bit patterns). Returns
/// the first p-value (nabla psi^2_m).
[[nodiscard]] NistResult serialTest(std::span<const std::uint8_t> bits,
                                    unsigned m = 4);

/// SP 800-22 §2.12 — approximate entropy test.
[[nodiscard]] NistResult approximateEntropyTest(
    std::span<const std::uint8_t> bits, unsigned m = 3);

/// Extract a bit sequence from target addresses: `firstBit`..`firstBit +
/// bitCount - 1` of every address, concatenated in order. The paper uses
/// bits 32..63 (the subnet under a /32 telescope) and 64..127 (the IID).
[[nodiscard]] BitSequence bitsFromAddresses(
    std::span<const net::Ipv6Address> addrs, unsigned firstBit,
    unsigned bitCount);

/// All four tests on one sequence.
struct NistSummary {
  NistResult frequency;
  NistResult runs;
  NistResult spectral;
  NistResult cusumForward;
  NistResult cusumBackward;

  [[nodiscard]] int passCount(double alpha = kNistAlpha) const {
    return frequency.pass(alpha) + runs.pass(alpha) + spectral.pass(alpha) +
           cusumForward.pass(alpha) + cusumBackward.pass(alpha);
  }
};

[[nodiscard]] NistSummary runAllNistTests(std::span<const std::uint8_t> bits);

/// Subset of the battery to run — the scheduler's split unit for heavy
/// sessions. The spectral (DFT) test costs about as much as the other
/// four combined, so a heavy session splits into a Spectral and a
/// NonSpectral subtask whose summaries write disjoint fields; merging is
/// field-wise assignment and bitwise-equals the unsplit run.
enum class NistBlock : std::uint8_t { All, Spectral, NonSpectral };

/// Run one test block; fields outside the block stay default-initialized.
[[nodiscard]] NistSummary runNistTests(std::span<const std::uint8_t> bits,
                                       NistBlock block);

/// The battery on a packed sequence. With the vectorized kernels enabled
/// (simd.hpp) frequency/runs run word-level on the packed words; the
/// remaining tests — and the whole battery when disabled — run the scalar
/// reference on a lazily unpacked copy. Both dispatch legs are
/// bit-identical to runNistTests on the unpacked bits.
[[nodiscard]] NistSummary runNistTestsPacked(PackedBits bits, NistBlock block);

} // namespace v6t::analysis
