#include "analysis/portscan.hpp"

#include <unordered_set>
#include <vector>

namespace v6t::analysis {

std::string_view toString(PortScanShape s) {
  switch (s) {
    case PortScanShape::None: return "none";
    case PortScanShape::Horizontal: return "horizontal";
    case PortScanShape::Vertical: return "vertical";
    case PortScanShape::Mixed: return "mixed";
  }
  return "?";
}

PortScanProfile profilePorts(std::span<const net::Packet> packets,
                             const telescope::Session& session,
                             const PortScanParams& params) {
  PortScanProfile profile;
  std::unordered_set<std::uint16_t> ports;
  std::unordered_set<net::Ipv6Address> targets;
  std::vector<std::uint16_t> portSequence;
  for (std::uint32_t idx : session.packetIdx) {
    const net::Packet& p = packets[idx];
    if (p.proto == net::Protocol::Icmpv6) continue;
    ++profile.transportPackets;
    ports.insert(p.dstPort);
    targets.insert(p.dst);
    portSequence.push_back(p.dstPort);
  }
  profile.distinctPorts = ports.size();
  profile.distinctTargets = targets.size();
  if (profile.transportPackets == 0) return profile;

  if (portSequence.size() >= 4) {
    std::size_t ascending = 0;
    for (std::size_t i = 1; i < portSequence.size(); ++i) {
      if (portSequence[i] >= portSequence[i - 1]) ++ascending;
    }
    profile.sequentialPorts =
        ascending * 10 >= (portSequence.size() - 1) * 9;
  }

  const bool manyPorts = profile.distinctPorts >= params.verticalMinPorts;
  const bool fewPorts = profile.distinctPorts <= params.horizontalMaxPorts;
  const bool manyTargets = profile.distinctTargets > profile.distinctPorts;
  if (manyPorts && !manyTargets) {
    profile.shape = PortScanShape::Vertical;
  } else if (fewPorts && profile.distinctTargets >= 2) {
    profile.shape = PortScanShape::Horizontal;
  } else {
    profile.shape = PortScanShape::Mixed;
  }
  return profile;
}

} // namespace v6t::analysis
