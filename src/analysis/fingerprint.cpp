#include "analysis/fingerprint.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "analysis/capture_index.hpp"
#include "analysis/dbscan.hpp"
#include "analysis/hoplimit.hpp"

namespace v6t::analysis {

namespace {

using Feature = std::vector<std::uint8_t>;

net::ScanTool toolFromRdns(std::string_view name) {
  for (const net::ToolSignature& sig : net::kToolSignatures) {
    if (sig.rdnsSuffix.empty()) continue;
    if (name.size() >= sig.rdnsSuffix.size() &&
        name.substr(name.size() - sig.rdnsSuffix.size()) == sig.rdnsSuffix) {
      return sig.tool;
    }
  }
  return net::ScanTool::Unknown;
}

} // namespace

FingerprintResult fingerprintSessions(const CaptureIndex& index,
                                      const net::RdnsRegistry* rdns,
                                      const FingerprintParams& params,
                                      unsigned threads,
                                      const ScheduleParams& sched,
                                      ParallelForStats* statsOut) {
  const std::span<const net::Packet> packets = index.packets();
  const std::span<const telescope::Session> sessions = index.sessions();
  FingerprintResult result;
  result.sessionTool.assign(sessions.size(), net::ScanTool::Unknown);

  // --- Step 1: collect distinct payload features across sessions. The
  // payload memo replaces the per-packet scan: the feature comes from the
  // session's memoized first payload packet, the packet tally from the
  // memoized count. Session order (and thus feature insertion order, and
  // thus DBSCAN input order) is unchanged.
  index.noteRescanAvoided();
  std::unordered_map<std::string, std::size_t> featureIndex; // key -> point
  std::vector<Feature> points;
  std::vector<std::vector<std::uint32_t>> featureSessions; // point -> sessions

  for (std::uint32_t si = 0; si < sessions.size(); ++si) {
    result.payloadPackets += index.payloadPacketsOf(si);
    const std::uint32_t firstIdx = index.firstPayloadOf(si);
    if (firstIdx == CaptureIndex::kNoPayload) continue;
    ++result.payloadSessions;
    const net::Packet& p = packets[firstIdx];
    Feature f(params.featureBytes, 0);
    const std::size_t n = std::min(params.featureBytes, p.payload.size());
    std::copy_n(p.payload.begin(), n, f.begin());
    std::string key(f.begin(), f.end());
    auto [it, fresh] = featureIndex.try_emplace(key, points.size());
    if (fresh) {
      points.push_back(std::move(f));
      featureSessions.emplace_back();
    }
    featureSessions[it->second].push_back(si);
  }

  // --- Step 2: DBSCAN over the (capped) feature set. The O(n^2)
  // neighborhood queries dominate this stage, and each point's neighbor
  // list is a pure function of that point — so the adjacency is
  // precomputed across workers (each row in ascending order, exactly what
  // the lazy serial scan yields) and the serial cluster expansion
  // consumes identical lists. ---
  const std::size_t n = std::min(points.size(), params.maxPoints);
  std::vector<net::ScanTool> pointTool(points.size(), net::ScanTool::Unknown);
  if (n > 0) {
    auto distance = [&](std::size_t a, std::size_t b) {
      const Feature& fa = points[a];
      const Feature& fb = points[b];
      double d = 0.0;
      for (std::size_t i = 0; i < fa.size(); ++i) {
        if (fa[i] != fb[i]) d += 1.0;
      }
      return d / static_cast<double>(fa.size());
    };
    std::vector<std::vector<std::size_t>> adjacency(n);
    const std::vector<std::uint64_t> rowCosts(n,
                                              static_cast<std::uint64_t>(n));
    ParallelForStats adjStats = parallelForCosted(
        rowCosts, threads,
        [&](unsigned, std::size_t p) {
          for (std::size_t q = 0; q < n; ++q) {
            if (distance(p, q) <= params.epsilon) adjacency[p].push_back(q);
          }
        },
        sched.virtualTime);
    if (statsOut != nullptr) statsOut->absorb(adjStats);
    const DbscanResult clusters = dbscanWithNeighbors(
        n, params.minPts,
        [&](std::size_t p) -> const std::vector<std::size_t>& {
          return adjacency[p];
        });
    result.clusterCount = clusters.clusterCount;

    // Label each cluster by the first member with a known signature; noise
    // points are matched individually.
    std::vector<net::ScanTool> clusterTool(
        static_cast<std::size_t>(clusters.clusterCount),
        net::ScanTool::Unknown);
    for (std::size_t i = 0; i < n; ++i) {
      const net::ScanTool direct = net::matchToolSignature(points[i]);
      if (clusters.label[i] == kDbscanNoise) {
        pointTool[i] = direct;
      } else if (direct != net::ScanTool::Unknown) {
        clusterTool[static_cast<std::size_t>(clusters.label[i])] = direct;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (clusters.label[i] != kDbscanNoise) {
        pointTool[i] = clusterTool[static_cast<std::size_t>(clusters.label[i])];
      }
    }
  }
  // Points beyond the cap: signature match only.
  for (std::size_t i = n; i < points.size(); ++i) {
    pointTool[i] = net::matchToolSignature(points[i]);
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t si : featureSessions[i]) {
      result.sessionTool[si] = pointTool[i];
    }
  }

  // --- Step 3: hop-limit fallback — topology probing leaves a signature
  // even without payloads (incrementing small hop limits). Each check is
  // a pure per-session predicate into its own flag slot; the label + tally
  // fold runs serially in session order. ---
  {
    std::vector<std::uint32_t> candidates;
    std::vector<std::uint64_t> hopCosts;
    for (std::uint32_t si = 0; si < sessions.size(); ++si) {
      if (result.sessionTool[si] != net::ScanTool::Unknown) continue;
      candidates.push_back(si);
      hopCosts.push_back(index.sessionPacketCountOf(si));
    }
    std::vector<std::uint8_t> isTraceroute(candidates.size(), 0);
    ParallelForStats hopStats = parallelForCosted(
        hopCosts, threads,
        [&](unsigned, std::size_t i) {
          isTraceroute[i] =
              profileHopLimits(packets, sessions[candidates[i]])
                      .looksLikeTraceroute()
                  ? 1
                  : 0;
        },
        sched.virtualTime);
    if (statsOut != nullptr) statsOut->absorb(hopStats);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (isTraceroute[i] == 0) continue;
      result.sessionTool[candidates[i]] = net::ScanTool::Traceroute;
      ++result.hopLimitAttributions;
    }
  }

  // --- Step 4: rDNS fallback for payloadless / unknown sessions. ---
  if (rdns != nullptr) {
    for (std::uint32_t si = 0; si < sessions.size(); ++si) {
      if (result.sessionTool[si] != net::ScanTool::Unknown) continue;
      // rDNS is keyed by the concrete /128 of the first packet.
      const net::Packet& p = packets[sessions[si].packetIdx.front()];
      if (auto name = rdns->lookup(p.src)) {
        result.sessionTool[si] = toolFromRdns(*name);
      }
    }
  }

  // --- Aggregate Table 7. The payload memo answers "does this session
  // carry any payload" without a second packet walk. ---
  index.noteRescanAvoided();
  std::map<net::ScanTool, std::unordered_set<net::Ipv6Address>> toolSources;
  std::unordered_set<net::Ipv6Address> payloadSources;
  for (std::uint32_t si = 0; si < sessions.size(); ++si) {
    const telescope::Session& s = sessions[si];
    const net::ScanTool tool = result.sessionTool[si];
    result.byTool[tool].sessions += 1;
    toolSources[tool].insert(s.source.addr);
    if (index.payloadPacketsOf(si) > 0) payloadSources.insert(s.source.addr);
  }
  for (auto& [tool, count] : result.byTool) {
    count.scanners = toolSources[tool].size();
  }
  result.payloadSources = payloadSources.size();
  return result;
}

FingerprintResult fingerprintSessions(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    const net::RdnsRegistry* rdns, const FingerprintParams& params) {
  const CaptureIndex index{packets, sessions};
  return fingerprintSessions(index, rdns, params);
}

} // namespace v6t::analysis
