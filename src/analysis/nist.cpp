#include "analysis/nist.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "analysis/simd.hpp"

namespace v6t::analysis {

namespace {

/// Standard normal complementary CDF expressed through erfc.
double normalSurvival(double x) {
  return 0.5 * std::erfc(x / std::numbers::sqrt2);
}

/// Iterative radix-2 FFT (in place). Size must be a power of two.
void fft(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

} // namespace

NistResult frequencyTest(std::span<const std::uint8_t> bits) {
  const std::size_t n = bits.size();
  if (n == 0) return {0.0};
  std::int64_t sum = 0;
  for (std::uint8_t b : bits) sum += b != 0 ? 1 : -1;
  const double sObs =
      std::abs(static_cast<double>(sum)) / std::sqrt(static_cast<double>(n));
  return {std::erfc(sObs / std::numbers::sqrt2)};
}

NistResult runsTest(std::span<const std::uint8_t> bits) {
  const std::size_t n = bits.size();
  if (n < 2) return {0.0};
  std::size_t ones = 0;
  for (std::uint8_t b : bits) ones += b != 0 ? 1 : 0;
  const double pi = static_cast<double>(ones) / static_cast<double>(n);
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::abs(pi - 0.5) >= tau) return {0.0}; // frequency precondition
  std::size_t vObs = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if ((bits[i] != 0) != (bits[i - 1] != 0)) ++vObs;
  }
  const double nD = static_cast<double>(n);
  const double numerator =
      std::abs(static_cast<double>(vObs) - 2.0 * nD * pi * (1.0 - pi));
  const double denominator =
      2.0 * std::sqrt(2.0 * nD) * pi * (1.0 - pi);
  return {std::erfc(numerator / denominator)};
}

std::vector<std::uint64_t> packBits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint64_t> words((bits.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) words[i / 64] |= 1ULL << (63 - i % 64);
  }
  return words;
}

BitSequence unpackBits(PackedBits bits) {
  BitSequence out(bits.bitCount);
  std::size_t i = 0;
  for (std::size_t w = 0; i < bits.bitCount; ++w) {
    std::uint64_t v = bits.words[w];
    const std::size_t take = std::min<std::size_t>(64, bits.bitCount - i);
    for (std::size_t b = 0; b < take; ++b) {
      out[i + b] = static_cast<std::uint8_t>(v >> 63);
      v <<= 1;
    }
    i += take;
  }
  return out;
}

namespace {

/// Population count of the first `bitCount` (MSB-first) bits; padding in
/// the final word is masked out, so callers need not zero it.
std::uint64_t packedOnes(PackedBits bits) {
  const std::size_t fullWords = bits.bitCount / 64;
  std::uint64_t ones = 0;
  for (std::size_t w = 0; w < fullWords; ++w) {
    ones += static_cast<std::uint64_t>(std::popcount(bits.words[w]));
  }
  const unsigned rem = bits.bitCount % 64;
  if (rem != 0) {
    ones += static_cast<std::uint64_t>(
        std::popcount(bits.words[fullWords] >> (64 - rem)));
  }
  return ones;
}

} // namespace

NistResult frequencyTestPacked(PackedBits bits) {
  const std::size_t n = bits.bitCount;
  if (n == 0) return {0.0};
  // sum(±1 per bit) = ones − zeros = 2·ones − n, exact in integers, so the
  // double expressions below match frequencyTest() bit for bit.
  const std::int64_t sum = 2 * static_cast<std::int64_t>(packedOnes(bits)) -
                           static_cast<std::int64_t>(n);
  const double sObs =
      std::abs(static_cast<double>(sum)) / std::sqrt(static_cast<double>(n));
  return {std::erfc(sObs / std::numbers::sqrt2)};
}

NistResult runsTestPacked(PackedBits bits) {
  const std::size_t n = bits.bitCount;
  if (n < 2) return {0.0};
  const std::uint64_t ones = packedOnes(bits);
  const double pi = static_cast<double>(ones) / static_cast<double>(n);
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::abs(pi - 0.5) >= tau) return {0.0}; // frequency precondition
  // Adjacent-bit transitions inside word w sit in t = w ^ (w << 1): word
  // bit b of t is seq[63−b] ^ seq[64−b], valid for b in [1, 63] on a full
  // word (mask ~1) and b in [65−rem, 63] on a rem-bit final word. Seams
  // compare the previous word's LSB (its last sequence bit) against the
  // next word's MSB (its first).
  const std::size_t fullWords = n / 64;
  const unsigned rem = n % 64;
  std::size_t vObs = 1;
  for (std::size_t w = 0; w < fullWords; ++w) {
    const std::uint64_t word = bits.words[w];
    vObs += static_cast<std::size_t>(
        std::popcount((word ^ (word << 1)) & ~1ULL));
    if (w > 0) vObs += (bits.words[w - 1] & 1) != (word >> 63);
  }
  if (rem != 0) {
    const std::uint64_t word = bits.words[fullWords];
    if (fullWords > 0) {
      vObs += (bits.words[fullWords - 1] & 1) != (word >> 63);
    }
    if (rem >= 2) {
      vObs += static_cast<std::size_t>(
          std::popcount((word ^ (word << 1)) & (~0ULL << (65 - rem))));
    }
  }
  const double nD = static_cast<double>(n);
  const double numerator =
      std::abs(static_cast<double>(vObs) - 2.0 * nD * pi * (1.0 - pi));
  const double denominator =
      2.0 * std::sqrt(2.0 * nD) * pi * (1.0 - pi);
  return {std::erfc(numerator / denominator)};
}

NistResult spectralTest(std::span<const std::uint8_t> bits) {
  const std::size_t n = bits.size();
  if (n < 4) return {0.0};
  std::size_t padded = 1;
  while (padded < n) padded <<= 1;
  std::vector<std::complex<double>> x(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = {bits[i] != 0 ? 1.0 : -1.0, 0.0};
  }
  fft(x);
  // Peak threshold per SP 800-22 (computed for the true length n).
  const double nD = static_cast<double>(n);
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * nD);
  const std::size_t half = n / 2;
  std::size_t below = 0;
  // Evaluate the first n/2 frequency bins of the (zero-padded) transform;
  // zero padding interpolates the spectrum without shifting peak energy.
  for (std::size_t i = 0; i < half; ++i) {
    if (std::abs(x[i * padded / n]) < threshold) ++below;
  }
  const double expected = 0.95 * nD / 2.0;
  const double variance = nD * 0.95 * 0.05 / 4.0;
  const double d =
      (static_cast<double>(below) - expected) / std::sqrt(variance);
  return {std::erfc(std::abs(d) / std::numbers::sqrt2)};
}

NistResult cusumTest(std::span<const std::uint8_t> bits, bool forward) {
  const std::size_t n = bits.size();
  if (n == 0) return {0.0};
  std::int64_t sum = 0;
  std::int64_t maxExcursion = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t bit = forward ? bits[i] : bits[n - 1 - i];
    sum += bit != 0 ? 1 : -1;
    maxExcursion = std::max(maxExcursion, std::abs(sum));
  }
  const double z = static_cast<double>(maxExcursion);
  if (z == 0.0) return {0.0};
  const double nD = static_cast<double>(n);
  const double sqrtN = std::sqrt(nD);
  const auto phi = [](double x) {
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
  };

  // SP 800-22 §2.13.5, with the exact floor-based summation bounds.
  double p = 1.0;
  const auto k1Start =
      static_cast<std::int64_t>(std::floor((-nD / z + 1.0) / 4.0));
  const auto k1End =
      static_cast<std::int64_t>(std::floor((nD / z - 1.0) / 4.0));
  for (std::int64_t k = k1Start; k <= k1End; ++k) {
    const double kD = static_cast<double>(k);
    p -= phi((4.0 * kD + 1.0) * z / sqrtN) -
         phi((4.0 * kD - 1.0) * z / sqrtN);
  }
  const auto k2Start =
      static_cast<std::int64_t>(std::floor((-nD / z - 3.0) / 4.0));
  const auto k2End = k1End;
  for (std::int64_t k = k2Start; k <= k2End; ++k) {
    const double kD = static_cast<double>(k);
    p += phi((4.0 * kD + 3.0) * z / sqrtN) -
         phi((4.0 * kD + 1.0) * z / sqrtN);
  }
  return {std::clamp(p, 0.0, 1.0)};
}

namespace {

/// Regularized upper incomplete gamma function Q(a, x) = Γ(a,x)/Γ(a),
/// via series / continued fraction (Numerical-Recipes style). Needed for
/// the chi-square based tests.
double igamc(double a, double x) {
  if (x <= 0.0 || a <= 0.0) return 1.0;
  const double logGammaA = std::lgamma(a);
  if (x < a + 1.0) {
    // Series for P(a,x); Q = 1 - P.
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - logGammaA);
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a,x) (modified Lentz).
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = h * std::exp(-x + a * std::log(x) - logGammaA);
  return std::clamp(q, 0.0, 1.0);
}

/// psi^2_m statistic of the serial / approximate entropy tests:
/// (2^m / n) * sum over all m-bit patterns of count^2, minus n.
/// Uses cyclic extension per the spec. m == 0 yields 0.
double psiSquared(std::span<const std::uint8_t> bits, unsigned m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::uint64_t> counts(1ULL << m, 0);
  const std::uint64_t mask = (1ULL << m) - 1;
  // Build the initial window.
  std::uint64_t window = 0;
  for (unsigned i = 0; i < m; ++i) {
    window = (window << 1) | (bits[i % n] != 0 ? 1 : 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ++counts[window & mask];
    window = (window << 1) | (bits[(i + m) % n] != 0 ? 1 : 0);
  }
  double sum = 0.0;
  for (std::uint64_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * static_cast<double>(1ULL << m) / static_cast<double>(n) -
         static_cast<double>(n);
}

} // namespace

NistResult blockFrequencyTest(std::span<const std::uint8_t> bits,
                              std::size_t blockLen) {
  const std::size_t n = bits.size();
  if (blockLen == 0 || n < blockLen) return {0.0};
  const std::size_t blocks = n / blockLen;
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < blockLen; ++i) {
      ones += bits[b * blockLen + i] != 0 ? 1 : 0;
    }
    const double pi = static_cast<double>(ones) /
                      static_cast<double>(blockLen);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(blockLen);
  return {igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0)};
}

NistResult serialTest(std::span<const std::uint8_t> bits, unsigned m) {
  const std::size_t n = bits.size();
  if (m < 1 || n < (1ULL << m)) return {0.0};
  const double psiM = psiSquared(bits, m);
  const double psiM1 = psiSquared(bits, m - 1);
  const double del1 = psiM - psiM1;
  return {igamc(std::pow(2.0, static_cast<double>(m) - 1.0) / 2.0,
                del1 / 2.0)};
}

NistResult approximateEntropyTest(std::span<const std::uint8_t> bits,
                                  unsigned m) {
  const std::size_t n = bits.size();
  if (n < (1ULL << m)) return {0.0};
  // phi(m) from pattern frequencies (cyclic), per §2.12.4.
  auto phi = [&](unsigned blockLen) {
    if (blockLen == 0) return 0.0;
    std::vector<std::uint64_t> counts(1ULL << blockLen, 0);
    const std::uint64_t mask = (1ULL << blockLen) - 1;
    std::uint64_t window = 0;
    for (unsigned i = 0; i < blockLen; ++i) {
      window = (window << 1) | (bits[i % n] != 0 ? 1 : 0);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[window & mask];
      window = (window << 1) | (bits[(i + blockLen) % n] != 0 ? 1 : 0);
    }
    double sum = 0.0;
    for (std::uint64_t c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / static_cast<double>(n);
      sum += p * std::log(p);
    }
    return sum;
  };
  const double apEn = phi(m) - phi(m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - apEn);
  return {igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0)};
}

BitSequence bitsFromAddresses(std::span<const net::Ipv6Address> addrs,
                              unsigned firstBit, unsigned bitCount) {
  BitSequence bits;
  bits.reserve(addrs.size() * bitCount);
  for (const net::Ipv6Address& a : addrs) {
    for (unsigned i = 0; i < bitCount; ++i) {
      bits.push_back(a.bit(firstBit + i) ? 1 : 0);
    }
  }
  return bits;
}

NistSummary runAllNistTests(std::span<const std::uint8_t> bits) {
  return runNistTests(bits, NistBlock::All);
}

NistSummary runNistTests(std::span<const std::uint8_t> bits,
                         NistBlock block) {
  NistSummary summary;
  if (block != NistBlock::Spectral) {
    summary.frequency = frequencyTest(bits);
    summary.runs = runsTest(bits);
    summary.cusumForward = cusumTest(bits, true);
    summary.cusumBackward = cusumTest(bits, false);
  }
  if (block != NistBlock::NonSpectral) {
    summary.spectral = spectralTest(bits);
  }
  return summary;
}

NistSummary runNistTestsPacked(PackedBits bits, NistBlock block) {
  NistSummary summary;
  // Cusum and spectral still walk one byte per bit; unpack lazily, once,
  // only for the blocks that need it.
  BitSequence unpacked;
  bool haveUnpacked = false;
  const auto scalarBits = [&]() -> std::span<const std::uint8_t> {
    if (!haveUnpacked) {
      unpacked = unpackBits(bits);
      haveUnpacked = true;
    }
    return unpacked;
  };
  if (block != NistBlock::Spectral) {
    if (simdKernelsEnabled()) {
      summary.frequency = frequencyTestPacked(bits);
      summary.runs = runsTestPacked(bits);
    } else {
      summary.frequency = frequencyTest(scalarBits());
      summary.runs = runsTest(scalarBits());
    }
    summary.cusumForward = cusumTest(scalarBits(), true);
    summary.cusumBackward = cusumTest(scalarBits(), false);
  }
  if (block != NistBlock::NonSpectral) {
    summary.spectral = spectralTest(scalarBits());
  }
  return summary;
}

} // namespace v6t::analysis
