#include "analysis/addr_class.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/simd.hpp"

namespace v6t::analysis {

namespace {

// Service ports recognized for the embedded-port category, both straight
// hex (0x50 for port 80) and "decimal-as-hex" (0x80 reading as "80").
constexpr std::uint16_t kServicePorts[] = {
    21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 179,
    443, 445, 500, 587, 993, 995, 1194, 3306, 5060, 8080, 8443};

bool isEmbeddedPort(std::uint64_t iid) {
  if (iid == 0 || iid > 0xffff) return false;
  for (std::uint16_t port : kServicePorts) {
    if (iid == port) return true; // hex-encoded port value
    // decimal-as-hex: the hex digits of `iid` read as the decimal port.
    char buf[8];
    int n = 0;
    std::uint64_t v = iid;
    while (v > 0 && n < 8) {
      const std::uint64_t digit = v & 0xf;
      if (digit > 9) {
        n = -1;
        break;
      }
      buf[n++] = static_cast<char>('0' + digit);
      v >>= 4;
    }
    if (n <= 0) continue;
    std::uint32_t decimal = 0;
    for (int i = n - 1; i >= 0; --i)
      decimal = decimal * 10 + static_cast<std::uint32_t>(buf[i] - '0');
    if (decimal == port) return true;
  }
  return false;
}

/// RFC 7707's "wordy" vocabulary: hex strings that read as words.
constexpr const char* kWords[] = {"cafe", "beef", "dead", "babe", "face",
                                  "feed", "fade", "deaf", "bead", "f00d",
                                  "c0de", "d00d", "abba", "aced", "deed",
                                  "bad",  "ace",  "fee",  "add"};

/// Does the hex form of `iid` (without leading zeros) decompose into
/// dictionary words, with at least one word of length >= 4?
bool isWordy(std::uint64_t iid) {
  if (iid == 0) return false;
  char text[17];
  int n = 0;
  {
    char reversed[17];
    int r = 0;
    std::uint64_t v = iid;
    while (v != 0) {
      static constexpr char digits[] = "0123456789abcdef";
      reversed[r++] = digits[v & 0xf];
      v >>= 4;
    }
    while (r > 0) text[n++] = reversed[--r];
    text[n] = 0;
  }
  if (n < 4) return false;
  // Greedy-with-backtracking decomposition over the tiny dictionary.
  bool sawLongWord = false;
  int pos = 0;
  // Simple DP over positions (n <= 16).
  bool reachable[17] = {};
  bool longOnPath[17] = {};
  reachable[0] = true;
  for (pos = 0; pos < n; ++pos) {
    if (!reachable[pos]) continue;
    for (const char* word : kWords) {
      const int len = static_cast<int>(std::char_traits<char>::length(word));
      if (pos + len > n) continue;
      if (std::char_traits<char>::compare(text + pos, word, static_cast<std::size_t>(len)) != 0) continue;
      reachable[pos + len] = true;
      if (len >= 4 || longOnPath[pos]) longOnPath[pos + len] = true;
    }
  }
  sawLongWord = longOnPath[n];
  return reachable[n] && sawLongWord;
}

// --- word-classifier helpers (DESIGN.md §16) ------------------------------

/// 64 Ki-bit membership bitmap over the embedded-port domain (0 < iid <=
/// 0xffff), precomputed once from the scalar decoder so the per-address
/// cost drops from 22 decimal decodes to one bit probe.
const std::array<std::uint64_t, 1024>& embeddedPortBitmap() {
  static const std::array<std::uint64_t, 1024> bitmap = [] {
    std::array<std::uint64_t, 1024> bits{};
    for (std::uint64_t v = 1; v <= 0xffff; ++v) {
      if (isEmbeddedPort(v)) bits[v / 64] |= 1ULL << (v % 64);
    }
    return bits;
  }();
  return bitmap;
}

constexpr std::uint64_t kNibbleLsb = 0x1111111111111111ULL;

/// Bit 0 of each nibble set iff that nibble is a hex letter (>= 0xa,
/// i.e. binary 1010..1111: bit3 & (bit2 | bit1)).
std::uint64_t letterNibbles(std::uint64_t v) {
  const std::uint64_t b3 = (v >> 3) & kNibbleLsb;
  const std::uint64_t b2 = (v >> 2) & kNibbleLsb;
  const std::uint64_t b1 = (v >> 1) & kNibbleLsb;
  return b3 & (b2 | b1);
}

/// Bit 0 of each nibble set iff that nibble is zero.
std::uint64_t zeroNibbles(std::uint64_t v) {
  const std::uint64_t any = ((v >> 3) | (v >> 2) | (v >> 1) | v) & kNibbleLsb;
  return any ^ kNibbleLsb;
}

/// iidNibbleEntropy over the lane: nibble counts gathered by shifts, the
/// per-count terms served from a table holding the exact doubles the
/// scalar loop subtracts ((c/16)·log2(c/16)), accumulated in the same
/// ascending-nibble-value order — bit-identical by construction.
double iidNibbleEntropyWord(std::uint64_t iid) {
  static const std::array<double, 17> term = [] {
    std::array<double, 17> t{};
    for (int c = 1; c <= 16; ++c) {
      const double p = static_cast<double>(c) / 16.0;
      t[static_cast<std::size_t>(c)] = p * std::log2(p);
    }
    return t;
  }();
  std::uint8_t histogram[16] = {};
  for (int i = 0; i < 16; ++i) ++histogram[(iid >> (4 * i)) & 0xf];
  double entropy = 0.0;
  for (int v = 0; v < 16; ++v) {
    const std::uint8_t c = histogram[v];
    if (c == 0) continue;
    entropy -= term[c];
  }
  return entropy;
}

} // namespace

std::string_view toString(AddressType t) {
  switch (t) {
    case AddressType::SubnetAnycast: return "subnet-anycast";
    case AddressType::Isatap: return "isatap";
    case AddressType::IeeeDerived: return "ieee-derived";
    case AddressType::EmbeddedPort: return "embedded-port";
    case AddressType::LowByte: return "low-byte";
    case AddressType::EmbeddedIpv4: return "embedded-ipv4";
    case AddressType::Wordy: return "wordy";
    case AddressType::PatternBytes: return "pattern-bytes";
    case AddressType::Randomized: return "randomized";
  }
  return "?";
}

double iidNibbleEntropy(const net::Ipv6Address& addr) {
  std::array<int, 16> histogram{};
  for (std::size_t i = 16; i < 32; ++i) ++histogram[addr.nibble(i)];
  double entropy = 0.0;
  for (int c : histogram) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / 16.0;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

AddressType classifyAddress(const net::Ipv6Address& addr) {
  const std::uint64_t iid = addr.lo64();

  if (iid == 0) return AddressType::SubnetAnycast;

  // ISATAP: IID = 0000:5efe:a.b.c.d (also 0200:5efe with the u-bit set).
  const std::uint32_t iidHi = static_cast<std::uint32_t>(iid >> 32);
  if (iidHi == 0x00005efe || iidHi == 0x02005efe) return AddressType::Isatap;

  // EUI-64 derived: ff:fe in the middle of the IID.
  if (((iid >> 24) & 0xffff) == 0xfffe) return AddressType::IeeeDerived;

  if (isEmbeddedPort(iid)) return AddressType::EmbeddedPort;

  // Wordy (RFC 7707 pattern iv): checked before low-byte so ::cafe is not
  // mistaken for an ordinary low endpoint number.
  if (isWordy(iid)) return AddressType::Wordy;

  // Low-byte: everything above the lowest 16 bits is zero.
  if ((iid >> 16) == 0) return AddressType::LowByte;

  // Embedded IPv4, packed form: the low 32 bits carry the v4 address.
  if (iidHi == 0 && iid > 0xffff) {
    // Each v4 octet visible in the dotted form; require a plausible
    // first octet (non-zero) to cut down on false positives.
    if (((iid >> 24) & 0xff) != 0) return AddressType::EmbeddedIpv4;
  }
  // Embedded IPv4, spread form: one octet per 16-bit group with the hex
  // digits reading as the decimal octet (2001:db8::192:0:2:1 embeds
  // 192.0.2.1). Requires a plausible, non-zero first octet.
  {
    // A group qualifies if its hex digits are all decimal and read as a
    // value <= 255 (e.g. 0x192 reads "192").
    const auto octet = [](std::uint16_t g) -> int {
      int value = 0;
      for (int shift = 12; shift >= 0; shift -= 4) {
        const int digit = (g >> shift) & 0xf;
        if (digit > 9) return -1;
        value = value * 10 + digit;
      }
      return value <= 255 ? value : -1;
    };
    const int o0 = octet(static_cast<std::uint16_t>(iid >> 48));
    const int o1 = octet(static_cast<std::uint16_t>(iid >> 32));
    const int o2 = octet(static_cast<std::uint16_t>(iid >> 16));
    const int o3 = octet(static_cast<std::uint16_t>(iid));
    if (o0 > 0 && o0 <= 223 && o1 >= 0 && o2 >= 0 && o3 >= 0) {
      return AddressType::EmbeddedIpv4;
    }
  }

  // Pattern bytes: few distinct byte values, or a repeated 16-bit group.
  {
    std::array<int, 256> seen{};
    int distinct = 0;
    for (std::size_t i = 8; i < 16; ++i) {
      if (seen[addr.byte(i)]++ == 0) ++distinct;
    }
    if (distinct <= 2) return AddressType::PatternBytes;
    const std::uint16_t g4 = static_cast<std::uint16_t>(iid >> 48);
    const std::uint16_t g5 = static_cast<std::uint16_t>(iid >> 32);
    const std::uint16_t g6 = static_cast<std::uint16_t>(iid >> 16);
    const std::uint16_t g7 = static_cast<std::uint16_t>(iid);
    if (g4 == g5 && g5 == g6 && g6 == g7) return AddressType::PatternBytes;
  }

  // Randomized vs. residual structure: privacy-extension/TGA-random IIDs
  // have high nibble diversity; anything conspicuously regular that slipped
  // through the rules above is still "pattern".
  return iidNibbleEntropy(addr) >= 2.5 ? AddressType::Randomized
                                       : AddressType::PatternBytes;
}

AddressType classifyAddressWord(std::uint64_t iid) {
  if (iid == 0) return AddressType::SubnetAnycast;

  const std::uint32_t iidHi = static_cast<std::uint32_t>(iid >> 32);
  if (iidHi == 0x00005efe || iidHi == 0x02005efe) return AddressType::Isatap;

  if (((iid >> 24) & 0xffff) == 0xfffe) return AddressType::IeeeDerived;

  if (iid <= 0xffff &&
      ((embeddedPortBitmap()[iid >> 6] >> (iid & 63)) & 1) != 0) {
    return AddressType::EmbeddedPort;
  }

  const std::uint64_t letters = letterNibbles(iid);
  const std::uint64_t zeros = zeroNibbles(iid);
  // Dictionary words spell themselves with nibbles {0, a..f} only, so any
  // decimal 1..9 nibble rejects without running the decomposition DP
  // (leading nibbles are zero by definition, so every 1..9 is significant).
  if ((letters | zeros) == kNibbleLsb && isWordy(iid)) {
    return AddressType::Wordy;
  }

  if ((iid >> 16) == 0) return AddressType::LowByte;

  if (iidHi == 0 && iid > 0xffff) {
    if (((iid >> 24) & 0xff) != 0) return AddressType::EmbeddedIpv4;
  }
  // Spread-form embedded IPv4 needs every group's hex digits decimal; a
  // single letter nibble anywhere already fails one octet decode.
  if (letters == 0) {
    const auto octet = [](std::uint16_t g) -> int {
      int value = 0;
      for (int shift = 12; shift >= 0; shift -= 4) {
        const int digit = (g >> shift) & 0xf;
        if (digit > 9) return -1;
        value = value * 10 + digit;
      }
      return value <= 255 ? value : -1;
    };
    const int o0 = octet(static_cast<std::uint16_t>(iid >> 48));
    const int o1 = octet(static_cast<std::uint16_t>(iid >> 32));
    const int o2 = octet(static_cast<std::uint16_t>(iid >> 16));
    const int o3 = octet(static_cast<std::uint16_t>(iid));
    if (o0 > 0 && o0 <= 223 && o1 >= 0 && o2 >= 0 && o3 >= 0) {
      return AddressType::EmbeddedIpv4;
    }
  }

  // Pattern bytes: at most two distinct byte values among the lane's eight
  // bytes — tracked with two registers instead of the scalar path's
  // 256-slot histogram — or one 16-bit group repeated four times.
  {
    bool third = false;
    const std::uint8_t first = static_cast<std::uint8_t>(iid >> 56);
    std::uint8_t second = first;
    bool haveSecond = false;
    for (int shift = 48; shift >= 0; shift -= 8) {
      const std::uint8_t b = static_cast<std::uint8_t>(iid >> shift);
      if (b == first) continue;
      if (!haveSecond) {
        second = b;
        haveSecond = true;
      } else if (b != second) {
        third = true;
        break;
      }
    }
    if (!third) return AddressType::PatternBytes;
    const std::uint64_t g = iid & 0xffff;
    if (iid == 0x0001000100010001ULL * g) return AddressType::PatternBytes;
  }

  return iidNibbleEntropyWord(iid) >= 2.5 ? AddressType::Randomized
                                          : AddressType::PatternBytes;
}

AddressTypeHistogram classifyAll(std::span<const net::Ipv6Address> targets) {
  if (simdKernelsEnabled()) {
    AddressTypeHistogram histogram;
    for (const net::Ipv6Address& a : targets) {
      histogram.add(classifyAddressWord(a.lo64()));
    }
    return histogram;
  }
  AddressTypeHistogram histogram;
  for (const net::Ipv6Address& a : targets) histogram.add(classifyAddress(a));
  return histogram;
}

AddressTypeHistogram classifyLanes(std::span<const std::uint64_t> iids) {
  AddressTypeHistogram histogram;
  for (std::uint64_t iid : iids) histogram.add(classifyAddressWord(iid));
  return histogram;
}

} // namespace v6t::analysis
