// v6t::analysis — Entropy/IP-style address-structure profiling.
//
// Foremski et al.'s Entropy/IP (IMC'16, the paper's §2) characterizes a
// set of IPv6 addresses by the per-nibble Shannon entropy and segments the
// address into runs of similar entropy: constant segments (the prefix),
// structured segments (counters, subnet plans), and high-entropy segments
// (random IIDs). This is the quantitative backbone behind the Fig. 12/13
// visualizations: a scan session's target list profiles the scanner's
// generation strategy.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "net/ipv6.hpp"

namespace v6t::analysis {

struct EntropyProfile {
  /// Shannon entropy (bits, 0..4) of each of the 32 nibble positions.
  std::array<double, 32> nibbleEntropy{};
  std::size_t sampleCount = 0;

  /// Mean entropy over an inclusive nibble range.
  [[nodiscard]] double meanEntropy(unsigned first, unsigned last) const;
};

/// Compute the per-nibble entropy profile of a target set.
[[nodiscard]] EntropyProfile profileTargets(
    std::span<const net::Ipv6Address> targets);

enum class SegmentKind : std::uint8_t {
  Constant, // H ~ 0: fixed bits (the telescope prefix, zero padding)
  Structured, // 0 < H < threshold: counters, subnet plans, small sets
  Random, // H near 4: uniformly random nibbles
};

[[nodiscard]] std::string_view toString(SegmentKind k);

struct Segment {
  unsigned firstNibble = 0; // inclusive
  unsigned lastNibble = 0; // inclusive
  SegmentKind kind = SegmentKind::Constant;
  double meanEntropy = 0.0;
};

struct SegmentationParams {
  double constantBelow = 0.15; // H below this => constant
  double randomAbove = 3.2; // H above this => random
};

/// Split the 32 nibble positions into maximal runs of one kind.
[[nodiscard]] std::vector<Segment> segmentProfile(
    const EntropyProfile& profile, const SegmentationParams& params = {});

/// One-line rendering, e.g. "[0..11 const][12..15 struct][16..31 random]".
[[nodiscard]] std::string describeSegments(std::span<const Segment> segments);

} // namespace v6t::analysis
