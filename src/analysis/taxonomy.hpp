// v6t::analysis — the scanner taxonomy of §5, as estimators.
//
// Three orthogonal axes, all computed from captured packets/sessions only:
//
//   temporal behavior    one-off / periodic / intermittent (§5.1)
//   network selection    single-prefix / size-independent / size-dependent /
//                        inconsistent (§5.2) — needs the announcement
//                        cycles of the BGP experiment as context
//   address selection    structured / random / unknown (§5.3) — addr6-style
//                        structure detection plus the NIST frequency test
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/addr_class.hpp"
#include "analysis/autocorr.hpp"
#include "analysis/nist.hpp"
#include "analysis/parallel.hpp"
#include "bgp/splitter.hpp"
#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

// ---------------------------------------------------------------- temporal

enum class TemporalClass : std::uint8_t { OneOff, Intermittent, Periodic };

[[nodiscard]] std::string_view toString(TemporalClass t);

struct TemporalResult {
  TemporalClass cls = TemporalClass::OneOff;
  std::optional<sim::Duration> period; // set iff Periodic
};

/// Classify from the source's session start times. Exactly one session (or
/// zero) -> one-off; a detectable stable period -> periodic; otherwise
/// intermittent.
[[nodiscard]] TemporalResult classifyTemporal(
    std::span<const sim::SimTime> sessionStarts,
    const PeriodDetectorParams& params = {});

// ------------------------------------------------------- address selection

enum class AddressSelection : std::uint8_t { Structured, Random, Unknown };

[[nodiscard]] std::string_view toString(AddressSelection s);

struct AddressSelectionParams {
  /// Share of targets in one structured addr6 category (or detected
  /// sequential traversal) required to call the session structured.
  double structuredShare = 0.6;
  /// Minimum packets for the NIST frequency test (SP 800-22 needs >= 100
  /// bits; with 64 IID bits per address any session of >= 100 packets is
  /// far above that).
  std::size_t minPacketsForNist = 100;
  double alpha = kNistAlpha;
};

/// Classify one session's target list.
[[nodiscard]] AddressSelection classifyAddressSelection(
    std::span<const net::Ipv6Address> targets,
    const AddressSelectionParams& params = {});

// ------------------------------------------------------- network selection

enum class NetworkSelection : std::uint8_t {
  SinglePrefix,
  SizeIndependent,
  SizeDependent,
  Inconsistent,
};

[[nodiscard]] std::string_view toString(NetworkSelection s);

/// Session counts per announced prefix, for one source within one
/// announcement cycle.
struct CycleActivity {
  int cycleIndex = 0;
  /// Parallel to the cycle's announced prefix list: sessions this source
  /// directed into each prefix.
  std::vector<std::uint64_t> sessionsPerPrefix;
  std::vector<unsigned> prefixLengths; // announced prefix lengths
};

struct NetworkSelectionParams {
  /// Coefficient of variation below which per-prefix session counts are
  /// considered uniform (size-independent). Partially-covered cycles (a
  /// scanner active for half the cycle) still count as uniform coverage.
  double uniformCv = 1.0;
  /// |Pearson r| between host-bits and session count above which counts are
  /// considered size-driven.
  double sizeCorrelation = 0.6;
  /// DBSCAN parameters for grouping per-cycle profiles of one source; a
  /// source without a dominant behavior cluster is inconsistent.
  double dbscanEpsilon = 0.5;
  std::size_t dbscanMinPts = 1;
  /// Minimum share of a source's cycles that the dominant behavior
  /// cluster must hold; partially-observed outlier cycles are tolerated.
  double dominantShare = 0.7;
};

/// Per-cycle label used internally and exposed for tests.
[[nodiscard]] NetworkSelection classifyCycle(
    const CycleActivity& cycle, const NetworkSelectionParams& params = {});

/// Combine a source's behavior across all cycles it was active in.
/// Cycles are first grouped by DBSCAN over their normalized per-prefix
/// session distribution; sources whose cycles disagree are inconsistent.
[[nodiscard]] NetworkSelection classifyNetworkSelection(
    std::span<const CycleActivity> cycles,
    const NetworkSelectionParams& params = {});

// ----------------------------------------------------- corpus-level driver

/// Everything the taxonomy says about one scan source.
struct ScannerProfile {
  telescope::SourceKey source;
  std::vector<std::uint32_t> sessionIdx; // into the session vector
  TemporalResult temporal;
  NetworkSelection network = NetworkSelection::SinglePrefix;
  /// Session counts per address-selection class for this source.
  std::uint64_t sessionsByAddrSel[3] = {0, 0, 0};
};

struct TaxonomyResult {
  std::vector<ScannerProfile> profiles;
  /// Per-session address selection labels (parallel to the session vector).
  std::vector<AddressSelection> sessionAddrSel;

  [[nodiscard]] std::uint64_t scannersOf(TemporalClass t) const;
  [[nodiscard]] std::uint64_t sessionsOf(TemporalClass t) const;
  [[nodiscard]] std::uint64_t scannersOf(NetworkSelection s) const;
  [[nodiscard]] std::uint64_t sessionsOf(NetworkSelection s) const;
};

/// Run the full taxonomy over one telescope's capture. `schedule` provides
/// the announcement-cycle context for network selection; pass nullptr for
/// telescopes without a BGP experiment (every source is then single-prefix,
/// as in §5.2's "for T2–T4" note). Thin wrapper: builds a CaptureIndex and
/// delegates to classifyIndexed with one thread.
[[nodiscard]] TaxonomyResult classifyCapture(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    const bgp::SplitSchedule* schedule,
    const PeriodDetectorParams& temporalParams = {},
    const AddressSelectionParams& addrParams = {},
    const NetworkSelectionParams& netParams = {});

class CaptureIndex;

/// Columnar overload: classify session `s` straight off the index's
/// columns — classifyLanes over the IID lane, monotonic share on the
/// (hi, lo) lane pair, packed frequency test on the bit column — with no
/// address materialization. Bit-identical to
/// classifyAddressSelection(index.targetsOf(s), params); dispatches to
/// that scalar row path when the SIMD kernels are off (simd.hpp).
[[nodiscard]] AddressSelection classifyAddressSelection(
    const CaptureIndex& index, std::uint32_t s,
    const AddressSelectionParams& params = {});

/// Taxonomy over a pre-built shared index: targets and session-start runs
/// come from the index memos instead of fresh packet-vector walks, and the
/// per-source classification fans out cost-aware (LPT + work stealing,
/// DESIGN.md §13) over `threads` workers, with per-source costs estimated
/// from the index aggregates. Sources whose estimated cost reaches
/// `sched.minSplitCost` are split: their per-session address
/// classification becomes session-block subtasks writing disjoint
/// `sessionAddrSel` slots plus private per-block counters, the
/// temporal/network axes become a rest subtask, and the block counters
/// fold into the profile in canonical block order after the dispatch.
/// Every subtask is a pure function of its slice writing to pre-sized
/// slots, so the result is bitwise-identical for every thread count
/// (including 1, the serial reference) and for split vs unsplit.
/// `statsOut`, when non-null, receives the worker fan-out statistics for
/// the pipeline's imbalance instrumentation.
[[nodiscard]] TaxonomyResult classifyIndexed(
    const CaptureIndex& index, const bgp::SplitSchedule* schedule,
    unsigned threads = 1, const PeriodDetectorParams& temporalParams = {},
    const AddressSelectionParams& addrParams = {},
    const NetworkSelectionParams& netParams = {},
    ParallelForStats* statsOut = nullptr, const ScheduleParams& sched = {});

} // namespace v6t::analysis
