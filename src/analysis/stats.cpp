#include "analysis/stats.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace v6t::analysis {

std::vector<std::pair<std::int64_t, double>> CumulativeSeries::normalized()
    const {
  std::vector<std::pair<std::int64_t, double>> out;
  out.reserve(points.size());
  const double totalValue = static_cast<double>(total());
  for (const auto& [bucket, value] : points) {
    out.emplace_back(bucket, totalValue == 0.0
                                 ? 0.0
                                 : static_cast<double>(value) / totalValue);
  }
  return out;
}

CumulativeSeries cumulative(
    const std::map<std::int64_t, std::uint64_t>& perBucket) {
  CumulativeSeries series;
  std::uint64_t running = 0;
  for (const auto& [bucket, count] : perBucket) {
    running += count;
    series.points.emplace_back(bucket, running);
  }
  return series;
}

std::vector<PortRank> topPorts(std::span<const net::Packet> packets,
                               std::span<const telescope::Session> sessions,
                               net::Protocol proto, std::size_t k) {
  // Key 0..65535: individual port; key 65536: the traceroute range bucket.
  std::unordered_map<std::uint32_t, std::uint64_t> sessionCount;
  std::uint64_t sessionsWithProto = 0;
  for (const telescope::Session& s : sessions) {
    std::unordered_set<std::uint32_t> seen;
    bool carries = false;
    for (std::uint32_t idx : s.packetIdx) {
      const net::Packet& p = packets[idx];
      if (p.proto != proto) continue;
      carries = true;
      const std::uint32_t key =
          (proto == net::Protocol::Udp && net::isTraceroutePort(p.dstPort))
              ? 65536u
              : p.dstPort;
      seen.insert(key);
    }
    if (!carries) continue;
    ++sessionsWithProto;
    for (std::uint32_t key : seen) ++sessionCount[key];
  }

  std::vector<PortRank> ranks;
  ranks.reserve(sessionCount.size());
  for (const auto& [key, count] : sessionCount) {
    PortRank r;
    r.tracerouteRange = key == 65536u;
    r.port = r.tracerouteRange ? net::kTracerouteLo
                               : static_cast<std::uint16_t>(key);
    r.sessions = count;
    r.share = percent(count, sessionsWithProto);
    ranks.push_back(r);
  }
  std::sort(ranks.begin(), ranks.end(), [](const PortRank& a,
                                           const PortRank& b) {
    if (a.sessions != b.sessions) return a.sessions > b.sessions;
    return a.port < b.port;
  });
  if (ranks.size() > k) ranks.resize(k);
  return ranks;
}

std::string UpsetRow::key(std::span<const std::string> names) const {
  std::string out;
  for (std::size_t i = 0; i < membership.size(); ++i) {
    if (!membership[i]) continue;
    if (!out.empty()) out += "+";
    out += names[i];
  }
  return out.empty() ? "(none)" : out;
}

} // namespace v6t::analysis
