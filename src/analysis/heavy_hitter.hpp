// v6t::analysis — heavy-hitter detection (§4.2).
//
// A heavy hitter is an individual /128 source contributing more than a
// threshold share (paper: 10%) of one telescope's packets. The paper keeps
// heavy hitters in the dataset because session-centric statistics are
// insensitive to them (73% of packets, 0.04% of sessions).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

class CaptureIndex;

struct HeavyHitter {
  net::Ipv6Address source;
  net::Asn asn;
  std::uint64_t packets = 0;
  double shareOfTelescope = 0.0; // percent
  std::uint64_t sessions = 0;
  std::int64_t firstDay = 0;
  std::int64_t lastDay = 0;
};

/// Identify heavy hitters in one telescope's capture. Sessionizes the
/// capture once (at /128, the granularity heavy hitters are defined on),
/// builds a CaptureIndex over it, and delegates to the index overload.
[[nodiscard]] std::vector<HeavyHitter> findHeavyHitters(
    std::span<const net::Packet> packets, double thresholdPercent = 10.0);

/// Identify heavy hitters from a shared index whose sessions were built at
/// Addr128 aggregation: packet counts, day bounds, origin ASN and session
/// counts all come from the index's per-source aggregates — no packet walk,
/// no internal re-sessionization. Hitters are ordered by packet count
/// descending, ties broken by canonical (first-appearance) source order.
[[nodiscard]] std::vector<HeavyHitter> findHeavyHitters(
    const CaptureIndex& index, double thresholdPercent = 10.0);

/// Packets/sessions contributed by a set of heavy hitters across a capture,
/// for "w/o heavy hitter" table rows.
struct HeavyHitterImpact {
  std::uint64_t packets = 0;
  std::uint64_t sessions = 0;
  double packetShare = 0.0; // percent of all packets
  double sessionShare = 0.0; // percent of all sessions
};

[[nodiscard]] HeavyHitterImpact heavyHitterImpact(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    std::span<const HeavyHitter> hitters);

/// Impact from the shared index's per-source aggregates. Exact when the
/// index sessions are Addr128 (a source IS a /128, so its aggregate packet
/// count equals the per-packet tally); at coarser aggregation the count
/// covers the whole aggregated source.
[[nodiscard]] HeavyHitterImpact heavyHitterImpact(
    const CaptureIndex& index, std::span<const HeavyHitter> hitters);

} // namespace v6t::analysis
