#include "analysis/streaming.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <optional>
#include <unordered_map>

#include "analysis/capture_index.hpp"
#include "analysis/parallel.hpp"
#include "analysis/stats.hpp"
#include "telescope/digest.hpp"

namespace v6t::analysis {

namespace {

/// Bucket bounds for per-window packet counts (decades).
std::span<const double> countBounds() {
  static const std::array<double, 8> bounds{1e0, 1e1, 1e2, 1e3,
                                            1e4, 1e5, 1e6, 1e7};
  return bounds;
}

void mixDouble(std::uint64_t& h, double d) {
  telescope::fnv1aMix(h, std::bit_cast<std::uint64_t>(d));
}

} // namespace

std::uint64_t StreamingResult::digest() const {
  using telescope::fnv1aMix;
  std::uint64_t h = telescope::kFnvBasis;
  fnv1aMix(h, totalPackets);
  fnv1aMix(h, sources.size());
  for (const StreamingSourceReport& r : sources) {
    fnv1aMix(h, r.source.addr.hi64());
    fnv1aMix(h, r.source.addr.lo64());
    fnv1aMix(h, telescope::bits(r.source.agg));
    fnv1aMix(h, r.packets);
    fnv1aMix(h, r.sessions);
    fnv1aMix(h, r.payloadPackets);
    fnv1aMix(h, static_cast<std::uint64_t>(r.firstDay));
    fnv1aMix(h, static_cast<std::uint64_t>(r.lastDay));
    fnv1aMix(h, r.asn.value());
  }
  fnv1aMix(h, heavyHitters.size());
  for (const HeavyHitter& hh : heavyHitters) {
    fnv1aMix(h, hh.source.hi64());
    fnv1aMix(h, hh.source.lo64());
    fnv1aMix(h, hh.asn.value());
    fnv1aMix(h, hh.packets);
    mixDouble(h, hh.shareOfTelescope);
    fnv1aMix(h, hh.sessions);
    fnv1aMix(h, static_cast<std::uint64_t>(hh.firstDay));
    fnv1aMix(h, static_cast<std::uint64_t>(hh.lastDay));
  }
  fnv1aMix(h, heavyHitterImpact.packets);
  fnv1aMix(h, heavyHitterImpact.sessions);
  mixDouble(h, heavyHitterImpact.packetShare);
  mixDouble(h, heavyHitterImpact.sessionShare);
  fnv1aMix(h, sessionStats.opened);
  fnv1aMix(h, sessionStats.closedByTimeout);
  fnv1aMix(h, sessionStats.closedByGap);
  fnv1aMix(h, sessionStats.openAtFinish);
  return h;
}

StreamingResult foldSummaries(
    std::vector<telescope::SessionSummary> summaries,
    std::uint64_t totalPackets, telescope::Sessionizer::Stats stats,
    const StreamingOptions& opts) {
  // Canonicalize: the exact (start, source address) order
  // Sessionizer::finish() emits, so first-appearance grouping below
  // reproduces groupBySource / CaptureIndex source order.
  std::stable_sort(summaries.begin(), summaries.end(),
                   [](const telescope::SessionSummary& a,
                      const telescope::SessionSummary& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.source.addr < b.source.addr;
                   });

  std::unordered_map<telescope::SourceKey, std::size_t> index;
  index.reserve(summaries.size());
  std::vector<std::vector<std::uint32_t>> groups;
  for (std::uint32_t i = 0; i < summaries.size(); ++i) {
    auto [it, fresh] = index.emplace(summaries[i].source, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  StreamingResult result;
  result.totalPackets = totalPackets;
  result.sessionStats = stats;
  result.sources.resize(groups.size());
  // Pure per-source fold into pre-sized canonical slots: bitwise-identical
  // for every thread count (the parallel.hpp determinism contract).
  parallelFor(groups.size(), opts.threads,
              [&](unsigned /*worker*/, std::size_t i) {
                const std::vector<std::uint32_t>& g = groups[i];
                StreamingSourceReport r;
                r.source = summaries[g.front()].source;
                for (std::uint32_t si : g) {
                  r.packets += summaries[si].packets;
                  r.payloadPackets += summaries[si].payloadPackets;
                }
                r.sessions = g.size();
                r.firstDay = summaries[g.front()].start.dayIndex();
                r.lastDay = summaries[g.back()].end.dayIndex();
                r.asn = summaries[g.front()].firstAsn;
                result.sources[i] = r;
              });

  // Heavy hitters, replicating findHeavyHitters(index, ...) operand for
  // operand so the shares are bitwise-equal doubles.
  const auto total = static_cast<double>(totalPackets);
  for (const StreamingSourceReport& r : result.sources) {
    const double share =
        total == 0.0 ? 0.0 : 100.0 * static_cast<double>(r.packets) / total;
    if (share <= opts.heavyHitterThresholdPercent) continue;
    HeavyHitter h;
    h.source = r.source.addr;
    h.asn = r.asn;
    h.packets = r.packets;
    h.shareOfTelescope = share;
    h.sessions = r.sessions;
    h.firstDay = r.firstDay;
    h.lastDay = r.lastDay;
    result.heavyHitters.push_back(h);
  }
  std::stable_sort(result.heavyHitters.begin(), result.heavyHitters.end(),
                   [](const HeavyHitter& a, const HeavyHitter& b) {
                     return a.packets > b.packets;
                   });

  // Impact, replicating heavyHitterImpact(index, hitters).
  for (const StreamingSourceReport& r : result.sources) {
    const unsigned maskBits = telescope::bits(r.source.agg);
    for (const HeavyHitter& h : result.heavyHitters) {
      if (h.source.maskedTo(maskBits) == r.source.addr) {
        result.heavyHitterImpact.packets += r.packets;
        result.heavyHitterImpact.sessions += r.sessions;
        break;
      }
    }
  }
  result.heavyHitterImpact.packetShare =
      percent(result.heavyHitterImpact.packets, totalPackets);
  result.heavyHitterImpact.sessionShare =
      percent(result.heavyHitterImpact.sessions, summaries.size());
  return result;
}

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions opts)
    : opts_(std::move(opts)), tracker_(opts_.agg, opts_.sessionTimeout) {
  if (!opts_.captureGaps.empty()) {
    tracker_.setCaptureGaps(opts_.captureGaps);
  }
}

void StreamingAnalyzer::ingest(const net::Packet& p) {
  const std::int64_t len = opts_.windowLength.millis();
  const std::int64_t idx = len > 0 ? p.ts.millis() / len : 0;
  if (haveWindow_ && idx != windowIdx_) closeWindow();
  if (!haveWindow_) {
    windowIdx_ = idx;
    haveWindow_ = true;
  }
  window_.push_back(p);
  tracker_.offer(p);
  ++totalPackets_;
}

void StreamingAnalyzer::closeWindow() {
  if (!haveWindow_) return;
  std::optional<obs::Span> span;
  if (opts_.metrics != nullptr) {
    span.emplace(*opts_.metrics, "analysis.stream.window_seconds");
  }

  // Window-local view: sessionize just this window's packets and build a
  // CaptureIndex over them. Observability only — the capture-level fold
  // below runs off the cross-window tracker, so sessions spanning a
  // window edge are never split in the result.
  telescope::Sessionizer local{opts_.agg, opts_.sessionTimeout};
  if (!opts_.captureGaps.empty()) local.setCaptureGaps(opts_.captureGaps);
  for (std::uint32_t i = 0; i < window_.size(); ++i) {
    local.offer(window_[i], i);
  }
  const std::vector<telescope::Session> localSessions = local.finish();
  const CaptureIndex windowIndex{window_, localSessions};

  const std::int64_t len = opts_.windowLength.millis();
  StreamingWindowReport report;
  report.start = sim::SimTime{len > 0 ? windowIdx_ * len : 0};
  report.end = len > 0 ? sim::SimTime{(windowIdx_ + 1) * len}
                       : window_.back().ts;
  report.packets = window_.size();
  report.sources = windowIndex.sourceCount();
  report.sessions = localSessions.size();
  windows_.push_back(report);

  std::vector<telescope::SessionSummary> closed = tracker_.drainClosed();
  summaries_.insert(summaries_.end(), closed.begin(), closed.end());

  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("analysis.stream.windows_total").inc();
    opts_.metrics->histogram("analysis.stream.window_packets", countBounds())
        .observe(static_cast<double>(window_.size()));
    opts_.metrics->counter("analysis.stream.sessions_closed_total")
        .inc(closed.size());
    opts_.metrics
        ->gauge("analysis.stream.open_sessions_high_water",
                obs::GaugeMode::Max)
        .set(static_cast<double>(tracker_.openSessions()));
  }
  window_.clear();
  haveWindow_ = false;
  ++windowsClosed_;
}

StreamingResult StreamingAnalyzer::finish() {
  closeWindow();
  std::vector<telescope::SessionSummary> tail = tracker_.finish();
  summaries_.insert(summaries_.end(), tail.begin(), tail.end());
  StreamingResult result = foldSummaries(std::move(summaries_),
                                         totalPackets_, tracker_.stats(),
                                         opts_);
  result.windows = std::move(windows_);
  summaries_.clear();
  return result;
}

StreamingResult analyzeOneShot(std::span<const net::Packet> packets,
                               const StreamingOptions& opts) {
  // Deliberately a fully independent implementation on the in-memory
  // machinery (Sessionizer, CaptureIndex, findHeavyHitters): the
  // streaming == one-shot tests compare two code paths, not one path
  // against itself.
  telescope::Sessionizer::Stats stats;
  const std::vector<telescope::Session> sessions =
      telescope::sessionize(packets, opts.agg, opts.sessionTimeout, &stats,
                            opts.captureGaps);
  const CaptureIndex index{packets, sessions};

  StreamingResult result;
  result.totalPackets = packets.size();
  result.sessionStats = stats;
  result.sources.resize(index.sourceCount());
  parallelFor(index.sourceCount(), opts.threads,
              [&](unsigned /*worker*/, std::size_t i) {
                const CaptureIndex::SourceAggregates& agg =
                    index.aggregatesOf(i);
                StreamingSourceReport r;
                r.source = index.source(i);
                r.packets = agg.packets;
                r.sessions = index.sessionsOf(i).size();
                for (std::uint32_t si : index.sessionsOf(i)) {
                  r.payloadPackets += index.payloadPacketsOf(si);
                }
                r.firstDay = agg.firstDay;
                r.lastDay = agg.lastDay;
                r.asn = agg.asn;
                result.sources[i] = r;
              });
  result.heavyHitters =
      findHeavyHitters(index, opts.heavyHitterThresholdPercent);
  result.heavyHitterImpact = heavyHitterImpact(index, result.heavyHitters);
  return result;
}

} // namespace v6t::analysis
