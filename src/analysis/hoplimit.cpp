#include "analysis/hoplimit.hpp"

#include <bitset>

namespace v6t::analysis {

HopLimitProfile profileHopLimits(std::span<const net::Packet> packets,
                                 const telescope::Session& session) {
  HopLimitProfile profile;
  std::bitset<256> seen;
  for (std::uint32_t idx : session.packetIdx) {
    const std::uint8_t hops = packets[idx].hopLimit;
    profile.minHops = std::min(profile.minHops, hops);
    profile.maxHops = std::max(profile.maxHops, hops);
    if (hops <= 32) ++profile.lowProbes;
    seen.set(hops);
    ++profile.packets;
  }
  profile.distinctValues = seen.count();
  return profile;
}

} // namespace v6t::analysis
