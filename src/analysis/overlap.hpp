// v6t::analysis — cross-telescope source-overlap analytics (Fig. 16).
//
// The paper studies which scan sources appear at several telescopes and
// whether they do so on the same days: same-day overlap indicates one
// campaign sweeping all visible space, drifting-apart overlap indicates
// telescopes attracting different crowds. These estimators back the
// fig16 bench and are exposed for standalone use.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace v6t::analysis {

/// Days (day indexes) on which each /128 source was active in a capture.
using ActivityCalendar = std::map<net::Ipv6Address, std::set<std::int64_t>>;

[[nodiscard]] ActivityCalendar buildCalendar(
    std::span<const net::Packet> packets);

struct OverlapStats {
  std::size_t onlyA = 0; // sources seen at A but not B
  std::size_t onlyB = 0;
  std::size_t shared = 0; // seen at both
  std::size_t sharedSameDay = 0; // seen at both on at least one common day

  [[nodiscard]] double jaccard() const {
    const std::size_t uni = onlyA + onlyB + shared;
    return uni == 0 ? 0.0
                    : static_cast<double>(shared) / static_cast<double>(uni);
  }
  [[nodiscard]] double sameDayShare() const {
    return shared == 0 ? 0.0
                       : static_cast<double>(sharedSameDay) /
                             static_cast<double>(shared);
  }
};

/// Compare two telescopes' calendars.
[[nodiscard]] OverlapStats compareCalendars(const ActivityCalendar& a,
                                            const ActivityCalendar& b);

/// Sources present in every one of the given calendars (the paper found
/// ten /128 sources at all four telescopes over the full period).
[[nodiscard]] std::vector<net::Ipv6Address> sourcesInAll(
    std::span<const ActivityCalendar> calendars);

} // namespace v6t::analysis
