#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/format.hpp"

namespace v6t::analysis {

TextTable::TextTable(std::vector<std::string> header)
    : columns_(header.size()), header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(columns_);
  rows_.push_back(std::move(cells));
}

void TextTable::addSeparator() { rows_.emplace_back(); }

void TextTable::render(std::ostream& out) const {
  std::vector<std::size_t> width(columns_);
  for (std::size_t c = 0; c < columns_; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    for (std::size_t c = 0; c < columns_; ++c) {
      out << '+' << std::string(width[c] + 2, fill);
    }
    out << "+\n";
  };
  auto renderRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns_; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  line('-');
  renderRow(header_);
  line('=');
  for (const auto& row : rows_) {
    if (row.empty()) {
      line('-');
    } else {
      renderRow(row);
    }
  }
  line('-');
}

std::string TextTable::toString() const {
  std::ostringstream out;
  render(out);
  return out.str();
}

void TextTable::writeCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      const bool quote =
          row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
}

std::string withThousands(std::uint64_t value) {
  return obs::fmt::withThousands(value);
}

std::string fixed(double value, int decimals) {
  return obs::fmt::fixed(value, decimals);
}

std::string percentCell(double value, int decimals) {
  return fixed(value, decimals);
}

std::string bar(double value, double maxValue, int width) {
  if (maxValue <= 0.0) return {};
  int filled = static_cast<int>(value / maxValue * width + 0.5);
  filled = std::clamp(filled, 0, width);
  return std::string(static_cast<std::size_t>(filled), '#');
}

std::string gapFlagged(std::string cell, bool overlapsGap) {
  if (overlapsGap) cell += " !gap";
  return cell;
}

} // namespace v6t::analysis
