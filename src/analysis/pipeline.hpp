// v6t::analysis — the parallel deterministic analysis pipeline.
//
// One CaptureIndex build, then every analysis axis (taxonomy,
// fingerprinting, heavy hitters, the optional NIST battery) runs off the
// shared memos instead of re-walking the merged packet vector. Per-source
// and per-session work fans out over a work-queue of up to
// `PipelineOptions::threads` workers; every unit of work is a pure
// function of its input writing to a pre-sized result slot in canonical
// order, so the PipelineResult — and its digest — is bitwise-identical
// for every thread count (DESIGN.md §12).
//
// Observability: when constructed with a Registry the pipeline records
//   analysis.index_seconds        index build wall-clock (Span)
//   analysis.classify_seconds     taxonomy stage wall-clock (Span)
//   analysis.nist_seconds         NIST battery wall-clock (Span)
//   analysis.fingerprint_seconds  fingerprint stage wall-clock (Span)
//   analysis.heavy_hitter_seconds heavy-hitter stage wall-clock (Span)
//   analysis.worker.items_total / analysis.worker.busy_seconds
//                                 per-worker shard registries folded via
//                                 aggregateFrom (the sharded-runner path)
//   analysis.worker_busy_seconds  per-worker busy-time histogram
//   analysis.worker_imbalance_ratio  max/mean worker busy time (Max gauge)
//   analysis.sched.steals_total   work-stealing operations (DESIGN.md §13)
//   analysis.sched.splits_total   heavy sources/sessions split into subtasks
//   analysis.sched.task_cost      histogram of estimated task costs
//   analysis.index.rescans_avoided_total / target_spans_served_total
//                                 full-capture re-scans the index replaced
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/capture_index.hpp"
#include "analysis/fingerprint.hpp"
#include "analysis/heavy_hitter.hpp"
#include "analysis/nist.hpp"
#include "analysis/parallel.hpp"
#include "analysis/taxonomy.hpp"
#include "bgp/splitter.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

struct PipelineOptions {
  /// Worker count for the per-source / per-session fan-out. 1 = the
  /// serial reference the thread-invariance tests compare against.
  unsigned threads = 1;

  /// Cost threshold at which a heavy source/session is split into
  /// subtasks (DESIGN.md §13); `analysis.min_split_cost` in configs.
  std::uint64_t minSplitCost = kDefaultMinSplitCost;
  /// Replay the schedule on virtual worker clocks: tasks run serially
  /// but busy-seconds model the `threads`-worker schedule (the
  /// speedup-measurement mode for single-core hosts; results are
  /// bitwise-identical either way).
  bool virtualTime = false;

  /// Taxonomy stage (on by default; heavy-hitter-only consumers can skip
  /// it and get an empty TaxonomyResult).
  bool taxonomy = true;
  PeriodDetectorParams temporalParams;
  AddressSelectionParams addrParams;
  NetworkSelectionParams netParams;

  /// Heavy-hitter stage (expects the pipeline's sessions to be Addr128 —
  /// hitters are defined per /128).
  bool heavyHitters = true;
  double heavyHitterThresholdPercent = 10.0;

  /// Fingerprint stage.
  bool fingerprint = true;
  const net::RdnsRegistry* rdns = nullptr;
  FingerprintParams fingerprintParams;

  /// NIST battery over sessions with >= nistMinPackets packets (the
  /// paper's appendix-B workload: IID bits 64..127 and subnet bits
  /// 32..63 per eligible session). Off by default — only the fig17
  /// analyses need it.
  bool nistBattery = false;
  std::size_t nistMinPackets = 100;
};

/// NIST verdicts for one eligible session.
struct SessionNist {
  std::uint32_t sessionIdx = 0;
  NistSummary iid;
  NistSummary subnet;
};

struct PipelineResult {
  TaxonomyResult taxonomy;
  std::vector<HeavyHitter> heavyHitters;
  HeavyHitterImpact heavyHitterImpact;
  FingerprintResult fingerprint;
  /// Eligible sessions in session-vector order (empty unless
  /// PipelineOptions::nistBattery).
  std::vector<SessionNist> nist;

  /// Order-sensitive FNV-1a over every field of every stage result. Two
  /// runs with equal digests produced bitwise-identical reports — the
  /// witness the thread-invariance tests compare across thread counts.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Builds the shared index once (at construction) and runs the analysis
/// stages over it. The packet/session spans must outlive the pipeline.
class Pipeline {
public:
  Pipeline(std::span<const net::Packet> packets,
           std::span<const telescope::Session> sessions,
           obs::Registry* registry = nullptr);

  [[nodiscard]] const CaptureIndex& index() const { return index_; }

  /// Run all configured stages. `schedule` provides announcement-cycle
  /// context for the taxonomy's network-selection axis (nullptr for
  /// telescopes without a BGP experiment).
  [[nodiscard]] PipelineResult run(const bgp::SplitSchedule* schedule,
                                   const PipelineOptions& opts = {}) const;

  /// Convenience: index + run in one call.
  [[nodiscard]] static PipelineResult analyze(
      std::span<const net::Packet> packets,
      std::span<const telescope::Session> sessions,
      const bgp::SplitSchedule* schedule, const PipelineOptions& opts = {},
      obs::Registry* registry = nullptr);

private:
  void recordWorkerStats(const ParallelForStats& stats) const;

  obs::Registry* registry_;
  CaptureIndex index_;
};

} // namespace v6t::analysis
