// v6t::analysis — target address-type classification (Table 3).
//
// Reimplements the taxonomy of the IPv6Toolkit's `addr6` per RFC 7707 §3 /
// RFC 4291, applied to the interface-identifier part of a target address:
//
//   subnet-anycast   IID == 0 (Subnet-Router anycast, RFC 4291 §2.6.1)
//   isatap           IID starts 0000:5efe (RFC 5214)
//   ieee-derived     EUI-64 expansion: IID bytes 3..4 == ff:fe
//   embedded-port    IID encodes a well-known service port (hex or
//                    "decimal-as-hex": 2001:db8::443 / ::80)
//   low-byte         IID zero except its lowest 16 bits
//   embedded-ipv4    IPv4 address in the low 32 bits (or one octet per
//                    16-bit group)
//   wordy            hex-letter words in the IID (2001:db8::cafe)
//   pattern-bytes    conspicuously repetitive byte content
//   randomized       none of the above, high nibble diversity
//
// Precedence is the listed order; every address gets exactly one label.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "net/ipv6.hpp"

namespace v6t::analysis {

enum class AddressType : std::uint8_t {
  SubnetAnycast,
  Isatap,
  IeeeDerived,
  EmbeddedPort,
  LowByte,
  EmbeddedIpv4,
  Wordy,
  PatternBytes,
  Randomized,
};

inline constexpr std::size_t kAddressTypeCount = 9;

[[nodiscard]] std::string_view toString(AddressType t);

/// Classify one target address (the /64 network part is ignored; the paper
/// classifies IIDs because the network part is the telescope's own prefix).
[[nodiscard]] AddressType classifyAddress(const net::Ipv6Address& addr);

/// Branch-reduced classifier over the IID as one u64 lane (the columnar
/// fast path, DESIGN.md §16): embedded-port via a precomputed 64 KiB
/// membership bitmap, wordy behind a SWAR decimal-nibble prefilter, the
/// pattern/entropy split via nibble counts and a 17-entry term table.
/// Returns exactly classifyAddress(addr) for iid == addr.lo64() — the
/// property battery in test_simd_kernels enforces this bit for bit.
[[nodiscard]] AddressType classifyAddressWord(std::uint64_t iid);


/// Shannon entropy (bits per nibble, in [0,4]) of the 16 IID nibbles —
/// the diversity measure behind the pattern/randomized split.
[[nodiscard]] double iidNibbleEntropy(const net::Ipv6Address& addr);

/// Histogram of types over a target list.
struct AddressTypeHistogram {
  std::uint64_t count[kAddressTypeCount] = {};

  void add(AddressType t) { ++count[static_cast<std::size_t>(t)]; }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : count) sum += c;
    return sum;
  }
  [[nodiscard]] std::uint64_t of(AddressType t) const {
    return count[static_cast<std::size_t>(t)];
  }
};

[[nodiscard]] AddressTypeHistogram classifyAll(
    std::span<const net::Ipv6Address> targets);

/// Histogram over a contiguous IID lane (always the word classifier; the
/// runtime SIMD toggle dispatches between this and the scalar walk inside
/// classifyAll and the taxonomy's columnar path).
[[nodiscard]] AddressTypeHistogram classifyLanes(
    std::span<const std::uint64_t> iids);

} // namespace v6t::analysis
