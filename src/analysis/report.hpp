// v6t::analysis — plain-text report rendering.
//
// Every bench binary prints its table/figure through TextTable so the
// output lines up with the paper's rows and stays grep-able in
// bench_output.txt. Also provides CSV emission for downstream plotting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace v6t::analysis {

class TextTable {
public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header arity.
  void addRow(std::vector<std::string> cells);

  /// Append a visual separator line.
  void addSeparator();

  void render(std::ostream& out) const;
  [[nodiscard]] std::string toString() const;

  void writeCsv(std::ostream& out) const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

private:
  std::size_t columns_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_; // empty vector = separator
};

/// Number formatting helpers used throughout the reports.
[[nodiscard]] std::string withThousands(std::uint64_t value);
[[nodiscard]] std::string fixed(double value, int decimals = 2);
[[nodiscard]] std::string percentCell(double value, int decimals = 2);

/// A labelled horizontal bar for ASCII "figures".
[[nodiscard]] std::string bar(double value, double maxValue, int width = 40);

/// Flag a cell whose time window overlaps a declared capture outage:
/// degraded numbers are marked "<cell> !gap", never silently blended in
/// with clean windows (graceful degradation under fault injection).
[[nodiscard]] std::string gapFlagged(std::string cell, bool overlapsGap);

} // namespace v6t::analysis
