// v6t::analysis — descriptive statistics used across the evaluation:
// CDF series (Fig. 4), top-k port rankings (Table 4), UpSet set
// intersections (Fig. 8), and share helpers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

/// Cumulative series over time buckets: (bucket index, cumulative count).
struct CumulativeSeries {
  std::vector<std::pair<std::int64_t, std::uint64_t>> points;

  [[nodiscard]] std::uint64_t total() const {
    return points.empty() ? 0 : points.back().second;
  }
  /// Value normalized to [0,1] at each point.
  [[nodiscard]] std::vector<std::pair<std::int64_t, double>> normalized()
      const;
};

/// Build a cumulative series from per-bucket counts.
[[nodiscard]] CumulativeSeries cumulative(
    const std::map<std::int64_t, std::uint64_t>& perBucket);

/// First-seen accumulation: given (bucket, id) observations, the cumulative
/// number of distinct ids over buckets.
template <typename Id>
[[nodiscard]] CumulativeSeries cumulativeDistinct(
    const std::vector<std::pair<std::int64_t, Id>>& observations) {
  std::map<std::int64_t, std::uint64_t> fresh;
  std::set<Id> seen;
  for (const auto& [bucket, id] : observations) {
    if (seen.insert(id).second) ++fresh[bucket];
  }
  return cumulative(fresh);
}

/// Port usage counted once per session (the paper's Table 4 method:
/// sessions aggregated at /64, each port counted once per session).
struct PortRank {
  std::uint16_t port = 0;
  bool tracerouteRange = false; // aggregated [33434, 33523] bucket
  std::uint64_t sessions = 0;
  double share = 0.0; // of sessions carrying this protocol
};

[[nodiscard]] std::vector<PortRank> topPorts(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions, net::Protocol proto,
    std::size_t k);

/// UpSet-style exclusive intersection counts over N named sets.
struct UpsetRow {
  std::vector<bool> membership; // one flag per input set
  std::uint64_t count = 0;

  [[nodiscard]] std::string key(std::span<const std::string> names) const;
};

/// `sets[i]` holds the items observed at telescope i. Returns one row per
/// non-empty exclusive combination, largest first, plus per-set totals.
struct UpsetResult {
  std::vector<UpsetRow> rows;
  std::vector<std::uint64_t> setTotals;
};

template <typename Id>
[[nodiscard]] UpsetResult upset(std::span<const std::set<Id>> sets) {
  UpsetResult result;
  result.setTotals.resize(sets.size());
  std::map<std::vector<bool>, std::uint64_t> combos;
  std::set<Id> universe;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    result.setTotals[i] = sets[i].size();
    universe.insert(sets[i].begin(), sets[i].end());
  }
  for (const Id& id : universe) {
    std::vector<bool> membership(sets.size());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      membership[i] = sets[i].contains(id);
    }
    ++combos[membership];
  }
  for (auto& [membership, count] : combos) {
    result.rows.push_back(UpsetRow{membership, count});
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const UpsetRow& a, const UpsetRow& b) {
              return a.count > b.count;
            });
  return result;
}

[[nodiscard]] inline double percent(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

} // namespace v6t::analysis
