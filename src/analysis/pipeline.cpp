#include "analysis/pipeline.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

namespace v6t::analysis {

namespace {

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

void fnvDouble(std::uint64_t& h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  fnv1a(h, bits);
}

void fnv1a(std::uint64_t& h, const net::Ipv6Address& a) {
  fnv1a(h, a.hi64());
  fnv1a(h, a.lo64());
}

void fnv1a(std::uint64_t& h, const NistSummary& s) {
  fnvDouble(h, s.frequency.pValue);
  fnvDouble(h, s.runs.pValue);
  fnvDouble(h, s.spectral.pValue);
  fnvDouble(h, s.cusumForward.pValue);
  fnvDouble(h, s.cusumBackward.pValue);
}

/// Bucket bounds for the `analysis.sched.task_cost` histogram, in
/// scheduler cost units (~packets touched) — powers of four spanning a
/// trivial source to a heavy hitter far above the split threshold.
std::span<const double> costBounds() {
  static const std::vector<double> bounds{16.0,    64.0,    256.0,
                                          1024.0,  4096.0,  16384.0,
                                          65536.0, 262144.0, 1048576.0};
  return bounds;
}

/// Builds the index inside an `analysis.index_seconds` span; guaranteed
/// copy elision constructs it straight into the Pipeline member.
CaptureIndex makeIndex(std::span<const net::Packet> packets,
                       std::span<const telescope::Session> sessions,
                       obs::Registry* registry) {
  std::optional<obs::Span> span;
  if (registry != nullptr) span.emplace(*registry, "analysis.index_seconds");
  return CaptureIndex{packets, sessions};
}

} // namespace

std::uint64_t PipelineResult::digest() const {
  std::uint64_t h = 14695981039346656037ULL;

  fnv1a(h, static_cast<std::uint64_t>(taxonomy.profiles.size()));
  for (const ScannerProfile& p : taxonomy.profiles) {
    fnv1a(h, p.source.addr);
    fnv1a(h, static_cast<std::uint64_t>(p.source.agg));
    fnv1a(h, static_cast<std::uint64_t>(p.sessionIdx.size()));
    for (std::uint32_t si : p.sessionIdx) fnv1a(h, si);
    fnv1a(h, static_cast<std::uint64_t>(p.temporal.cls));
    fnv1a(h, p.temporal.period
                 ? static_cast<std::uint64_t>(p.temporal.period->millis())
                 : static_cast<std::uint64_t>(-1));
    fnv1a(h, static_cast<std::uint64_t>(p.network));
    for (std::uint64_t c : p.sessionsByAddrSel) fnv1a(h, c);
  }
  for (AddressSelection sel : taxonomy.sessionAddrSel) {
    fnv1a(h, static_cast<std::uint64_t>(sel));
  }

  fnv1a(h, static_cast<std::uint64_t>(heavyHitters.size()));
  for (const HeavyHitter& hh : heavyHitters) {
    fnv1a(h, hh.source);
    fnv1a(h, static_cast<std::uint64_t>(hh.asn.value()));
    fnv1a(h, hh.packets);
    fnvDouble(h, hh.shareOfTelescope);
    fnv1a(h, hh.sessions);
    fnv1a(h, static_cast<std::uint64_t>(hh.firstDay));
    fnv1a(h, static_cast<std::uint64_t>(hh.lastDay));
  }
  fnv1a(h, heavyHitterImpact.packets);
  fnv1a(h, heavyHitterImpact.sessions);
  fnvDouble(h, heavyHitterImpact.packetShare);
  fnvDouble(h, heavyHitterImpact.sessionShare);

  for (net::ScanTool tool : fingerprint.sessionTool) {
    fnv1a(h, static_cast<std::uint64_t>(tool));
  }
  fnv1a(h, fingerprint.hopLimitAttributions);
  for (const auto& [tool, count] : fingerprint.byTool) {
    fnv1a(h, static_cast<std::uint64_t>(tool));
    fnv1a(h, count.scanners);
    fnv1a(h, count.sessions);
  }
  fnv1a(h, static_cast<std::uint64_t>(fingerprint.clusterCount));
  fnv1a(h, fingerprint.payloadPackets);
  fnv1a(h, fingerprint.payloadSessions);
  fnv1a(h, fingerprint.payloadSources);

  fnv1a(h, static_cast<std::uint64_t>(nist.size()));
  for (const SessionNist& s : nist) {
    fnv1a(h, static_cast<std::uint64_t>(s.sessionIdx));
    fnv1a(h, s.iid);
    fnv1a(h, s.subnet);
  }
  return h;
}

Pipeline::Pipeline(std::span<const net::Packet> packets,
                   std::span<const telescope::Session> sessions,
                   obs::Registry* registry)
    : registry_(registry), index_(makeIndex(packets, sessions, registry)) {}

void Pipeline::recordWorkerStats(const ParallelForStats& stats) const {
  if (registry_ == nullptr || stats.items.empty()) return;
  // Each worker's tallies land in a private shard registry, folded in via
  // the same aggregateFrom path the sharded runner uses.
  double maxBusy = 0.0;
  double sumBusy = 0.0;
  for (std::size_t w = 0; w < stats.items.size(); ++w) {
    obs::Registry shard;
    shard.counter("analysis.worker.items_total").inc(stats.items[w]);
    shard.gauge("analysis.worker.busy_seconds", obs::GaugeMode::Sum)
        .add(stats.busySeconds[w]);
    registry_->aggregateFrom(shard);
    registry_->histogram("analysis.worker_busy_seconds")
        .observe(stats.busySeconds[w]);
    maxBusy = std::max(maxBusy, stats.busySeconds[w]);
    sumBusy += stats.busySeconds[w];
  }
  const double mean = sumBusy / static_cast<double>(stats.items.size());
  if (mean > 0.0) {
    registry_->gauge("analysis.worker_imbalance_ratio", obs::GaugeMode::Max)
        .max(maxBusy / mean);
  }
  registry_->counter("analysis.sched.steals_total").inc(stats.steals);
  registry_->counter("analysis.sched.splits_total").inc(stats.splits);
  // Σ makespan across dispatches: with virtualTime this is the modeled
  // parallel wall clock of everything dispatched (the bench derives the
  // schedule-modeled pipeline time from it, DESIGN.md §13).
  registry_->gauge("analysis.sched.makespan_seconds", obs::GaugeMode::Sum)
      .add(stats.makespanSeconds());
  obs::Histogram& costHist =
      registry_->histogram("analysis.sched.task_cost", costBounds());
  for (std::uint64_t cost : stats.taskCosts) {
    costHist.observe(static_cast<double>(cost));
  }
}

PipelineResult Pipeline::run(const bgp::SplitSchedule* schedule,
                             const PipelineOptions& opts) const {
  PipelineResult result;
  const std::uint64_t rescans0 = index_.rescansAvoided();
  const std::uint64_t spans0 = index_.targetSpansServed();
  const ScheduleParams sched{opts.minSplitCost, opts.virtualTime};

  // Span is pinned to its histogram and non-movable; emplace per stage.
  if (opts.taxonomy) {
    std::optional<obs::Span> span;
    if (registry_ != nullptr) {
      span.emplace(*registry_, "analysis.classify_seconds");
    }
    ParallelForStats stats;
    result.taxonomy =
        classifyIndexed(index_, schedule, opts.threads, opts.temporalParams,
                        opts.addrParams, opts.netParams, &stats, sched);
    recordWorkerStats(stats);
  }

  if (opts.nistBattery) {
    std::optional<obs::Span> span;
    if (registry_ != nullptr) span.emplace(*registry_, "analysis.nist_seconds");
    std::vector<std::uint32_t> eligible;
    for (std::uint32_t si = 0; si < index_.sessions().size(); ++si) {
      if (index_.sessions()[si].packetCount() >= opts.nistMinPackets) {
        eligible.push_back(si);
      }
    }
    result.nist.resize(eligible.size());
    // Task list: a light session is one whole-battery task per axis; a
    // session whose estimated cost reaches minSplitCost further splits
    // each axis into Spectral / NonSpectral test-block subtasks writing
    // disjoint NistSummary fields of its pre-assigned slot. Slot
    // identity is fixed here, serially, before any worker runs.
    struct NistTask {
      std::uint32_t slot;
      std::uint8_t axis; // 0 = iid (bits 64..127), 1 = subnet (32..63)
      NistBlock block;
    };
    std::vector<NistTask> tasks;
    std::vector<std::uint64_t> costs;
    std::uint64_t splits = 0;
    for (std::uint32_t i = 0; i < eligible.size(); ++i) {
      result.nist[i].sessionIdx = eligible[i];
      const std::uint64_t cost = index_.nistCostOf(eligible[i]);
      if (cost < opts.minSplitCost) {
        tasks.push_back({i, 0, NistBlock::All});
        tasks.push_back({i, 1, NistBlock::All});
        costs.push_back(cost / 2);
        costs.push_back(cost / 2);
        continue;
      }
      ++splits;
      for (std::uint8_t axis = 0; axis < 2; ++axis) {
        tasks.push_back({i, axis, NistBlock::Spectral});
        costs.push_back(cost / 4);
        tasks.push_back({i, axis, NistBlock::NonSpectral});
        costs.push_back(cost / 4);
      }
    }
    ParallelForStats stats = parallelForCosted(
        costs, opts.threads,
        [&](unsigned, std::size_t t) {
          const NistTask& task = tasks[t];
          // The index's bit columns replace the per-bit extraction that
          // bitsFromAddresses used to do per task; the packed battery's
          // p-values are bit-identical either way (DESIGN.md §16).
          const std::uint32_t si = result.nist[task.slot].sessionIdx;
          const PackedBits bits =
              task.axis == 0 ? index_.iidBitsOf(si) : index_.subnetBitsOf(si);
          const NistSummary summary = runNistTestsPacked(bits, task.block);
          NistSummary& out = task.axis == 0 ? result.nist[task.slot].iid
                                            : result.nist[task.slot].subnet;
          // Field-wise merge: each block writes only its own fields.
          if (task.block != NistBlock::Spectral) {
            out.frequency = summary.frequency;
            out.runs = summary.runs;
            out.cusumForward = summary.cusumForward;
            out.cusumBackward = summary.cusumBackward;
          }
          if (task.block != NistBlock::NonSpectral) {
            out.spectral = summary.spectral;
          }
        },
        opts.virtualTime);
    stats.splits = splits;
    recordWorkerStats(stats);
  }

  if (opts.heavyHitters) {
    std::optional<obs::Span> span;
    if (registry_ != nullptr) {
      span.emplace(*registry_, "analysis.heavy_hitter_seconds");
    }
    result.heavyHitters =
        findHeavyHitters(index_, opts.heavyHitterThresholdPercent);
    result.heavyHitterImpact = heavyHitterImpact(index_, result.heavyHitters);
  }

  if (opts.fingerprint) {
    std::optional<obs::Span> span;
    if (registry_ != nullptr) {
      span.emplace(*registry_, "analysis.fingerprint_seconds");
    }
    ParallelForStats stats;
    result.fingerprint = fingerprintSessions(
        index_, opts.rdns, opts.fingerprintParams, opts.threads, sched,
        &stats);
    recordWorkerStats(stats);
  }

  // No-op (and no counter export) in V6T_INDEX_STATS=OFF builds; the
  // analysis result and digest are identical regardless.
  if (registry_ != nullptr && kIndexStatsCompiledIn) {
    registry_->counter("analysis.index.rescans_avoided_total")
        .inc(index_.rescansAvoided() - rescans0);
    registry_->counter("analysis.index.target_spans_served_total")
        .inc(index_.targetSpansServed() - spans0);
  }
  return result;
}

PipelineResult Pipeline::analyze(std::span<const net::Packet> packets,
                                 std::span<const telescope::Session> sessions,
                                 const bgp::SplitSchedule* schedule,
                                 const PipelineOptions& opts,
                                 obs::Registry* registry) {
  const Pipeline pipeline{packets, sessions, registry};
  return pipeline.run(schedule, opts);
}

} // namespace v6t::analysis
