#include "analysis/entropy_profile.hpp"

#include <cmath>

namespace v6t::analysis {

double EntropyProfile::meanEntropy(unsigned first, unsigned last) const {
  if (last < first || last >= 32) return 0.0;
  double sum = 0.0;
  for (unsigned i = first; i <= last; ++i) sum += nibbleEntropy[i];
  return sum / static_cast<double>(last - first + 1);
}

EntropyProfile profileTargets(std::span<const net::Ipv6Address> targets) {
  EntropyProfile profile;
  profile.sampleCount = targets.size();
  if (targets.empty()) return profile;
  for (unsigned position = 0; position < 32; ++position) {
    std::array<std::size_t, 16> histogram{};
    for (const net::Ipv6Address& a : targets) {
      ++histogram[a.nibble(position)];
    }
    double entropy = 0.0;
    for (std::size_t count : histogram) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) /
                       static_cast<double>(targets.size());
      entropy -= p * std::log2(p);
    }
    profile.nibbleEntropy[position] = entropy;
  }
  return profile;
}

std::string_view toString(SegmentKind k) {
  switch (k) {
    case SegmentKind::Constant: return "const";
    case SegmentKind::Structured: return "struct";
    case SegmentKind::Random: return "random";
  }
  return "?";
}

std::vector<Segment> segmentProfile(const EntropyProfile& profile,
                                    const SegmentationParams& params) {
  auto kindOf = [&](double h) {
    if (h < params.constantBelow) return SegmentKind::Constant;
    if (h > params.randomAbove) return SegmentKind::Random;
    return SegmentKind::Structured;
  };
  std::vector<Segment> segments;
  for (unsigned i = 0; i < 32; ++i) {
    const SegmentKind kind = kindOf(profile.nibbleEntropy[i]);
    if (!segments.empty() && segments.back().kind == kind) {
      Segment& s = segments.back();
      const auto n = static_cast<double>(i - s.firstNibble);
      s.meanEntropy =
          (s.meanEntropy * n + profile.nibbleEntropy[i]) / (n + 1.0);
      s.lastNibble = i;
    } else {
      segments.push_back(Segment{i, i, kind, profile.nibbleEntropy[i]});
    }
  }
  return segments;
}

std::string describeSegments(std::span<const Segment> segments) {
  std::string out;
  for (const Segment& s : segments) {
    out += "[" + std::to_string(s.firstNibble) + ".." +
           std::to_string(s.lastNibble) + " " +
           std::string{toString(s.kind)} + "]";
  }
  return out;
}

} // namespace v6t::analysis
