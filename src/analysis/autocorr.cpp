#include "analysis/autocorr.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace v6t::analysis {

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t maxLag) {
  const std::size_t n = xs.size();
  if (n < 2) return {};
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double x : xs) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return {};
  std::vector<double> acf;
  acf.reserve(maxLag);
  for (std::size_t lag = 1; lag <= maxLag && lag < n; ++lag) {
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      sum += (xs[i] - mean) * (xs[i + lag] - mean);
    }
    acf.push_back(sum / variance);
  }
  return acf;
}

std::optional<sim::Duration> detectPeriod(std::span<const sim::SimTime> events,
                                          const PeriodDetectorParams& params) {
  if (events.size() < 3) return std::nullopt;

  std::vector<sim::SimTime> sorted(events.begin(), events.end());
  std::sort(sorted.begin(), sorted.end());

  // Fast path that mirrors how the paper's scanners behave: if consecutive
  // gaps are tightly concentrated around their median, that is the period.
  std::vector<std::int64_t> gaps;
  gaps.reserve(sorted.size() - 1);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    gaps.push_back((sorted[i] - sorted[i - 1]).millis());
  }
  std::vector<std::int64_t> byValue = gaps;
  std::sort(byValue.begin(), byValue.end());
  const std::int64_t median = byValue[byValue.size() / 2];
  if (median > 0) {
    const auto within = static_cast<std::size_t>(std::count_if(
        gaps.begin(), gaps.end(), [&](std::int64_t g) {
          return std::abs(static_cast<double>(g - median)) <=
                 params.gapTolerance * static_cast<double>(median);
        }));
    // At least three gaps: two coincidentally similar gaps must not turn a
    // Poisson scanner into a periodic one.
    if (within == gaps.size() && gaps.size() >= 3 &&
        gaps.size() + 1 >= static_cast<std::size_t>(params.minRepeats + 1)) {
      return sim::Duration{median};
    }
  }

  // General path: binned series + autocorrelation peak.
  const std::int64_t width = params.binWidth.millis();
  const std::int64_t start = sorted.front().millis();
  const std::int64_t span = sorted.back().millis() - start;
  const std::size_t bins = static_cast<std::size_t>(span / width) + 1;
  if (bins < 4 || bins > 1u << 20) return std::nullopt;
  std::vector<double> series(bins, 0.0);
  for (sim::SimTime t : sorted) {
    series[static_cast<std::size_t>((t.millis() - start) / width)] += 1.0;
  }
  const std::size_t maxLag = bins / static_cast<std::size_t>(params.minRepeats);
  const std::vector<double> acf = autocorrelation(series, maxLag);
  if (acf.empty()) return std::nullopt;

  // The candidate lag is the first local maximum above threshold.
  for (std::size_t lag = 1; lag + 1 < acf.size(); ++lag) {
    const double here = acf[lag];
    if (here >= params.threshold && here >= acf[lag - 1] &&
        here >= acf[lag + 1]) {
      return sim::Duration{static_cast<std::int64_t>(lag + 1) * width};
    }
  }
  return std::nullopt;
}

} // namespace v6t::analysis
