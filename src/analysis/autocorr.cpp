#include "analysis/autocorr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "analysis/simd.hpp"

namespace v6t::analysis {

namespace {

/// Product sum for one lag in the scalar reference order — the kernel the
/// vector path must reproduce bit for bit.
double lagSumScalar(const double* c, std::size_t n, std::size_t lag) {
  double sum = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    sum += c[i] * c[i + lag];
  }
  return sum;
}

#if !defined(V6T_SIMD_DISABLED)
typedef double v2df __attribute__((vector_size(16)));

/// Product sums for lags lag..lag+3 in one pass (DESIGN.md §16). Lane k
/// accumulates c[i]·c[i+lag+k] with i ascending: per lane that is the
/// identical multiply/add sequence as lagSumScalar — element-wise IEEE
/// vector ops, one accumulator per lane, no reassociation — so every lane
/// is bit-identical to its scalar run. The speedup comes from four
/// independent dependency chains per iteration, not from reordering math.
/// Two 16-byte vectors instead of one 32-byte one: baseline x86-64 has
/// only 128-bit registers, and a v4df accumulator gets spilled to the
/// stack every iteration, which eats the entire win.
void lagSum4(const double* c, std::size_t n, std::size_t lag,
             double out[4]) {
  v2df acc01 = {0.0, 0.0};
  v2df acc23 = {0.0, 0.0};
  const std::size_t common = n > lag + 3 ? n - lag - 3 : 0;
  const double* y = c + lag;
  for (std::size_t i = 0; i < common; ++i) {
    const v2df x = {c[i], c[i]};
    v2df y01;
    v2df y23;
    __builtin_memcpy(&y01, y + i, sizeof y01); // unaligned vector loads
    __builtin_memcpy(&y23, y + i + 2, sizeof y23);
    acc01 += x * y01;
    acc23 += x * y23;
  }
  // Per-lane scalar tails: lane k still owes i in [common, n - lag - k).
  const double accs[4] = {acc01[0], acc01[1], acc23[0], acc23[1]};
  for (std::size_t k = 0; k < 4; ++k) {
    double sum = accs[k];
    for (std::size_t i = common; i + lag + k < n; ++i) {
      sum += c[i] * c[i + lag + k];
    }
    out[k] = sum;
  }
}
#endif

} // namespace

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t maxLag) {
  const std::size_t n = xs.size();
  if (n < 2) return {};
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double x : xs) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return {};
  // Center once; each lag's sum runs over the same products in the same
  // order as the naive double loop, so results are bit-identical.
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = xs[i] - mean;
  const std::size_t lagEnd = std::min(maxLag + 1, n); // lags 1..lagEnd-1
  std::vector<double> acf;
  acf.reserve(maxLag);
#if !defined(V6T_SIMD_DISABLED)
  if (simdKernelsEnabled()) {
    std::size_t lag = 1;
    for (; lag + 3 < lagEnd; lag += 4) {
      double sums[4];
      lagSum4(centered.data(), n, lag, sums);
      for (int k = 0; k < 4; ++k) acf.push_back(sums[k] / variance);
    }
    for (; lag < lagEnd; ++lag) {
      acf.push_back(lagSumScalar(centered.data(), n, lag) / variance);
    }
    return acf;
  }
#endif
  for (std::size_t lag = 1; lag < lagEnd; ++lag) {
    acf.push_back(lagSumScalar(centered.data(), n, lag) / variance);
  }
  return acf;
}

std::optional<sim::Duration> detectPeriod(std::span<const sim::SimTime> events,
                                          const PeriodDetectorParams& params) {
  if (events.size() < 3) return std::nullopt;

  // The dominant caller serves CaptureIndex::sessionStartsOf, whose
  // per-source runs are already start-ordered — take the span directly and
  // skip the copy + O(n log n) sort; only genuinely unsorted input pays.
  std::vector<sim::SimTime> copy;
  std::span<const sim::SimTime> sorted = events;
  if (!std::is_sorted(events.begin(), events.end())) {
    copy.assign(events.begin(), events.end());
    std::sort(copy.begin(), copy.end());
    sorted = copy;
  }
  assert(std::is_sorted(sorted.begin(), sorted.end()));

  // Fast path that mirrors how the paper's scanners behave: if consecutive
  // gaps are tightly concentrated around their median, that is the period.
  std::vector<std::int64_t> gaps;
  gaps.reserve(sorted.size() - 1);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    gaps.push_back((sorted[i] - sorted[i - 1]).millis());
  }
  std::vector<std::int64_t> byValue = gaps;
  std::sort(byValue.begin(), byValue.end());
  const std::int64_t median = byValue[byValue.size() / 2];
  if (median > 0) {
    const auto within = static_cast<std::size_t>(std::count_if(
        gaps.begin(), gaps.end(), [&](std::int64_t g) {
          return std::abs(static_cast<double>(g - median)) <=
                 params.gapTolerance * static_cast<double>(median);
        }));
    // At least three gaps: two coincidentally similar gaps must not turn a
    // Poisson scanner into a periodic one.
    if (within == gaps.size() && gaps.size() >= 3 &&
        gaps.size() + 1 >= static_cast<std::size_t>(params.minRepeats + 1)) {
      return sim::Duration{median};
    }
  }

  // General path: binned series + autocorrelation peak. The ACF is
  // evaluated lazily, lag by lag, over a series centered once — the same
  // products summed in the same order as autocorrelation(), so the
  // detected lag is bit-identical to the eager scan — but the search
  // stops at the first qualifying local maximum. Periodic scanners peak
  // at small lags (a daily period is lag 24 at hourly bins), which drops
  // their cost from O(bins^2) to O(bins * peakLag); only sources with no
  // peak still pay for the full sweep.
  const std::int64_t width = params.binWidth.millis();
  const std::int64_t start = sorted.front().millis();
  const std::int64_t span = sorted.back().millis() - start;
  const std::size_t bins = static_cast<std::size_t>(span / width) + 1;
  if (bins < 4 || bins > 1u << 20) return std::nullopt;
  std::vector<double> series(bins, 0.0);
  for (sim::SimTime t : sorted) {
    series[static_cast<std::size_t>((t.millis() - start) / width)] += 1.0;
  }
  const std::size_t maxLag = bins / static_cast<std::size_t>(params.minRepeats);

  const std::size_t n = bins;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double x : series) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return std::nullopt;
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = series[i] - mean;

  // Lags 1..lagCount, exactly the range the eager ACF would cover.
  const std::size_t lagCount = maxLag < n ? maxLag : n - 1;
  if (lagCount < 3) return std::nullopt;
  // Lazy block evaluator: the search touches lags in ascending order, so
  // the vector path fills the memo four lags per kernel call (lagSum4).
  // Any lag computed past the early-exit point is spare work, never a
  // different value — each memo entry is bit-identical to the scalar
  // evaluation — so the detected lag cannot change.
  std::vector<double> acfMemo;
  acfMemo.reserve(16);
  const auto acfAt = [&](std::size_t lag) {
    while (acfMemo.size() < lag) {
      const std::size_t next = acfMemo.size() + 1;
#if !defined(V6T_SIMD_DISABLED)
      if (simdKernelsEnabled() && next + 3 <= lagCount) {
        double sums[4];
        lagSum4(centered.data(), n, next, sums);
        for (int k = 0; k < 4; ++k) acfMemo.push_back(sums[k] / variance);
        continue;
      }
#endif
      acfMemo.push_back(lagSumScalar(centered.data(), n, next) / variance);
    }
    return acfMemo[lag - 1];
  };

  // The candidate lag is the first local maximum above threshold; the
  // interior lags 2..lagCount-1 are the ones with both neighbors.
  double prev = acfAt(1);
  double here = acfAt(2);
  for (std::size_t lag = 2; lag < lagCount; ++lag) {
    const double next = acfAt(lag + 1);
    if (here >= params.threshold && here >= prev && here >= next) {
      return sim::Duration{static_cast<std::int64_t>(lag) * width};
    }
    prev = here;
    here = next;
  }
  return std::nullopt;
}

} // namespace v6t::analysis
