#include "analysis/autocorr.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace v6t::analysis {

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t maxLag) {
  const std::size_t n = xs.size();
  if (n < 2) return {};
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double x : xs) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return {};
  // Center once; each lag's sum runs over the same products in the same
  // order as the naive double loop, so results are bit-identical.
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = xs[i] - mean;
  std::vector<double> acf;
  acf.reserve(maxLag);
  for (std::size_t lag = 1; lag <= maxLag && lag < n; ++lag) {
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      sum += centered[i] * centered[i + lag];
    }
    acf.push_back(sum / variance);
  }
  return acf;
}

std::optional<sim::Duration> detectPeriod(std::span<const sim::SimTime> events,
                                          const PeriodDetectorParams& params) {
  if (events.size() < 3) return std::nullopt;

  std::vector<sim::SimTime> sorted(events.begin(), events.end());
  std::sort(sorted.begin(), sorted.end());

  // Fast path that mirrors how the paper's scanners behave: if consecutive
  // gaps are tightly concentrated around their median, that is the period.
  std::vector<std::int64_t> gaps;
  gaps.reserve(sorted.size() - 1);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    gaps.push_back((sorted[i] - sorted[i - 1]).millis());
  }
  std::vector<std::int64_t> byValue = gaps;
  std::sort(byValue.begin(), byValue.end());
  const std::int64_t median = byValue[byValue.size() / 2];
  if (median > 0) {
    const auto within = static_cast<std::size_t>(std::count_if(
        gaps.begin(), gaps.end(), [&](std::int64_t g) {
          return std::abs(static_cast<double>(g - median)) <=
                 params.gapTolerance * static_cast<double>(median);
        }));
    // At least three gaps: two coincidentally similar gaps must not turn a
    // Poisson scanner into a periodic one.
    if (within == gaps.size() && gaps.size() >= 3 &&
        gaps.size() + 1 >= static_cast<std::size_t>(params.minRepeats + 1)) {
      return sim::Duration{median};
    }
  }

  // General path: binned series + autocorrelation peak. The ACF is
  // evaluated lazily, lag by lag, over a series centered once — the same
  // products summed in the same order as autocorrelation(), so the
  // detected lag is bit-identical to the eager scan — but the search
  // stops at the first qualifying local maximum. Periodic scanners peak
  // at small lags (a daily period is lag 24 at hourly bins), which drops
  // their cost from O(bins^2) to O(bins * peakLag); only sources with no
  // peak still pay for the full sweep.
  const std::int64_t width = params.binWidth.millis();
  const std::int64_t start = sorted.front().millis();
  const std::int64_t span = sorted.back().millis() - start;
  const std::size_t bins = static_cast<std::size_t>(span / width) + 1;
  if (bins < 4 || bins > 1u << 20) return std::nullopt;
  std::vector<double> series(bins, 0.0);
  for (sim::SimTime t : sorted) {
    series[static_cast<std::size_t>((t.millis() - start) / width)] += 1.0;
  }
  const std::size_t maxLag = bins / static_cast<std::size_t>(params.minRepeats);

  const std::size_t n = bins;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double x : series) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return std::nullopt;
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = series[i] - mean;

  // Lags 1..lagCount, exactly the range the eager ACF would cover.
  const std::size_t lagCount = maxLag < n ? maxLag : n - 1;
  if (lagCount < 3) return std::nullopt;
  const auto acfAt = [&](std::size_t lag) {
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      sum += centered[i] * centered[i + lag];
    }
    return sum / variance;
  };

  // The candidate lag is the first local maximum above threshold; the
  // interior lags 2..lagCount-1 are the ones with both neighbors.
  double prev = acfAt(1);
  double here = acfAt(2);
  for (std::size_t lag = 2; lag < lagCount; ++lag) {
    const double next = acfAt(lag + 1);
    if (here >= params.threshold && here >= prev && here >= next) {
      return sim::Duration{static_cast<std::int64_t>(lag) * width};
    }
    prev = here;
    here = next;
  }
  return std::nullopt;
}

} // namespace v6t::analysis
