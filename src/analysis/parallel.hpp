// v6t::analysis — deterministic work-queue parallel-for.
//
// The analysis pipeline's concurrency primitive: run fn(worker, i) for
// every i in [0, n) on up to `threads` workers pulling chunks from one
// atomic cursor. Scheduling is dynamic (workers steal the next chunk when
// free), so the ASSIGNMENT of items to workers varies run to run — the
// determinism contract therefore rests entirely on the caller: fn must be
// a pure function of i writing only to pre-sized output slot(s) owned by
// item i. Under that discipline the merged output is bitwise-identical
// for every thread count, the same argument DESIGN.md §8 makes for the
// sharded runner.
//
// threads <= 1 (or n <= 1) executes inline on the calling thread with no
// thread spawned — the serial reference the equivalence tests compare
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace v6t::analysis {

/// What each worker did — items processed and wall seconds spent inside
/// the loop — for the pipeline's worker-imbalance histogram. Entry w
/// belongs to worker w; inline execution reports one worker.
struct ParallelForStats {
  std::vector<std::uint64_t> items;
  std::vector<double> busySeconds;
};

ParallelForStats parallelFor(
    std::size_t n, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn);

} // namespace v6t::analysis
