// v6t::analysis — deterministic parallel dispatch primitives.
//
// Two primitives with one determinism contract: fn must be a pure
// function of its item index writing only to pre-sized output slot(s)
// owned by that item. Under that discipline the merged output is
// bitwise-identical for every worker count — the same argument DESIGN.md
// §8 makes for the sharded runner — because only the ASSIGNMENT of items
// to workers varies run to run, never what an item computes.
//
//   parallelFor        uniform items over one chunked atomic cursor; the
//                      cheap path for loops whose items cost about the
//                      same (summary fan-out, small fixed task sets).
//
//   parallelForCosted  the cost-aware scheduler (DESIGN.md §13): items
//                      carry caller-estimated costs, dispatch order is
//                      longest-processing-time-first (LPT), workers pull
//                      from per-worker deques seeded by greedy LPT
//                      assignment and steal half a victim's remaining
//                      tail when their own deque drains. Heavy-tailed
//                      workloads (a handful of heavy-hitter sources
//                      dominating the capture) stay balanced instead of
//                      serializing behind whichever worker drew the big
//                      item.
//
// parallelForCosted can also run on VIRTUAL worker clocks (`virtualTime`):
// every task executes once on the calling thread, but scheduling
// decisions replay the real policy against per-worker virtual clocks
// advanced by each task's measured duration. The resulting busySeconds /
// makespan model what an N-core host would see — the only way to measure
// scheduler quality on the single-core CI containers the committed
// baselines come from — while the task results (and thus the digest) are
// exactly the serial reference's.
//
// threads <= 1 (or n <= 1) executes inline on the calling thread in item
// order with no thread spawned — the serial reference the equivalence
// tests compare against.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace v6t::analysis {

/// What the dispatch did: per-worker items and busy seconds (wall in
/// thread mode, virtual clocks in virtual-time mode) for the pipeline's
/// worker-imbalance histogram, plus scheduler counters. Entry w belongs
/// to worker w; inline execution reports one worker.
struct ParallelForStats {
  std::vector<std::uint64_t> items;
  std::vector<double> busySeconds;
  /// Successful steal operations (each may move a chunk of tasks).
  std::uint64_t steals = 0;
  /// Heavy items subdivided into subtasks — filled by callers that split
  /// (classifyIndexed, the NIST stage), not by the scheduler itself.
  std::uint64_t splits = 0;
  /// Estimated cost of every scheduled task (the scheduler's input), for
  /// the `analysis.sched.task_cost` histogram. Empty for parallelFor.
  std::vector<std::uint64_t> taskCosts;

  /// Longest worker busy time — the modeled parallel wall clock of the
  /// dispatched stage.
  [[nodiscard]] double makespanSeconds() const;
  /// Total work executed across workers.
  [[nodiscard]] double busyTotalSeconds() const;
  /// Fold another dispatch's stats in (per-worker entries add pairwise;
  /// counters and task costs accumulate) — for stages that run more than
  /// one dispatch (fingerprint: DBSCAN adjacency + hop-limit scan).
  void absorb(const ParallelForStats& other);
};

/// Cost threshold (in scheduler cost units — roughly packets touched)
/// at or above which a single source/session is split into subtasks.
/// Configurable as `analysis.min_split_cost`.
inline constexpr std::uint64_t kDefaultMinSplitCost = 16384;

/// Scheduler knobs threaded from PipelineOptions into the stages.
struct ScheduleParams {
  std::uint64_t minSplitCost = kDefaultMinSplitCost;
  /// Replay the schedule on virtual worker clocks (see file comment).
  bool virtualTime = false;
};

/// Canonical LPT dispatch order: item indices sorted by estimated cost
/// descending, ties broken by index ascending. Exposed for the scheduler
/// property tests.
[[nodiscard]] std::vector<std::size_t> lptOrder(
    std::span<const std::uint64_t> costs);

ParallelForStats parallelFor(
    std::size_t n, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn);

/// Cost-aware dispatch of items [0, costs.size()) — see file comment.
/// A zero cost is treated as 1 (every task occupies a schedule slot).
ParallelForStats parallelForCosted(
    std::span<const std::uint64_t> costs, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn,
    bool virtualTime = false);

} // namespace v6t::analysis
