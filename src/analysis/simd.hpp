// v6t::analysis — vectorized-kernel dispatch (DESIGN.md §16).
//
// The hot analysis kernels (NIST frequency/runs on packed bit words, the
// addr6 word classifier, the ACF product sums) each exist twice: a scalar
// reference implementation and a word-level/vector implementation proven
// bit-identical to it by the test_simd_kernels property battery. Which one
// runs is decided here:
//
//   compile time   -DV6T_SIMD=OFF defines V6T_SIMD_DISABLED (a PUBLIC
//                  compile definition on v6t_analysis) and pins every
//                  dispatch to the scalar reference — the cross-check
//                  build CI compares digests against.
//   run time       setSimdKernelsEnabled(false) flips the same dispatch in
//                  a default build, so ONE binary can measure scalar vs
//                  vectorized legs and verify their digests agree
//                  (bench/simd_kernels does exactly that).
//
// Because both paths produce bit-identical doubles, the toggle is pure
// performance: no result anywhere in the repo may depend on it.
#pragma once

namespace v6t::analysis {

#if defined(V6T_SIMD_DISABLED)
inline constexpr bool kSimdCompiledIn = false;
#else
inline constexpr bool kSimdCompiledIn = true;
#endif

/// Enable/disable the vectorized kernel implementations at run time.
/// Forced (and sticky) false when compiled out with V6T_SIMD=OFF.
void setSimdKernelsEnabled(bool on);

/// True when the vectorized implementations are compiled in AND enabled.
[[nodiscard]] bool simdKernelsEnabled();

/// RAII toggle for tests/benches: restores the previous setting on exit.
class ScopedSimdKernels {
public:
  explicit ScopedSimdKernels(bool on) : previous_(simdKernelsEnabled()) {
    setSimdKernelsEnabled(on);
  }
  ~ScopedSimdKernels() { setSimdKernelsEnabled(previous_); }
  ScopedSimdKernels(const ScopedSimdKernels&) = delete;
  ScopedSimdKernels& operator=(const ScopedSimdKernels&) = delete;

private:
  bool previous_;
};

} // namespace v6t::analysis
