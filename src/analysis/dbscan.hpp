// v6t::analysis — density-based clustering (DBSCAN).
//
// The paper uses DBSCAN twice: to cluster payload byte-representations for
// tool fingerprinting (§5.4) and to classify network-selection behavior
// (§5.2). This is the textbook algorithm (Ester et al. 1996) over an
// arbitrary distance functor; O(n^2) neighborhood queries, fine for the
// corpus sizes involved (thousands of points).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace v6t::analysis {

inline constexpr int kDbscanNoise = -1;

struct DbscanResult {
  /// Cluster id per point; kDbscanNoise for noise points.
  std::vector<int> label;
  int clusterCount = 0;

  [[nodiscard]] std::size_t noiseCount() const {
    std::size_t n = 0;
    for (int l : label)
      if (l == kDbscanNoise) ++n;
    return n;
  }
};

/// Cluster `n` points whose neighborhoods are already known.
/// `neighborsOf(p)` must return the points within epsilon of `p`
/// (including `p` itself) in ascending index order — the same list the
/// distance-functor overload computes lazily, which is why precomputing
/// the adjacency (possibly in parallel: each list is a pure function of
/// one point) yields identical labels. A point is a core point if its
/// neighborhood holds at least `minPts` points.
template <typename NeighborsFn>
[[nodiscard]] DbscanResult dbscanWithNeighbors(std::size_t n,
                                               std::size_t minPts,
                                               NeighborsFn&& neighborsOf) {
  constexpr int kUnvisited = -2;
  DbscanResult result;
  result.label.assign(n, kUnvisited);

  for (std::size_t p = 0; p < n; ++p) {
    if (result.label[p] != kUnvisited) continue;
    auto&& pNeighbors = neighborsOf(p);
    std::vector<std::size_t> seeds(pNeighbors.begin(), pNeighbors.end());
    if (seeds.size() < minPts) {
      result.label[p] = kDbscanNoise;
      continue;
    }
    const int cluster = result.clusterCount++;
    result.label[p] = cluster;
    // Expand: classic seed-list growth.
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const std::size_t q = seeds[i];
      if (result.label[q] == kDbscanNoise) result.label[q] = cluster;
      if (result.label[q] != kUnvisited) continue;
      result.label[q] = cluster;
      auto&& qNeighbors = neighborsOf(q);
      if (qNeighbors.size() >= minPts) {
        seeds.insert(seeds.end(), qNeighbors.begin(), qNeighbors.end());
      }
    }
  }
  return result;
}

/// Cluster `n` points. `distance(i, j)` must be symmetric with
/// distance(i, i) == 0. A point is a core point if at least `minPts` points
/// (including itself) lie within `epsilon`.
template <typename DistanceFn>
[[nodiscard]] DbscanResult dbscan(std::size_t n, double epsilon,
                                  std::size_t minPts, DistanceFn&& distance) {
  auto neighbors = [&](std::size_t p) {
    std::vector<std::size_t> out;
    for (std::size_t q = 0; q < n; ++q) {
      if (distance(p, q) <= epsilon) out.push_back(q);
    }
    return out;
  };
  return dbscanWithNeighbors(n, minPts, neighbors);
}

} // namespace v6t::analysis
