#include "analysis/overlap.hpp"

#include <algorithm>

namespace v6t::analysis {

ActivityCalendar buildCalendar(std::span<const net::Packet> packets) {
  ActivityCalendar calendar;
  for (const net::Packet& p : packets) {
    calendar[p.src].insert(p.ts.dayIndex());
  }
  return calendar;
}

OverlapStats compareCalendars(const ActivityCalendar& a,
                              const ActivityCalendar& b) {
  OverlapStats stats;
  for (const auto& [src, daysA] : a) {
    const auto it = b.find(src);
    if (it == b.end()) {
      ++stats.onlyA;
      continue;
    }
    ++stats.shared;
    const auto& daysB = it->second;
    const bool sameDay = std::any_of(
        daysA.begin(), daysA.end(),
        [&daysB](std::int64_t day) { return daysB.contains(day); });
    if (sameDay) ++stats.sharedSameDay;
  }
  for (const auto& [src, daysB] : b) {
    if (!a.contains(src)) ++stats.onlyB;
  }
  return stats;
}

std::vector<net::Ipv6Address> sourcesInAll(
    std::span<const ActivityCalendar> calendars) {
  std::vector<net::Ipv6Address> out;
  if (calendars.empty()) return out;
  for (const auto& [src, days] : calendars.front()) {
    bool everywhere = true;
    for (std::size_t i = 1; i < calendars.size(); ++i) {
      if (!calendars[i].contains(src)) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) out.push_back(src);
  }
  return out;
}

} // namespace v6t::analysis
