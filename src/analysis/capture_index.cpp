#include "analysis/capture_index.hpp"

namespace v6t::analysis {

CaptureIndex::CaptureIndex(std::span<const net::Packet> packets,
                           std::span<const telescope::Session> sessions)
    : packets_(packets), sessions_(sessions) {
  // Source grouping comes straight from groupBySource — the same
  // first-appearance order every existing consumer observes — instead of
  // rebuilding the source map here.
  std::vector<telescope::SourceSessions> bySource =
      telescope::groupBySource(sessions);

  sources_.reserve(bySource.size());
  sourceOffsets_.reserve(bySource.size() + 1);
  sessionIdx_.reserve(sessions.size());
  sessionStarts_.reserve(sessions.size());
  aggregates_.reserve(bySource.size());

  std::size_t totalPackets = 0;
  for (const telescope::Session& s : sessions) totalPackets += s.packetCount();
  targetOffsets_.reserve(sessions.size() + 1);
  targets_.reserve(totalPackets);
  sessionFirstPayload_.assign(sessions.size(), kNoPayload);
  sessionPayloadPackets_.assign(sessions.size(), 0);
  targetHi_.reserve(totalPackets);
  targetLo_.reserve(totalPackets);
  packetTs_.reserve(totalPackets);
  srcHi_.reserve(totalPackets);
  srcLo_.reserve(totalPackets);
  dstPort_.reserve(totalPackets);
  payloadLen_.reserve(totalPackets);
  subnetWords_.reserve((totalPackets + 1) / 2 + sessions.size());
  subnetWordOffsets_.reserve(sessions.size() + 1);

  // One pass over every session's packet run: targets, payload memo, and
  // the columnar transpose (DESIGN.md §16). The lo64 lane doubles as the
  // session's packed IID bit sequence; the subnet bits (address bits
  // 32..63, i.e. the low half of hi64) pack two addresses per word,
  // MSB-first, zero-padded when a session has an odd packet count.
  targetOffsets_.push_back(0);
  subnetWordOffsets_.push_back(0);
  for (std::uint32_t si = 0; si < sessions.size(); ++si) {
    const telescope::Session& s = sessions[si];
    const std::size_t first = targets_.size();
    for (std::uint32_t idx : s.packetIdx) {
      const net::Packet& p = packets[idx];
      targets_.push_back(p.dst);
      targetHi_.push_back(p.dst.hi64());
      targetLo_.push_back(p.dst.lo64());
      packetTs_.push_back(p.ts);
      srcHi_.push_back(p.src.hi64());
      srcLo_.push_back(p.src.lo64());
      dstPort_.push_back(p.dstPort);
      payloadLen_.push_back(static_cast<std::uint16_t>(p.payload.size()));
      if (p.hasPayload()) {
        if (sessionFirstPayload_[si] == kNoPayload) {
          sessionFirstPayload_[si] = idx;
        }
        ++sessionPayloadPackets_[si];
      }
    }
    targetOffsets_.push_back(targets_.size());
    const std::size_t count = targets_.size() - first;
    for (std::size_t i = 0; i < count; i += 2) {
      const std::uint64_t a = targetHi_[first + i] & 0xffffffffULL;
      const std::uint64_t b =
          i + 1 < count ? targetHi_[first + i + 1] & 0xffffffffULL : 0;
      subnetWords_.push_back((a << 32) | b);
    }
    subnetWordOffsets_.push_back(subnetWords_.size());
  }

  // CSR over the source grouping plus the per-source aggregates. A
  // source's sessions are disjoint in time and ordered by start, so its
  // first session's first packet and last session's last packet bound its
  // activity.
  sourceOffsets_.push_back(0);
  for (telescope::SourceSessions& src : bySource) {
    sources_.push_back(src.source);
    SourceAggregates agg;
    for (std::uint32_t si : src.sessionIdx) {
      const telescope::Session& s = sessions[si];
      sessionIdx_.push_back(si);
      sessionStarts_.push_back(s.start);
      agg.packets += s.packetCount();
    }
    const telescope::Session& first = sessions[src.sessionIdx.front()];
    const telescope::Session& last = sessions[src.sessionIdx.back()];
    agg.firstDay = first.start.dayIndex();
    agg.lastDay = last.end.dayIndex();
    agg.asn = packets[first.packetIdx.front()].srcAsn;
    aggregates_.push_back(agg);
    sourceOffsets_.push_back(sessionIdx_.size());
  }
}

} // namespace v6t::analysis
