#include "analysis/capture_index.hpp"

namespace v6t::analysis {

CaptureIndex::CaptureIndex(std::span<const net::Packet> packets,
                           std::span<const telescope::Session> sessions)
    : packets_(packets), sessions_(sessions) {
  // Source grouping comes straight from groupBySource — the same
  // first-appearance order every existing consumer observes — instead of
  // rebuilding the source map here.
  std::vector<telescope::SourceSessions> bySource =
      telescope::groupBySource(sessions);

  sources_.reserve(bySource.size());
  sourceOffsets_.reserve(bySource.size() + 1);
  sessionIdx_.reserve(sessions.size());
  sessionStarts_.reserve(sessions.size());
  aggregates_.reserve(bySource.size());

  std::size_t totalPackets = 0;
  for (const telescope::Session& s : sessions) totalPackets += s.packetCount();
  targetOffsets_.reserve(sessions.size() + 1);
  targets_.reserve(totalPackets);
  sessionFirstPayload_.assign(sessions.size(), kNoPayload);
  sessionPayloadPackets_.assign(sessions.size(), 0);

  // One pass over every session's packet run: targets, payload memo.
  targetOffsets_.push_back(0);
  for (std::uint32_t si = 0; si < sessions.size(); ++si) {
    const telescope::Session& s = sessions[si];
    for (std::uint32_t idx : s.packetIdx) {
      const net::Packet& p = packets[idx];
      targets_.push_back(p.dst);
      if (p.hasPayload()) {
        if (sessionFirstPayload_[si] == kNoPayload) {
          sessionFirstPayload_[si] = idx;
        }
        ++sessionPayloadPackets_[si];
      }
    }
    targetOffsets_.push_back(targets_.size());
  }

  // CSR over the source grouping plus the per-source aggregates. A
  // source's sessions are disjoint in time and ordered by start, so its
  // first session's first packet and last session's last packet bound its
  // activity.
  sourceOffsets_.push_back(0);
  for (telescope::SourceSessions& src : bySource) {
    sources_.push_back(src.source);
    SourceAggregates agg;
    for (std::uint32_t si : src.sessionIdx) {
      const telescope::Session& s = sessions[si];
      sessionIdx_.push_back(si);
      sessionStarts_.push_back(s.start);
      agg.packets += s.packetCount();
    }
    const telescope::Session& first = sessions[src.sessionIdx.front()];
    const telescope::Session& last = sessions[src.sessionIdx.back()];
    agg.firstDay = first.start.dayIndex();
    agg.lastDay = last.end.dayIndex();
    agg.asn = packets[first.packetIdx.front()].srcAsn;
    aggregates_.push_back(agg);
    sourceOffsets_.push_back(sessionIdx_.size());
  }
}

} // namespace v6t::analysis
