#include "analysis/simd.hpp"

#include <atomic>

namespace v6t::analysis {

namespace {

std::atomic<bool> g_simdEnabled{kSimdCompiledIn};

} // namespace

void setSimdKernelsEnabled(bool on) {
  g_simdEnabled.store(on && kSimdCompiledIn, std::memory_order_relaxed);
}

bool simdKernelsEnabled() {
  return g_simdEnabled.load(std::memory_order_relaxed);
}

} // namespace v6t::analysis
