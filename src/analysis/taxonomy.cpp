#include "analysis/taxonomy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <unordered_map>

#include "analysis/capture_index.hpp"
#include "analysis/dbscan.hpp"
#include "analysis/nist.hpp"
#include "analysis/parallel.hpp"
#include "analysis/simd.hpp"

namespace v6t::analysis {

std::string_view toString(TemporalClass t) {
  switch (t) {
    case TemporalClass::OneOff: return "one-off";
    case TemporalClass::Intermittent: return "intermittent";
    case TemporalClass::Periodic: return "periodic";
  }
  return "?";
}

std::string_view toString(AddressSelection s) {
  switch (s) {
    case AddressSelection::Structured: return "structured";
    case AddressSelection::Random: return "random";
    case AddressSelection::Unknown: return "unknown";
  }
  return "?";
}

std::string_view toString(NetworkSelection s) {
  switch (s) {
    case NetworkSelection::SinglePrefix: return "single-prefix";
    case NetworkSelection::SizeIndependent: return "network-size independent";
    case NetworkSelection::SizeDependent: return "network-size dependent";
    case NetworkSelection::Inconsistent: return "inconsistent";
  }
  return "?";
}

TemporalResult classifyTemporal(std::span<const sim::SimTime> sessionStarts,
                                const PeriodDetectorParams& params) {
  if (sessionStarts.size() <= 1) return {TemporalClass::OneOff, std::nullopt};
  if (sessionStarts.size() == 2) {
    // Must appear more than twice to qualify as periodic (§5.1).
    return {TemporalClass::Intermittent, std::nullopt};
  }
  if (auto period = detectPeriod(sessionStarts, params)) {
    return {TemporalClass::Periodic, period};
  }
  return {TemporalClass::Intermittent, std::nullopt};
}

namespace {

/// Share of adjacent target pairs in non-decreasing order — detects
/// sequential traversal even when individual addresses look random.
double monotonicShare(std::span<const net::Ipv6Address> targets) {
  if (targets.size() < 2) return 1.0;
  std::size_t ordered = 0;
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (!(targets[i] < targets[i - 1])) ++ordered;
  }
  return static_cast<double>(ordered) /
         static_cast<double>(targets.size() - 1);
}

/// Lane variant: the byte-lexicographic address order is exactly the
/// (hi64, lo64) pair order, so the same comparisons run on two u64
/// columns instead of 16-byte rows.
double monotonicShareLanes(std::span<const std::uint64_t> hi,
                           std::span<const std::uint64_t> lo) {
  if (hi.size() < 2) return 1.0;
  std::size_t ordered = 0;
  for (std::size_t i = 1; i < hi.size(); ++i) {
    const bool less =
        hi[i] < hi[i - 1] || (hi[i] == hi[i - 1] && lo[i] < lo[i - 1]);
    if (!less) ++ordered;
  }
  return static_cast<double>(ordered) / static_cast<double>(hi.size() - 1);
}

bool isStructuredType(AddressType t) {
  return t != AddressType::Randomized;
}

} // namespace

AddressSelection classifyAddressSelection(
    std::span<const net::Ipv6Address> targets,
    const AddressSelectionParams& params) {
  if (targets.empty()) return AddressSelection::Unknown;

  // addr6-style structure: a dominant structured category.
  const AddressTypeHistogram histogram = classifyAll(targets);
  std::uint64_t structured = 0;
  for (std::size_t i = 0; i < kAddressTypeCount; ++i) {
    if (isStructuredType(static_cast<AddressType>(i))) {
      structured += histogram.count[i];
    }
  }
  const double structuredRatio =
      static_cast<double>(structured) / static_cast<double>(targets.size());
  if (structuredRatio >= params.structuredShare) {
    return AddressSelection::Structured;
  }
  // Sequential traversal of the space is structure even if the individual
  // IIDs classify as randomized (Fig. 13's tree-walk sessions).
  if (targets.size() >= 8 && monotonicShare(targets) >= 0.9) {
    return AddressSelection::Structured;
  }

  // Statistical randomness of the IID bits (§5.3 method).
  if (targets.size() >= params.minPacketsForNist) {
    const BitSequence bits = bitsFromAddresses(targets, 64, 64);
    if (frequencyTest(bits).pass(params.alpha)) {
      return AddressSelection::Random;
    }
  }
  return AddressSelection::Unknown;
}

AddressSelection classifyAddressSelection(const CaptureIndex& index,
                                          std::uint32_t s,
                                          const AddressSelectionParams& params) {
  if (!simdKernelsEnabled()) {
    return classifyAddressSelection(index.targetsOf(s), params);
  }
  // Columnar mirror of the row path above: same decision sequence, same
  // doubles, word kernels throughout (DESIGN.md §16).
  const CaptureIndex::TargetColumns cols = index.columnsOf(s);
  const std::size_t n = cols.lo.size();
  if (n == 0) return AddressSelection::Unknown;

  const AddressTypeHistogram histogram = classifyLanes(cols.lo);
  std::uint64_t structured = 0;
  for (std::size_t i = 0; i < kAddressTypeCount; ++i) {
    if (isStructuredType(static_cast<AddressType>(i))) {
      structured += histogram.count[i];
    }
  }
  const double structuredRatio =
      static_cast<double>(structured) / static_cast<double>(n);
  if (structuredRatio >= params.structuredShare) {
    return AddressSelection::Structured;
  }
  if (n >= 8 && monotonicShareLanes(cols.hi, cols.lo) >= 0.9) {
    return AddressSelection::Structured;
  }

  if (n >= params.minPacketsForNist) {
    if (frequencyTestPacked(index.iidBitsOf(s)).pass(params.alpha)) {
      return AddressSelection::Random;
    }
  }
  return AddressSelection::Unknown;
}

namespace {

/// Size-invariant behavioral summary of one announcement cycle: these
/// numbers characterize *how* the scanner spread its sessions, not how
/// many prefixes happened to be announced, so cycles from different
/// experiment stages remain comparable.
struct CycleStats {
  bool multiPrefix = false;
  double cv = 0.0; // coefficient of variation of per-prefix counts
  double sizeCorr = 0.0; // Pearson r of host-bits vs session count
};

CycleStats cycleStats(const CycleActivity& cycle) {
  CycleStats stats;
  const std::size_t n = cycle.sessionsPerPrefix.size();
  std::size_t active = 0;
  double total = 0.0;
  for (std::uint64_t c : cycle.sessionsPerPrefix) {
    if (c > 0) ++active;
    total += static_cast<double>(c);
  }
  if (active <= 1 || n < 2) return stats; // single-prefix shape
  stats.multiPrefix = true;

  const double mean = total / static_cast<double>(n);
  double var = 0.0;
  for (std::uint64_t c : cycle.sessionsPerPrefix) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  stats.cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;

  double meanBits = 0.0;
  for (unsigned len : cycle.prefixLengths)
    meanBits += static_cast<double>(128 - len);
  meanBits /= static_cast<double>(n);
  double cov = 0.0;
  double varBits = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double db =
        static_cast<double>(128 - cycle.prefixLengths[i]) - meanBits;
    const double dc = static_cast<double>(cycle.sessionsPerPrefix[i]) - mean;
    cov += db * dc;
    varBits += db * db;
  }
  if (varBits > 0.0 && var > 0.0) {
    // var holds the *mean* squared deviation; the sum is var * n.
    stats.sizeCorr = cov / std::sqrt(varBits * var * static_cast<double>(n));
  }
  return stats;
}

/// DBSCAN feature vector derived from the cycle stats. Same behavior =>
/// nearby points, regardless of how many prefixes the cycle announced.
/// The size-correlation only enters when it is decisive — a uniform
/// scanner's Pearson r is small-sample noise that must not split clusters.
std::array<double, 3> cycleFeature(const CycleStats& stats,
                                   const NetworkSelectionParams& params) {
  if (!stats.multiPrefix) return {0.0, 0.0, 0.5};
  const double corrFeature =
      std::abs(stats.sizeCorr) >= params.sizeCorrelation
          ? (stats.sizeCorr + 1.0) / 2.0
          : 0.5;
  return {1.0, std::min(stats.cv, 2.0) / 2.0, corrFeature};
}

} // namespace

NetworkSelection classifyCycle(const CycleActivity& cycle,
                               const NetworkSelectionParams& params) {
  const CycleStats stats = cycleStats(cycle);
  if (!stats.multiPrefix) return NetworkSelection::SinglePrefix;
  // Size-driven coverage first: its session counts also have a modest
  // coefficient of variation, so the uniformity check must not see it.
  // The cv floor keeps near-constant counts (whose Pearson r is noise)
  // out of this branch.
  if (stats.sizeCorr >= params.sizeCorrelation && stats.cv > 0.25) {
    return NetworkSelection::SizeDependent;
  }
  if (stats.cv <= params.uniformCv) return NetworkSelection::SizeIndependent;
  return NetworkSelection::Inconsistent;
}

NetworkSelection classifyNetworkSelection(
    std::span<const CycleActivity> allCycles,
    const NetworkSelectionParams& params) {
  if (allCycles.empty()) return NetworkSelection::SinglePrefix;

  // Cycles during which only one prefix was announced carry no signal
  // about multi-prefix strategy; exclude them from the analysis.
  std::vector<CycleActivity> cycles;
  for (const CycleActivity& c : allCycles) {
    if (c.prefixLengths.size() >= 2) cycles.push_back(c);
  }
  if (cycles.empty()) return NetworkSelection::SinglePrefix;
  if (cycles.size() == 1) return classifyCycle(cycles[0], params);

  // Group the cycles' behavioral features by DBSCAN (§5.2 method): a
  // source whose per-cycle behavior falls into more than one density
  // cluster changed strategy mid-experiment.
  std::vector<std::array<double, 3>> profiles;
  profiles.reserve(cycles.size());
  for (const CycleActivity& c : cycles) {
    profiles.push_back(cycleFeature(cycleStats(c), params));
  }

  auto distance = [&](std::size_t a, std::size_t b) {
    double d = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      d += std::abs(profiles[a][i] - profiles[b][i]);
    }
    return d;
  };
  const DbscanResult clusters =
      dbscan(cycles.size(), params.dbscanEpsilon, params.dbscanMinPts,
             distance);
  // A scanner is coherent if one behavior cluster dominates its cycles;
  // a few partially-observed cycles (the scanner came online mid-cycle)
  // are tolerated as outliers. A genuine behavior change produces two
  // comparable clusters and lands in Inconsistent.
  std::map<int, std::size_t> clusterSizes;
  for (int label : clusters.label) {
    if (label != kDbscanNoise) ++clusterSizes[label];
  }
  int dominant = kDbscanNoise;
  std::size_t dominantSize = 0;
  for (const auto& [label, size] : clusterSizes) {
    if (size > dominantSize) {
      dominant = label;
      dominantSize = size;
    }
  }
  if (dominant == kDbscanNoise ||
      static_cast<double>(dominantSize) <
          params.dominantShare * static_cast<double>(cycles.size())) {
    return NetworkSelection::Inconsistent;
  }

  // Label by majority class among the dominant cluster's cycles.
  std::size_t votes[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    if (clusters.label[i] != dominant) continue;
    ++votes[static_cast<std::size_t>(classifyCycle(cycles[i], params))];
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (votes[i] > votes[best]) best = i;
  }
  if (votes[best] * 2 < dominantSize) return NetworkSelection::Inconsistent;
  return static_cast<NetworkSelection>(best);
}

std::uint64_t TaxonomyResult::scannersOf(TemporalClass t) const {
  std::uint64_t n = 0;
  for (const ScannerProfile& p : profiles) {
    if (p.temporal.cls == t) ++n;
  }
  return n;
}

std::uint64_t TaxonomyResult::sessionsOf(TemporalClass t) const {
  std::uint64_t n = 0;
  for (const ScannerProfile& p : profiles) {
    if (p.temporal.cls == t) n += p.sessionIdx.size();
  }
  return n;
}

std::uint64_t TaxonomyResult::scannersOf(NetworkSelection s) const {
  std::uint64_t n = 0;
  for (const ScannerProfile& p : profiles) {
    if (p.network == s) ++n;
  }
  return n;
}

std::uint64_t TaxonomyResult::sessionsOf(NetworkSelection s) const {
  std::uint64_t n = 0;
  for (const ScannerProfile& p : profiles) {
    if (p.network == s) n += p.sessionIdx.size();
  }
  return n;
}

namespace {

/// Address-classify a block of one source's sessions: per-session labels
/// go to disjoint `sessionAddrSel` slots, the tallies to `counts` — the
/// profile's own counters for an unsplit source, a private per-block slot
/// for a split one. Pure function of the block.
void classifyAddrBlock(const CaptureIndex& index,
                       std::span<const std::uint32_t> sessionIdx,
                       const AddressSelectionParams& addrParams,
                       std::vector<AddressSelection>& sessionAddrSel,
                       std::uint64_t counts[3]) {
  for (std::uint32_t si : sessionIdx) {
    const AddressSelection sel = classifyAddressSelection(index, si, addrParams);
    sessionAddrSel[si] = sel;
    counts[static_cast<std::size_t>(sel)]++;
  }
}

/// The non-address axes of source `srcIdx` — profile identity, temporal
/// class, network selection — independent of the address blocks, so a
/// split source can run this concurrently with them.
void classifySourceRest(const CaptureIndex& index, std::size_t srcIdx,
                        const bgp::SplitSchedule* schedule,
                        const PeriodDetectorParams& temporalParams,
                        const NetworkSelectionParams& netParams,
                        TaxonomyResult& out) {
  const std::span<const telescope::Session> sessions = index.sessions();
  const std::span<const std::uint32_t> sessionIdx = index.sessionsOf(srcIdx);

  ScannerProfile& profile = out.profiles[srcIdx];
  profile.source = index.source(srcIdx);
  profile.sessionIdx.assign(sessionIdx.begin(), sessionIdx.end());

  profile.temporal =
      classifyTemporal(index.sessionStartsOf(srcIdx), temporalParams);

  if (schedule != nullptr) {
    // Build per-cycle activity from the sessions' timing and targets.
    std::map<int, CycleActivity> perCycle;
    for (std::uint32_t i : sessionIdx) {
      const telescope::Session& s = sessions[i];
      const bgp::AnnouncementCycle* cycle = schedule->cycleAt(s.start);
      if (cycle == nullptr) continue;
      CycleActivity& activity = perCycle[cycle->index];
      if (activity.sessionsPerPrefix.empty()) {
        activity.cycleIndex = cycle->index;
        activity.sessionsPerPrefix.resize(cycle->announced.size());
        activity.prefixLengths.reserve(cycle->announced.size());
        for (const net::Prefix& p : cycle->announced) {
          activity.prefixLengths.push_back(p.length());
        }
      }
      // Attribute the session to the most specific announced prefix its
      // first target falls into.
      const net::Ipv6Address target = index.targetsOf(i).front();
      std::size_t bestIdx = cycle->announced.size();
      unsigned bestLen = 0;
      for (std::size_t k = 0; k < cycle->announced.size(); ++k) {
        const net::Prefix& p = cycle->announced[k];
        if (p.contains(target) && p.length() >= bestLen) {
          bestLen = p.length();
          bestIdx = k;
        }
      }
      if (bestIdx < activity.sessionsPerPrefix.size()) {
        ++activity.sessionsPerPrefix[bestIdx];
      }
    }
    std::vector<CycleActivity> cycles;
    cycles.reserve(perCycle.size());
    for (auto& [cycleIdx, activity] : perCycle) {
      cycles.push_back(std::move(activity));
    }
    profile.network = classifyNetworkSelection(cycles, netParams);
  } else {
    profile.network = NetworkSelection::SinglePrefix;
  }
}

} // namespace

TaxonomyResult classifyIndexed(const CaptureIndex& index,
                               const bgp::SplitSchedule* schedule,
                               unsigned threads,
                               const PeriodDetectorParams& temporalParams,
                               const AddressSelectionParams& addrParams,
                               const NetworkSelectionParams& netParams,
                               ParallelForStats* statsOut,
                               const ScheduleParams& sched) {
  TaxonomyResult result;
  result.sessionAddrSel.assign(index.sessions().size(),
                               AddressSelection::Unknown);
  result.profiles.resize(index.sourceCount());
  // The address and temporal axes both used to walk the packet vector to
  // re-extract targets / gather starts; the index serves them from memos.
  index.noteRescanAvoided();
  index.noteRescanAvoided();

  // Build the task list: light sources are one task; a source whose
  // estimated cost reaches minSplitCost splits into session-block
  // subtasks (~minSplitCost/2 each) plus a rest subtask. Block
  // boundaries depend only on the index and minSplitCost — never on the
  // thread count — so the task list itself is deterministic.
  struct Task {
    enum Kind : std::uint8_t { Whole, Block, Rest };
    std::uint32_t source;
    std::uint32_t begin; // session-block range within sessionsOf(source)
    std::uint32_t end;
    std::uint32_t countSlot; // into blockCounts (Block tasks only)
    Kind kind;
  };
  std::vector<Task> tasks;
  std::vector<std::uint64_t> costs;
  std::vector<std::array<std::uint64_t, 3>> blockCounts;
  std::uint64_t splits = 0;
  const std::uint64_t blockTarget =
      std::max<std::uint64_t>(sched.minSplitCost / 2, 1);

  for (std::size_t i = 0; i < index.sourceCount(); ++i) {
    const auto source = static_cast<std::uint32_t>(i);
    const std::uint64_t cost = index.classifyCostOf(i);
    const std::span<const std::uint32_t> sess = index.sessionsOf(i);
    const auto sessCount = static_cast<std::uint32_t>(sess.size());
    if (cost < sched.minSplitCost || sess.size() < 2) {
      tasks.push_back({source, 0, sessCount, 0, Task::Whole});
      costs.push_back(cost);
      continue;
    }
    ++splits;
    std::uint32_t begin = 0;
    std::uint64_t acc = 0;
    for (std::uint32_t k = 0; k < sessCount; ++k) {
      acc += index.sessionPacketCountOf(sess[k]) + 32;
      if (acc >= blockTarget || k + 1 == sessCount) {
        tasks.push_back({source, begin, k + 1,
                         static_cast<std::uint32_t>(blockCounts.size()),
                         Task::Block});
        blockCounts.push_back({0, 0, 0});
        costs.push_back(acc);
        begin = k + 1;
        acc = 0;
      }
    }
    tasks.push_back({source, 0, 0, 0, Task::Rest});
    costs.push_back(32 * static_cast<std::uint64_t>(sessCount));
  }

  ParallelForStats stats = parallelForCosted(
      costs, threads,
      [&](unsigned, std::size_t t) {
        const Task& task = tasks[t];
        const std::span<const std::uint32_t> sess =
            index.sessionsOf(task.source);
        switch (task.kind) {
          case Task::Whole:
            classifyAddrBlock(index, sess, addrParams, result.sessionAddrSel,
                              result.profiles[task.source].sessionsByAddrSel);
            classifySourceRest(index, task.source, schedule, temporalParams,
                               netParams, result);
            break;
          case Task::Block:
            classifyAddrBlock(index,
                              sess.subspan(task.begin, task.end - task.begin),
                              addrParams, result.sessionAddrSel,
                              blockCounts[task.countSlot].data());
            break;
          case Task::Rest:
            classifySourceRest(index, task.source, schedule, temporalParams,
                               netParams, result);
            break;
        }
      },
      sched.virtualTime);
  stats.splits = splits;

  // Canonical reduction: fold the private block counters into their
  // profiles in task-list (source, block) order — fixed regardless of
  // which worker computed each block.
  for (const Task& task : tasks) {
    if (task.kind != Task::Block) continue;
    std::uint64_t* dst = result.profiles[task.source].sessionsByAddrSel;
    for (std::size_t c = 0; c < 3; ++c) dst[c] += blockCounts[task.countSlot][c];
  }

  if (statsOut != nullptr) *statsOut = std::move(stats);
  return result;
}

TaxonomyResult classifyCapture(std::span<const net::Packet> packets,
                               std::span<const telescope::Session> sessions,
                               const bgp::SplitSchedule* schedule,
                               const PeriodDetectorParams& temporalParams,
                               const AddressSelectionParams& addrParams,
                               const NetworkSelectionParams& netParams) {
  const CaptureIndex index{packets, sessions};
  return classifyIndexed(index, schedule, 1, temporalParams, addrParams,
                         netParams);
}

} // namespace v6t::analysis
