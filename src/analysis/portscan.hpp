// v6t::analysis — port-scan shape analysis.
//
// Table 4's commentary distinguishes scanners that only knock on 80/443
// from those covering broad port ranges, and §4 notes vertical scanners
// that rotate source IIDs per destination port. This module classifies a
// session's port behavior: horizontal (one or two service ports across
// many targets), vertical (many ports on few targets), or mixed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

enum class PortScanShape : std::uint8_t {
  None, // no TCP/UDP packets in the session
  Horizontal, // few ports, many targets (service sweep)
  Vertical, // many ports, few targets (host enumeration)
  Mixed,
};

[[nodiscard]] std::string_view toString(PortScanShape s);

struct PortScanProfile {
  std::size_t transportPackets = 0;
  std::size_t distinctPorts = 0;
  std::size_t distinctTargets = 0;
  bool sequentialPorts = false; // ports mostly ascend (nmap-style walk)
  PortScanShape shape = PortScanShape::None;
};

struct PortScanParams {
  std::size_t verticalMinPorts = 10;
  std::size_t horizontalMaxPorts = 3;
};

[[nodiscard]] PortScanProfile profilePorts(
    std::span<const net::Packet> packets, const telescope::Session& session,
    const PortScanParams& params = {});

} // namespace v6t::analysis
