// v6t::analysis — hop-limit pattern analysis.
//
// Traceroute-type tools (traceroute, Yarrp, Atlas topology measurements)
// send probes with small, incrementing hop limits so intermediate routers
// reveal themselves; ordinary scanners send with an OS-default initial
// hop limit (typically 64) that arrives high. The hop-limit histogram of
// a session therefore separates topology probing from endpoint scanning —
// a second fingerprinting signal next to payloads (§5.4).
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

struct HopLimitProfile {
  std::uint8_t minHops = 255;
  std::uint8_t maxHops = 0;
  std::size_t distinctValues = 0;
  std::size_t lowProbes = 0; // packets with hop limit <= 32
  std::size_t packets = 0;

  /// Traceroute-type: several distinct low hop limits, starting near 1.
  [[nodiscard]] bool looksLikeTraceroute() const {
    return packets >= 4 && minHops <= 4 && distinctValues >= 4 &&
           lowProbes * 2 >= packets;
  }
};

/// Profile the hop limits of one session's packets.
[[nodiscard]] HopLimitProfile profileHopLimits(
    std::span<const net::Packet> packets, const telescope::Session& session);

} // namespace v6t::analysis
