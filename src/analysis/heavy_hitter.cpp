#include "analysis/heavy_hitter.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/capture_index.hpp"
#include "analysis/stats.hpp"

namespace v6t::analysis {

std::vector<HeavyHitter> findHeavyHitters(std::span<const net::Packet> packets,
                                          double thresholdPercent) {
  // One sessionization pass feeds both the hitter aggregates and their
  // session counts; the pipeline path skips even this by passing its
  // already-shared index to the overload below.
  const std::vector<telescope::Session> sessions =
      telescope::sessionize(packets, telescope::SourceAgg::Addr128);
  const CaptureIndex index{packets, sessions};
  return findHeavyHitters(index, thresholdPercent);
}

std::vector<HeavyHitter> findHeavyHitters(const CaptureIndex& index,
                                          double thresholdPercent) {
  // Per-source packets, day bounds, ASN and session counts were all
  // aggregated at index build time — this is pure selection.
  index.noteRescanAvoided();
  const auto total = static_cast<double>(index.packets().size());
  std::vector<HeavyHitter> hitters;
  for (std::size_t i = 0; i < index.sourceCount(); ++i) {
    const CaptureIndex::SourceAggregates& agg = index.aggregatesOf(i);
    const double share =
        total == 0.0 ? 0.0 : 100.0 * static_cast<double>(agg.packets) / total;
    if (share <= thresholdPercent) continue;
    HeavyHitter h;
    h.source = index.source(i).addr;
    h.asn = agg.asn;
    h.packets = agg.packets;
    h.shareOfTelescope = share;
    h.sessions = index.sessionsOf(i).size();
    h.firstDay = agg.firstDay;
    h.lastDay = agg.lastDay;
    hitters.push_back(h);
  }
  // stable_sort over canonical source order makes ties deterministic (the
  // unordered_map walk it replaces was not).
  std::stable_sort(hitters.begin(), hitters.end(),
                   [](const HeavyHitter& a, const HeavyHitter& b) {
                     return a.packets > b.packets;
                   });
  return hitters;
}

HeavyHitterImpact heavyHitterImpact(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    std::span<const HeavyHitter> hitters) {
  std::unordered_set<net::Ipv6Address> hitterSet;
  for (const HeavyHitter& h : hitters) hitterSet.insert(h.source);

  HeavyHitterImpact impact;
  for (const net::Packet& p : packets) {
    if (hitterSet.contains(p.src)) ++impact.packets;
  }
  for (const telescope::Session& s : sessions) {
    // A session belongs to a heavy hitter if its (possibly aggregated)
    // source covers one of the hitter addresses.
    const unsigned maskBits = telescope::bits(s.source.agg);
    for (const net::Ipv6Address& h : hitterSet) {
      if (h.maskedTo(maskBits) == s.source.addr) {
        ++impact.sessions;
        break;
      }
    }
  }
  impact.packetShare = percent(impact.packets, packets.size());
  impact.sessionShare = percent(impact.sessions, sessions.size());
  return impact;
}

HeavyHitterImpact heavyHitterImpact(const CaptureIndex& index,
                                    std::span<const HeavyHitter> hitters) {
  index.noteRescanAvoided();
  HeavyHitterImpact impact;
  for (std::size_t i = 0; i < index.sourceCount(); ++i) {
    const telescope::SourceKey& key = index.source(i);
    const unsigned maskBits = telescope::bits(key.agg);
    for (const HeavyHitter& h : hitters) {
      if (h.source.maskedTo(maskBits) == key.addr) {
        impact.packets += index.aggregatesOf(i).packets;
        impact.sessions += index.sessionsOf(i).size();
        break;
      }
    }
  }
  impact.packetShare = percent(impact.packets, index.packets().size());
  impact.sessionShare = percent(impact.sessions, index.sessions().size());
  return impact;
}

} // namespace v6t::analysis
