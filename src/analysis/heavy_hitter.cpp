#include "analysis/heavy_hitter.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/stats.hpp"

namespace v6t::analysis {

std::vector<HeavyHitter> findHeavyHitters(std::span<const net::Packet> packets,
                                          double thresholdPercent) {
  struct Acc {
    std::uint64_t packets = 0;
    net::Asn asn;
    std::int64_t firstDay = 0;
    std::int64_t lastDay = 0;
  };
  std::unordered_map<net::Ipv6Address, Acc> perSource;
  for (const net::Packet& p : packets) {
    auto [it, fresh] = perSource.try_emplace(p.src);
    Acc& acc = it->second;
    if (fresh) {
      acc.asn = p.srcAsn;
      acc.firstDay = p.ts.dayIndex();
    }
    ++acc.packets;
    acc.lastDay = p.ts.dayIndex();
  }

  const auto total = static_cast<double>(packets.size());
  std::vector<HeavyHitter> hitters;
  for (const auto& [src, acc] : perSource) {
    const double share = total == 0.0
                             ? 0.0
                             : 100.0 * static_cast<double>(acc.packets) / total;
    if (share <= thresholdPercent) continue;
    HeavyHitter h;
    h.source = src;
    h.asn = acc.asn;
    h.packets = acc.packets;
    h.shareOfTelescope = share;
    h.firstDay = acc.firstDay;
    h.lastDay = acc.lastDay;
    hitters.push_back(h);
  }
  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.packets > b.packets;
            });

  // Session counts for the found hitters (one sessionization pass, only if
  // needed).
  if (!hitters.empty()) {
    const std::vector<telescope::Session> sessions = telescope::sessionize(
        packets, telescope::SourceAgg::Addr128);
    std::unordered_map<net::Ipv6Address, std::uint64_t> perSourceSessions;
    for (const telescope::Session& s : sessions) {
      ++perSourceSessions[s.source.addr];
    }
    for (HeavyHitter& h : hitters) {
      const auto it = perSourceSessions.find(h.source);
      h.sessions = it == perSourceSessions.end() ? 0 : it->second;
    }
  }
  return hitters;
}

HeavyHitterImpact heavyHitterImpact(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    std::span<const HeavyHitter> hitters) {
  std::unordered_set<net::Ipv6Address> hitterSet;
  for (const HeavyHitter& h : hitters) hitterSet.insert(h.source);

  HeavyHitterImpact impact;
  for (const net::Packet& p : packets) {
    if (hitterSet.contains(p.src)) ++impact.packets;
  }
  for (const telescope::Session& s : sessions) {
    // A session belongs to a heavy hitter if its (possibly aggregated)
    // source covers one of the hitter addresses.
    const unsigned maskBits = telescope::bits(s.source.agg);
    for (const net::Ipv6Address& h : hitterSet) {
      if (h.maskedTo(maskBits) == s.source.addr) {
        ++impact.sessions;
        break;
      }
    }
  }
  impact.packetShare = percent(impact.packets, packets.size());
  impact.sessionShare = percent(impact.sessions, sessions.size());
  return impact;
}

} // namespace v6t::analysis
