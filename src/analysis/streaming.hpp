// v6t::analysis — streaming windowed analysis over an out-of-core capture.
//
// The one-shot pipeline holds the whole merged packet vector in memory.
// The streaming path consumes the canonical (ts, originId, originSeq)
// packet stream — typically a SegmentStore cursor — in bounded time
// windows: packets are buffered only for the current window, sessions are
// tracked across window boundaries by the O(1)-state SessionTracker, and
// each closed window gets its own CaptureIndex for windowed observability.
// Capture-level results are folded from SessionSummary records, which are
// exactly the facts CaptureIndex aggregates from full sessions — so the
// StreamingResult, and its digest, is bitwise-identical to the one-shot
// reference (`analyzeOneShot`) at any window length, any spill budget and
// any thread count (DESIGN.md §15).
//
// Peak memory is O(window packets + open sessions + session summaries):
// the packet vector never materializes.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "analysis/heavy_hitter.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

struct StreamingOptions {
  /// Width of the bounded analysis windows. Windows are aligned to an
  /// absolute grid (floor(ts / windowLength)) so boundaries do not depend
  /// on the first packet observed.
  sim::Duration windowLength = sim::hours(24);
  sim::Duration sessionTimeout = telescope::kSessionTimeout;
  /// Aggregation for session tracking; heavy hitters are defined on /128.
  telescope::SourceAgg agg = telescope::SourceAgg::Addr128;
  double heavyHitterThresholdPercent = 10.0;
  /// Worker count for the per-source fold at finish(); 1 = serial
  /// reference. The result is bitwise-identical for every value.
  unsigned threads = 1;
  /// Declared capture outages (Sessionizer::setCaptureGaps semantics).
  std::vector<std::pair<sim::SimTime, sim::SimTime>> captureGaps;
  obs::Registry* metrics = nullptr;
};

/// Capture-level per-source aggregate, in canonical (first-appearance)
/// source order — the same values CaptureIndex::SourceAggregates carries.
struct StreamingSourceReport {
  telescope::SourceKey source;
  std::uint64_t packets = 0;
  std::uint64_t sessions = 0;
  std::uint64_t payloadPackets = 0;
  std::int64_t firstDay = 0;
  std::int64_t lastDay = 0;
  net::Asn asn;
};

/// Observability record for one closed window (window-local views — not
/// part of the capture-level digest).
struct StreamingWindowReport {
  sim::SimTime start;
  sim::SimTime end;
  std::uint64_t packets = 0;
  /// Distinct sources within the window (from the window's CaptureIndex).
  std::uint64_t sources = 0;
  /// Window-local session count (sessions split at window edges here;
  /// the capture-level tracker does not).
  std::uint64_t sessions = 0;
};

struct StreamingResult {
  std::uint64_t totalPackets = 0;
  std::vector<StreamingSourceReport> sources;
  std::vector<HeavyHitter> heavyHitters;
  HeavyHitterImpact heavyHitterImpact;
  telescope::Sessionizer::Stats sessionStats;
  /// Closed windows in time order. Empty for the one-shot reference;
  /// excluded from digest() so windowing cannot perturb equivalence.
  std::vector<StreamingWindowReport> windows;

  /// Order-sensitive FNV-1a over every capture-level field. Equal digests
  /// mean bitwise-identical results — the witness the spill-equivalence
  /// tests compare across budgets, window lengths and thread counts.
  [[nodiscard]] std::uint64_t digest() const;
};

class StreamingAnalyzer {
public:
  explicit StreamingAnalyzer(StreamingOptions opts);

  /// Offer the next packet of the canonical stream (time-ordered).
  void ingest(const net::Packet& p);

  /// Drain any kway_merge.hpp-style cursor (SegmentStore::Cursor, a
  /// KWayMerge over per-shard stores, ...).
  template <typename Cursor>
  void ingestAll(Cursor& c) {
    if (c.empty()) return;
    do {
      ingest(c.head());
    } while (c.advance());
  }

  /// Close the open window, flush the tracker and fold. Call once.
  [[nodiscard]] StreamingResult finish();

  [[nodiscard]] const StreamingOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t windowsClosed() const { return windowsClosed_; }

private:
  void closeWindow();

  StreamingOptions opts_;
  telescope::SessionTracker tracker_;
  std::vector<net::Packet> window_; // current window's packets only
  std::int64_t windowIdx_ = 0;
  bool haveWindow_ = false;
  std::vector<telescope::SessionSummary> summaries_;
  std::vector<StreamingWindowReport> windows_;
  std::uint64_t totalPackets_ = 0;
  std::uint64_t windowsClosed_ = 0;
};

/// The in-memory reference: sessionize the whole capture, build one
/// CaptureIndex, reuse the pipeline's heavy-hitter machinery, and report
/// the same capture-level fields the streaming fold produces. `packets`
/// must be in canonical order (a merged CaptureStore is).
[[nodiscard]] StreamingResult analyzeOneShot(
    std::span<const net::Packet> packets, const StreamingOptions& opts = {});

/// Fold a summary set (any order) into the capture-level result — the
/// common tail of StreamingAnalyzer::finish() and the building block the
/// property tests drive directly.
[[nodiscard]] StreamingResult foldSummaries(
    std::vector<telescope::SessionSummary> summaries,
    std::uint64_t totalPackets, telescope::Sessionizer::Stats stats,
    const StreamingOptions& opts);

} // namespace v6t::analysis
