// v6t::analysis — period detection by autocorrelation (§5.1).
//
// Periodic scanners are identified by binning their session start times
// into a regular series and searching the autocorrelation function for a
// dominant lag (Breitenbach et al. 2023 style). Sources with fewer than
// three sessions or no detectable peak remain non-periodic.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace v6t::analysis {

struct PeriodDetectorParams {
  sim::Duration binWidth = sim::hours(1);
  /// Minimum normalized autocorrelation at the candidate lag.
  double threshold = 0.3;
  /// A period must repeat at least this often inside the observation span.
  int minRepeats = 2;
  /// Tolerated relative deviation of inter-session gaps around the period.
  double gapTolerance = 0.3;
};

/// Normalized autocorrelation of a real series for lags 1..maxLag.
/// Returns an empty vector if the series is constant.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t maxLag);

/// Detect a stable period in a set of event (session-start) times.
/// Returns the period, or nullopt if none is detectable.
[[nodiscard]] std::optional<sim::Duration> detectPeriod(
    std::span<const sim::SimTime> events,
    const PeriodDetectorParams& params = {});

} // namespace v6t::analysis
