// v6t::analysis — scan-tool attribution (§5.4, Table 7).
//
// Replicates the paper's two-step method: (i) cluster payload byte
// representations with DBSCAN and match each cluster against public tool
// fingerprints, (ii) consult reverse DNS of the scan sources. Sessions
// with neither payload nor rDNS stay Unknown.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "analysis/parallel.hpp"
#include "net/asn.hpp"
#include "net/packet.hpp"
#include "net/tool_signatures.hpp"
#include "telescope/session.hpp"

namespace v6t::analysis {

struct FingerprintParams {
  /// Bytes of payload prefix used as the clustering feature.
  std::size_t featureBytes = 16;
  /// DBSCAN: mean per-byte distance threshold and density minimum.
  double epsilon = 0.15;
  std::size_t minPts = 2;
  /// Cap on distinct feature points clustered (random payloads inflate the
  /// point set; beyond the cap points are matched by signature only).
  std::size_t maxPoints = 4096;
};

struct ToolCount {
  std::uint64_t scanners = 0; // distinct sources
  std::uint64_t sessions = 0;
};

struct FingerprintResult {
  /// Tool label per session (parallel to the session span).
  std::vector<net::ScanTool> sessionTool;
  /// Sessions labelled Traceroute purely from their hop-limit pattern.
  std::uint64_t hopLimitAttributions = 0;
  /// Table 7 aggregation.
  std::map<net::ScanTool, ToolCount> byTool;
  /// Number of payload clusters DBSCAN found (diagnostics).
  int clusterCount = 0;
  std::uint64_t payloadPackets = 0;
  std::uint64_t payloadSessions = 0;
  std::uint64_t payloadSources = 0;
};

class CaptureIndex;

/// Fingerprint over a pre-built shared index: the payload memo (first
/// payload packet + payload packet count per session) replaces the two
/// payload scans the packet-span overload used to make. Results are
/// bitwise-identical to the packet-span overload.
///
/// `threads > 1` parallelizes the two O(heavy) inner loops without
/// changing any result bit: the DBSCAN neighborhood lists (each a pure
/// function of one point, consumed by the serial cluster expansion in
/// the same order the lazy serial scan would produce) and the hop-limit
/// traceroute check (per-session flags folded serially in session
/// order). `statsOut`, when non-null, accumulates the dispatch stats.
[[nodiscard]] FingerprintResult fingerprintSessions(
    const CaptureIndex& index, const net::RdnsRegistry* rdns = nullptr,
    const FingerprintParams& params = {}, unsigned threads = 1,
    const ScheduleParams& sched = {}, ParallelForStats* statsOut = nullptr);

/// Thin wrapper: builds a CaptureIndex over (packets, sessions) and
/// delegates to the index overload.
[[nodiscard]] FingerprintResult fingerprintSessions(
    std::span<const net::Packet> packets,
    std::span<const telescope::Session> sessions,
    const net::RdnsRegistry* rdns = nullptr,
    const FingerprintParams& params = {});

} // namespace v6t::analysis
