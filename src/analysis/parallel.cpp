#include "analysis/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>

#include "obs/trace.hpp"

namespace v6t::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Wall-domain trace timebase: microseconds since the first scheduler
/// activity of the process, shared across parallelForCosted invocations so
/// consecutive analysis stages land on one contiguous timeline.
std::int64_t traceMicros() {
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               t0)
      .count();
}

/// Record one executed task as a wall-domain SchedSlice on `worker`'s lane.
void traceSlice(obs::trace::Tracer* tracer, unsigned worker, std::size_t task,
                std::int64_t startUs) {
  tracer->recordWall({startUs, 0, task,
                      static_cast<std::uint64_t>(traceMicros() - startUs),
                      worker, obs::trace::EventKind::SchedSlice,
                      obs::trace::ClockDomain::Wall});
}

void traceSteal(obs::trace::Tracer* tracer, unsigned thief,
                std::size_t chunk) {
  tracer->recordWall({traceMicros(), 0, chunk, 0, thief,
                      obs::trace::EventKind::SchedSteal,
                      obs::trace::ClockDomain::Wall});
}

constexpr unsigned kMaxWorkers = 64;

/// One worker's share of the LPT assignment. The owner consumes from the
/// head (largest items first); thieves take a chunk off the tail (the
/// owner's smallest remaining items), so a steal moves the work least
/// likely to be reached soon. `remainingCost` is the victim-selection
/// signal: a relaxed read outside the lock, updated under it.
struct WorkerQueue {
  std::vector<std::size_t> tasks; // descending estimated cost
  std::size_t head = 0; // owner end
  std::size_t tail = 0; // one past the last unstolen task
  std::atomic<std::uint64_t> remainingCost{0};
  std::mutex m;
};

std::uint64_t costOf(std::span<const std::uint64_t> costs, std::size_t i) {
  return std::max<std::uint64_t>(costs[i], 1);
}

/// Greedy LPT assignment: walk items in canonical LPT order, giving each
/// to the currently least-loaded worker (ties -> lowest worker id).
std::vector<std::unique_ptr<WorkerQueue>> assignLpt(
    std::span<const std::uint64_t> costs, unsigned workers) {
  std::vector<std::unique_ptr<WorkerQueue>> queues(workers);
  for (auto& q : queues) q = std::make_unique<WorkerQueue>();
  std::vector<std::uint64_t> load(workers, 0);
  for (std::size_t item : lptOrder(costs)) {
    unsigned best = 0;
    for (unsigned w = 1; w < workers; ++w) {
      if (load[w] < load[best]) best = w;
    }
    queues[best]->tasks.push_back(item);
    load[best] += costOf(costs, item);
  }
  for (unsigned w = 0; w < workers; ++w) {
    queues[w]->tail = queues[w]->tasks.size();
    queues[w]->remainingCost.store(load[w], std::memory_order_relaxed);
  }
  return queues;
}

/// Take the next task from the worker's own deque head. Returns false if
/// drained (including by thieves).
bool popOwn(WorkerQueue& q, std::span<const std::uint64_t> costs,
            std::size_t& out) {
  const std::lock_guard<std::mutex> lock(q.m);
  if (q.head >= q.tail) return false;
  out = q.tasks[q.head++];
  q.remainingCost.fetch_sub(costOf(costs, out), std::memory_order_relaxed);
  return true;
}

/// Steal up to half the richest victim's remaining tail into `batch`.
/// Returns false only when no queue holds queued work any more.
bool stealChunk(std::span<const std::unique_ptr<WorkerQueue>> queues,
                std::span<const std::uint64_t> costs, unsigned self,
                std::vector<std::size_t>& batch) {
  for (;;) {
    unsigned victim = kMaxWorkers;
    std::uint64_t best = 0;
    for (unsigned w = 0; w < queues.size(); ++w) {
      if (w == self) continue;
      const std::uint64_t r =
          queues[w]->remainingCost.load(std::memory_order_relaxed);
      if (r > best) {
        best = r;
        victim = w;
      }
    }
    if (victim == kMaxWorkers) return false;
    WorkerQueue& q = *queues[victim];
    const std::lock_guard<std::mutex> lock(q.m);
    const std::size_t avail = q.tail - q.head;
    if (avail == 0) continue; // drained between scan and lock; rescan
    const std::size_t take = (avail + 1) / 2;
    std::uint64_t taken = 0;
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(q.tasks[--q.tail]);
      taken += costOf(costs, q.tasks[q.tail]);
    }
    q.remainingCost.fetch_sub(taken, std::memory_order_relaxed);
    return true;
  }
}

ParallelForStats inlineRun(
    std::size_t n, const std::function<void(unsigned, std::size_t)>& fn) {
  ParallelForStats stats;
  stats.items.assign(1, 0);
  stats.busySeconds.assign(1, 0.0);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) fn(0, i);
  stats.items[0] = n;
  stats.busySeconds[0] = secondsSince(t0);
  return stats;
}

} // namespace

double ParallelForStats::makespanSeconds() const {
  double m = 0.0;
  for (double s : busySeconds) m = std::max(m, s);
  return m;
}

double ParallelForStats::busyTotalSeconds() const {
  double t = 0.0;
  for (double s : busySeconds) t += s;
  return t;
}

void ParallelForStats::absorb(const ParallelForStats& other) {
  if (other.items.size() > items.size()) {
    items.resize(other.items.size(), 0);
    busySeconds.resize(other.busySeconds.size(), 0.0);
  }
  for (std::size_t w = 0; w < other.items.size(); ++w) {
    items[w] += other.items[w];
    busySeconds[w] += other.busySeconds[w];
  }
  steals += other.steals;
  splits += other.splits;
  taskCosts.insert(taskCosts.end(), other.taskCosts.begin(),
                   other.taskCosts.end());
}

std::vector<std::size_t> lptOrder(std::span<const std::uint64_t> costs) {
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // stable_sort keeps equal-cost items in index order — the canonical
  // tie-break the property tests pin.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  return order;
}

ParallelForStats parallelFor(
    std::size_t n, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn) {
  if (threads <= 1 || n <= 1) return inlineRun(n, fn);

  ParallelForStats stats;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(std::min<std::size_t>(threads, n), kMaxWorkers));
  stats.items.assign(workers, 0);
  stats.busySeconds.assign(workers, 0.0);
  // Chunked grabbing keeps cursor contention negligible while still
  // letting fast workers absorb a slow worker's tail.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 8));
  std::atomic<std::size_t> cursor{0};

  auto work = [&](unsigned worker) {
    const auto t0 = Clock::now();
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
      stats.items[worker] += end - begin;
    }
    stats.busySeconds[worker] = secondsSince(t0);
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  return stats;
}

ParallelForStats parallelForCosted(
    std::span<const std::uint64_t> costs, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn,
    bool virtualTime) {
  const std::size_t n = costs.size();
  const bool inline_ = n <= 1 || (threads <= 1 && !virtualTime);
  if (inline_) {
    ParallelForStats stats = inlineRun(n, fn);
    stats.taskCosts.assign(costs.begin(), costs.end());
    return stats;
  }

  ParallelForStats stats;
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::min<std::size_t>(std::max(threads, 1u), n), kMaxWorkers));
  stats.items.assign(workers, 0);
  stats.busySeconds.assign(workers, 0.0);
  stats.taskCosts.assign(costs.begin(), costs.end());

  std::vector<std::unique_ptr<WorkerQueue>> queues = assignLpt(costs, workers);

  if (!virtualTime) {
    obs::trace::Tracer* tracer = obs::trace::wallTracer();
    std::atomic<std::uint64_t> stealOps{0};
    auto work = [&](unsigned self) {
      const auto t0 = Clock::now();
      std::vector<std::size_t> batch;
      for (;;) {
        batch.clear();
        std::size_t own = 0;
        if (popOwn(*queues[self], costs, own)) {
          batch.push_back(own);
        } else if (stealChunk(queues, costs, self, batch)) {
          stealOps.fetch_add(1, std::memory_order_relaxed);
          if (tracer != nullptr) traceSteal(tracer, self, batch.size());
        } else {
          break;
        }
        if (tracer != nullptr) {
          for (std::size_t idx : batch) {
            const std::int64_t startUs = traceMicros();
            fn(self, idx);
            traceSlice(tracer, self, idx, startUs);
          }
        } else {
          for (std::size_t idx : batch) fn(self, idx);
        }
        stats.items[self] += batch.size();
      }
      stats.busySeconds[self] = secondsSince(t0);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0);
    for (std::thread& t : pool) t.join();
    stats.steals = stealOps.load(std::memory_order_relaxed);
    return stats;
  }

  // Virtual-time replay: every scheduling decision is made by the worker
  // whose virtual clock is lowest (ties -> lowest id), exactly the worker
  // that would next go idle on a real N-core host. Tasks execute on the
  // calling thread; each measured duration advances only its virtual
  // worker's clock, so busySeconds/makespan model the N-worker schedule
  // while the results are bit-for-bit the serial reference's.
  obs::trace::Tracer* tracer = obs::trace::wallTracer();
  std::vector<double> clock(workers, 0.0);
  std::vector<std::vector<std::size_t>> pending(workers); // stolen batches
  std::vector<bool> active(workers, true);
  std::size_t remaining = n;
  std::uint64_t stealOps = 0;
  while (remaining > 0) {
    unsigned self = kMaxWorkers;
    for (unsigned w = 0; w < workers; ++w) {
      if (!active[w]) continue;
      if (self == kMaxWorkers || clock[w] < clock[self]) self = w;
    }
    if (self == kMaxWorkers) break; // all exited; queued work impossible
    std::size_t task = 0;
    if (!pending[self].empty()) {
      task = pending[self].back();
      pending[self].pop_back();
    } else if (popOwn(*queues[self], costs, task)) {
      // own deque head
    } else if (stealChunk(queues, costs, self, pending[self])) {
      ++stealOps;
      if (tracer != nullptr) traceSteal(tracer, self, pending[self].size());
      task = pending[self].back();
      pending[self].pop_back();
    } else {
      active[self] = false; // a real worker would exit here
      continue;
    }
    const auto t0 = Clock::now();
    const std::int64_t startUs = tracer != nullptr ? traceMicros() : 0;
    fn(self, task);
    if (tracer != nullptr) traceSlice(tracer, self, task, startUs);
    clock[self] += secondsSince(t0);
    stats.items[self] += 1;
    --remaining;
  }
  stats.busySeconds = std::move(clock);
  stats.steals = stealOps;
  return stats;
}

} // namespace v6t::analysis
