#include "analysis/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace v6t::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

ParallelForStats parallelFor(
    std::size_t n, unsigned threads,
    const std::function<void(unsigned worker, std::size_t index)>& fn) {
  ParallelForStats stats;
  if (threads <= 1 || n <= 1) {
    stats.items.assign(1, 0);
    stats.busySeconds.assign(1, 0.0);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    stats.items[0] = n;
    stats.busySeconds[0] = secondsSince(t0);
    return stats;
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  stats.items.assign(workers, 0);
  stats.busySeconds.assign(workers, 0.0);
  // Chunked grabbing keeps cursor contention negligible while still
  // letting fast workers absorb a slow worker's tail.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 8));
  std::atomic<std::size_t> cursor{0};

  auto work = [&](unsigned worker) {
    const auto t0 = Clock::now();
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
      stats.items[worker] += end - begin;
    }
    stats.busySeconds[worker] = secondsSince(t0);
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  return stats;
}

} // namespace v6t::analysis
