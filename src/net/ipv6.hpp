// v6t::net — 128-bit IPv6 address value type.
//
// Parsing accepts every textual form of RFC 4291 §2.2 (full, compressed
// "::" form, embedded dotted-quad IPv4 tail); formatting produces the RFC
// 5952 canonical representation (lowercase, longest zero run compressed,
// leftmost on ties, single groups never compressed).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace v6t::net {

/// Unsigned 128-bit helper used for address arithmetic and offsets within
/// prefixes. GCC/Clang builtin; this library targets those compilers.
using u128 = unsigned __int128;

class Ipv6Address {
public:
  /// The unspecified address "::".
  constexpr Ipv6Address() = default;

  constexpr explicit Ipv6Address(const std::array<std::uint8_t, 16>& bytes)
      : b_(bytes) {}

  /// Build from the two 64-bit halves (network byte significance: `hi` holds
  /// bits 0..63, i.e. the routing prefix + subnet, `lo` the interface ID).
  constexpr Ipv6Address(std::uint64_t hi, std::uint64_t lo) {
    for (int i = 0; i < 8; ++i) {
      b_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b_[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
  }

  /// Parse any RFC 4291 textual form. Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);

  /// Parse or abort — for literals in tests/examples known to be valid.
  [[nodiscard]] static Ipv6Address mustParse(std::string_view text);

  /// RFC 5952 canonical text form.
  [[nodiscard]] std::string toString() const;

  /// Full 32-nibble hexadecimal form without separators (used by the
  /// target-pattern visualizations of Fig. 12/13).
  [[nodiscard]] std::string toHexString() const;

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes() const {
    return b_;
  }
  [[nodiscard]] constexpr std::uint8_t byte(std::size_t i) const {
    return b_[i];
  }

  /// Nibble 0 is the most significant (leftmost) hex digit; 31 the least.
  [[nodiscard]] constexpr std::uint8_t nibble(std::size_t i) const {
    const std::uint8_t byteValue = b_[i / 2];
    return (i % 2 == 0) ? static_cast<std::uint8_t>(byteValue >> 4)
                        : static_cast<std::uint8_t>(byteValue & 0x0f);
  }
  constexpr void setNibble(std::size_t i, std::uint8_t value) {
    std::uint8_t& byteRef = b_[i / 2];
    if (i % 2 == 0) {
      byteRef = static_cast<std::uint8_t>((byteRef & 0x0f) |
                                          ((value & 0x0f) << 4));
    } else {
      byteRef = static_cast<std::uint8_t>((byteRef & 0xf0) | (value & 0x0f));
    }
  }

  [[nodiscard]] constexpr std::uint64_t hi64() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v = (v << 8) | b_[static_cast<std::size_t>(i)];
    return v;
  }
  [[nodiscard]] constexpr std::uint64_t lo64() const {
    std::uint64_t v = 0;
    for (int i = 8; i < 16; ++i)
      v = (v << 8) | b_[static_cast<std::size_t>(i)];
    return v;
  }
  [[nodiscard]] constexpr u128 value() const {
    return (static_cast<u128>(hi64()) << 64) | lo64();
  }
  [[nodiscard]] static constexpr Ipv6Address fromValue(u128 v) {
    return Ipv6Address{static_cast<std::uint64_t>(v >> 64),
                       static_cast<std::uint64_t>(v)};
  }

  /// Extract bit `i` (0 = most significant).
  [[nodiscard]] constexpr bool bit(std::size_t i) const {
    return (b_[i / 8] >> (7 - i % 8)) & 1;
  }
  constexpr void setBit(std::size_t i, bool v) {
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - i % 8));
    if (v)
      b_[i / 8] |= mask;
    else
      b_[i / 8] &= static_cast<std::uint8_t>(~mask);
  }

  /// Address plus an unsigned offset (wraps modulo 2^128).
  [[nodiscard]] constexpr Ipv6Address plus(u128 offset) const {
    return fromValue(value() + offset);
  }

  /// Zero all bits at position >= prefixLen (the host part).
  [[nodiscard]] Ipv6Address maskedTo(unsigned prefixLen) const;

  constexpr auto operator<=>(const Ipv6Address&) const = default;

private:
  std::array<std::uint8_t, 16> b_{};
};

/// Gather the (hi64, lo64) lanes of an address run into two contiguous
/// u64 columns — the SoA transpose the columnar analysis kernels consume
/// (DESIGN.md §16). `hi` and `lo` must each hold `addrs.size()` slots.
void gatherLanes(std::span<const Ipv6Address> addrs,
                 std::span<std::uint64_t> hi, std::span<std::uint64_t> lo);

} // namespace v6t::net

template <>
struct std::hash<v6t::net::Ipv6Address> {
  std::size_t operator()(const v6t::net::Ipv6Address& a) const noexcept {
    // FNV-1a over the halves, then a strong final mix.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const std::uint64_t parts[2] = {a.hi64(), a.lo64()};
    for (std::uint64_t p : parts) {
      h ^= p;
      h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};
