// v6t::net — wire fingerprints of public IPv6 scan tools (§5.4, Table 7).
//
// These byte patterns model the payload fingerprints of the public tools
// the paper identifies. In reality each fingerprint comes from the tool's
// published source (Yarrp encodes instrumentation in the probe payload,
// Atlas probes carry measurement ids, classic traceroute fills a fixed
// pattern, …). Both the traffic generator and — independently — the
// payload classifier reference this table, exactly as a real scanner and a
// real analyst both derive the format from the same public code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace v6t::net {

enum class ScanTool : std::uint8_t {
  RipeAtlas,
  Yarrp6,
  Traceroute,
  Htrace6,
  SixSeeks,
  SixScan,
  CaidaArk,
  SixSense,
  Unknown, // no payload / unrecognized payload
};

inline constexpr std::size_t kScanToolCount = 9;

[[nodiscard]] constexpr std::string_view toString(ScanTool t) {
  switch (t) {
    case ScanTool::RipeAtlas: return "RIPEAtlasProbe";
    case ScanTool::Yarrp6: return "Yarrp6";
    case ScanTool::Traceroute: return "Traceroute";
    case ScanTool::Htrace6: return "Htrace6";
    case ScanTool::SixSeeks: return "6Seeks";
    case ScanTool::SixScan: return "6Scan";
    case ScanTool::CaidaArk: return "CAIDA Ark";
    case ScanTool::SixSense: return "6Sense";
    case ScanTool::Unknown: return "Unknown";
  }
  return "?";
}

/// Leading payload bytes that identify a tool.
struct ToolSignature {
  ScanTool tool;
  std::array<std::uint8_t, 4> magic;
  std::size_t magicLen;
  /// Reverse-DNS suffix associated with the tool's sources ("" if none).
  std::string_view rdnsSuffix;
};

inline constexpr std::array<ToolSignature, 8> kToolSignatures{{
    {ScanTool::RipeAtlas, {'R', 'A', 0x06, 0x01}, 4, ".probe.atlas.example"},
    {ScanTool::Yarrp6, {'y', 'r', 'p', '6'}, 4, ""},
    {ScanTool::Traceroute, {0x40, 0x41, 0x42, 0x43}, 4, ""},
    {ScanTool::Htrace6, {'H', 't', 'r', '6'}, 4, ""},
    {ScanTool::SixSeeks, {'6', 'S', 'K', 'S'}, 4, ""},
    {ScanTool::SixScan, {'6', 'S', 'C', 'N'}, 4, ""},
    {ScanTool::CaidaArk, {'a', 'r', 'k', 0x20}, 4, ".ark.caida.example"},
    {ScanTool::SixSense, {'6', 'S', 'N', 'S'}, 4, ".sixsense.example"},
}};

/// Match a payload against the signature table; Unknown if nothing fits.
[[nodiscard]] constexpr ScanTool matchToolSignature(
    std::span<const std::uint8_t> payload) {
  for (const ToolSignature& sig : kToolSignatures) {
    if (payload.size() < sig.magicLen) continue;
    bool match = true;
    for (std::size_t i = 0; i < sig.magicLen; ++i) {
      if (payload[i] != sig.magic[i]) {
        match = false;
        break;
      }
    }
    if (match) return sig.tool;
  }
  return ScanTool::Unknown;
}

} // namespace v6t::net
