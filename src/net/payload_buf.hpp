// v6t::net — inline probe payload storage.
//
// Every payload this model ever produces is tiny: tool signatures are at
// most 8 magic bytes plus a 4-byte trailer, and random/unattributable
// payloads are 12 bytes (scanner.cpp). Storing them in a heap-backed
// std::vector cost one malloc/free per packet on the hottest path in the
// system — once at emission, and again on every fabric->telescope copy.
// PayloadBuf keeps the bytes inline in the Packet itself: a fixed 16-byte
// buffer plus a length, trivially copyable, no allocation anywhere.
//
// The 16-byte capacity is a hard format invariant (docs/FORMATS.md): the
// v6tcap writer never emits more, the reader rejects longer records as
// malformed, and appends beyond capacity saturate (excess bytes are
// dropped) so the type is total — no UB, no throwing on the hot path.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <type_traits>

namespace v6t::net {

class PayloadBuf {
public:
  /// Hard capacity; also the v6tcap on-disk maximum payload length.
  static constexpr std::size_t kCapacity = 16;

  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  constexpr PayloadBuf() = default;
  constexpr PayloadBuf(std::initializer_list<std::uint8_t> init) {
    assign(init.begin(), init.end());
  }

  [[nodiscard]] constexpr std::size_t size() const { return len_; }
  [[nodiscard]] constexpr bool empty() const { return len_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() { return kCapacity; }

  [[nodiscard]] constexpr std::uint8_t* data() { return bytes_.data(); }
  [[nodiscard]] constexpr const std::uint8_t* data() const {
    return bytes_.data();
  }
  [[nodiscard]] constexpr iterator begin() { return bytes_.data(); }
  [[nodiscard]] constexpr iterator end() { return bytes_.data() + len_; }
  [[nodiscard]] constexpr const_iterator begin() const {
    return bytes_.data();
  }
  [[nodiscard]] constexpr const_iterator end() const {
    return bytes_.data() + len_;
  }

  [[nodiscard]] constexpr std::uint8_t& operator[](std::size_t i) {
    return bytes_[i];
  }
  [[nodiscard]] constexpr std::uint8_t operator[](std::size_t i) const {
    return bytes_[i];
  }

  /// Append one byte; saturates (the byte is dropped) at capacity.
  constexpr void push_back(std::uint8_t b) {
    if (len_ < kCapacity) bytes_[len_++] = b;
  }

  /// Shrink or grow (zero-filling) to `n`, clamped to capacity.
  constexpr void resize(std::size_t n) { resize(n, 0); }
  constexpr void resize(std::size_t n, std::uint8_t fill) {
    if (n > kCapacity) n = kCapacity;
    for (std::size_t i = len_; i < n; ++i) bytes_[i] = fill;
    len_ = static_cast<std::uint8_t>(n);
  }

  constexpr void clear() { len_ = 0; }

  /// Replace contents with [first, last); saturates at capacity.
  template <typename It>
    requires(!std::is_integral_v<It>) // (n, value) overload handles ints
  constexpr void assign(It first, It last) {
    len_ = 0;
    for (; first != last && len_ < kCapacity; ++first) {
      bytes_[len_++] = static_cast<std::uint8_t>(*first);
    }
  }
  constexpr void assign(std::size_t n, std::uint8_t b) {
    if (n > kCapacity) n = kCapacity;
    std::fill_n(bytes_.data(), n, b);
    len_ = static_cast<std::uint8_t>(n);
  }

  /// View over the live bytes — the shape the tool-signature matcher and
  /// the fingerprint feature extractor consume.
  [[nodiscard]] constexpr std::span<const std::uint8_t> bytes() const {
    return {bytes_.data(), len_};
  }
  constexpr operator std::span<const std::uint8_t>() const { return bytes(); }

  /// Equality over the live bytes only; stale bytes past size() never
  /// influence comparisons, digests, or serialization.
  [[nodiscard]] friend constexpr bool operator==(const PayloadBuf& a,
                                                 const PayloadBuf& b) {
    return a.len_ == b.len_ &&
           std::equal(a.bytes_.data(), a.bytes_.data() + a.len_,
                      b.bytes_.data());
  }

private:
  std::array<std::uint8_t, kCapacity> bytes_{};
  std::uint8_t len_ = 0;
};

static_assert(sizeof(PayloadBuf) == 17, "payload stays inline and compact");

} // namespace v6t::net
