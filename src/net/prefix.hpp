// v6t::net — IPv6 prefix (CIDR) value type.
//
// A Prefix is stored canonically: all bits past the prefix length are zero.
// The split/low-byte helpers implement exactly the operations the paper's
// BGP experiment performs on T1 (Fig. 2).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "net/ipv6.hpp"

namespace v6t::net {

class Prefix {
public:
  /// The default prefix is ::/0 (the full address space).
  constexpr Prefix() = default;

  /// Canonicalizes: host bits of `addr` beyond `len` are cleared.
  Prefix(const Ipv6Address& addr, unsigned len)
      : addr_(addr.maskedTo(len)), len_(static_cast<std::uint8_t>(len)) {}

  /// Parse "2001:db8::/32". Returns nullopt on malformed input or len > 128.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text);
  [[nodiscard]] static Prefix mustParse(std::string_view text);

  [[nodiscard]] std::string toString() const;

  [[nodiscard]] constexpr const Ipv6Address& address() const { return addr_; }
  [[nodiscard]] constexpr unsigned length() const { return len_; }

  /// Number of addresses in this prefix, as log2 (128 - len).
  [[nodiscard]] constexpr unsigned hostBits() const { return 128u - len_; }

  [[nodiscard]] bool contains(const Ipv6Address& a) const {
    return a.maskedTo(len_) == addr_;
  }
  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] bool covers(const Prefix& other) const {
    return other.len_ >= len_ && contains(other.addr_);
  }

  /// Split into the two more-specific prefixes of length len+1.
  /// Precondition: length() < 128.
  [[nodiscard]] std::pair<Prefix, Prefix> split() const;

  /// The k-th sub-prefix of length `newLen` (k counts from the network
  /// address upward). Precondition: newLen >= length(), newLen - length()
  /// <= 64 so that k fits a std::uint64_t.
  [[nodiscard]] Prefix subPrefix(std::uint64_t k, unsigned newLen) const;

  /// First address (network address) and last address of the range.
  [[nodiscard]] const Ipv6Address& firstAddress() const { return addr_; }
  [[nodiscard]] Ipv6Address lastAddress() const;

  /// Address at offset `off` from the network address (off interpreted
  /// within the host bits, modulo prefix size).
  [[nodiscard]] Ipv6Address addressAt(u128 off) const;

  /// The "low-byte" endpoint of the prefix: network address with last
  /// byte 1 (e.g. 2001:db8::1 for 2001:db8::/32) — the address the paper's
  /// split schedule avoids putting into the split child (§3.1).
  [[nodiscard]] Ipv6Address lowByteAddress() const {
    return addr_.plus(1);
  }

  constexpr auto operator<=>(const Prefix&) const = default;

private:
  Ipv6Address addr_{};
  std::uint8_t len_ = 0;
};

} // namespace v6t::net

template <>
struct std::hash<v6t::net::Prefix> {
  std::size_t operator()(const v6t::net::Prefix& p) const noexcept {
    return std::hash<v6t::net::Ipv6Address>{}(p.address()) ^
           (static_cast<std::size_t>(p.length()) * 0x9e3779b97f4a7c15ULL);
  }
};
