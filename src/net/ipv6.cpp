#include "net/ipv6.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/log.hpp"

namespace v6t::net {

namespace {

int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Parse a 16-bit hex group of 1-4 digits. Returns -1 on failure.
int parseGroup(std::string_view text) {
  if (text.empty() || text.size() > 4) return -1;
  int v = 0;
  for (char c : text) {
    const int d = hexDigit(c);
    if (d < 0) return -1;
    v = (v << 4) | d;
  }
  return v;
}

// Parse a dotted-quad IPv4 tail into 4 bytes. Strict: no leading zeros
// beyond a bare "0", each octet 0..255.
bool parseV4Tail(std::string_view text, std::uint8_t out[4]) {
  int octet = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return false;
    int v = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + (text[pos] - '0');
      ++digits;
      ++pos;
      if (digits > 3 || v > 255) return false;
    }
    if (digits == 0) return false;
    if (digits > 1 && text[pos - digits] == '0') return false;
    out[octet++] = static_cast<std::uint8_t>(v);
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return false;
      ++pos;
    }
  }
  return pos == text.size();
}

} // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.size() < 2) return std::nullopt;

  // Split on "::" if present (at most one occurrence is legal).
  const std::size_t gap = text.find("::");
  if (gap != std::string_view::npos &&
      text.find("::", gap + 1) != std::string_view::npos) {
    return std::nullopt;
  }

  auto splitGroups = [](std::string_view part,
                        std::vector<std::string_view>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      const std::size_t colon = part.find(':', start);
      if (colon == std::string_view::npos) {
        out.push_back(part.substr(start));
        return true;
      }
      if (colon == start) return false; // empty group (stray colon)
      out.push_back(part.substr(start, colon - start));
      start = colon + 1;
      if (start >= part.size()) return false; // trailing single colon
    }
  };

  std::vector<std::string_view> head;
  std::vector<std::string_view> tail;
  if (gap == std::string_view::npos) {
    if (!splitGroups(text, head)) return std::nullopt;
  } else {
    if (!splitGroups(text.substr(0, gap), head)) return std::nullopt;
    if (!splitGroups(text.substr(gap + 2), tail)) return std::nullopt;
  }

  // An embedded IPv4 address may only terminate the address.
  std::uint8_t v4[4];
  bool hasV4 = false;
  std::vector<std::string_view>& last =
      (gap == std::string_view::npos) ? head : tail;
  if (!last.empty() && last.back().find('.') != std::string_view::npos) {
    if (!parseV4Tail(last.back(), v4)) return std::nullopt;
    last.pop_back();
    hasV4 = true;
  }

  const std::size_t groupsNeeded = hasV4 ? 6 : 8;
  const std::size_t present = head.size() + tail.size();
  if (gap == std::string_view::npos) {
    if (present != groupsNeeded) return std::nullopt;
  } else {
    // "::" stands for at least one zero group.
    if (present + 1 > groupsNeeded) return std::nullopt;
  }

  std::array<std::uint8_t, 16> bytes{};
  std::size_t idx = 0;
  for (std::string_view g : head) {
    const int v = parseGroup(g);
    if (v < 0) return std::nullopt;
    bytes[idx++] = static_cast<std::uint8_t>(v >> 8);
    bytes[idx++] = static_cast<std::uint8_t>(v & 0xff);
  }
  // Zero fill for the "::".
  const std::size_t tailBytes = tail.size() * 2 + (hasV4 ? 4 : 0);
  idx = 16 - tailBytes;
  for (std::string_view g : tail) {
    const int v = parseGroup(g);
    if (v < 0) return std::nullopt;
    bytes[idx++] = static_cast<std::uint8_t>(v >> 8);
    bytes[idx++] = static_cast<std::uint8_t>(v & 0xff);
  }
  if (hasV4) {
    for (int i = 0; i < 4; ++i) bytes[12 + static_cast<std::size_t>(i)] = v4[i];
  }
  return Ipv6Address{bytes};
}

Ipv6Address Ipv6Address::mustParse(std::string_view text) {
  auto a = parse(text);
  if (!a) {
    obs::logError("net", "Ipv6Address::mustParse: bad literal",
                  {{"literal", text}});
    std::abort();
  }
  return *a;
}

std::string Ipv6Address::toString() const {
  // Collect the eight 16-bit groups.
  std::uint16_t groups[8];
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(
        (b_[static_cast<std::size_t>(2 * i)] << 8) |
        b_[static_cast<std::size_t>(2 * i + 1)]);
  }

  // RFC 5952 §4.2: compress the longest run of zero groups (length >= 2),
  // leftmost on ties.
  int bestStart = -1;
  int bestLen = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > bestLen) {
      bestStart = i;
      bestLen = j - i;
    }
    i = j;
  }
  if (bestLen < 2) bestStart = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (i == bestStart) {
      out += (i == 0) ? "::" : ":";
      i += bestLen - 1;
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    if (i != 7) out += ':';
  }
  if (bestStart >= 0 && bestStart + bestLen == 8 && out.back() != ':')
    out += ':';
  return out;
}

std::string Ipv6Address::toHexString() const {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < 32; ++i) out[i] = digits[nibble(i)];
  return out;
}

void gatherLanes(std::span<const Ipv6Address> addrs,
                 std::span<std::uint64_t> hi, std::span<std::uint64_t> lo) {
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    hi[i] = addrs[i].hi64();
    lo[i] = addrs[i].lo64();
  }
}

Ipv6Address Ipv6Address::maskedTo(unsigned prefixLen) const {
  if (prefixLen >= 128) return *this;
  const u128 mask =
      prefixLen == 0 ? static_cast<u128>(0)
                     : ~static_cast<u128>(0) << (128 - prefixLen);
  return fromValue(value() & mask);
}

} // namespace v6t::net
