// v6t::net — binary radix trie keyed by IPv6 prefixes.
//
// Backs the BGP RIB's longest-prefix match and the telescopes' "which of my
// prefixes did this packet land in" lookup. One node per bit of the deepest
// stored prefix along each path; fine for RIB-scale data (dozens to a few
// thousand prefixes).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.hpp"

namespace v6t::net {

template <typename T>
class PrefixTrie {
public:
  /// Insert or overwrite the value stored at `prefix`.
  /// Returns true if a new entry was created (false on overwrite).
  bool insert(const Prefix& prefix, T value) {
    Node* node = &root_;
    for (unsigned i = 0; i < prefix.length(); ++i) {
      auto& child = node->child[prefix.address().bit(i) ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the entry at exactly `prefix`. Returns true if one existed.
  /// (Nodes are not pruned; the trie is small and short-lived.)
  bool erase(const Prefix& prefix) {
    Node* node = findNode(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] const T* findExact(const Prefix& prefix) const {
    const Node* node = findNode(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }
  [[nodiscard]] T* findExact(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).findExact(prefix));
  }

  /// Longest-prefix match for an address; nullopt if nothing covers it.
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> longestMatch(
      const Ipv6Address& addr) const {
    const Node* node = &root_;
    std::optional<std::pair<Prefix, const T*>> best;
    unsigned depth = 0;
    while (true) {
      if (node->value.has_value()) {
        best = {Prefix{addr, depth}, &*node->value};
      }
      if (depth == 128) break;
      const Node* child = node->child[addr.bit(depth) ? 1 : 0].get();
      if (child == nullptr) break;
      node = child;
      ++depth;
    }
    return best;
  }

  /// All stored (prefix, value) pairs in lexicographic (trie) order.
  [[nodiscard]] std::vector<std::pair<Prefix, const T*>> entries() const {
    std::vector<std::pair<Prefix, const T*>> out;
    Ipv6Address key;
    collect(&root_, key, 0, out);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  const Node* findNode(const Prefix& prefix) const {
    const Node* node = &root_;
    for (unsigned i = 0; i < prefix.length(); ++i) {
      node = node->child[prefix.address().bit(i) ? 1 : 0].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }
  Node* findNode(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).findNode(prefix));
  }

  void collect(const Node* node, Ipv6Address& key, unsigned depth,
               std::vector<std::pair<Prefix, const T*>>& out) const {
    if (node->value.has_value()) {
      out.emplace_back(Prefix{key, depth}, &*node->value);
    }
    if (depth == 128) return;
    for (int b = 0; b < 2; ++b) {
      if (node->child[b]) {
        key.setBit(depth, b != 0);
        collect(node->child[b].get(), key, depth + 1, out);
        key.setBit(depth, false);
      }
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

} // namespace v6t::net
