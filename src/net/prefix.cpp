#include "net/prefix.hpp"

#include <cstdlib>

#include "obs/log.hpp"

namespace v6t::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view lenText = text.substr(slash + 1);
  if (lenText.empty() || lenText.size() > 3) return std::nullopt;
  unsigned len = 0;
  for (char c : lenText) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + static_cast<unsigned>(c - '0');
  }
  if (len > 128) return std::nullopt;
  return Prefix{*addr, len};
}

Prefix Prefix::mustParse(std::string_view text) {
  auto p = parse(text);
  if (!p) {
    obs::logError("net", "Prefix::mustParse: bad literal",
                  {{"literal", text}});
    std::abort();
  }
  return *p;
}

std::string Prefix::toString() const {
  return addr_.toString() + "/" + std::to_string(len_);
}

std::pair<Prefix, Prefix> Prefix::split() const {
  const unsigned childLen = len_ + 1u;
  Ipv6Address upper = addr_;
  upper.setBit(len_, true);
  return {Prefix{addr_, childLen}, Prefix{upper, childLen}};
}

Prefix Prefix::subPrefix(std::uint64_t k, unsigned newLen) const {
  const unsigned extra = newLen - len_;
  const u128 offset = static_cast<u128>(k) << (128u - newLen);
  (void)extra;
  return Prefix{addr_.plus(offset), newLen};
}

Ipv6Address Prefix::lastAddress() const {
  if (len_ == 0) return Ipv6Address::fromValue(~static_cast<u128>(0));
  const u128 hostMask = (len_ == 128)
                            ? static_cast<u128>(0)
                            : (~static_cast<u128>(0) >> len_);
  return Ipv6Address::fromValue(addr_.value() | hostMask);
}

Ipv6Address Prefix::addressAt(u128 off) const {
  if (len_ == 0) return Ipv6Address::fromValue(off);
  const u128 hostMask = (len_ == 128)
                            ? static_cast<u128>(0)
                            : (~static_cast<u128>(0) >> len_);
  return Ipv6Address::fromValue(addr_.value() | (off & hostMask));
}

} // namespace v6t::net
