#include "net/asn.hpp"

namespace v6t::net {

std::string_view toString(NetworkType t) {
  switch (t) {
    case NetworkType::Hosting: return "Hosting";
    case NetworkType::Isp: return "ISP";
    case NetworkType::Education: return "Education";
    case NetworkType::Business: return "Business";
    case NetworkType::Government: return "Government";
    case NetworkType::Unknown: return "Unknown";
  }
  return "Unknown";
}

void AsRegistry::add(AsInfo info) {
  byAsn_[info.asn.value()] = std::move(info);
}

const AsInfo* AsRegistry::find(Asn asn) const {
  const auto it = byAsn_.find(asn.value());
  return it == byAsn_.end() ? nullptr : &it->second;
}

NetworkType AsRegistry::typeOf(Asn asn) const {
  const AsInfo* info = find(asn);
  return info == nullptr ? NetworkType::Unknown : info->type;
}

bool AsRegistry::isResearch(Asn asn) const {
  const AsInfo* info = find(asn);
  return info != nullptr && info->research;
}

std::vector<Asn> AsRegistry::allAsns() const {
  std::vector<Asn> out;
  out.reserve(byAsn_.size());
  for (const auto& [value, info] : byAsn_) out.emplace_back(value);
  return out;
}

void RdnsRegistry::add(const Ipv6Address& addr, std::string name) {
  entries_[addr] = std::move(name);
}

std::optional<std::string_view> RdnsRegistry::lookup(
    const Ipv6Address& addr) const {
  const auto it = entries_.find(addr);
  if (it == entries_.end()) return std::nullopt;
  return std::string_view{it->second};
}

} // namespace v6t::net
