// v6t::net — autonomous-system numbers and origin metadata.
//
// The paper attributes scan sources to ASes and categorizes AS networks
// into types (Table 8: hosting, ISP, education, business, government,
// unknown) and research/non-research contexts. AsRegistry plays the role
// of the AS-metadata databases (PeeringDB / bgp.tools style) the authors
// consulted; RdnsRegistry stands in for reverse DNS.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv6.hpp"

namespace v6t::net {

/// Strong AS-number type; 0 is reserved and means "unattributed".
class Asn {
public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool unattributed() const { return value_ == 0; }
  constexpr auto operator<=>(const Asn&) const = default;

private:
  std::uint32_t value_ = 0;
};

/// Network-type categories of Table 8.
enum class NetworkType : std::uint8_t {
  Hosting,
  Isp,
  Education,
  Business,
  Government,
  Unknown,
};

[[nodiscard]] std::string_view toString(NetworkType t);

struct AsInfo {
  Asn asn;
  std::string name;
  NetworkType type = NetworkType::Unknown;
  std::string country; // ISO 3166-1 alpha-2
  bool research = false; // attributable to a research context (§7.2)
};

/// In-memory AS metadata database.
class AsRegistry {
public:
  /// Insert or overwrite metadata for an AS.
  void add(AsInfo info);

  [[nodiscard]] const AsInfo* find(Asn asn) const;

  /// NetworkType of an AS; Unknown when unattributed or unregistered.
  [[nodiscard]] NetworkType typeOf(Asn asn) const;
  [[nodiscard]] bool isResearch(Asn asn) const;

  [[nodiscard]] std::size_t size() const { return byAsn_.size(); }
  [[nodiscard]] std::vector<Asn> allAsns() const;

private:
  std::unordered_map<std::uint32_t, AsInfo> byAsn_;
};

/// Reverse-DNS database: address -> PTR name. The paper uses rDNS entries
/// both to attribute heavy hitters (e.g. the 6Sense campaign) and to label
/// payload clusters.
class RdnsRegistry {
public:
  void add(const Ipv6Address& addr, std::string name);
  [[nodiscard]] std::optional<std::string_view> lookup(
      const Ipv6Address& addr) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

private:
  std::unordered_map<Ipv6Address, std::string> entries_;
};

} // namespace v6t::net

template <>
struct std::hash<v6t::net::Asn> {
  std::size_t operator()(const v6t::net::Asn& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
