// v6t::net — capture serialization ("v6tcap" format).
//
// A compact binary container for Packet records so captures can be written
// to disk during a run and replayed through the analysis pipeline later —
// the role tcpdump/pcap files play in the paper's measurement workflow.
//
// Layout (all integers little-endian):
//   file   := magic:8 ("V6TCAP\x01\x00") record*
//   record := ts:i64 src:16 dst:16 proto:u8 sport:u16 dport:u16
//             icmpType:u8 icmpCode:u8 hopLimit:u8 srcAsn:u32
//             payloadLen:u16 payload:bytes
//
// payloadLen never exceeds PayloadBuf::kCapacity (16): probes carry tiny
// payloads and the in-memory representation is a fixed inline buffer. The
// reader treats longer lengths as a malformed record.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <vector>

#include "net/packet.hpp"

namespace v6t::net {

inline constexpr char kCaptureMagic[8] = {'V', '6', 'T', 'C',
                                          'A', 'P', 1,   0};

// --- record-level serialization ------------------------------------------
//
// Shared by the v6tcap container and the telescope's on-disk segment
// format ("v6tseg", docs/FORMATS.md): one packet record, optionally
// extended with the (originId, originSeq) canonical-merge key that v6tcap
// deliberately omits. Segments need the key on disk — it is what makes the
// spilled capture re-mergeable into the exact in-memory canonical order.

/// Upper bound on one encoded record: the base v6tcap fields (70 bytes at
/// full payload) plus originId:u32 + originSeq:u64 when extended.
inline constexpr std::size_t kMaxRecordBytes = 82;

/// Encode one record into `buf` (>= kMaxRecordBytes); returns the byte
/// count. With `withOrigin`, originId/originSeq are inserted after srcAsn.
std::size_t encodeRecord(unsigned char* buf, const Packet& p,
                         bool withOrigin);

/// Append one record to `out` (v6tcap layout, or the origin-extended
/// v6tseg layout).
void writeRecord(std::ostream& out, const Packet& p, bool withOrigin);

enum class RecordStatus : std::uint8_t {
  Ok,        ///< `p` holds the next record
  Eof,       ///< clean end: zero bytes available at a record boundary
  Malformed, ///< torn record, unknown protocol, or oversized payload
};

/// Read the next record from `in`. `withOrigin` must match how the stream
/// was written — the base layout leaves originId/originSeq zero.
RecordStatus readRecord(std::istream& in, Packet& p, bool withOrigin);

class CaptureWriter {
public:
  /// Writes the file header immediately. The stream must outlive the writer.
  explicit CaptureWriter(std::ostream& out);

  /// Append one record. Payload length is bounded by PayloadBuf::kCapacity.
  void write(const Packet& p);

  [[nodiscard]] std::uint64_t recordsWritten() const { return records_; }

private:
  std::ostream& out_;
  std::uint64_t records_ = 0;
};

class CaptureReader {
public:
  /// Validates the header; `ok()` is false on a foreign or truncated file.
  explicit CaptureReader(std::istream& in);

  [[nodiscard]] bool ok() const { return ok_; }

  /// Read the next record; nullopt at clean EOF. A torn final record also
  /// yields nullopt but flips ok() to false.
  [[nodiscard]] std::optional<Packet> next();

  /// Drain the remaining records.
  [[nodiscard]] std::vector<Packet> readAll();

private:
  std::istream& in_;
  bool ok_ = false;
};

} // namespace v6t::net
