// v6t::net — the capture record.
//
// A Packet is what a telescope records for one arriving probe: timestamp,
// addresses, transport protocol, ports / ICMPv6 type, hop limit, the origin
// AS of the source (annotated by the routing layer, as a real operator
// would derive it from BGP), and the raw payload bytes used for tool
// fingerprinting.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "net/asn.hpp"
#include "net/ipv6.hpp"
#include "net/payload_buf.hpp"
#include "sim/time.hpp"

namespace v6t::net {

enum class Protocol : std::uint8_t {
  Icmpv6 = 0,
  Tcp = 1,
  Udp = 2,
};

[[nodiscard]] constexpr std::string_view toString(Protocol p) {
  switch (p) {
    case Protocol::Icmpv6: return "ICMPv6";
    case Protocol::Tcp: return "TCP";
    case Protocol::Udp: return "UDP";
  }
  return "?";
}

/// ICMPv6 message types we model (RFC 4443).
inline constexpr std::uint8_t kIcmpEchoRequest = 128;
inline constexpr std::uint8_t kIcmpEchoReply = 129;

/// Well-known ports that appear in the paper's Table 4.
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortHttps = 443;
inline constexpr std::uint16_t kPortFtp = 21;
inline constexpr std::uint16_t kPortSsh = 22;
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortNtp = 123;
inline constexpr std::uint16_t kPortSnmp = 161;
inline constexpr std::uint16_t kPortIsakmp = 500;
inline constexpr std::uint16_t kPortHttpAlt = 8080;
/// Default UDP traceroute destination port range [33434, 33523].
inline constexpr std::uint16_t kTracerouteLo = 33434;
inline constexpr std::uint16_t kTracerouteHi = 33523;

[[nodiscard]] constexpr bool isTraceroutePort(std::uint16_t port) {
  return port >= kTracerouteLo && port <= kTracerouteHi;
}

struct Packet {
  sim::SimTime ts{};
  Ipv6Address src{};
  Ipv6Address dst{};
  Protocol proto = Protocol::Icmpv6;
  std::uint16_t srcPort = 0; // TCP/UDP only
  std::uint16_t dstPort = 0; // TCP/UDP only
  std::uint8_t icmpType = 0; // ICMPv6 only
  std::uint8_t icmpCode = 0; // ICMPv6 only
  std::uint8_t hopLimit = 64;
  Asn srcAsn{}; // routing-layer annotation; 0 if unattributed
  /// Merge metadata, not part of the wire format (CaptureWriter skips it):
  /// the emitting scanner's id and its per-scanner emission counter give
  /// every packet a unique (ts, originId, originSeq) key, which is the
  /// canonical capture order the sharded runner merges by.
  std::uint32_t originId = 0;
  std::uint64_t originSeq = 0;
  /// Inline, fixed-capacity payload (16 bytes max — a format invariant,
  /// see payload_buf.hpp). Keeps the whole Packet trivially copyable so
  /// the per-packet path never touches the heap.
  PayloadBuf payload;

  [[nodiscard]] bool hasPayload() const { return !payload.empty(); }
};

static_assert(std::is_trivially_copyable_v<Packet>,
              "the capture hot path relies on memcpy-able packets");

} // namespace v6t::net
