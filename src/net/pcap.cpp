#include "net/pcap.hpp"

#include <array>
#include <cstring>

namespace v6t::net {

namespace {

template <typename T>
std::size_t putLe(unsigned char* buf, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(
        (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
  }
  return sizeof(T);
}

template <typename T>
bool getLe(std::istream& in, T& value) {
  std::array<char, sizeof(T)> buf;
  in.read(buf.data(), buf.size());
  if (in.gcount() != static_cast<std::streamsize>(buf.size())) return false;
  std::uint64_t v = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) {
    v = (v << 8) | static_cast<std::uint8_t>(buf[i]);
  }
  value = static_cast<T>(v);
  return true;
}

} // namespace

std::size_t encodeRecord(unsigned char* buf, const Packet& p,
                         bool withOrigin) {
  std::size_t n = 0;
  n += putLe<std::int64_t>(buf + n, p.ts.millis());
  std::memcpy(buf + n, p.src.bytes().data(), 16);
  n += 16;
  std::memcpy(buf + n, p.dst.bytes().data(), 16);
  n += 16;
  n += putLe<std::uint8_t>(buf + n, static_cast<std::uint8_t>(p.proto));
  n += putLe<std::uint16_t>(buf + n, p.srcPort);
  n += putLe<std::uint16_t>(buf + n, p.dstPort);
  n += putLe<std::uint8_t>(buf + n, p.icmpType);
  n += putLe<std::uint8_t>(buf + n, p.icmpCode);
  n += putLe<std::uint8_t>(buf + n, p.hopLimit);
  n += putLe<std::uint32_t>(buf + n, p.srcAsn.value());
  if (withOrigin) {
    n += putLe<std::uint32_t>(buf + n, p.originId);
    n += putLe<std::uint64_t>(buf + n, p.originSeq);
  }
  const std::size_t len = p.payload.size(); // <= PayloadBuf::kCapacity
  n += putLe<std::uint16_t>(buf + n, static_cast<std::uint16_t>(len));
  if (len > 0) {
    std::memcpy(buf + n, p.payload.data(), len);
    n += len;
  }
  return n;
}

void writeRecord(std::ostream& out, const Packet& p, bool withOrigin) {
  unsigned char buf[kMaxRecordBytes];
  const std::size_t n = encodeRecord(buf, p, withOrigin);
  out.write(reinterpret_cast<const char*>(buf),
            static_cast<std::streamsize>(n));
}

RecordStatus readRecord(std::istream& in, Packet& p, bool withOrigin) {
  std::int64_t ts = 0;
  if (!getLe(in, ts)) return RecordStatus::Eof;
  p = Packet{};
  p.ts = sim::SimTime{ts};
  std::array<std::uint8_t, 16> addr{};
  auto readAddr = [&](Ipv6Address& out) {
    in.read(reinterpret_cast<char*>(addr.data()), 16);
    if (in.gcount() != 16) return false;
    out = Ipv6Address{addr};
    return true;
  };
  std::uint8_t proto = 0;
  std::uint32_t asn = 0;
  std::uint16_t payloadLen = 0;
  if (!readAddr(p.src) || !readAddr(p.dst) || !getLe(in, proto) ||
      !getLe(in, p.srcPort) || !getLe(in, p.dstPort) ||
      !getLe(in, p.icmpType) || !getLe(in, p.icmpCode) ||
      !getLe(in, p.hopLimit) || !getLe(in, asn)) {
    return RecordStatus::Malformed; // torn record
  }
  if (withOrigin &&
      (!getLe(in, p.originId) || !getLe(in, p.originSeq))) {
    return RecordStatus::Malformed;
  }
  if (!getLe(in, payloadLen)) return RecordStatus::Malformed;
  if (proto > 2) return RecordStatus::Malformed;
  p.proto = static_cast<Protocol>(proto);
  p.srcAsn = Asn{asn};
  if (payloadLen > PayloadBuf::kCapacity) {
    // Longer than any payload this model can emit: a foreign or corrupt
    // record, rejected like an unknown protocol.
    return RecordStatus::Malformed;
  }
  if (payloadLen > 0) {
    p.payload.resize(payloadLen);
    in.read(reinterpret_cast<char*>(p.payload.data()), payloadLen);
    if (in.gcount() != payloadLen) return RecordStatus::Malformed;
  }
  return RecordStatus::Ok;
}

CaptureWriter::CaptureWriter(std::ostream& out) : out_(out) {
  out_.write(kCaptureMagic, sizeof(kCaptureMagic));
}

void CaptureWriter::write(const Packet& p) {
  writeRecord(out_, p, /*withOrigin=*/false);
  ++records_;
}

CaptureReader::CaptureReader(std::istream& in) : in_(in) {
  char magic[8];
  in_.read(magic, sizeof(magic));
  ok_ = in_.gcount() == sizeof(magic) &&
        std::memcmp(magic, kCaptureMagic, sizeof(magic)) == 0;
}

std::optional<Packet> CaptureReader::next() {
  if (!ok_) return std::nullopt;
  Packet p;
  switch (readRecord(in_, p, /*withOrigin=*/false)) {
  case RecordStatus::Ok:
    return p;
  case RecordStatus::Eof:
    return std::nullopt; // clean EOF
  case RecordStatus::Malformed:
    ok_ = false;
    return std::nullopt;
  }
  return std::nullopt;
}

std::vector<Packet> CaptureReader::readAll() {
  std::vector<Packet> out;
  while (auto p = next()) out.push_back(std::move(*p));
  return out;
}

} // namespace v6t::net
