#include "net/pcap.hpp"

#include <array>
#include <cstring>

namespace v6t::net {

namespace {

template <typename T>
void putLe(std::ostream& out, T value) {
  std::array<char, sizeof(T)> buf;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) &
                               0xff);
  }
  out.write(buf.data(), buf.size());
}

template <typename T>
bool getLe(std::istream& in, T& value) {
  std::array<char, sizeof(T)> buf;
  in.read(buf.data(), buf.size());
  if (in.gcount() != static_cast<std::streamsize>(buf.size())) return false;
  std::uint64_t v = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) {
    v = (v << 8) | static_cast<std::uint8_t>(buf[i]);
  }
  value = static_cast<T>(v);
  return true;
}

} // namespace

CaptureWriter::CaptureWriter(std::ostream& out) : out_(out) {
  out_.write(kCaptureMagic, sizeof(kCaptureMagic));
}

void CaptureWriter::write(const Packet& p) {
  putLe<std::int64_t>(out_, p.ts.millis());
  out_.write(reinterpret_cast<const char*>(p.src.bytes().data()), 16);
  out_.write(reinterpret_cast<const char*>(p.dst.bytes().data()), 16);
  putLe<std::uint8_t>(out_, static_cast<std::uint8_t>(p.proto));
  putLe<std::uint16_t>(out_, p.srcPort);
  putLe<std::uint16_t>(out_, p.dstPort);
  putLe<std::uint8_t>(out_, p.icmpType);
  putLe<std::uint8_t>(out_, p.icmpCode);
  putLe<std::uint8_t>(out_, p.hopLimit);
  putLe<std::uint32_t>(out_, p.srcAsn.value());
  const std::size_t len = p.payload.size(); // <= PayloadBuf::kCapacity
  putLe<std::uint16_t>(out_, static_cast<std::uint16_t>(len));
  if (len > 0) {
    out_.write(reinterpret_cast<const char*>(p.payload.data()),
               static_cast<std::streamsize>(len));
  }
  ++records_;
}

CaptureReader::CaptureReader(std::istream& in) : in_(in) {
  char magic[8];
  in_.read(magic, sizeof(magic));
  ok_ = in_.gcount() == sizeof(magic) &&
        std::memcmp(magic, kCaptureMagic, sizeof(magic)) == 0;
}

std::optional<Packet> CaptureReader::next() {
  if (!ok_) return std::nullopt;
  std::int64_t ts = 0;
  if (!getLe(in_, ts)) return std::nullopt; // clean EOF
  Packet p;
  p.ts = sim::SimTime{ts};
  std::array<std::uint8_t, 16> addr{};
  auto readAddr = [&](Ipv6Address& out) {
    in_.read(reinterpret_cast<char*>(addr.data()), 16);
    if (in_.gcount() != 16) return false;
    out = Ipv6Address{addr};
    return true;
  };
  std::uint8_t proto = 0;
  std::uint32_t asn = 0;
  std::uint16_t payloadLen = 0;
  if (!readAddr(p.src) || !readAddr(p.dst) || !getLe(in_, proto) ||
      !getLe(in_, p.srcPort) || !getLe(in_, p.dstPort) ||
      !getLe(in_, p.icmpType) || !getLe(in_, p.icmpCode) ||
      !getLe(in_, p.hopLimit) || !getLe(in_, asn) || !getLe(in_, payloadLen)) {
    ok_ = false; // torn record
    return std::nullopt;
  }
  if (proto > 2) {
    ok_ = false;
    return std::nullopt;
  }
  p.proto = static_cast<Protocol>(proto);
  p.srcAsn = Asn{asn};
  if (payloadLen > PayloadBuf::kCapacity) {
    // Longer than any payload this model can emit: a foreign or corrupt
    // record, rejected like an unknown protocol.
    ok_ = false;
    return std::nullopt;
  }
  if (payloadLen > 0) {
    p.payload.resize(payloadLen);
    in_.read(reinterpret_cast<char*>(p.payload.data()), payloadLen);
    if (in_.gcount() != payloadLen) {
      ok_ = false;
      return std::nullopt;
    }
  }
  return p;
}

std::vector<Packet> CaptureReader::readAll() {
  std::vector<Packet> out;
  while (auto p = next()) out.push_back(std::move(*p));
  return out;
}

} // namespace v6t::net
