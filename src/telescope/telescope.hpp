// v6t::telescope — the four observation points (§3.1).
//
//   T1  BGP-controlled /32 (passive; prefixes change per the split schedule)
//   T2  partially productive /48 (traceable; productive /56 excluded from
//       capture; one DNS-named attractor address outside it)
//   T3  silent /48 inside a covering /29 (passive; never separately
//       announced)
//   T4  reactive /48 inside the same /29 (active; answers TCP from every
//       address)
//
// A Telescope owns address space and records every packet landing in it
// (minus exclusions). Active telescopes additionally report whether they
// responded, which the delivery fabric relays to the scanner so follow-up
// behavior can emerge.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/prefix.hpp"
#include "obs/trace.hpp"
#include "telescope/capture_store.hpp"

namespace v6t::telescope {

enum class Mode : std::uint8_t {
  Passive, // originates nothing, answers nothing
  Traceable, // contains author-controlled activity (T2)
  Active, // answers TCP connection attempts (T4)
};

[[nodiscard]] std::string_view toString(Mode m);

struct TelescopeConfig {
  std::string name;
  /// Address space owned by this telescope (capture filter).
  std::vector<net::Prefix> space;
  Mode mode = Mode::Passive;
  /// Sub-prefix whose traffic is excluded from the dataset (T2's productive
  /// /56, per §3.1).
  std::optional<net::Prefix> excludedSubnet;
  /// Single address with a public DNS name (T2's attractor).
  std::optional<net::Ipv6Address> dnsAttractor;
};

/// Outcome of handing a packet to a telescope.
struct DeliveryResult {
  bool captured = false; // recorded in the dataset
  bool responded = false; // an endpoint answered (active telescopes, TCP)
};

class Telescope {
public:
  explicit Telescope(TelescopeConfig config) : config_(std::move(config)) {}

  /// Does this telescope own the destination address?
  [[nodiscard]] bool owns(const net::Ipv6Address& dst) const;

  /// Record the packet if it belongs here and is not excluded.
  DeliveryResult deliver(const net::Packet& p);

  [[nodiscard]] const TelescopeConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const CaptureStore& capture() const { return store_; }
  [[nodiscard]] CaptureStore& capture() { return store_; }

  /// Packets that landed in the excluded subnet (counted, not stored).
  [[nodiscard]] std::uint64_t excludedPackets() const { return excluded_; }

  /// Cumulative packets captured over the telescope's lifetime. Unlike
  /// capture().packetCount() this survives epoch-boundary drains of the
  /// store in spill mode — the monotone total the delta-sampler needs.
  [[nodiscard]] std::uint64_t capturedPackets() const { return captured_; }

  /// Attach the owning shard's flight recorder; `entity` is the trace
  /// thread id this telescope's captures render under (distinct from
  /// scanner ids). Delivery is synchronous, so the tracer's context slot
  /// still holds the sending session's causal link when deliver() runs.
  void bindTrace(obs::trace::Tracer* tracer, std::uint32_t entity) {
    tracer_ = tracer;
    traceEntity_ = entity;
  }

private:
  TelescopeConfig config_;
  CaptureStore store_;
  std::uint64_t excluded_ = 0;
  std::uint64_t captured_ = 0;
  obs::trace::Tracer* tracer_ = nullptr;
  std::uint32_t traceEntity_ = 0;
};

} // namespace v6t::telescope
