// v6t::telescope — the delivery fabric.
//
// Stand-in for the Internet's data plane between scanners and telescopes:
// a packet reaches a telescope only if the BGP RIB holds a covering route
// for its destination at send time. Routed packets that land in covered
// but unowned space (e.g. the rest of T3/T4's covering /29) disappear into
// the void, exactly like traffic to a borrowed prefix's silent remainder.
//
// The fabric also attributes the origin AS of each source address from a
// registry of source routes — the public routing data a real telescope
// operator would consult — and annotates it on the captured packet.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bgp/rib.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "sim/engine.hpp"
#include "telescope/telescope.hpp"

namespace v6t::telescope {

/// Decision hook on the packet path, installed by the fault-injection
/// layer (src/fault). The fabric consults it once per packet before
/// routing (loss / duplication / payload truncation) and once per
/// delivery (scheduled capture outages). No tap installed = the identity
/// behavior, bit for bit. Implementations must be deterministic functions
/// of the packet (and the tap's own configuration) — never of arrival
/// order — or sharded runs lose their equivalence guarantee.
class PacketTap {
public:
  virtual ~PacketTap() = default;

  struct Verdict {
    bool drop = false; // packet vanishes before routing
    bool duplicate = false; // owning telescope records it twice
  };

  /// Called after timestamping and source-AS annotation, before routing.
  /// May mutate the packet (payload truncation).
  virtual Verdict onSend(net::Packet& p) = 0;

  /// False = the owning telescope (by attach index) is inside a scheduled
  /// capture outage and records nothing.
  virtual bool onDeliver(std::size_t telescopeIdx, const net::Packet& p) = 0;
};

class DeliveryFabric {
public:
  DeliveryFabric(sim::Engine& engine, const bgp::Rib& rib)
      : engine_(engine), rib_(rib) {}

  /// Attach a telescope; it will receive packets destined to its space.
  /// Telescopes must outlive the fabric.
  void attach(Telescope& t) { telescopes_.push_back(&t); }

  /// Record that `prefix` is originated by `asn` — the source-side routing
  /// information used for AS attribution of captured packets.
  void registerSourceRoute(const net::Prefix& prefix, net::Asn asn) {
    sourceRoutes_.insert(prefix, asn);
  }

  /// Inject a packet. Timestamps it with the current simulated time,
  /// annotates the source AS, routes it. Returns what happened (captured /
  /// responded) so reactive scanners can adapt.
  DeliveryResult send(net::Packet p);

  /// Is the destination routable right now? (Scanners cannot ask this —
  /// they only see the BGP feed — but tests and stats can.)
  [[nodiscard]] bool routable(const net::Ipv6Address& dst) const {
    return rib_.isRoutable(dst);
  }

  [[nodiscard]] std::uint64_t sentPackets() const { return sent_; }
  [[nodiscard]] std::uint64_t droppedNoRoute() const { return noRoute_; }
  [[nodiscard]] std::uint64_t deliveredToVoid() const { return toVoid_; }

  /// Install (or clear, with nullptr) the fault tap. The tap must outlive
  /// the fabric. Without a tap the packet path is exactly the historical
  /// one — zero-fault runs stay bitwise-identical.
  void setTap(PacketTap* tap) { tap_ = tap; }
  [[nodiscard]] PacketTap* tap() const { return tap_; }

  /// Which slice of the population feeds this fabric. The sharded runner
  /// replicates one fabric per worker and tags it so drop/void counters can
  /// be attributed per shard; the default (0 of 1) is the serial world.
  void setShard(unsigned shardId, unsigned shardCount) {
    shardId_ = shardId;
    shardCount_ = shardCount;
  }
  [[nodiscard]] unsigned shardId() const { return shardId_; }
  [[nodiscard]] unsigned shardCount() const { return shardCount_; }

private:
  sim::Engine& engine_;
  const bgp::Rib& rib_;
  std::vector<Telescope*> telescopes_;
  net::PrefixTrie<net::Asn> sourceRoutes_;
  PacketTap* tap_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t noRoute_ = 0;
  std::uint64_t toVoid_ = 0;
  unsigned shardId_ = 0;
  unsigned shardCount_ = 1;
};

} // namespace v6t::telescope
