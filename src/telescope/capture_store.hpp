// v6t::telescope — per-telescope packet archive.
//
// Append-only, time-ordered capture with incrementally maintained summary
// statistics and hourly/daily/weekly time-series buckets. This is the only
// thing the analysis pipeline ever reads — the strict generator/estimator
// boundary of DESIGN.md §5.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "telescope/flat_hash_set.hpp"

namespace v6t::telescope {

class CaptureStore {
public:
  /// First-append reservation size (packets); see append().
  static constexpr std::size_t kAppendChunk = 1024;

  /// Append a packet. Precondition: p.ts >= ts of the previous append (the
  /// simulation delivers in time order).
  void append(net::Packet p);

  /// Pre-size the packet buffer and the distinct-source/destination hash
  /// sets for an expected capture volume; purely a performance hint.
  void reserve(std::size_t expectedPackets);

  [[nodiscard]] const std::vector<net::Packet>& packets() const {
    return packets_;
  }
  [[nodiscard]] std::uint64_t packetCount() const { return packets_.size(); }

  /// Distinct /128 source addresses seen so far.
  [[nodiscard]] std::size_t distinctSources128() const {
    return sources128_.size();
  }
  /// Distinct /64 source networks.
  [[nodiscard]] std::size_t distinctSources64() const {
    return sources64_.size();
  }
  [[nodiscard]] std::size_t distinctAsns() const { return asns_.size(); }
  [[nodiscard]] std::size_t distinctDestinations() const {
    return destinations_.size();
  }

  /// Packets per time bucket (bucket index -> count). Buckets without
  /// traffic are absent.
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& hourlyCounts()
      const {
    return hourly_;
  }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& dailyCounts()
      const {
    return daily_;
  }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& weeklyCounts()
      const {
    return weekly_;
  }

  [[nodiscard]] std::uint64_t packetsPerProtocol(net::Protocol p) const {
    return perProtocol_[static_cast<std::size_t>(p)];
  }

  /// Replace this store's contents with the union of `shards`, reordered
  /// into canonical capture order: ascending (ts, originId, originSeq) — a
  /// unique key, since a scanner's emission counter never repeats. Applied
  /// even to a single source store: within one engine, equal-timestamp
  /// packets sit in event-scheduling order, which depends on how scanners
  /// interleave, so canonicalization is what makes the merged capture
  /// identical for every shard count. Stats are rebuilt.
  ///
  /// Implementation: shards are time-ordered already, so each shard only
  /// needs its equal-timestamp runs sorted by (originId, originSeq) before
  /// an O(N log k) k-way merge — not the O(N log N) full re-sort. The
  /// unique key makes the merged order identical to what sorting the
  /// concatenation would produce (the reference the equivalence tests
  /// check against).
  void mergeFrom(std::span<const CaptureStore* const> shards);

  /// Order-sensitive FNV-1a hash over every stored field of every packet.
  /// Two stores with equal digests hold bitwise-identical captures — the
  /// equality the determinism-equivalence tests assert.
  [[nodiscard]] std::uint64_t digest() const;

  /// Serialize all records in v6tcap format.
  void writeTo(std::ostream& out) const;

  /// Restore from a v6tcap stream (replaces current contents). Returns the
  /// number of records read; stats are rebuilt.
  std::uint64_t readFrom(std::istream& in);

  void clear();

private:
  void account(const net::Packet& p);

  /// One time-series bucket memo: appends arrive in time order, so nearly
  /// every packet lands in the same (hour, day, week) buckets as its
  /// predecessor — three cached node pointers turn three map descents per
  /// packet into three integer compares. std::map nodes are pointer-stable,
  /// so the memo survives unrelated inserts.
  struct BucketMemo {
    std::int64_t hour = -1;
    std::int64_t day = -1;
    std::int64_t week = -1;
    std::uint64_t* hourCount = nullptr;
    std::uint64_t* dayCount = nullptr;
    std::uint64_t* weekCount = nullptr;
  };

  std::vector<net::Packet> packets_;
  FlatHashSet<net::Ipv6Address> sources128_;
  FlatHashSet<net::Ipv6Address> sources64_; // masked to /64
  FlatHashSet<net::Ipv6Address> destinations_;
  FlatHashSet<net::Asn> asns_;
  std::map<std::int64_t, std::uint64_t> hourly_;
  std::map<std::int64_t, std::uint64_t> daily_;
  std::map<std::int64_t, std::uint64_t> weekly_;
  BucketMemo memo_;
  std::uint64_t perProtocol_[3] = {0, 0, 0};
};

} // namespace v6t::telescope
