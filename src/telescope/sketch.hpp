// v6t::telescope — streaming cardinality sketches for live telescopes.
//
// The experiment keeps every packet in memory, but a production telescope
// watching a busy prefix cannot: distinct-source counting over months must
// be memory-bounded. HyperLogLog gives cardinality estimates within a few
// percent using kilobytes — enough for the live dashboards an operator
// runs next to the capture (the offline analysis still uses exact counts).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "net/ipv6.hpp"

namespace v6t::telescope {

/// HyperLogLog with 2^P registers (P=12 => 4096 registers, ~1.6% error).
template <unsigned P = 12>
class HyperLogLog {
  static_assert(P >= 4 && P <= 18);

public:
  static constexpr std::size_t kRegisters = 1u << P;

  void add(const net::Ipv6Address& addr) { addHash(hash(addr)); }

  void addHash(std::uint64_t h) {
    const std::uint32_t index =
        static_cast<std::uint32_t>(h >> (64 - P));
    const std::uint64_t rest = h << P;
    // Rank: position of the leftmost 1-bit in the remaining bits (1-based);
    // all-zero rest gets the maximum rank.
    const std::uint8_t rank =
        rest == 0 ? static_cast<std::uint8_t>(64 - P + 1)
                  : static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[index]) registers_[index] = rank;
  }

  /// Cardinality estimate with the standard small-range correction.
  [[nodiscard]] double estimate() const {
    const double m = static_cast<double>(kRegisters);
    double sum = 0.0;
    std::size_t zeros = 0;
    for (std::uint8_t r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double estimate = alpha * m * m / sum;
    if (estimate <= 2.5 * m && zeros != 0) {
      // Linear counting for small cardinalities.
      estimate = m * std::log(m / static_cast<double>(zeros));
    }
    return estimate;
  }

  /// Merge another sketch (union of the underlying sets).
  void merge(const HyperLogLog& other) {
    for (std::size_t i = 0; i < kRegisters; ++i) {
      if (other.registers_[i] > registers_[i]) {
        registers_[i] = other.registers_[i];
      }
    }
  }

  void clear() { registers_.fill(0); }

  /// Memory footprint in bytes.
  [[nodiscard]] static constexpr std::size_t sizeBytes() {
    return kRegisters;
  }

private:
  static std::uint64_t hash(const net::Ipv6Address& addr) {
    // Two rounds of a 128->64 mix (murmur-style finalizers on both halves).
    std::uint64_t h = addr.hi64() * 0x9e3779b97f4a7c15ULL;
    h ^= addr.lo64() + 0x517cc1b727220a95ULL + (h << 6) + (h >> 2);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  std::array<std::uint8_t, kRegisters> registers_{};
};

/// Memory-bounded live counters a telescope daemon would export: packets
/// per protocol plus sketched distinct sources at /128 and /64.
class LiveStats {
public:
  void observe(const net::Packet& p) {
    ++packets_[static_cast<std::size_t>(p.proto)];
    sources128_.add(p.src);
    sources64_.add(p.src.maskedTo(64));
  }

  [[nodiscard]] std::uint64_t packets(net::Protocol proto) const {
    return packets_[static_cast<std::size_t>(proto)];
  }
  [[nodiscard]] std::uint64_t totalPackets() const {
    return packets_[0] + packets_[1] + packets_[2];
  }
  [[nodiscard]] double estimatedSources128() const {
    return sources128_.estimate();
  }
  [[nodiscard]] double estimatedSources64() const {
    return sources64_.estimate();
  }

private:
  std::uint64_t packets_[3] = {0, 0, 0};
  HyperLogLog<12> sources128_;
  HyperLogLog<12> sources64_;
};

} // namespace v6t::telescope
