#include "telescope/capture_store.hpp"

#include <algorithm>

#include "telescope/digest.hpp"
#include "telescope/kway_merge.hpp"

namespace v6t::telescope {

void CaptureStore::mergeFrom(std::span<const CaptureStore* const> shards) {
  // Each shard is already time-ordered (append precondition), but packets
  // at one instant sit in that shard's event-scheduling order. Sorting
  // each equal-ts run by (originId, originSeq) makes every shard
  // canonical-key-sorted — a near-no-op pass over mostly length-1 runs —
  // after which a k-way merge produces the canonical order directly,
  // instead of the old concatenate-and-O(N log N)-re-sort. The run sort
  // and the cursor heap are the shared kway_merge.hpp machinery, so this
  // path is definitionally order-identical to the out-of-core
  // SegmentStore cursor and compaction paths.
  std::size_t total = 0;
  std::size_t distinct128 = 0;
  std::size_t distinct64 = 0;
  std::size_t distinctDst = 0;
  std::size_t distinctAsn = 0;
  for (const CaptureStore* s : shards) {
    total += s->packets().size();
    distinct128 += s->distinctSources128();
    distinct64 += s->distinctSources64();
    distinctDst += s->distinctDestinations();
    distinctAsn += s->distinctAsns();
  }

  struct ShardCursor {
    const std::vector<net::Packet>* packets;
    std::vector<std::uint32_t> order;
    std::size_t pos = 0;
    [[nodiscard]] bool empty() const { return order.empty(); }
    [[nodiscard]] const net::Packet& head() const {
      return (*packets)[order[pos]];
    }
    bool advance() { return ++pos < order.size(); }
  };
  std::vector<ShardCursor> cursors;
  cursors.reserve(shards.size());
  for (const CaptureStore* s : shards) {
    cursors.push_back(
        ShardCursor{&s->packets(), canonicalOrderOf(s->packets())});
  }

  std::vector<net::Packet> merged;
  merged.reserve(total);
  for (KWayMerge<ShardCursor> merge{std::move(cursors)}; !merge.done();
       merge.pop()) {
    merged.push_back(merge.head());
  }

  // Stats rebuild in one pass over the merged capture. Reserving the
  // summed per-shard distinct counts (an upper bound on the union) keeps
  // the hash sets from rehashing their way up from empty.
  clear();
  packets_ = std::move(merged);
  sources128_.reserve(distinct128);
  sources64_.reserve(distinct64);
  destinations_.reserve(distinctDst);
  asns_.reserve(distinctAsn);
  for (const net::Packet& p : packets_) account(p);
}

std::uint64_t CaptureStore::digest() const {
  std::uint64_t h = kFnvBasis;
  for (const net::Packet& p : packets_) fnv1aPacket(h, p);
  return h;
}

void CaptureStore::reserve(std::size_t expectedPackets) {
  packets_.reserve(expectedPackets);
  // Distinct sources are a small fraction of packets (every scanner sends
  // many probes); an eighth is a generous upper-bound heuristic that
  // avoids both rehash churn and gross over-allocation.
  const std::size_t distinct = expectedPackets / 8 + 64;
  sources128_.reserve(distinct);
  sources64_.reserve(distinct);
  destinations_.reserve(distinct);
  asns_.reserve(distinct / 4 + 16);
}

void CaptureStore::append(net::Packet p) {
  // First contact: jump straight to a working-set-sized footprint instead
  // of doubling up from 1 (and rehashing the sets from 13 buckets) while
  // the capture is hot.
  if (packets_.empty() && packets_.capacity() == 0) reserve(kAppendChunk);
  account(p);
  packets_.push_back(p); // trivially copyable; no move advantage
}

void CaptureStore::account(const net::Packet& p) {
  sources128_.insert(p.src);
  sources64_.insert(p.src.maskedTo(64));
  destinations_.insert(p.dst);
  if (!p.srcAsn.unattributed()) asns_.insert(p.srcAsn);
  const std::int64_t hour = p.ts.hourIndex();
  if (hour != memo_.hour) {
    memo_.hour = hour;
    memo_.hourCount = &hourly_[hour];
    const std::int64_t day = p.ts.dayIndex();
    if (day != memo_.day) {
      memo_.day = day;
      memo_.dayCount = &daily_[day];
      const std::int64_t week = p.ts.weekIndex();
      if (week != memo_.week) {
        memo_.week = week;
        memo_.weekCount = &weekly_[week];
      }
    }
  }
  ++*memo_.hourCount;
  ++*memo_.dayCount;
  ++*memo_.weekCount;
  ++perProtocol_[static_cast<std::size_t>(p.proto)];
}

void CaptureStore::writeTo(std::ostream& out) const {
  net::CaptureWriter writer{out};
  for (const net::Packet& p : packets_) writer.write(p);
}

std::uint64_t CaptureStore::readFrom(std::istream& in) {
  clear();
  net::CaptureReader reader{in};
  while (auto p = reader.next()) append(std::move(*p));
  return packets_.size();
}

void CaptureStore::clear() {
  packets_.clear();
  sources128_.clear();
  sources64_.clear();
  destinations_.clear();
  asns_.clear();
  hourly_.clear();
  daily_.clear();
  weekly_.clear();
  memo_ = BucketMemo{};
  perProtocol_[0] = perProtocol_[1] = perProtocol_[2] = 0;
}

} // namespace v6t::telescope
