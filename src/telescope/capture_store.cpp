#include "telescope/capture_store.hpp"

namespace v6t::telescope {

void CaptureStore::append(net::Packet p) {
  account(p);
  packets_.push_back(std::move(p));
}

void CaptureStore::account(const net::Packet& p) {
  sources128_.insert(p.src);
  sources64_.insert(p.src.maskedTo(64));
  destinations_.insert(p.dst);
  if (!p.srcAsn.unattributed()) asns_.insert(p.srcAsn);
  ++hourly_[p.ts.hourIndex()];
  ++daily_[p.ts.dayIndex()];
  ++weekly_[p.ts.weekIndex()];
  ++perProtocol_[static_cast<std::size_t>(p.proto)];
}

void CaptureStore::writeTo(std::ostream& out) const {
  net::CaptureWriter writer{out};
  for (const net::Packet& p : packets_) writer.write(p);
}

std::uint64_t CaptureStore::readFrom(std::istream& in) {
  clear();
  net::CaptureReader reader{in};
  while (auto p = reader.next()) append(std::move(*p));
  return packets_.size();
}

void CaptureStore::clear() {
  packets_.clear();
  sources128_.clear();
  sources64_.clear();
  destinations_.clear();
  asns_.clear();
  hourly_.clear();
  daily_.clear();
  weekly_.clear();
  perProtocol_[0] = perProtocol_[1] = perProtocol_[2] = 0;
}

} // namespace v6t::telescope
