#include "telescope/capture_store.hpp"

#include <algorithm>
#include <tuple>

namespace v6t::telescope {

namespace {

[[nodiscard]] auto canonicalKey(const net::Packet& p) {
  return std::make_tuple(p.ts, p.originId, p.originSeq);
}

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

} // namespace

void CaptureStore::mergeFrom(std::span<const CaptureStore* const> shards) {
  std::vector<net::Packet> merged;
  std::size_t total = 0;
  for (const CaptureStore* s : shards) total += s->packets().size();
  merged.reserve(total);
  for (const CaptureStore* s : shards) {
    merged.insert(merged.end(), s->packets().begin(), s->packets().end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const net::Packet& a, const net::Packet& b) {
              return canonicalKey(a) < canonicalKey(b);
            });
  clear();
  for (net::Packet& p : merged) append(std::move(p));
}

std::uint64_t CaptureStore::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const net::Packet& p : packets_) {
    fnv1a(h, static_cast<std::uint64_t>(p.ts.millis()));
    fnv1a(h, p.src.hi64());
    fnv1a(h, p.src.lo64());
    fnv1a(h, p.dst.hi64());
    fnv1a(h, p.dst.lo64());
    fnv1a(h, static_cast<std::uint64_t>(p.proto));
    fnv1a(h, (static_cast<std::uint64_t>(p.srcPort) << 32) | p.dstPort);
    fnv1a(h, (static_cast<std::uint64_t>(p.icmpType) << 16) |
                 (static_cast<std::uint64_t>(p.icmpCode) << 8) | p.hopLimit);
    fnv1a(h, p.srcAsn.value());
    fnv1a(h, (static_cast<std::uint64_t>(p.originId) << 32) ^ p.originSeq);
    fnv1a(h, p.payload.size());
    for (std::uint8_t b : p.payload) fnv1a(h, b);
  }
  return h;
}

void CaptureStore::append(net::Packet p) {
  account(p);
  packets_.push_back(std::move(p));
}

void CaptureStore::account(const net::Packet& p) {
  sources128_.insert(p.src);
  sources64_.insert(p.src.maskedTo(64));
  destinations_.insert(p.dst);
  if (!p.srcAsn.unattributed()) asns_.insert(p.srcAsn);
  ++hourly_[p.ts.hourIndex()];
  ++daily_[p.ts.dayIndex()];
  ++weekly_[p.ts.weekIndex()];
  ++perProtocol_[static_cast<std::size_t>(p.proto)];
}

void CaptureStore::writeTo(std::ostream& out) const {
  net::CaptureWriter writer{out};
  for (const net::Packet& p : packets_) writer.write(p);
}

std::uint64_t CaptureStore::readFrom(std::istream& in) {
  clear();
  net::CaptureReader reader{in};
  while (auto p = reader.next()) append(std::move(*p));
  return packets_.size();
}

void CaptureStore::clear() {
  packets_.clear();
  sources128_.clear();
  sources64_.clear();
  destinations_.clear();
  asns_.clear();
  hourly_.clear();
  daily_.clear();
  weekly_.clear();
  perProtocol_[0] = perProtocol_[1] = perProtocol_[2] = 0;
}

} // namespace v6t::telescope
