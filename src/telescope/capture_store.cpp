#include "telescope/capture_store.hpp"

#include <algorithm>
#include <tuple>

namespace v6t::telescope {

namespace {

[[nodiscard]] auto canonicalKey(const net::Packet& p) {
  return std::make_tuple(p.ts, p.originId, p.originSeq);
}

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

} // namespace

void CaptureStore::mergeFrom(std::span<const CaptureStore* const> shards) {
  // Each shard is already time-ordered (append precondition), but packets
  // at one instant sit in that shard's event-scheduling order. Sorting
  // each equal-ts run by (originId, originSeq) makes every shard
  // canonical-key-sorted — a near-no-op pass over mostly length-1 runs —
  // after which a k-way merge produces the canonical order directly,
  // instead of the old concatenate-and-O(N log N)-re-sort.
  std::size_t total = 0;
  std::size_t distinct128 = 0;
  std::size_t distinct64 = 0;
  std::size_t distinctDst = 0;
  std::size_t distinctAsn = 0;
  for (const CaptureStore* s : shards) {
    total += s->packets().size();
    distinct128 += s->distinctSources128();
    distinct64 += s->distinctSources64();
    distinctDst += s->distinctDestinations();
    distinctAsn += s->distinctAsns();
  }

  std::vector<std::vector<std::uint32_t>> order(shards.size());
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const auto& packets = shards[si]->packets();
    std::vector<std::uint32_t>& idx = order[si];
    idx.resize(packets.size());
    for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::size_t runStart = 0;
    for (std::size_t i = 1; i <= packets.size(); ++i) {
      if (i == packets.size() || packets[i].ts != packets[runStart].ts) {
        if (i - runStart > 1) {
          std::sort(idx.begin() + static_cast<std::ptrdiff_t>(runStart),
                    idx.begin() + static_cast<std::ptrdiff_t>(i),
                    [&packets](std::uint32_t a, std::uint32_t b) {
                      return canonicalKey(packets[a]) <
                             canonicalKey(packets[b]);
                    });
        }
        runStart = i;
      }
    }
  }

  // k-way merge over the per-shard canonical orders via a small binary
  // heap of shard cursors (k = shard count, single digits in practice).
  std::vector<net::Packet> merged;
  merged.reserve(total);
  struct Cursor {
    std::size_t shard;
    std::size_t pos;
  };
  std::vector<Cursor> heads;
  heads.reserve(shards.size());
  const auto headKey = [&](const Cursor& c) {
    return canonicalKey(shards[c.shard]->packets()[order[c.shard][c.pos]]);
  };
  const auto laterHead = [&](const Cursor& a, const Cursor& b) {
    return headKey(a) > headKey(b);
  };
  for (std::size_t si = 0; si < shards.size(); ++si) {
    if (!order[si].empty()) heads.push_back(Cursor{si, 0});
  }
  std::make_heap(heads.begin(), heads.end(), laterHead);
  while (!heads.empty()) {
    std::pop_heap(heads.begin(), heads.end(), laterHead);
    Cursor& c = heads.back();
    merged.push_back(shards[c.shard]->packets()[order[c.shard][c.pos]]);
    if (++c.pos < order[c.shard].size()) {
      std::push_heap(heads.begin(), heads.end(), laterHead);
    } else {
      heads.pop_back();
    }
  }

  // Stats rebuild in one pass over the merged capture. Reserving the
  // summed per-shard distinct counts (an upper bound on the union) keeps
  // the hash sets from rehashing their way up from empty.
  clear();
  packets_ = std::move(merged);
  sources128_.reserve(distinct128);
  sources64_.reserve(distinct64);
  destinations_.reserve(distinctDst);
  asns_.reserve(distinctAsn);
  for (const net::Packet& p : packets_) account(p);
}

std::uint64_t CaptureStore::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const net::Packet& p : packets_) {
    fnv1a(h, static_cast<std::uint64_t>(p.ts.millis()));
    fnv1a(h, p.src.hi64());
    fnv1a(h, p.src.lo64());
    fnv1a(h, p.dst.hi64());
    fnv1a(h, p.dst.lo64());
    fnv1a(h, static_cast<std::uint64_t>(p.proto));
    fnv1a(h, (static_cast<std::uint64_t>(p.srcPort) << 32) | p.dstPort);
    fnv1a(h, (static_cast<std::uint64_t>(p.icmpType) << 16) |
                 (static_cast<std::uint64_t>(p.icmpCode) << 8) | p.hopLimit);
    fnv1a(h, p.srcAsn.value());
    fnv1a(h, (static_cast<std::uint64_t>(p.originId) << 32) ^ p.originSeq);
    fnv1a(h, p.payload.size());
    for (std::uint8_t b : p.payload) fnv1a(h, b);
  }
  return h;
}

void CaptureStore::reserve(std::size_t expectedPackets) {
  packets_.reserve(expectedPackets);
  // Distinct sources are a small fraction of packets (every scanner sends
  // many probes); an eighth is a generous upper-bound heuristic that
  // avoids both rehash churn and gross over-allocation.
  const std::size_t distinct = expectedPackets / 8 + 64;
  sources128_.reserve(distinct);
  sources64_.reserve(distinct);
  destinations_.reserve(distinct);
  asns_.reserve(distinct / 4 + 16);
}

void CaptureStore::append(net::Packet p) {
  // First contact: jump straight to a working-set-sized footprint instead
  // of doubling up from 1 (and rehashing the sets from 13 buckets) while
  // the capture is hot.
  if (packets_.empty() && packets_.capacity() == 0) reserve(kAppendChunk);
  account(p);
  packets_.push_back(p); // trivially copyable; no move advantage
}

void CaptureStore::account(const net::Packet& p) {
  sources128_.insert(p.src);
  sources64_.insert(p.src.maskedTo(64));
  destinations_.insert(p.dst);
  if (!p.srcAsn.unattributed()) asns_.insert(p.srcAsn);
  const std::int64_t hour = p.ts.hourIndex();
  if (hour != memo_.hour) {
    memo_.hour = hour;
    memo_.hourCount = &hourly_[hour];
    const std::int64_t day = p.ts.dayIndex();
    if (day != memo_.day) {
      memo_.day = day;
      memo_.dayCount = &daily_[day];
      const std::int64_t week = p.ts.weekIndex();
      if (week != memo_.week) {
        memo_.week = week;
        memo_.weekCount = &weekly_[week];
      }
    }
  }
  ++*memo_.hourCount;
  ++*memo_.dayCount;
  ++*memo_.weekCount;
  ++perProtocol_[static_cast<std::size_t>(p.proto)];
}

void CaptureStore::writeTo(std::ostream& out) const {
  net::CaptureWriter writer{out};
  for (const net::Packet& p : packets_) writer.write(p);
}

std::uint64_t CaptureStore::readFrom(std::istream& in) {
  clear();
  net::CaptureReader reader{in};
  while (auto p = reader.next()) append(std::move(*p));
  return packets_.size();
}

void CaptureStore::clear() {
  packets_.clear();
  sources128_.clear();
  sources64_.clear();
  destinations_.clear();
  asns_.clear();
  hourly_.clear();
  daily_.clear();
  weekly_.clear();
  memo_ = BucketMemo{};
  perProtocol_[0] = perProtocol_[1] = perProtocol_[2] = 0;
}

} // namespace v6t::telescope
