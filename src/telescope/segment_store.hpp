// v6t::telescope — the out-of-core capture store ("v6tseg" segments).
//
// An LSM-shaped spill path for captures that outgrow memory (DESIGN.md
// §15, format in docs/FORMATS.md): appends land in a bounded in-memory
// memtable; when the memtable exceeds the configured byte budget it is
// sorted into canonical (ts, originId, originSeq) order and dumped as one
// immutable segment file — the RdbBase/RdbDump spill-run shape. Each
// segment carries a sparse (ts, offset) index, a per-source packet-count
// table, min/max timestamps and FNV checksums (the RdbMap role); when
// enough sealed runs accumulate they are k-way-merged into one (RdbMerge).
// Reads go through a merge cursor over the sealed segments plus the
// memtable, built on the same kway_merge.hpp heap as the in-memory
// CaptureStore::mergeFrom — so the streamed order, and therefore every
// digest downstream, is bitwise-identical to the in-memory path.
//
// Crash consistency: a segment is written to `<name>.tmp` and renamed into
// place only when fully durable, and a spill always drains the whole
// memtable — so the sealed segments hold exactly the first
// `recovery().durableRecords` appends. Reopening a directory quarantines
// `*.tmp` leftovers and unreadable segments, and a writer replays its
// input from that watermark to reach the reference state exactly.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "telescope/kway_merge.hpp"

namespace v6t::telescope {

inline constexpr char kSegmentMagic[8] = {'V', '6', 'T', 'S', 'E', 'G', 1, 0};
inline constexpr char kSegmentFooterMagic[8] = {'V', '6', 'T', 'S',
                                                'E', 'G', 'F', 1};
/// Fixed footer size at the end of every sealed segment.
inline constexpr std::size_t kSegmentFooterBytes = 64;

/// Per-source packet count, sorted by address — the segment's source table.
struct SegmentSourceCount {
  net::Ipv6Address addr;
  std::uint64_t count = 0;
};

/// One sparse-index entry: timestamp, record ordinal and file offset of
/// every indexStride-th record.
struct SegmentIndexEntry {
  std::int64_t ts = 0;
  std::uint64_t record = 0;
  std::uint64_t offset = 0;
};

/// Everything a sealed segment says about itself without reading records:
/// decoded footer + sparse index + source table (the "RdbMap" metadata).
struct SegmentMeta {
  sim::SimTime minTs;
  sim::SimTime maxTs;
  std::uint64_t recordCount = 0;
  std::uint64_t indexOffset = 0; // file offset of the first index entry
  std::uint64_t dataChecksum = 0; // FNV-1a over all record bytes
  std::vector<SegmentIndexEntry> sparse; // ascending ts/record/offset
  std::vector<SegmentSourceCount> sources;
};

/// Streams one sealed segment's records in canonical order (a
/// kway_merge.hpp cursor). Self-contained: owns its ifstream, so it
/// outlives the SegmentReader/SegmentStore that minted it. A cursor that
/// started at record 0 re-computes the data checksum and throws on
/// mismatch when it reaches the end — a full read IS a verification pass.
class SegmentCursor {
public:
  /// Cursor over `[firstRecord, recordCount)` starting at `startOffset`.
  SegmentCursor(const std::filesystem::path& path, const SegmentMeta& meta,
                std::uint64_t firstRecord, std::uint64_t startOffset);

  [[nodiscard]] bool empty() const { return !valid_; }
  [[nodiscard]] const net::Packet& head() const { return head_; }
  bool advance();

private:
  void readNext();

  std::ifstream in_;
  std::string path_; // for error messages
  net::Packet head_;
  std::uint64_t remaining_ = 0;
  std::uint64_t expectChecksum_ = 0;
  std::uint64_t runningChecksum_;
  bool verify_ = false; // only full-file cursors can check the checksum
  bool valid_ = false;
};

/// Opens and validates one sealed segment: header magic, footer magic, and
/// the metadata checksum over index + source table + footer. Lookups below
/// are what the sparse-index tests drive against a linear-scan oracle.
class SegmentReader {
public:
  /// Validate without throwing: nullopt on any malformed/truncated file.
  [[nodiscard]] static std::optional<SegmentMeta> probe(
      const std::filesystem::path& path);

  /// Throwing variant of probe() for paths that must be valid.
  explicit SegmentReader(std::filesystem::path path);

  [[nodiscard]] const SegmentMeta& meta() const { return meta_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Stream every record from the start (checksum-verified at the end).
  [[nodiscard]] SegmentCursor cursor() const;

  /// Cursor positioned at the first record with ts >= t: binary search the
  /// sparse index for the last entry at or before t, then scan at most
  /// indexStride records. Not checksum-verified (mid-file start).
  [[nodiscard]] SegmentCursor lowerBound(sim::SimTime t) const;

  /// Packets this segment holds from `addr` (exact, from the source
  /// table); zero for unknown sources.
  [[nodiscard]] std::uint64_t packetsFromSource(
      const net::Ipv6Address& addr) const;

private:
  std::filesystem::path path_;
  SegmentMeta meta_;
};

struct SegmentStoreOptions {
  std::filesystem::path dir;
  /// Memtable byte budget (packets * sizeof(net::Packet)); crossing it
  /// triggers a spill. 0 = never auto-spill (explicit spill() only).
  std::uint64_t spillBytes = 64ull << 20;
  /// Sealed-segment count that triggers a compaction after a spill.
  std::size_t compactFanout = 8;
  /// One sparse index entry every this many records.
  std::uint64_t indexStride = 1024;
  obs::Registry* metrics = nullptr;
  /// Crash seam for the recovery tests: invoked with the still-unrenamed
  /// `.tmp` path just before a finished segment is sealed. Throwing here
  /// (or truncating the file first) simulates dying mid-spill.
  std::function<void(const std::filesystem::path& tmpPath)> beforeSeal;
};

class SegmentStore {
public:
  struct Recovery {
    /// Appends already safe in sealed segments when the dir was opened —
    /// the replay-skip watermark.
    std::uint64_t durableRecords = 0;
    std::size_t sealedSegments = 0;
    std::size_t quarantined = 0;
  };

  /// Opens (creating the directory if needed) and recovers: `*.tmp`
  /// leftovers and unreadable segments are renamed `*.quarantined`, valid
  /// segments are adopted in sequence order.
  explicit SegmentStore(SegmentStoreOptions options);

  [[nodiscard]] const Recovery& recovery() const { return recovery_; }
  [[nodiscard]] const SegmentStoreOptions& options() const {
    return options_;
  }

  /// Append one packet. Precondition: p.ts >= ts of the previous append
  /// (same time-ordered contract as CaptureStore::append). May spill.
  void append(const net::Packet& p);

  /// Force the memtable to disk (no-op when empty). Auto-invoked when the
  /// byte budget is crossed; compacts when the fanout threshold is hit.
  void spill();

  /// Merge every sealed segment into one. No-op below two segments.
  void compact();

  [[nodiscard]] std::uint64_t recordCount() const {
    return sealedRecords_ + memtable_.size();
  }
  [[nodiscard]] std::uint64_t sealedRecords() const { return sealedRecords_; }
  [[nodiscard]] std::size_t segmentCount() const { return segments_.size(); }
  [[nodiscard]] std::uint64_t memtableBytes() const {
    return memtable_.size() * sizeof(net::Packet);
  }
  /// Bytes currently on disk across sealed segments.
  [[nodiscard]] std::uint64_t spilledBytes() const;
  [[nodiscard]] const std::vector<SegmentReader>& segments() const {
    return segments_;
  }

  /// Packets from `addr` across sealed segments (source tables) plus the
  /// memtable — the sparse-metadata lookup the tests check against a full
  /// linear scan.
  [[nodiscard]] std::uint64_t packetsFromSource(
      const net::Ipv6Address& addr) const;

  /// Canonical-order stream over sealed segments + memtable; itself a
  /// kway_merge.hpp cursor, so per-shard stores compose into one run-wide
  /// merge. Valid until the next append/spill/compact.
  class Cursor {
  public:
    Cursor(std::vector<SegmentCursor> segments,
           std::vector<net::Packet> memRun);
    [[nodiscard]] bool empty() const;
    [[nodiscard]] const net::Packet& head() const;
    bool advance();

  private:
    [[nodiscard]] bool memFirst() const;
    KWayMerge<SegmentCursor> merge_;
    std::vector<net::Packet> memRun_; // canonical-sorted memtable snapshot
    std::size_t memPos_ = 0;
  };
  [[nodiscard]] Cursor cursor() const;

  /// Cursor positioned at the first record with ts >= `from`: sparse-index
  /// lowerBound per sealed segment plus a lower bound on the time-ordered
  /// memtable. Streams exactly cursor()'s canonical order with the earlier
  /// records dropped (ts leads the canonical key) — the ranged-dump path
  /// of `v6t_run --dump-captures --from`.
  [[nodiscard]] Cursor cursor(sim::SimTime from) const;

  /// Pruned cursor for a per-source scan: sealed segments whose source
  /// table shows zero packets from `addr` are skipped entirely (their
  /// files are never opened), and the memtable snapshot keeps only that
  /// source's packets. The stream is still a superset of the source's
  /// packets — retained segments interleave other sources — so callers
  /// filter per record; the win is that a rare source touches only the
  /// few segments that actually hold it. With `from`, retained segments
  /// start at their sparse-index lower bound, like cursor(from).
  [[nodiscard]] Cursor cursorForSource(
      const net::Ipv6Address& addr,
      std::optional<sim::SimTime> from = std::nullopt) const;

  /// Digest of the full canonical stream — equals CaptureStore::digest()
  /// over the same packets, by construction.
  [[nodiscard]] std::uint64_t digest() const;

private:
  void recoverDir();
  [[nodiscard]] std::filesystem::path segmentPath(std::uint64_t seq) const;

  SegmentStoreOptions options_;
  Recovery recovery_;
  std::vector<SegmentReader> segments_; // sequence order
  std::vector<net::Packet> memtable_; // time-ordered (append order)
  std::uint64_t sealedRecords_ = 0;
  std::uint64_t nextSeq_ = 0;
};

} // namespace v6t::telescope
