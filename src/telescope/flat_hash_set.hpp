// v6t::telescope — open-addressing hash set for capture accounting.
//
// std::unordered_set allocates one node per element, which put a malloc on
// the per-packet append path for every fresh /128 source, /64 network, and
// destination a telescope sees — millions over a run, and terrible cache
// behavior when the analysis-side accounting re-walks them. This set keeps
// elements in one flat slot array with linear probing: inserting N
// distinct keys costs O(log N) geometric grows instead of N node
// allocations, and membership probes touch contiguous memory.
//
// Deliberately minimal: insert / size / clear / reserve is everything the
// capture accounting needs (counts are the product; nothing iterates), and
// dropping erase() means no tombstone machinery. Not a general container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace v6t::telescope {

template <typename T, typename Hash = std::hash<T>>
class FlatHashSet {
public:
  FlatHashSet() = default;

  /// Insert `v`; returns true if it was not present before.
  bool insert(const T& v) {
    if (slots_.empty() || size_ * 8 >= slots_.size() * 7) {
      grow(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(v) & mask;
    while (occupied_[i]) {
      if (slots_[i] == v) return false;
      i = (i + 1) & mask;
    }
    occupied_[i] = 1;
    slots_[i] = v;
    ++size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    occupied_.assign(occupied_.size(), 0);
    size_ = 0;
  }

  /// Pre-size for `n` elements without rehash churn on the way there.
  void reserve(std::size_t n) {
    std::size_t want = kMinSlots;
    while (want * 7 < n * 8) want *= 2; // keep load factor under 7/8
    if (want > slots_.size()) grow(want);
  }

private:
  static constexpr std::size_t kMinSlots = 16; // power of two

  void grow(std::size_t newSlots) {
    std::vector<T> oldSlots = std::move(slots_);
    std::vector<std::uint8_t> oldOccupied = std::move(occupied_);
    slots_.assign(newSlots, T{});
    occupied_.assign(newSlots, 0);
    const std::size_t mask = newSlots - 1;
    for (std::size_t i = 0; i < oldSlots.size(); ++i) {
      if (!oldOccupied[i]) continue;
      std::size_t j = Hash{}(oldSlots[i]) & mask;
      while (occupied_[j]) j = (j + 1) & mask;
      occupied_[j] = 1;
      slots_[j] = std::move(oldSlots[i]);
    }
  }

  std::vector<T> slots_;
  std::vector<std::uint8_t> occupied_;
  std::size_t size_ = 0;
};

} // namespace v6t::telescope
