// v6t::telescope — the capture digest primitives.
//
// Every equivalence proof in this repo bottoms out in one FNV-1a 64-bit
// fold: CaptureStore::digest, the streaming analyzer's incremental capture
// digest, the session tracker's per-session target digest, and the v6tseg
// segment checksums all mix with the functions here, so "two digests are
// equal" always means the same byte-for-byte statement.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace v6t::telescope {

inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold one 64-bit value into `h`, little-endian byte by byte.
inline void fnv1aMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// Fold a raw byte range into `h` — the segment file checksums.
inline void fnv1aBytes(std::uint64_t& h, const unsigned char* data,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
}

/// Fold one packet into `h` exactly as CaptureStore::digest does: every
/// stored field, including the (originId, originSeq) merge key that the
/// v6tcap wire format omits. Streaming consumers chain this per packet and
/// land on the same value as the one-shot in-memory store.
inline void fnv1aPacket(std::uint64_t& h, const net::Packet& p) {
  fnv1aMix(h, static_cast<std::uint64_t>(p.ts.millis()));
  fnv1aMix(h, p.src.hi64());
  fnv1aMix(h, p.src.lo64());
  fnv1aMix(h, p.dst.hi64());
  fnv1aMix(h, p.dst.lo64());
  fnv1aMix(h, static_cast<std::uint64_t>(p.proto));
  fnv1aMix(h, (static_cast<std::uint64_t>(p.srcPort) << 32) | p.dstPort);
  fnv1aMix(h, (static_cast<std::uint64_t>(p.icmpType) << 16) |
                  (static_cast<std::uint64_t>(p.icmpCode) << 8) | p.hopLimit);
  fnv1aMix(h, p.srcAsn.value());
  fnv1aMix(h, (static_cast<std::uint64_t>(p.originId) << 32) ^ p.originSeq);
  fnv1aMix(h, p.payload.size());
  for (std::uint8_t b : p.payload) fnv1aMix(h, b);
}

} // namespace v6t::telescope
