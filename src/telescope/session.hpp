// v6t::telescope — scan sessions (§3.3).
//
// A scan session is a maximal run of packets from one source whose
// inter-arrival gaps stay below a timeout (the paper adopts one hour from
// Richter et al. / Zhao et al.). Sources can be viewed at three aggregation
// levels: the full /128 address, the /64 network, or the /48 prefix.
// Sessions — not packets — are the unit of all classification.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace v6t::telescope {

enum class SourceAgg : std::uint8_t { Addr128 = 128, Net64 = 64, Net48 = 48 };

[[nodiscard]] constexpr unsigned bits(SourceAgg agg) {
  return static_cast<unsigned>(agg);
}

/// A source identity at a chosen aggregation level (address is masked).
struct SourceKey {
  net::Ipv6Address addr;
  SourceAgg agg = SourceAgg::Addr128;

  [[nodiscard]] static SourceKey of(const net::Ipv6Address& src,
                                    SourceAgg agg) {
    return SourceKey{src.maskedTo(bits(agg)), agg};
  }

  auto operator<=>(const SourceKey&) const = default;
};

struct Session {
  SourceKey source;
  sim::SimTime start;
  sim::SimTime end;
  /// Indices into the capture's packet vector, in arrival order.
  std::vector<std::uint32_t> packetIdx;

  [[nodiscard]] std::size_t packetCount() const { return packetIdx.size(); }
  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Default timeout from the paper.
inline constexpr sim::Duration kSessionTimeout = sim::hours(1);

/// Canonical form of declared capture outages: sorted by start, with
/// overlapping/touching windows merged — what both session engines
/// binary-search per packet.
[[nodiscard]] std::vector<std::pair<sim::SimTime, sim::SimTime>>
normalizeGapWindows(std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps);

/// True when the silent interval (lastSeen, now] overlaps one of the
/// normalized gap windows — the telescope was dark for part of the
/// silence, so session continuity cannot be attested.
[[nodiscard]] bool silenceSpansGap(
    std::span<const std::pair<sim::SimTime, sim::SimTime>> gaps,
    sim::SimTime lastSeen, sim::SimTime now);

/// Streaming sessionizer: feed packets in time order, harvest completed
/// sessions at any point, flush at end of measurement.
class Sessionizer {
public:
  /// Lifecycle counters for the obs layer: every session is opened once
  /// and closed exactly once — by the inter-packet timeout, by a declared
  /// capture gap, or by the end-of-measurement flush in finish().
  struct Stats {
    std::uint64_t opened = 0;
    std::uint64_t closedByTimeout = 0;
    std::uint64_t closedByGap = 0;
    std::uint64_t openAtFinish = 0;
  };

  explicit Sessionizer(SourceAgg agg,
                       sim::Duration timeout = kSessionTimeout)
      : agg_(agg), timeout_(timeout) {}

  /// Declare capture outages: an inter-packet interval that overlaps a
  /// [start, end) gap splits the session even when it is shorter than the
  /// timeout — the silence is the telescope's, not the scanner's, so
  /// counting it as one session would fabricate continuity across an
  /// outage (graceful degradation under fault injection). No gaps = the
  /// historical timeout-only behavior, bit for bit. Windows are
  /// normalized on entry — sorted, overlapping/touching windows merged —
  /// which preserves the overlap predicate exactly and lets spansGap
  /// binary-search instead of scanning every window per packet.
  void setCaptureGaps(std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps);

  /// Offer the packet at index `idx` of the capture.
  void offer(const net::Packet& p, std::uint32_t idx);

  /// Close every still-open session and return the full session list,
  /// ordered by session start time.
  [[nodiscard]] std::vector<Session> finish();

  [[nodiscard]] SourceAgg aggregation() const { return agg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t openSessions() const { return open_.size(); }

private:
  struct Open {
    Session session;
    sim::SimTime lastSeen;
  };

  [[nodiscard]] bool spansGap(sim::SimTime lastSeen, sim::SimTime now) const;

  SourceAgg agg_;
  sim::Duration timeout_;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps_;
  std::unordered_map<net::Ipv6Address, Open> open_;
  std::vector<Session> done_;
  Stats stats_;
};

/// Convenience: sessionize a whole capture in one call. When `statsOut`
/// is non-null the sessionizer's lifecycle counters are copied there.
/// `captureGaps` are declared outages for this capture's telescope (see
/// Sessionizer::setCaptureGaps).
[[nodiscard]] std::vector<Session> sessionize(
    std::span<const net::Packet> packets, SourceAgg agg,
    sim::Duration timeout = kSessionTimeout,
    Sessionizer::Stats* statsOut = nullptr,
    std::vector<std::pair<sim::SimTime, sim::SimTime>> captureGaps = {});

/// A closed session reduced to its aggregate facts — everything the
/// streaming analysis folds on, with no packet-index vector, so tracking
/// state is O(1) per open session instead of O(packets). The fields are
/// exactly what CaptureIndex::SourceAggregates derives from a full
/// Session over the capture, which is what makes the streamed fold
/// bitwise-equal to the one-shot path.
struct SessionSummary {
  SourceKey source;
  sim::SimTime start;
  sim::SimTime end;
  std::uint64_t packets = 0;
  std::uint64_t payloadPackets = 0;
  /// srcAsn of the session's first packet (the attribution CaptureIndex
  /// assigns a source from its first session).
  net::Asn firstAsn;

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Constant-state sessionizer for the out-of-core streaming path: same
/// continuation predicate as Sessionizer (timeout + declared capture
/// gaps), but open sessions carry only a SessionSummary — no packet
/// indices — so memory is bounded by the number of concurrently open
/// sessions, not by capture size. Closed summaries can be drained at any
/// window boundary; draining never changes what is produced, only when
/// it is handed over.
class SessionTracker {
public:
  explicit SessionTracker(SourceAgg agg,
                          sim::Duration timeout = kSessionTimeout)
      : agg_(agg), timeout_(timeout) {}

  /// Declared outages, same semantics as Sessionizer::setCaptureGaps.
  void setCaptureGaps(std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps);

  /// Offer the next packet (time-ordered, like Sessionizer::offer).
  void offer(const net::Packet& p);

  /// Move out the sessions closed since the last drain, in close order.
  [[nodiscard]] std::vector<SessionSummary> drainClosed();

  /// Close every still-open session and return the remaining summaries
  /// (close order, NOT sorted — the streaming analyzer canonicalizes the
  /// full summary set once at the end).
  [[nodiscard]] std::vector<SessionSummary> finish();

  [[nodiscard]] SourceAgg aggregation() const { return agg_; }
  [[nodiscard]] const Sessionizer::Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t openSessions() const { return open_.size(); }

private:
  struct Open {
    SessionSummary summary;
    sim::SimTime lastSeen;
  };

  SourceAgg agg_;
  sim::Duration timeout_;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps_;
  std::unordered_map<net::Ipv6Address, Open> open_;
  std::vector<SessionSummary> done_;
  Sessionizer::Stats stats_;
};

/// Reduce a full session table to summaries (session-vector order) — the
/// bridge the equivalence tests use to compare Sessionizer output against
/// a SessionTracker run over the same packets.
[[nodiscard]] std::vector<SessionSummary> summarizeSessions(
    std::span<const Session> sessions, std::span<const net::Packet> packets);

/// Sessions grouped per source key (insertion order = first appearance).
struct SourceSessions {
  SourceKey source;
  std::vector<std::uint32_t> sessionIdx; // indices into the session vector
};

/// `distinctSourcesHint`, when nonzero, pre-sizes the output and the
/// source map (e.g. from a previous run over the same capture); zero falls
/// back to the session count as an upper bound.
[[nodiscard]] std::vector<SourceSessions> groupBySource(
    std::span<const Session> sessions, std::size_t distinctSourcesHint = 0);

} // namespace v6t::telescope

template <>
struct std::hash<v6t::telescope::SourceKey> {
  std::size_t operator()(const v6t::telescope::SourceKey& k) const noexcept {
    return std::hash<v6t::net::Ipv6Address>{}(k.addr) ^
           (static_cast<std::size_t>(k.agg) * 0x9e3779b97f4a7c15ULL);
  }
};
