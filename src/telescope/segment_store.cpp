#include "telescope/segment_store.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "net/pcap.hpp"
#include "telescope/digest.hpp"

namespace fs = std::filesystem;

namespace v6t::telescope {

namespace {

constexpr std::size_t kHeaderBytes = sizeof(kSegmentMagic); // 8
constexpr std::size_t kIndexEntryBytes = 24;
constexpr std::size_t kSourceEntryBytes = 24;
// Footer prefix (covered by the meta checksum): minTs maxTs recordCount
// indexCount sourceCount indexOffset dataChecksum.
constexpr std::size_t kFooterPrefixBytes = 8 + 8 + 8 + 4 + 4 + 8 + 8;
static_assert(kFooterPrefixBytes + 8 + sizeof(kSegmentFooterMagic) ==
              kSegmentFooterBytes);

template <typename T>
void putLe(std::string& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>(
        (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff));
  }
}

template <typename T>
T getLe(const unsigned char* buf) {
  std::uint64_t v = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) {
    v = (v << 8) | buf[i];
  }
  return static_cast<T>(v);
}

/// Writes one segment to `<final>.tmp`, records in canonical order, then
/// seals it: sparse index + source table + footer appended, stream closed,
/// file renamed into place (the RdbDump shape — a reader never sees a
/// half-written segment under its final name).
class SegmentFileWriter {
public:
  SegmentFileWriter(fs::path finalPath, std::uint64_t indexStride)
      : finalPath_(std::move(finalPath)),
        tmpPath_(finalPath_.string() + ".tmp"),
        stride_(indexStride == 0 ? 1 : indexStride) {
    out_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!out_) {
      throw std::runtime_error("cannot open segment " + tmpPath_.string());
    }
    out_.write(kSegmentMagic, sizeof(kSegmentMagic));
    offset_ = kHeaderBytes;
  }

  void write(const net::Packet& p) {
    if (meta_.recordCount % stride_ == 0) {
      meta_.sparse.push_back(
          SegmentIndexEntry{p.ts.millis(), meta_.recordCount, offset_});
    }
    unsigned char buf[net::kMaxRecordBytes];
    const std::size_t n = net::encodeRecord(buf, p, /*withOrigin=*/true);
    fnv1aBytes(meta_.dataChecksum, buf, n);
    out_.write(reinterpret_cast<const char*>(buf),
               static_cast<std::streamsize>(n));
    offset_ += n;
    if (meta_.recordCount == 0 || p.ts < meta_.minTs) meta_.minTs = p.ts;
    if (meta_.recordCount == 0 || meta_.maxTs < p.ts) meta_.maxTs = p.ts;
    ++sourceCounts_[{p.src.hi64(), p.src.lo64()}];
    ++meta_.recordCount;
  }

  /// Returns (meta, total file bytes). `beforeSeal` runs after the bytes
  /// are fully written and the stream closed but before the rename — the
  /// crash seam of the recovery tests.
  std::pair<SegmentMeta, std::uint64_t> seal(
      const std::function<void(const fs::path&)>& beforeSeal) {
    meta_.indexOffset = offset_;
    meta_.sources.reserve(sourceCounts_.size());
    for (const auto& [key, count] : sourceCounts_) {
      std::array<std::uint8_t, 16> bytes{};
      for (int i = 0; i < 8; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(key.first >> (8 * (7 - i)));
        bytes[static_cast<std::size_t>(8 + i)] =
            static_cast<std::uint8_t>(key.second >> (8 * (7 - i)));
      }
      meta_.sources.push_back(
          SegmentSourceCount{net::Ipv6Address{bytes}, count});
    }

    // Meta block: sparse index, source table, footer prefix — checksummed
    // as one contiguous range so probe() can validate with a single read.
    std::string block;
    block.reserve(meta_.sparse.size() * kIndexEntryBytes +
                  meta_.sources.size() * kSourceEntryBytes +
                  kSegmentFooterBytes);
    for (const SegmentIndexEntry& e : meta_.sparse) {
      putLe<std::int64_t>(block, e.ts);
      putLe<std::uint64_t>(block, e.record);
      putLe<std::uint64_t>(block, e.offset);
    }
    for (const SegmentSourceCount& s : meta_.sources) {
      putLe<std::uint64_t>(block, s.addr.hi64());
      putLe<std::uint64_t>(block, s.addr.lo64());
      putLe<std::uint64_t>(block, s.count);
    }
    putLe<std::int64_t>(block, meta_.minTs.millis());
    putLe<std::int64_t>(block, meta_.maxTs.millis());
    putLe<std::uint64_t>(block, meta_.recordCount);
    putLe<std::uint32_t>(block,
                         static_cast<std::uint32_t>(meta_.sparse.size()));
    putLe<std::uint32_t>(block,
                         static_cast<std::uint32_t>(meta_.sources.size()));
    putLe<std::uint64_t>(block, meta_.indexOffset);
    putLe<std::uint64_t>(block, meta_.dataChecksum);
    std::uint64_t metaChecksum = kFnvBasis;
    fnv1aBytes(metaChecksum,
               reinterpret_cast<const unsigned char*>(block.data()),
               block.size());
    putLe<std::uint64_t>(block, metaChecksum);
    block.append(kSegmentFooterMagic, sizeof(kSegmentFooterMagic));

    out_.write(block.data(), static_cast<std::streamsize>(block.size()));
    out_.flush();
    if (!out_) {
      throw std::runtime_error("short write sealing " + tmpPath_.string());
    }
    out_.close();
    if (beforeSeal) beforeSeal(tmpPath_);
    fs::rename(tmpPath_, finalPath_);
    return {std::move(meta_), offset_ + block.size()};
  }

private:
  fs::path finalPath_;
  fs::path tmpPath_;
  std::uint64_t stride_;
  std::ofstream out_;
  std::uint64_t offset_ = 0;
  SegmentMeta meta_{sim::SimTime{0}, sim::SimTime{0}, 0, 0, kFnvBasis, {},
                    {}};
  // Ordered by (hi, lo) => the table comes out address-sorted.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
      sourceCounts_;
};

[[nodiscard]] std::optional<std::uint64_t> parseSegmentSeq(
    const std::string& name) {
  // seg-NNNNNN.v6tseg
  if (!name.starts_with("seg-") || !name.ends_with(".v6tseg")) {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 4 - 7);
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

} // namespace

// --- SegmentCursor --------------------------------------------------------

SegmentCursor::SegmentCursor(const fs::path& path, const SegmentMeta& meta,
                             std::uint64_t firstRecord,
                             std::uint64_t startOffset)
    : path_(path.string()),
      remaining_(meta.recordCount - firstRecord),
      expectChecksum_(meta.dataChecksum),
      runningChecksum_(kFnvBasis),
      verify_(firstRecord == 0) {
  in_.open(path, std::ios::binary);
  if (!in_) throw std::runtime_error("cannot open segment " + path_);
  in_.seekg(static_cast<std::streamoff>(startOffset));
  if (remaining_ > 0) {
    readNext();
  }
}

bool SegmentCursor::advance() {
  if (remaining_ == 0) {
    if (valid_ && verify_ && runningChecksum_ != expectChecksum_) {
      valid_ = false;
      throw std::runtime_error("segment data checksum mismatch: " + path_);
    }
    valid_ = false;
    return false;
  }
  readNext();
  return true;
}

void SegmentCursor::readNext() {
  if (net::readRecord(in_, head_, /*withOrigin=*/true) !=
      net::RecordStatus::Ok) {
    valid_ = false;
    throw std::runtime_error("torn record in segment " + path_);
  }
  if (verify_) {
    // Re-encode and fold: canonical encoding means encode(decode(x)) is
    // byte-identical, so a full-file cursor reproduces the writer's
    // checksum without a second I/O pass.
    unsigned char buf[net::kMaxRecordBytes];
    const std::size_t n = net::encodeRecord(buf, head_, /*withOrigin=*/true);
    fnv1aBytes(runningChecksum_, buf, n);
  }
  --remaining_;
  valid_ = true;
}

// --- SegmentReader --------------------------------------------------------

std::optional<SegmentMeta> SegmentReader::probe(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < kHeaderBytes + kSegmentFooterBytes) return std::nullopt;

  char magic[sizeof(kSegmentMagic)];
  in.seekg(0);
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSegmentMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }

  unsigned char footer[kSegmentFooterBytes];
  in.seekg(static_cast<std::streamoff>(size - kSegmentFooterBytes));
  in.read(reinterpret_cast<char*>(footer), kSegmentFooterBytes);
  if (!in || std::memcmp(footer + kFooterPrefixBytes + 8, kSegmentFooterMagic,
                         sizeof(kSegmentFooterMagic)) != 0) {
    return std::nullopt;
  }

  SegmentMeta meta;
  meta.minTs = sim::SimTime{getLe<std::int64_t>(footer)};
  meta.maxTs = sim::SimTime{getLe<std::int64_t>(footer + 8)};
  meta.recordCount = getLe<std::uint64_t>(footer + 16);
  const auto indexCount = getLe<std::uint32_t>(footer + 24);
  const auto sourceCount = getLe<std::uint32_t>(footer + 28);
  meta.indexOffset = getLe<std::uint64_t>(footer + 32);
  meta.dataChecksum = getLe<std::uint64_t>(footer + 40);
  const auto metaChecksum = getLe<std::uint64_t>(footer + 48);

  // The block sizes must tile the file exactly; anything else is a torn
  // or foreign layout.
  const std::uint64_t metaBytes =
      std::uint64_t{indexCount} * kIndexEntryBytes +
      std::uint64_t{sourceCount} * kSourceEntryBytes;
  if (meta.indexOffset < kHeaderBytes ||
      meta.indexOffset + metaBytes + kSegmentFooterBytes != size) {
    return std::nullopt;
  }

  // The meta checksum covers the contiguous range [indexOffset, footer
  // checksum field): index block, source block, footer prefix.
  std::vector<unsigned char> block(metaBytes + kFooterPrefixBytes);
  in.seekg(static_cast<std::streamoff>(meta.indexOffset));
  in.read(reinterpret_cast<char*>(block.data()),
          static_cast<std::streamsize>(block.size()));
  if (!in) return std::nullopt;
  std::uint64_t check = kFnvBasis;
  fnv1aBytes(check, block.data(), block.size());
  if (check != metaChecksum) return std::nullopt;

  meta.sparse.reserve(indexCount);
  const unsigned char* p = block.data();
  for (std::uint32_t i = 0; i < indexCount; ++i, p += kIndexEntryBytes) {
    meta.sparse.push_back(SegmentIndexEntry{getLe<std::int64_t>(p),
                                            getLe<std::uint64_t>(p + 8),
                                            getLe<std::uint64_t>(p + 16)});
  }
  meta.sources.reserve(sourceCount);
  for (std::uint32_t i = 0; i < sourceCount; ++i, p += kSourceEntryBytes) {
    const std::uint64_t hi = getLe<std::uint64_t>(p);
    const std::uint64_t lo = getLe<std::uint64_t>(p + 8);
    std::array<std::uint8_t, 16> bytes{};
    for (int b = 0; b < 8; ++b) {
      bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(hi >> (8 * (7 - b)));
      bytes[static_cast<std::size_t>(8 + b)] =
          static_cast<std::uint8_t>(lo >> (8 * (7 - b)));
    }
    meta.sources.push_back(SegmentSourceCount{net::Ipv6Address{bytes},
                                              getLe<std::uint64_t>(p + 16)});
  }
  return meta;
}

SegmentReader::SegmentReader(fs::path path) : path_(std::move(path)) {
  auto meta = probe(path_);
  if (!meta) {
    throw std::runtime_error("invalid segment " + path_.string());
  }
  meta_ = std::move(*meta);
}

SegmentCursor SegmentReader::cursor() const {
  return SegmentCursor{path_, meta_, 0, kHeaderBytes};
}

SegmentCursor SegmentReader::lowerBound(sim::SimTime t) const {
  // Last sparse entry strictly before t: every record before it is <= its
  // ts < t, so the scan to the first record with ts >= t is bounded by one
  // index stride.
  std::uint64_t rec = 0;
  std::uint64_t off = kHeaderBytes;
  const auto it = std::partition_point(
      meta_.sparse.begin(), meta_.sparse.end(),
      [&](const SegmentIndexEntry& e) { return e.ts < t.millis(); });
  if (it != meta_.sparse.begin()) {
    const SegmentIndexEntry& e = *(it - 1);
    rec = e.record;
    off = e.offset;
  }
  SegmentCursor c{path_, meta_, rec, off};
  while (!c.empty() && c.head().ts < t) {
    if (!c.advance()) break;
  }
  return c;
}

std::uint64_t SegmentReader::packetsFromSource(
    const net::Ipv6Address& addr) const {
  const auto it = std::partition_point(
      meta_.sources.begin(), meta_.sources.end(),
      [&](const SegmentSourceCount& s) { return s.addr < addr; });
  if (it == meta_.sources.end() || it->addr != addr) return 0;
  return it->count;
}

// --- SegmentStore ---------------------------------------------------------

SegmentStore::SegmentStore(SegmentStoreOptions options)
    : options_(std::move(options)) {
  fs::create_directories(options_.dir);
  recoverDir();
}

fs::path SegmentStore::segmentPath(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.v6tseg",
                static_cast<unsigned long long>(seq));
  return options_.dir / name;
}

void SegmentStore::recoverDir() {
  std::vector<std::pair<std::uint64_t, fs::path>> sealed;
  std::vector<fs::path> partial;
  std::vector<fs::path> invalid;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".v6tseg.tmp")) {
      partial.push_back(entry.path());
    } else if (const auto seq = parseSegmentSeq(name)) {
      if (SegmentReader::probe(entry.path())) {
        sealed.emplace_back(*seq, entry.path());
      } else {
        invalid.push_back(entry.path());
      }
    }
  }
  // A `.tmp` is a spill the process died inside of; an unreadable sealed
  // name is bit rot or a torn rename. Both are moved aside — never
  // deleted, the operator may want the bytes — and never read again.
  for (const fs::path& p : partial) {
    fs::rename(p, fs::path{p.string() + ".quarantined"});
    ++recovery_.quarantined;
  }
  for (const fs::path& p : invalid) {
    fs::rename(p, fs::path{p.string() + ".quarantined"});
    ++recovery_.quarantined;
  }
  std::sort(sealed.begin(), sealed.end());
  segments_.reserve(sealed.size());
  for (const auto& [seq, path] : sealed) {
    segments_.emplace_back(path);
    sealedRecords_ += segments_.back().meta().recordCount;
    nextSeq_ = std::max(nextSeq_, seq + 1);
  }
  recovery_.sealedSegments = segments_.size();
  recovery_.durableRecords = sealedRecords_;
  if (options_.metrics != nullptr && recovery_.quarantined > 0) {
    options_.metrics->counter("capture.spill.quarantined_total")
        .inc(recovery_.quarantined);
  }
}

void SegmentStore::append(const net::Packet& p) {
  memtable_.push_back(p);
  if (options_.spillBytes > 0 && memtableBytes() >= options_.spillBytes) {
    spill();
  }
}

void SegmentStore::spill() {
  if (memtable_.empty()) return;
  std::optional<obs::Span> span;
  if (options_.metrics != nullptr) {
    span.emplace(*options_.metrics, "capture.spill.flush_seconds");
  }
  const std::vector<std::uint32_t> order = canonicalOrderOf(memtable_);
  SegmentFileWriter writer{segmentPath(nextSeq_), options_.indexStride};
  for (std::uint32_t i : order) writer.write(memtable_[i]);
  const std::uint64_t bytes = writer.seal(options_.beforeSeal).second;
  segments_.emplace_back(segmentPath(nextSeq_));
  ++nextSeq_;
  sealedRecords_ += memtable_.size();
  if (options_.metrics != nullptr) {
    options_.metrics->counter("capture.spill.segments_total").inc();
    options_.metrics->counter("capture.spill.bytes_total").inc(bytes);
    options_.metrics->counter("capture.spill.records_total")
        .inc(memtable_.size());
    options_.metrics
        ->gauge("capture.spill.segments_high_water", obs::GaugeMode::Max)
        .set(static_cast<double>(segments_.size()));
  }
  memtable_.clear();
  if (options_.compactFanout > 0 &&
      segments_.size() >= options_.compactFanout) {
    compact();
  }
}

void SegmentStore::compact() {
  if (segments_.size() < 2) return;
  std::optional<obs::Span> span;
  if (options_.metrics != nullptr) {
    span.emplace(*options_.metrics, "capture.spill.compact_seconds");
  }
  std::vector<SegmentCursor> cursors;
  cursors.reserve(segments_.size());
  for (const SegmentReader& seg : segments_) cursors.push_back(seg.cursor());

  const fs::path outPath = segmentPath(nextSeq_);
  SegmentFileWriter writer{outPath, options_.indexStride};
  std::uint64_t merged = 0;
  for (KWayMerge<SegmentCursor> merge{std::move(cursors)}; !merge.done();
       merge.pop()) {
    writer.write(merge.head());
    ++merged;
  }
  writer.seal(options_.beforeSeal);
  for (const SegmentReader& seg : segments_) fs::remove(seg.path());
  segments_.clear();
  segments_.emplace_back(outPath);
  ++nextSeq_;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("capture.spill.compactions_total").inc();
    options_.metrics->counter("capture.spill.compacted_records_total")
        .inc(merged);
  }
}

std::uint64_t SegmentStore::spilledBytes() const {
  std::uint64_t total = 0;
  for (const SegmentReader& seg : segments_) {
    total += static_cast<std::uint64_t>(fs::file_size(seg.path()));
  }
  return total;
}

std::uint64_t SegmentStore::packetsFromSource(
    const net::Ipv6Address& addr) const {
  std::uint64_t total = 0;
  for (const SegmentReader& seg : segments_) {
    total += seg.packetsFromSource(addr);
  }
  for (const net::Packet& p : memtable_) {
    if (p.src == addr) ++total;
  }
  return total;
}

SegmentStore::Cursor::Cursor(std::vector<SegmentCursor> segments,
                             std::vector<net::Packet> memRun)
    : merge_(std::move(segments)), memRun_(std::move(memRun)) {}

bool SegmentStore::Cursor::empty() const {
  return merge_.done() && memPos_ >= memRun_.size();
}

bool SegmentStore::Cursor::memFirst() const {
  if (memPos_ >= memRun_.size()) return false;
  if (merge_.done()) return true;
  return canonicalKey(memRun_[memPos_]) < canonicalKey(merge_.head());
}

const net::Packet& SegmentStore::Cursor::head() const {
  return memFirst() ? memRun_[memPos_] : merge_.head();
}

bool SegmentStore::Cursor::advance() {
  if (memFirst()) {
    ++memPos_;
  } else {
    merge_.pop();
  }
  return !empty();
}

SegmentStore::Cursor SegmentStore::cursor() const {
  std::vector<SegmentCursor> cursors;
  cursors.reserve(segments_.size());
  for (const SegmentReader& seg : segments_) cursors.push_back(seg.cursor());
  std::vector<net::Packet> memRun;
  memRun.reserve(memtable_.size());
  for (std::uint32_t i : canonicalOrderOf(memtable_)) {
    memRun.push_back(memtable_[i]);
  }
  return Cursor{std::move(cursors), std::move(memRun)};
}

SegmentStore::Cursor SegmentStore::cursor(sim::SimTime from) const {
  std::vector<SegmentCursor> cursors;
  cursors.reserve(segments_.size());
  for (const SegmentReader& seg : segments_) {
    cursors.push_back(seg.lowerBound(from));
  }
  // The memtable is append-time-ordered, so the tail at or after `from` is
  // one lower_bound away; dropping a ts-prefix cannot reorder what remains
  // because ts is the canonical key's leading field.
  const auto tail = std::lower_bound(
      memtable_.begin(), memtable_.end(), from,
      [](const net::Packet& p, sim::SimTime t) { return p.ts < t; });
  std::vector<net::Packet> mem(tail, memtable_.end());
  std::vector<net::Packet> memRun;
  memRun.reserve(mem.size());
  for (std::uint32_t i : canonicalOrderOf(mem)) memRun.push_back(mem[i]);
  return Cursor{std::move(cursors), std::move(memRun)};
}

SegmentStore::Cursor SegmentStore::cursorForSource(
    const net::Ipv6Address& addr, std::optional<sim::SimTime> from) const {
  std::vector<SegmentCursor> cursors;
  for (const SegmentReader& seg : segments_) {
    // The source table is exact, so a zero count proves the segment holds
    // nothing from `addr` — skipping it cannot change the filtered stream.
    if (seg.packetsFromSource(addr) == 0) continue;
    cursors.push_back(from ? seg.lowerBound(*from) : seg.cursor());
  }
  std::vector<net::Packet> mem;
  for (const net::Packet& p : memtable_) {
    if (p.src != addr) continue;
    if (from && p.ts < *from) continue;
    mem.push_back(p);
  }
  std::vector<net::Packet> memRun;
  memRun.reserve(mem.size());
  for (std::uint32_t i : canonicalOrderOf(mem)) memRun.push_back(mem[i]);
  return Cursor{std::move(cursors), std::move(memRun)};
}

std::uint64_t SegmentStore::digest() const {
  std::uint64_t h = kFnvBasis;
  Cursor c = cursor();
  if (!c.empty()) {
    do {
      fnv1aPacket(h, c.head());
    } while (c.advance());
  }
  return h;
}

} // namespace v6t::telescope
