// v6t::telescope — the shared reserving k-way merge heap.
//
// Three places need the same operation — merge canonical-key-sorted packet
// runs into one canonical stream: CaptureStore::mergeFrom (per-shard
// in-memory buffers), the SegmentStore read cursor (on-disk segment runs
// plus the memtable), and segment compaction (rewriting k sealed runs as
// one). They all instantiate KWayMerge below over their own cursor type,
// so the merge order is definitionally identical across in-memory and
// out-of-core paths — the bitwise-equality contract of DESIGN.md §8/§15.
//
// Cursor concept:
//   bool empty() const              true when the cursor has no head at all
//   const net::Packet& head() const current packet (stable until advance)
//   bool advance()                  step; false when exhausted
//
// KWayMerge itself satisfies the concept, so merges compose (the runner
// merges per-shard SegmentStore cursors, each of which is itself a merge
// over that shard's segments and memtable).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace v6t::telescope {

/// Canonical capture order key: ascending (ts, originId, originSeq) — a
/// globally unique key, since a scanner's emission counter never repeats.
[[nodiscard]] inline auto canonicalKey(const net::Packet& p) {
  return std::make_tuple(p.ts.millis(), p.originId, p.originSeq);
}

/// Index permutation that orders a time-ordered packet run by canonical
/// key. Appends arrive in time order (the store precondition), so only
/// equal-timestamp runs need sorting by (originId, originSeq) — a cheap
/// pass over mostly length-1 runs, not an O(N log N) full re-sort.
[[nodiscard]] inline std::vector<std::uint32_t> canonicalOrderOf(
    std::span<const net::Packet> packets) {
  std::vector<std::uint32_t> idx(packets.size());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::size_t runStart = 0;
  for (std::size_t i = 1; i <= packets.size(); ++i) {
    if (i == packets.size() || packets[i].ts != packets[runStart].ts) {
      if (i - runStart > 1) {
        std::sort(idx.begin() + static_cast<std::ptrdiff_t>(runStart),
                  idx.begin() + static_cast<std::ptrdiff_t>(i),
                  [&packets](std::uint32_t a, std::uint32_t b) {
                    return canonicalKey(packets[a]) < canonicalKey(packets[b]);
                  });
      }
      runStart = i;
    }
  }
  return idx;
}

/// Binary heap of k cursors, emitting the globally smallest canonical key
/// first. k is single digits in practice (shards, or segments between
/// compactions), so the heap stays cache-resident.
template <typename Cursor>
class KWayMerge {
public:
  explicit KWayMerge(std::vector<Cursor> cursors)
      : cursors_(std::move(cursors)) {
    heap_.reserve(cursors_.size());
    for (std::size_t i = 0; i < cursors_.size(); ++i) {
      if (!cursors_[i].empty()) heap_.push_back(i);
    }
    std::make_heap(heap_.begin(), heap_.end(), later());
  }

  [[nodiscard]] bool done() const { return heap_.empty(); }
  [[nodiscard]] const net::Packet& head() const {
    return cursors_[heap_.front()].head();
  }
  /// Step past the current head, restoring the heap invariant.
  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later());
    if (cursors_[heap_.back()].advance()) {
      std::push_heap(heap_.begin(), heap_.end(), later());
    } else {
      heap_.pop_back();
    }
  }

  // Cursor-concept view of the merge itself, for composition.
  [[nodiscard]] bool empty() const { return done(); }
  bool advance() {
    pop();
    return !done();
  }

private:
  [[nodiscard]] auto later() const {
    return [this](std::size_t a, std::size_t b) {
      return canonicalKey(cursors_[a].head()) >
             canonicalKey(cursors_[b].head());
    };
  }

  std::vector<Cursor> cursors_;
  std::vector<std::size_t> heap_;
};

} // namespace v6t::telescope
