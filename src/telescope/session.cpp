#include "telescope/session.hpp"

#include <algorithm>

namespace v6t::telescope {

std::vector<std::pair<sim::SimTime, sim::SimTime>> normalizeGapWindows(
    std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps) {
  std::sort(gaps.begin(), gaps.end());
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  out.reserve(gaps.size());
  for (const auto& g : gaps) {
    if (!out.empty() && g.first <= out.back().second) {
      out.back().second = std::max(out.back().second, g.second);
    } else {
      out.push_back(g);
    }
  }
  return out;
}

bool silenceSpansGap(
    std::span<const std::pair<sim::SimTime, sim::SimTime>> gaps,
    sim::SimTime lastSeen, sim::SimTime now) {
  if (now <= lastSeen || gaps.empty()) return false;
  // The windows are sorted and disjoint (normalizeGapWindows merged
  // overlaps), so their end times increase monotonically: binary-search
  // the first window still open after lastSeen instead of scanning all.
  const auto it = std::lower_bound(
      gaps.begin(), gaps.end(), lastSeen,
      [](const std::pair<sim::SimTime, sim::SimTime>& g, sim::SimTime t) {
        return g.second <= t;
      });
  // The silent interval (lastSeen, now] overlaps the outage window: the
  // telescope was dark for part of the silence, so continuity cannot be
  // attested and the session must split. Later windows start even later,
  // so only the first candidate can overlap.
  return it != gaps.end() && now >= it->first;
}

void Sessionizer::setCaptureGaps(
    std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps) {
  gaps_ = normalizeGapWindows(std::move(gaps));
}

bool Sessionizer::spansGap(sim::SimTime lastSeen, sim::SimTime now) const {
  return silenceSpansGap(gaps_, lastSeen, now);
}

void Sessionizer::offer(const net::Packet& p, std::uint32_t idx) {
  const net::Ipv6Address key = p.src.maskedTo(bits(agg_));
  auto it = open_.find(key);
  if (it != open_.end()) {
    Open& o = it->second;
    const bool gapped = spansGap(o.lastSeen, p.ts);
    if (p.ts - o.lastSeen <= timeout_ && !gapped) {
      o.session.end = p.ts;
      o.session.packetIdx.push_back(idx);
      o.lastSeen = p.ts;
      return;
    }
    // Timeout exceeded or a capture gap interposed: the session is done.
    done_.push_back(std::move(o.session));
    open_.erase(it);
    if (gapped) {
      ++stats_.closedByGap;
    } else {
      ++stats_.closedByTimeout;
    }
  }
  ++stats_.opened;
  Open fresh;
  fresh.session.source = SourceKey{key, agg_};
  fresh.session.start = p.ts;
  fresh.session.end = p.ts;
  fresh.session.packetIdx = {idx};
  fresh.lastSeen = p.ts;
  open_.emplace(key, std::move(fresh));
}

std::vector<Session> Sessionizer::finish() {
  stats_.openAtFinish += open_.size();
  for (auto& [key, o] : open_) done_.push_back(std::move(o.session));
  open_.clear();
  std::vector<Session> out = std::move(done_);
  done_.clear();
  std::stable_sort(out.begin(), out.end(),
                   [](const Session& a, const Session& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.source.addr < b.source.addr;
                   });
  return out;
}

std::vector<Session> sessionize(
    std::span<const net::Packet> packets, SourceAgg agg,
    sim::Duration timeout, Sessionizer::Stats* statsOut,
    std::vector<std::pair<sim::SimTime, sim::SimTime>> captureGaps) {
  Sessionizer s{agg, timeout};
  if (!captureGaps.empty()) s.setCaptureGaps(std::move(captureGaps));
  for (std::uint32_t i = 0; i < packets.size(); ++i) s.offer(packets[i], i);
  auto out = s.finish();
  if (statsOut != nullptr) *statsOut = s.stats();
  return out;
}

void SessionTracker::setCaptureGaps(
    std::vector<std::pair<sim::SimTime, sim::SimTime>> gaps) {
  gaps_ = normalizeGapWindows(std::move(gaps));
}

void SessionTracker::offer(const net::Packet& p) {
  // Mirrors Sessionizer::offer decision for decision — same continuation
  // predicate, same stats — with O(1) per-session state.
  const net::Ipv6Address key = p.src.maskedTo(bits(agg_));
  auto it = open_.find(key);
  if (it != open_.end()) {
    Open& o = it->second;
    const bool gapped = silenceSpansGap(gaps_, o.lastSeen, p.ts);
    if (p.ts - o.lastSeen <= timeout_ && !gapped) {
      o.summary.end = p.ts;
      ++o.summary.packets;
      if (p.hasPayload()) ++o.summary.payloadPackets;
      o.lastSeen = p.ts;
      return;
    }
    done_.push_back(o.summary);
    open_.erase(it);
    if (gapped) {
      ++stats_.closedByGap;
    } else {
      ++stats_.closedByTimeout;
    }
  }
  ++stats_.opened;
  Open fresh;
  fresh.summary.source = SourceKey{key, agg_};
  fresh.summary.start = p.ts;
  fresh.summary.end = p.ts;
  fresh.summary.packets = 1;
  fresh.summary.payloadPackets = p.hasPayload() ? 1 : 0;
  fresh.summary.firstAsn = p.srcAsn;
  fresh.lastSeen = p.ts;
  open_.emplace(key, fresh);
}

std::vector<SessionSummary> SessionTracker::drainClosed() {
  std::vector<SessionSummary> out = std::move(done_);
  done_.clear();
  return out;
}

std::vector<SessionSummary> SessionTracker::finish() {
  stats_.openAtFinish += open_.size();
  for (auto& [key, o] : open_) done_.push_back(o.summary);
  open_.clear();
  return drainClosed();
}

std::vector<SessionSummary> summarizeSessions(
    std::span<const Session> sessions,
    std::span<const net::Packet> packets) {
  std::vector<SessionSummary> out;
  out.reserve(sessions.size());
  for (const Session& s : sessions) {
    SessionSummary sum;
    sum.source = s.source;
    sum.start = s.start;
    sum.end = s.end;
    sum.packets = s.packetCount();
    for (std::uint32_t idx : s.packetIdx) {
      if (packets[idx].hasPayload()) ++sum.payloadPackets;
    }
    sum.firstAsn = packets[s.packetIdx.front()].srcAsn;
    out.push_back(sum);
  }
  return out;
}

std::vector<SourceSessions> groupBySource(std::span<const Session> sessions,
                                          std::size_t distinctSourcesHint) {
  std::vector<SourceSessions> out;
  std::unordered_map<SourceKey, std::size_t> index;
  const std::size_t estimate =
      distinctSourcesHint != 0 ? distinctSourcesHint : sessions.size();
  out.reserve(estimate);
  index.reserve(estimate);
  for (std::uint32_t i = 0; i < sessions.size(); ++i) {
    const SourceKey& key = sessions[i].source;
    auto [it, fresh] = index.emplace(key, out.size());
    if (fresh) out.push_back(SourceSessions{key, {}});
    out[it->second].sessionIdx.push_back(i);
  }
  return out;
}

} // namespace v6t::telescope
