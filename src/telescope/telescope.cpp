#include "telescope/telescope.hpp"

namespace v6t::telescope {

std::string_view toString(Mode m) {
  switch (m) {
    case Mode::Passive: return "passive";
    case Mode::Traceable: return "traceable";
    case Mode::Active: return "active";
  }
  return "?";
}

bool Telescope::owns(const net::Ipv6Address& dst) const {
  for (const net::Prefix& p : config_.space) {
    if (p.contains(dst)) return true;
  }
  return false;
}

DeliveryResult Telescope::deliver(const net::Packet& p) {
  DeliveryResult result;
  if (!owns(p.dst)) return result;
  if (config_.excludedSubnet && config_.excludedSubnet->contains(p.dst)) {
    // Productive-subnet traffic is out of scope for the dataset (§3.1) but
    // those hosts do exist and answer.
    ++excluded_;
    result.responded = true;
    return result;
  }
  store_.append(p);
  ++captured_;
  result.captured = true;
  if (tracer_ != nullptr) {
    // (a, b) = (originId, originSeq): the same key the canonical capture
    // merge orders by, linking this record to the PacketSent that caused
    // it; traceId links all the way back to the BGP update.
    tracer_->record({p.ts.millis(), tracer_->context().traceId, p.originId,
                     p.originSeq, traceEntity_,
                     obs::trace::EventKind::PacketCaptured,
                     obs::trace::ClockDomain::Sim});
  }
  // An active telescope completes TCP handshakes from every address; it
  // also answers ICMPv6 echo (it is responsive, which is why the paper
  // notes T4 never appeared on the aliased-prefix list despite answering
  // everywhere).
  if (config_.mode == Mode::Active &&
      (p.proto == net::Protocol::Tcp ||
       (p.proto == net::Protocol::Icmpv6 &&
        p.icmpType == net::kIcmpEchoRequest))) {
    result.responded = true;
  }
  return result;
}

} // namespace v6t::telescope
