#include "telescope/fabric.hpp"

namespace v6t::telescope {

DeliveryResult DeliveryFabric::send(net::Packet p) {
  ++sent_;
  p.ts = engine_.now();
  if (auto src = sourceRoutes_.longestMatch(p.src)) {
    p.srcAsn = *src->second;
  }
  if (!rib_.isRoutable(p.dst)) {
    ++noRoute_;
    return {};
  }
  for (Telescope* t : telescopes_) {
    if (t->owns(p.dst)) return t->deliver(p);
  }
  ++toVoid_;
  return {};
}

} // namespace v6t::telescope
