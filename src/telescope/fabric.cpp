#include "telescope/fabric.hpp"

namespace v6t::telescope {

DeliveryResult DeliveryFabric::send(net::Packet p) {
  ++sent_;
  p.ts = engine_.now();
  if (auto src = sourceRoutes_.longestMatch(p.src)) {
    p.srcAsn = *src->second;
  }
  PacketTap::Verdict verdict;
  if (tap_ != nullptr) {
    verdict = tap_->onSend(p);
    if (verdict.drop) return {};
  }
  if (!rib_.isRoutable(p.dst)) {
    ++noRoute_;
    return {};
  }
  for (std::size_t i = 0; i < telescopes_.size(); ++i) {
    Telescope* t = telescopes_[i];
    if (!t->owns(p.dst)) continue;
    if (tap_ != nullptr && !tap_->onDeliver(i, p)) {
      // Capture outage: the telescope is dark — nothing recorded, nothing
      // answered (an active telescope that is down cannot respond either).
      return {};
    }
    const DeliveryResult result = t->deliver(p);
    if (verdict.duplicate) t->deliver(p);
    return result;
  }
  ++toVoid_;
  return {};
}

} // namespace v6t::telescope
