// v6t::scanner — the scanner agent.
//
// A Scanner is one localizable scan source: a /64 source network with
// either a stable /128 or per-session rotating interface IDs, an origin
// AS, a tool (payload fingerprint), and a strategy triple matching the
// paper's taxonomy — temporal behavior × network selection × address
// selection. Agents learn about target prefixes through a knowledge
// channel (BGP feed, hitlist, DNS, static configuration, or responsive
// exploration) and emit packets through the delivery fabric.
//
// Invariant: a scanner's consecutive sessions are separated by more than
// the sessionization timeout, so one generated session maps to one
// measured session — the calibration in DESIGN.md §6 depends on it.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "bgp/feed.hpp"
#include "bgp/hitlist.hpp"
#include "net/tool_signatures.hpp"
#include "obs/trace.hpp"
#include "scanner/target_gen.hpp"
#include "sim/engine.hpp"
#include "telescope/fabric.hpp"

namespace v6t::scanner {

enum class TemporalBehavior : std::uint8_t { OneOff, Periodic, Intermittent };
enum class NetSelStrategy : std::uint8_t {
  SinglePrefix,
  SizeIndependent,
  SizeDependent,
  Inconsistent,
};

/// How the scanner learns what to scan.
enum class Knowledge : std::uint8_t {
  BgpReactive, // consumes the update feed (collector lag)
  LiveBgpMonitor, // consumes the feed in near real time (< 30 min, §7.2)
  HitlistDriven, // learns prefixes only when they get listed
  DnsAttractor, // knows a single named address from the start
  StaticList, // configured with fixed prefixes (long-announced space)
  SubprefixSweeper, // systematically iterates sub-prefixes of huge covering
                    // prefixes (how silent /48s inside a /29 get found)
  ResponsiveExplorer, // sweeps like the above but drills into subnets that
                      // answered (dynamic-TGA behavior)
};

/// Stable metric/trace label for a knowledge class (the per-class key of
/// bgp.reaction_delay_seconds.<class>).
[[nodiscard]] std::string_view toClassName(Knowledge k);

/// Per-packet protocol and port selection.
struct ProtocolProfile {
  double icmpWeight = 1.0;
  double tcpWeight = 0.0;
  double udpWeight = 0.0;
  /// Candidate TCP destination ports with weights (parallel arrays).
  std::vector<std::uint16_t> tcpPorts{net::kPortHttp};
  std::vector<double> tcpPortWeights{1.0};
  /// UDP: either the traceroute range or fixed ports.
  bool udpTracerouteRange = true;
  std::vector<std::uint16_t> udpPorts;
  std::vector<double> udpPortWeights;
};

struct ScannerConfig {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;

  // --- identity ---
  net::Prefix sourceNet; // the /64 the source lives in
  net::Asn asn;
  bool rotateSourceIid = false; // fresh IID per session (T2-style rotators)

  // --- tooling ---
  net::ScanTool tool = net::ScanTool::Unknown;
  double payloadProbability = 0.0; // share of packets carrying a payload
  /// Topology probing: cycle small incrementing hop limits (traceroute,
  /// Yarrp, Atlas) instead of an OS-default initial value.
  bool tracerouteHops = false;

  // --- temporal behavior ---
  TemporalBehavior temporal = TemporalBehavior::OneOff;
  sim::Duration period = sim::days(2); // Periodic
  double sweepsPerWeek = 1.0; // Intermittent (Poisson rate)
  sim::SimTime activeFrom; // agent comes online (default: epoch)
  /// Agent retires; defaults to "never".
  sim::SimTime activeUntil{std::numeric_limits<std::int64_t>::max()};

  // --- network selection ---
  NetSelStrategy netsel = NetSelStrategy::SinglePrefix;
  /// Probability that the scanner cares about a prefix it learns.
  double prefixInterest = 1.0;
  /// Sweep immediately on learning a new prefix (live BGP monitors, §7.2).
  bool sweepOnLearn = false;
  /// Single-prefix scanners: target the most recently learned prefix
  /// instead of an arbitrary one (burst campaigns chasing announcements).
  bool preferNewest = false;

  // --- address selection ---
  TargetStrategy addrsel = TargetStrategy::LowByte;

  // --- session shape ---
  /// Sessions emitted per sweep at a fixed target (rotating vertical
  /// scanners fire one session per source identity).
  int sessionsPerSweep = 1;
  double packetsPerSessionMean = 8.0; // lognormal mean (approx.)
  double packetsPerSessionSigma = 0.8;
  std::uint64_t packetsPerSessionCap = 200'000;
  sim::Duration interPacketMean = sim::seconds(2);

  // --- knowledge ---
  Knowledge knowledge = Knowledge::BgpReactive;
  bgp::PropagationModel reaction; // lag for feed-based knowledge
  std::vector<net::Prefix> staticPrefixes; // StaticList / sweepers
  std::optional<net::Ipv6Address> fixedTarget; // DnsAttractor
  /// For sweepers/explorers: the telescope sub-prefix length they iterate
  /// (e.g. 48 — walking every /48 of the covering prefix).
  unsigned sweepGranularity = 48;
  /// Sweepers/explorers: probability per sweep that the systematic walk
  /// reaches one of the observable sub-prefixes (importance sampling of a
  /// 2^19-subprefix iteration — see class comment).
  double hitProbability = 0.05;
  /// Explorers: packets per exploratory probe session (drill sessions use
  /// packetsPerSessionMean).
  std::uint64_t exploreProbePackets = 2;
  /// Explorers: mean gap between deep scans of a responsive subnet.
  sim::Duration drillInterval = sim::weeks(3);

  ProtocolProfile protocol;
};

/// Aggregate counters the generator keeps about itself (tests compare them
/// against estimator output; the analysis pipeline never reads them).
struct ScannerSelfStats {
  std::uint64_t sessionsEmitted = 0;
  std::uint64_t packetsEmitted = 0;
  std::uint64_t prefixesLearned = 0;
  std::uint64_t responsesSeen = 0;
};

class Scanner {
public:
  Scanner(ScannerConfig config, sim::Engine& engine,
          telescope::DeliveryFabric& fabric);

  Scanner(const Scanner&) = delete;
  Scanner& operator=(const Scanner&) = delete;

  /// Wire up knowledge channels and schedule the first activity.
  /// `feed`/`hitlist` may be nullptr when the knowledge mode doesn't need
  /// them; `tracer` (the owning shard's flight recorder, also nullable)
  /// makes probe emission causally attributable to the BGP update that
  /// triggered it. Call exactly once before the engine runs.
  void start(bgp::BgpFeed* feed, bgp::HitlistService* hitlist,
             obs::trace::Tracer* tracer = nullptr);

  [[nodiscard]] const ScannerConfig& config() const { return config_; }
  [[nodiscard]] const ScannerSelfStats& stats() const { return stats_; }
  [[nodiscard]] net::Ipv6Address currentSource() const { return source_; }

  /// The source address a freshly constructed Scanner would start with —
  /// computable from the config alone, so population planning can register
  /// rDNS names without instantiating agents.
  [[nodiscard]] static net::Ipv6Address initialSourceFor(
      const ScannerConfig& config);

private:
  [[nodiscard]] static net::Ipv6Address deriveSource(
      const ScannerConfig& config, sim::Rng& rng,
      const net::Ipv6Address& current);
  /// The BGP update a learned prefix traces back to; traceId 0 = causeless
  /// (bootstrap table dump, hitlist, static configuration).
  struct Cause {
    std::uint64_t traceId = 0;
    std::int64_t originTsMillis = 0;
  };
  void learnPrefix(const net::Prefix& prefix);
  void forgetPrefix(const net::Prefix& prefix);
  void ensureScheduled();
  void scheduleNextSweep(sim::SimTime notBefore);
  void runSweep();
  void scheduleDrill(const net::Prefix& hot);
  /// Queue one session into `prefix` (or at the fixed target).
  void enqueueSession(const net::Prefix& prefix);
  void emitSession(const net::Prefix& prefix, sim::SimTime start,
                   const Cause& cause);
  struct SessionState;
  void sessionStep(const std::shared_ptr<SessionState>& state);
  net::Packet makePacket(const net::Ipv6Address& dst);
  void rotateSource();
  [[nodiscard]] std::uint64_t sessionSize();

  ScannerConfig config_;
  sim::Engine& engine_;
  telescope::DeliveryFabric& fabric_;
  sim::Rng rng_;
  net::Ipv6Address source_;
  std::vector<net::Prefix> known_; // learned target prefixes, learn order
  std::set<net::Prefix> ignored_; // learned but rolled "not interested"
  bool sweepScheduled_ = false;
  bool learnSweepPending_ = false; // sweep-on-learn trigger outstanding
  bool anySweepDone_ = false;
  int sweepCount_ = 0;
  /// Serialization point: next session may start no earlier than this.
  sim::SimTime nextFree_;
  ScannerSelfStats stats_;
  /// Explorer state: subnets that responded and deserve deep scans.
  std::set<net::Prefix> responsive_;
  /// Flight recorder (nullable). Cause bookkeeping below runs whether or
  /// not a tracer is attached, touches no RNG stream, and only feeds
  /// observation — so tracing cannot perturb the simulation.
  obs::trace::Tracer* tracer_ = nullptr;
  Cause pendingCause_; // set around the feed callback's learnPrefix
  std::map<net::Prefix, Cause> causeByPrefix_; // consumed by first session
};

} // namespace v6t::scanner
