#include "scanner/tga.hpp"

#include <algorithm>

namespace v6t::scanner {

DynamicTga::DynamicTga(net::Prefix base, Params params, std::uint64_t seed)
    : base_(std::move(base)), params_(params), rng_(seed) {
  // Depth 0 corresponds to the first whole nibble at or after the base
  // prefix length (partial nibbles of odd prefix lengths are treated as
  // part of the fixed base).
  firstNibble_ = (base_.length() + 3) / 4;
  const unsigned available = 32 - firstNibble_;
  params_.maxDepth = std::min(params_.maxDepth, available);
}

unsigned DynamicTga::nibbleAt(const net::Ipv6Address& addr,
                              unsigned depth) const {
  return addr.nibble(firstNibble_ + depth);
}

void DynamicTga::addSeed(const net::Ipv6Address& addr) {
  if (!base_.contains(addr)) return;
  ++seeds_;
  insert(root_, addr, 0, 1.0);
}

void DynamicTga::insert(Node& node, const net::Ipv6Address& addr,
                        unsigned depth, double weight) {
  node.weight += weight;
  ++node.seeds;
  if (depth >= params_.maxDepth) return;
  if (!node.split && node.seeds < params_.splitThreshold) return;
  node.split = true;
  const unsigned nib = nibbleAt(addr, depth);
  auto& child = node.children[nib];
  if (!child) {
    child = std::make_unique<Node>();
    ++nodes_;
  }
  insert(*child, addr, depth + 1, weight);
}

net::Ipv6Address DynamicTga::draw(const Node& node, unsigned depth,
                                  net::Ipv6Address partial) {
  // Descend into children proportional to weight while structure exists;
  // below the frontier, complete the address uniformly at random.
  if (depth < params_.maxDepth && node.split) {
    double weights[16];
    double total = 0.0;
    for (int i = 0; i < 16; ++i) {
      weights[i] = node.children[i] ? std::max(node.children[i]->weight, 0.0)
                                    : 0.0;
      total += weights[i];
    }
    if (total > 0.0) {
      const std::size_t pick = rng_.weightedPick(weights);
      if (pick < 16 && node.children[pick]) {
        partial.setNibble(firstNibble_ + depth,
                          static_cast<std::uint8_t>(pick));
        return draw(*node.children[pick], depth + 1, partial);
      }
    }
  }
  // Structured completion of everything at and below this depth: network
  // nibbles are biased toward zero (RFC 7707: real allocations cluster in
  // low-numbered subnets), the IID part is uniform.
  for (unsigned n = firstNibble_ + depth; n < 32; ++n) {
    if (n < 16 && rng_.chance(0.65)) {
      partial.setNibble(n, 0);
    } else {
      partial.setNibble(n, static_cast<std::uint8_t>(rng_.below(16)));
    }
  }
  // Nudge the completion toward plausible host addresses: half the time
  // replace the IID with a low-byte one (dense regions are full of them).
  if (rng_.chance(0.5)) {
    const net::Ipv6Address masked = partial.maskedTo(64);
    partial = masked.plus(1 + rng_.below(255));
  }
  return partial;
}

std::vector<net::Ipv6Address> DynamicTga::nextCandidates(std::size_t n) {
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (root_.weight <= 0.0 || rng_.chance(params_.exploreShare)) {
      // Pure exploration: uniform in the base prefix.
      const net::u128 offset =
          (static_cast<net::u128>(rng_.next()) << 64) | rng_.next();
      out.push_back(base_.addressAt(offset));
    } else {
      out.push_back(draw(root_, 0, base_.address()));
    }
  }
  probes_ += n;
  return out;
}

void DynamicTga::feedback(const net::Ipv6Address& candidate,
                          bool responsive) {
  if (!base_.contains(candidate)) return;
  if (responsive) {
    ++hits_;
    insert(root_, candidate, 0, params_.hitBonus);
  } else {
    // Decay along the path to the candidate's region.
    Node* node = &root_;
    unsigned depth = 0;
    while (node != nullptr) {
      node->weight = std::max(node->weight - params_.missPenalty, 0.05);
      if (depth >= params_.maxDepth || !node->split) break;
      node = node->children[nibbleAt(candidate, depth)].get();
      ++depth;
    }
  }
}

} // namespace v6t::scanner
