#include "scanner/population.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace v6t::scanner {

namespace {

/// Two-letter country codes assigned round-robin to the AS universe; the
/// paper observes sources from 127 countries.
std::string countryCode(std::size_t i) {
  std::string code = "AA";
  code[0] = static_cast<char>('A' + (i / 26) % 26);
  code[1] = static_cast<char>('A' + i % 26);
  return code;
}

} // namespace

std::uint64_t PopulationBuilder::scaledCount(double paperCount) const {
  const double scaled = paperCount * params_.sourceScale;
  const auto n = static_cast<std::uint64_t>(scaled + 0.5);
  return std::max<std::uint64_t>(n, paperCount > 0 ? 1 : 0);
}

void PopulationBuilder::buildAsUniverse(PopulationPlan& plan) {
  // Table 8 mix over ~2k source ASes (scaled down with the population).
  struct Quota {
    net::NetworkType type;
    std::size_t count;
    double researchShare;
  };
  const Quota quotas[] = {
      {net::NetworkType::Hosting, 800, 0.35},
      {net::NetworkType::Isp, 700, 0.80}, // Atlas probes dominate ISP space
      {net::NetworkType::Education, 120, 0.95},
      {net::NetworkType::Business, 90, 0.05},
      {net::NetworkType::Government, 8, 0.0},
      {net::NetworkType::Unknown, 50, 0.0},
  };
  std::size_t index = 0;
  for (const Quota& q : quotas) {
    for (std::size_t i = 0; i < q.count; ++i, ++index) {
      AsSlot slot;
      slot.asn = net::Asn{static_cast<std::uint32_t>(64500 + index)};
      // Source space: one /32 per AS out of a synthetic 2400::/12 block,
      // far away from the telescope prefixes.
      slot.space = net::Prefix{
          net::Ipv6Address{(0x2400ULL << 48) | (static_cast<std::uint64_t>(
                                                    index)
                                                << 16),
                           0},
          32};
      slot.type = q.type;
      slot.research = rng_.chance(q.researchShare);
      asSlots_.push_back(slot);

      net::AsInfo info;
      info.asn = slot.asn;
      info.name = std::string{"AS-"} + std::string{net::toString(q.type)} +
                  "-" + std::to_string(index);
      info.type = q.type;
      info.country = countryCode(rng_.below(130));
      info.research = slot.research;
      plan.asRegistry.add(info);
    }
  }
}

const PopulationBuilder::AsSlot& PopulationBuilder::pickAs(
    net::NetworkType type) {
  // Deterministic scan for a random slot of the requested type.
  const std::size_t start = rng_.below(asSlots_.size());
  for (std::size_t k = 0; k < asSlots_.size(); ++k) {
    const AsSlot& slot = asSlots_[(start + k) % asSlots_.size()];
    if (slot.type == type) return slot;
  }
  return asSlots_.front();
}

net::Prefix PopulationBuilder::allocateSourceNet(const AsSlot& slot) {
  // A fresh /64 inside the AS's /32.
  const std::uint64_t subnet = nextSourceNet_++;
  return net::Prefix{
      net::Ipv6Address{slot.space.address().hi64() | (subnet & 0xffffffffULL),
                       0},
      64};
}

ScannerConfig PopulationBuilder::baseConfig() {
  ScannerConfig cfg;
  cfg.id = nextScannerId_++;
  cfg.seed = rng_.next();
  cfg.activeFrom = params_.start;
  cfg.activeUntil = params_.end;
  return cfg;
}

// ---------------------------------------------------------------- groups

void PopulationBuilder::addAtlasProbes(PopulationPlan& plan) {
  // One-off topology probes: 55% of T1's split-period sources. The pool is
  // larger than the observed count — probes with no interest roll never
  // fire and stay invisible.
  const std::uint64_t pool = scaledCount(6483 * 2.8);
  const sim::Duration span = params_.end - params_.start;
  for (std::uint64_t i = 0; i < pool; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(rng_.chance(0.72) ? net::NetworkType::Isp
                                                  : net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.tool = net::ScanTool::RipeAtlas;
    cfg.payloadProbability = 1.0;
    cfg.tracerouteHops = true;
    cfg.temporal = TemporalBehavior::OneOff;
    // Activation staggered over the whole experiment (a little before the
    // start too — the platform predates the telescope).
    const auto offset = static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(span.millis()));
    cfg.activeFrom = params_.start + sim::millis(offset) - sim::days(3);
    cfg.netsel = NetSelStrategy::SinglePrefix;
    cfg.prefixInterest = 0.08;
    cfg.addrsel = TargetStrategy::LowByte; // always the ::1 addresses
    cfg.packetsPerSessionMean = 3.0;
    cfg.packetsPerSessionSigma = 0.3;
    cfg.interPacketMean = sim::seconds(1);
    cfg.knowledge = Knowledge::BgpReactive;
    cfg.reaction = {sim::hours(1), sim::days(5)};
    cfg.protocol = ProtocolProfile{}; // pure ICMPv6
    // A probe's stable address has an rDNS name pointing at the platform.
    plan.rdns.add(Scanner::initialSourceFor(cfg),
                  "p" + std::to_string(cfg.id) + ".probe.atlas.example");
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addResearchFarm(PopulationPlan& plan) {
  // Alpha-Strike-like: one hosting AS, many /64 sources, single-prefix
  // structured scans, TCP-heavy, 58% of hosting-category sources.
  const AsSlot& farmAs = pickAs(net::NetworkType::Hosting);
  const std::uint64_t pool = scaledCount(3842 * 1.3);
  // The farm ramps up with the split experiment; during the baseline T1
  // sees almost no TCP sources (Table 5b).
  const sim::SimTime rampUp = params_.start + sim::weeks(11);
  const sim::Duration span = params_.end - rampUp;
  for (std::uint64_t i = 0; i < pool; ++i) {
    ScannerConfig cfg = baseConfig();
    cfg.sourceNet = allocateSourceNet(farmAs);
    cfg.asn = farmAs.asn;
    cfg.tool = net::ScanTool::Unknown;
    cfg.payloadProbability = 0.25;
    const double roll = rng_.uniform();
    if (roll < 0.45) {
      cfg.temporal = TemporalBehavior::OneOff;
      const auto offset = static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(span.millis()));
      cfg.activeFrom = rampUp + sim::millis(offset);
    } else if (roll < 0.80) {
      cfg.temporal = TemporalBehavior::Intermittent;
      cfg.sweepsPerWeek = 0.8 + rng_.uniform() * 1.4;
      const auto offset = static_cast<std::int64_t>(
          rng_.uniform() * 0.7 * static_cast<double>(span.millis()));
      cfg.activeFrom = rampUp + sim::millis(offset);
      cfg.activeUntil =
          std::min(params_.end, cfg.activeFrom + sim::weeks(3 + static_cast<std::int64_t>(rng_.below(8))));
    } else {
      cfg.temporal = TemporalBehavior::Periodic;
      cfg.period = sim::days(5 + static_cast<std::int64_t>(rng_.below(9)));
      cfg.activeFrom = rampUp;
    }
    cfg.netsel = NetSelStrategy::SinglePrefix;
    cfg.prefixInterest = 0.25;
    const double addrRoll = rng_.uniform();
    cfg.addrsel = addrRoll < 0.6   ? TargetStrategy::LowByte
                  : addrRoll < 0.8 ? TargetStrategy::EmbeddedIpv4
                                   : TargetStrategy::EmbeddedPort;
    cfg.packetsPerSessionMean = 6.0;
    cfg.packetsPerSessionSigma = 0.7;
    cfg.interPacketMean = sim::seconds(3);
    cfg.knowledge = Knowledge::BgpReactive;
    cfg.reaction = {sim::hours(2), sim::days(2)};
    cfg.protocol.icmpWeight = 0.25;
    cfg.protocol.tcpWeight = 0.75;
    cfg.protocol.tcpPorts = {net::kPortHttp, net::kPortHttps, net::kPortFtp,
                             net::kPortSsh, net::kPortHttpAlt};
    cfg.protocol.tcpPortWeights = {0.52, 0.26, 0.08, 0.07, 0.07};
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addSizeIndependentScanners(PopulationPlan& plan) {
  // BGP-aware research scanners that cover every announced prefix with a
  // roughly equal number of sessions. Carry the public tool fingerprints.
  struct ToolQuota {
    net::ScanTool tool;
    double paperSources;
    bool periodic;
    bool fullSpan; // observed over the complete period (Yarrp6, Ark)
  };
  const ToolQuota tools[] = {
      {net::ScanTool::Yarrp6, 22, true, true},
      {net::ScanTool::CaidaArk, 8, true, true},
      {net::ScanTool::SixScan, 12, true, false},
      {net::ScanTool::SixSeeks, 20, false, false},
      {net::ScanTool::Htrace6, 36, false, false},
      {net::ScanTool::Traceroute, 76, false, false},
      {net::ScanTool::Unknown, 860, true, false},
  };
  const sim::Duration span = params_.end - params_.start;
  for (const ToolQuota& quota : tools) {
    const std::uint64_t count = scaledCount(quota.paperSources);
    for (std::uint64_t i = 0; i < count; ++i) {
      ScannerConfig cfg = baseConfig();
      const double typeRoll = rng_.uniform();
      const AsSlot& slot =
          pickAs(typeRoll < 0.5    ? net::NetworkType::Hosting
                 : typeRoll < 0.82 ? net::NetworkType::Isp
                 : typeRoll < 0.93 ? net::NetworkType::Education
                 : typeRoll < 0.99 ? net::NetworkType::Business
                                   : net::NetworkType::Government);
      cfg.sourceNet = allocateSourceNet(slot);
      cfg.asn = slot.asn;
      cfg.tool = quota.tool;
      cfg.payloadProbability = quota.tool == net::ScanTool::Unknown ? 0.4 : 0.9;
      cfg.tracerouteHops = quota.tool != net::ScanTool::Unknown;
      if (quota.periodic || rng_.chance(0.55)) {
        cfg.temporal = TemporalBehavior::Periodic;
        cfg.period = quota.tool == net::ScanTool::CaidaArk
                         ? sim::days(17)
                         : sim::days(2 + static_cast<std::int64_t>(
                                            rng_.below(8)));
      } else {
        cfg.temporal = TemporalBehavior::Intermittent;
        cfg.sweepsPerWeek = 0.5 + rng_.uniform();
      }
      if (quota.fullSpan) {
        cfg.activeFrom = params_.start;
      } else {
        const auto offset = static_cast<std::int64_t>(
            rng_.uniform() * 0.85 * static_cast<double>(span.millis()));
        cfg.activeFrom = params_.start + sim::millis(offset);
        cfg.activeUntil = std::min(
            params_.end,
            cfg.activeFrom +
                sim::weeks(1 + static_cast<std::int64_t>(rng_.below(4))));
      }
      // Htrace6 shows up before its public code release — late in the
      // baseline period (§7.2's oddity).
      if (quota.tool == net::ScanTool::Htrace6) {
        cfg.activeFrom = std::max(cfg.activeFrom, params_.start + sim::weeks(10));
      }
      cfg.netsel = quota.tool == net::ScanTool::Yarrp6
                       ? NetSelStrategy::SinglePrefix
                       : NetSelStrategy::SizeIndependent;
      cfg.prefixInterest = 0.85;
      const double addrRoll = rng_.uniform();
      cfg.addrsel = addrRoll < 0.40   ? TargetStrategy::RandomIid
                    : addrRoll < 0.65 ? TargetStrategy::LowByte
                    : addrRoll < 0.80 ? TargetStrategy::SequentialSubnets
                    : addrRoll < 0.88 ? TargetStrategy::TreeWalk
                    : addrRoll < 0.94 ? TargetStrategy::PatternBytes
                                      : TargetStrategy::IeeeDerived;
      // Topology sessions are packet-rich; volume-scaled.
      cfg.packetsPerSessionMean =
          std::max(4.0, 400.0 * params_.volumeScale / params_.sourceScale);
      cfg.packetsPerSessionSigma = 1.0;
      cfg.interPacketMean = sim::millis(600);
      cfg.knowledge = Knowledge::BgpReactive;
      cfg.reaction = {sim::minutes(30), sim::hours(30)};
      // Mostly ICMPv6 with UDP-traceroute mixed in.
      cfg.protocol.icmpWeight = 0.90;
      cfg.protocol.udpWeight = 0.07;
      cfg.protocol.tcpWeight = 0.03;
      cfg.protocol.udpTracerouteRange = true;
      cfg.protocol.tcpPorts = {net::kPortHttp, net::kPortHttps};
      cfg.protocol.tcpPortWeights = {0.7, 0.3};
      if (quota.tool == net::ScanTool::CaidaArk) {
        plan.rdns.add(Scanner::initialSourceFor(cfg),
                      "mon" + std::to_string(cfg.id) + ".ark.caida.example");
      }
      plan.specs.push_back(std::move(cfg));
    }
  }
}

void PopulationBuilder::addLiveBgpMonitors(PopulationPlan& plan) {
  // 18 sources arrive within 30 minutes of every new announcement (§7.2).
  const std::uint64_t count = scaledCount(18);
  for (std::uint64_t i = 0; i < count; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.tool = net::ScanTool::Unknown;
    cfg.payloadProbability = 0.5;
    cfg.temporal = TemporalBehavior::Periodic;
    cfg.period = sim::days(4);
    cfg.netsel = NetSelStrategy::SizeIndependent;
    cfg.prefixInterest = 1.0;
    cfg.sweepOnLearn = true;
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.packetsPerSessionMean = 5.0;
    cfg.packetsPerSessionSigma = 0.5;
    cfg.interPacketMean = sim::seconds(1);
    cfg.knowledge = Knowledge::LiveBgpMonitor;
    cfg.reaction = {sim::seconds(45), sim::minutes(6)};
    cfg.protocol.icmpWeight = 0.6;
    cfg.protocol.tcpWeight = 0.4;
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addInconsistentScanners(PopulationPlan& plan) {
  // 64 sources producing almost half of all sessions: high-rate scanners
  // that first prefer the large prefixes, then flatten out (§7.1).
  const std::uint64_t count = scaledCount(64);
  for (std::uint64_t i = 0; i < count; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(i % 5 == 0 ? net::NetworkType::Education
                                           : net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.tool = net::ScanTool::Unknown;
    cfg.payloadProbability = 0.6;
    if (i % 5 == 4) {
      cfg.temporal = TemporalBehavior::Intermittent;
      cfg.sweepsPerWeek = 2.5;
    } else {
      cfg.temporal = TemporalBehavior::Periodic;
      cfg.period = sim::hours(60 + static_cast<std::int64_t>(rng_.below(48)));
    }
    cfg.netsel = NetSelStrategy::Inconsistent;
    cfg.prefixInterest = 1.0;
    cfg.addrsel = rng_.chance(0.5) ? TargetStrategy::RandomIid
                                   : TargetStrategy::LowByte;
    cfg.packetsPerSessionMean =
        std::max(3.0, 220.0 * params_.volumeScale / params_.sourceScale);
    cfg.packetsPerSessionSigma = 0.9;
    cfg.interPacketMean = sim::millis(800);
    cfg.knowledge = Knowledge::BgpReactive;
    cfg.reaction = {sim::minutes(20), sim::hours(8)};
    cfg.protocol.icmpWeight = 0.7;
    cfg.protocol.tcpWeight = 0.2;
    cfg.protocol.udpWeight = 0.1;
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addSizeDependentScanners(PopulationPlan& plan) {
  // 24 sources that probe large prefixes only — a /48-only telescope
  // would never see them.
  const std::uint64_t count = scaledCount(24);
  for (std::uint64_t i = 0; i < count; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.temporal = TemporalBehavior::Intermittent;
    cfg.sweepsPerWeek = 1.2;
    cfg.netsel = NetSelStrategy::SizeDependent;
    cfg.prefixInterest = 1.0;
    cfg.addrsel = TargetStrategy::FullRandom;
    cfg.packetsPerSessionMean =
        std::max(3.0, 80.0 * params_.volumeScale / params_.sourceScale);
    cfg.packetsPerSessionSigma = 0.8;
    cfg.interPacketMean = sim::seconds(1);
    cfg.knowledge = Knowledge::BgpReactive;
    cfg.reaction = {sim::hours(1), sim::hours(20)};
    cfg.protocol.icmpWeight = 1.0;
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addDnsAttractorScanners(PopulationPlan& plan) {
  // T2's signature crowd: scanners that found the one DNS-named address
  // (it co-exists in IPv4 and sits on a popularity list) and come back for
  // its web ports. Includes the /64 source rotators only T2 attracts.
  const std::uint64_t stable = scaledCount(2000);
  const std::uint64_t rotators = scaledCount(350);
  const sim::Duration span = params_.end - params_.start;
  for (std::uint64_t i = 0; i < stable + rotators; ++i) {
    ScannerConfig cfg = baseConfig();
    const double typeRoll = rng_.uniform();
    const AsSlot& slot =
        pickAs(typeRoll < 0.55   ? net::NetworkType::Hosting
               : typeRoll < 0.9  ? net::NetworkType::Isp
               : typeRoll < 0.97 ? net::NetworkType::Business
                                 : net::NetworkType::Unknown);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.rotateSourceIid = i >= stable;
    cfg.tool = net::ScanTool::Unknown;
    cfg.payloadProbability = 0.3;
    const double roll = rng_.uniform();
    if (roll < 0.5) {
      cfg.temporal = TemporalBehavior::OneOff;
      const auto offset = static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(span.millis()));
      cfg.activeFrom = params_.start + sim::millis(offset);
    } else if (roll < 0.85) {
      cfg.temporal = TemporalBehavior::Intermittent;
      cfg.sweepsPerWeek = cfg.rotateSourceIid ? 0.8 : 0.8;
      const auto offset = static_cast<std::int64_t>(
          rng_.uniform() * 0.6 * static_cast<double>(span.millis()));
      cfg.activeFrom = params_.start + sim::millis(offset);
    } else {
      cfg.temporal = TemporalBehavior::Periodic;
      cfg.period = sim::days(1 + static_cast<std::int64_t>(rng_.below(13)));
    }
    cfg.knowledge = Knowledge::DnsAttractor;
    cfg.fixedTarget = params_.t2Attractor;
    cfg.sessionsPerSweep = cfg.rotateSourceIid ? 3 : 1;
    cfg.packetsPerSessionMean = 2.5;
    cfg.packetsPerSessionSigma = 0.6;
    cfg.interPacketMean = sim::seconds(2);
    cfg.protocol.icmpWeight = 0.15;
    cfg.protocol.tcpWeight = 0.8;
    cfg.protocol.udpWeight = 0.05;
    cfg.protocol.tcpPorts = {net::kPortHttp, net::kPortHttps, net::kPortSsh,
                             net::kPortHttpAlt, net::kPortFtp};
    cfg.protocol.tcpPortWeights = {0.55, 0.3, 0.05, 0.05, 0.05};
    cfg.protocol.udpTracerouteRange = false;
    cfg.protocol.udpPorts = {net::kPortDns, net::kPortSnmp, net::kPortIsakmp,
                             net::kPortNtp};
    cfg.protocol.udpPortWeights = {0.5, 0.2, 0.15, 0.15};
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addStaticListScanners(PopulationPlan& plan) {
  // Scanners working through long-known announced space: they have T2's
  // 13-year-old /48 on file and revisit it, BGP changes or not.
  const std::uint64_t count = scaledCount(900);
  const sim::Duration span = params_.end - params_.start;
  for (std::uint64_t i = 0; i < count; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(rng_.chance(0.6) ? net::NetworkType::Hosting
                                                 : net::NetworkType::Isp);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.tool = net::ScanTool::Unknown;
    cfg.payloadProbability = 0.35;
    const double roll = rng_.uniform();
    if (roll < 0.45) {
      cfg.temporal = TemporalBehavior::OneOff;
      const auto offset = static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(span.millis()));
      cfg.activeFrom = params_.start + sim::millis(offset);
    } else if (roll < 0.8) {
      cfg.temporal = TemporalBehavior::Intermittent;
      cfg.sweepsPerWeek = 0.5;
    } else {
      cfg.temporal = TemporalBehavior::Periodic;
      cfg.period = sim::days(3 + static_cast<std::int64_t>(rng_.below(11)));
    }
    cfg.netsel = NetSelStrategy::SinglePrefix;
    cfg.knowledge = Knowledge::StaticList;
    cfg.staticPrefixes = {params_.t2Prefix};
    const double addrRoll = rng_.uniform();
    cfg.addrsel = addrRoll < 0.5    ? TargetStrategy::LowByte
                  : addrRoll < 0.75 ? TargetStrategy::RandomIid
                  : addrRoll < 0.9  ? TargetStrategy::SubnetAnycast
                                    : TargetStrategy::EmbeddedIpv4;
    cfg.packetsPerSessionMean = 4.0;
    cfg.packetsPerSessionSigma = 0.8;
    cfg.interPacketMean = sim::seconds(2);
    cfg.protocol.icmpWeight = 0.45;
    cfg.protocol.tcpWeight = 0.45;
    cfg.protocol.udpWeight = 0.10;
    cfg.protocol.tcpPorts = {net::kPortHttp, net::kPortHttps, net::kPortSsh};
    cfg.protocol.tcpPortWeights = {0.6, 0.3, 0.1};
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addSweepersAndExplorers(PopulationPlan& plan) {
  // Systematic sub-prefix walkers over the covering /29 — the only way
  // silent space gets touched at all. Unscaled: this traffic is a trickle.
  for (int i = 0; i < 7; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.temporal = TemporalBehavior::Intermittent;
    cfg.sweepsPerWeek = 0.6;
    cfg.knowledge = Knowledge::SubprefixSweeper;
    cfg.staticPrefixes = {params_.t3Prefix, params_.t4Prefix};
    cfg.hitProbability = 0.35;
    cfg.exploreProbePackets = 2;
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.interPacketMean = sim::seconds(5);
    cfg.protocol.icmpWeight = 1.0;
    plan.specs.push_back(std::move(cfg));
  }
  // Shallow probers of responsive space: T4 answers from every address, so
  // its space circulates on responsive-address lists and draws a steady
  // crowd of light ICMP probers that never touch the silent T3 (the paper:
  // 253 sources at T4 vs 7 at T3 in twelve weeks, 97% ICMPv6).
  const std::uint64_t probers = 240;
  const sim::Duration span = params_.end - params_.start;
  for (std::uint64_t i = 0; i < probers; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(i % 9 == 0 ? net::NetworkType::Education
                                           : net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.temporal = TemporalBehavior::Intermittent;
    cfg.sweepsPerWeek = 0.45;
    const auto offset = static_cast<std::int64_t>(
        rng_.uniform() * 0.9 * static_cast<double>(span.millis()));
    cfg.activeFrom = params_.start + sim::millis(offset) - sim::weeks(1);
    cfg.knowledge = Knowledge::SubprefixSweeper;
    cfg.staticPrefixes = {params_.t4Prefix};
    cfg.hitProbability = 0.5;
    cfg.exploreProbePackets = 3;
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.interPacketMean = sim::seconds(2);
    if (i % 40 == 0) {
      cfg.protocol.icmpWeight = 0.4;
      cfg.protocol.tcpWeight = 0.6;
    } else {
      cfg.protocol.icmpWeight = 1.0;
    }
    plan.specs.push_back(std::move(cfg));
  }
  // A handful of global sweepers touch every telescope (the paper finds
  // ten /128 sources at all four telescopes over the full period; one of
  // them carries a Yarrp6 signature). They know the long-announced space
  // and pick up T1 via BGP-learned children of the base /32.
  for (int i = 0; i < 10; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(i < 6 ? net::NetworkType::Hosting
                                      : net::NetworkType::Education);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.tool = i == 0 ? net::ScanTool::Yarrp6 : net::ScanTool::Unknown;
    cfg.payloadProbability = i == 0 ? 0.9 : 0.3;
    cfg.tracerouteHops = i == 0;
    cfg.temporal = TemporalBehavior::Intermittent;
    cfg.sweepsPerWeek = 0.12;
    cfg.netsel = NetSelStrategy::SizeIndependent;
    cfg.knowledge = Knowledge::StaticList;
    cfg.staticPrefixes = {params_.t1Base, params_.t2Prefix,
                          params_.t3Prefix, params_.t4Prefix};
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.packetsPerSessionMean = 3.0;
    cfg.packetsPerSessionSigma = 0.4;
    cfg.interPacketMean = sim::seconds(2);
    cfg.protocol.icmpWeight = 1.0;
    plan.specs.push_back(std::move(cfg));
  }

  // Dynamic-TGA explorers: probe shallowly, drill where something answers.
  // T4 responds; T3 never does — two orders of magnitude follow.
  const std::uint64_t explorers = 40;
  for (std::uint64_t i = 0; i < explorers; ++i) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(i % 8 == 0 ? net::NetworkType::Education
                                           : net::NetworkType::Hosting);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    cfg.temporal = TemporalBehavior::Intermittent;
    cfg.sweepsPerWeek = 0.4;
    const auto offset = static_cast<std::int64_t>(
        rng_.uniform() * 0.8 * static_cast<double>(span.millis()));
    cfg.activeFrom = params_.start + sim::millis(offset);
    cfg.knowledge = Knowledge::ResponsiveExplorer;
    cfg.staticPrefixes = {params_.t3Prefix, params_.t4Prefix};
    cfg.hitProbability = 0.04;
    cfg.exploreProbePackets = 2;
    cfg.drillInterval = sim::weeks(4);
    cfg.addrsel = rng_.chance(0.8) ? TargetStrategy::LowByte
                                   : TargetStrategy::RandomIid;
    cfg.packetsPerSessionMean = 18.0;
    cfg.packetsPerSessionSigma = 0.7;
    cfg.interPacketMean = sim::seconds(2);
    if (i % 10 == 0) {
      cfg.protocol.icmpWeight = 0.5;
      cfg.protocol.tcpWeight = 0.5;
    } else {
      cfg.protocol.icmpWeight = 1.0;
    }
    plan.specs.push_back(std::move(cfg));
  }
}

void PopulationBuilder::addHeavyHitters(PopulationPlan& plan) {
  const double volume = params_.volumeScale;
  auto add = [&](net::NetworkType type, bool research,
                 std::function<void(ScannerConfig&)> tweak,
                 const char* rdnsName) {
    ScannerConfig cfg = baseConfig();
    const AsSlot& slot = pickAs(type);
    cfg.sourceNet = allocateSourceNet(slot);
    cfg.asn = slot.asn;
    (void)research;
    tweak(cfg);
    if (rdnsName != nullptr && *rdnsName != '\0') {
      plan.rdns.add(Scanner::initialSourceFor(cfg), rdnsName);
    }
    plan.specs.push_back(std::move(cfg));
  };

  // HH1: the DNS megaspeaker — 85% of all UDP packets, education network.
  add(net::NetworkType::Education, true,
      [&](ScannerConfig& cfg) {
        cfg.temporal = TemporalBehavior::Intermittent;
        cfg.sweepsPerWeek = 0.2;
        cfg.activeFrom = params_.start + sim::weeks(14);
        cfg.netsel = NetSelStrategy::SinglePrefix;
        cfg.knowledge = Knowledge::StaticList;
        cfg.staticPrefixes = {params_.t1Base, params_.t2Prefix};
        // Uniform over the whole target prefix: the megaspeaker must not
        // skew the split-/33 vs companion-/33 comparison of §7.1.
        cfg.addrsel = TargetStrategy::FullRandom;
        cfg.packetsPerSessionMean = 2.2e6 * volume;
        cfg.packetsPerSessionSigma = 0.3;
        cfg.interPacketMean = sim::millis(40);
        cfg.protocol.icmpWeight = 0.0;
        cfg.protocol.udpWeight = 1.0;
        cfg.protocol.udpTracerouteRange = false;
        cfg.protocol.udpPorts = {net::kPortDns};
        cfg.protocol.udpPortWeights = {1.0};
        cfg.payloadProbability = 1.0;
      },
      "resolver-survey.cs.uni.example");

  // HH2: 6Sense-style research campaign — periodic over the whole period,
  // seen at T2.
  add(net::NetworkType::Education, true,
      [&](ScannerConfig& cfg) {
        cfg.tool = net::ScanTool::SixSense;
        cfg.payloadProbability = 0.9;
        cfg.temporal = TemporalBehavior::Periodic;
        cfg.period = sim::days(6);
        cfg.netsel = NetSelStrategy::SinglePrefix;
        cfg.knowledge = Knowledge::StaticList;
        cfg.staticPrefixes = {params_.t2Prefix};
        cfg.addrsel = TargetStrategy::RandomIid;
        cfg.packetsPerSessionMean = 2.0e4 * volume;
        cfg.packetsPerSessionSigma = 0.4;
        cfg.interPacketMean = sim::millis(60);
        cfg.protocol.icmpWeight = 0.8;
        cfg.protocol.tcpWeight = 0.2;
      },
      "scan.sixsense.example");

  // HH2b: the heavy hitter shared between T2 and T4 (§4.2 notes one source
  // is a heavy hitter at both).
  add(net::NetworkType::Education, true, [&](ScannerConfig& cfg) {
    cfg.temporal = TemporalBehavior::Periodic;
    cfg.period = sim::weeks(3);
    cfg.netsel = NetSelStrategy::SizeIndependent;
    cfg.knowledge = Knowledge::StaticList;
    cfg.staticPrefixes = {params_.t2Prefix, params_.t4Prefix};
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.packetsPerSessionMean = 150.0;
    cfg.packetsPerSessionSigma = 0.3;
    cfg.interPacketMean = sim::seconds(1);
    cfg.protocol.icmpWeight = 0.9;
    cfg.protocol.tcpWeight = 0.1;
    cfg.payloadProbability = 0.5;
  }, nullptr);

  // HH3: second full-period T2 repeater (research, no rDNS).
  add(net::NetworkType::Education, true, [&](ScannerConfig& cfg) {
    cfg.temporal = TemporalBehavior::Periodic;
    cfg.period = sim::days(14);
    cfg.knowledge = Knowledge::StaticList;
    cfg.staticPrefixes = {params_.t2Prefix};
    cfg.netsel = NetSelStrategy::SinglePrefix;
    cfg.addrsel = TargetStrategy::SequentialSubnets;
    cfg.packetsPerSessionMean = 2.8e4 * volume;
    cfg.packetsPerSessionSigma = 0.4;
    cfg.interPacketMean = sim::millis(80);
    cfg.protocol.icmpWeight = 1.0;
    cfg.payloadProbability = 0.7;
  }, nullptr);

  // HH4–HH6: burst scanners at T1 from hosting networks; one of them sits
  // in a "bullet-proof" hoster (malicious context). One-off monster
  // sessions shortly after a split announcement.
  const double bursts[3] = {5.5e6, 2.5e6, 1.5e6};
  const std::int64_t burstWeek[3] = {16, 24, 34};
  for (int i = 0; i < 3; ++i) {
    add(net::NetworkType::Hosting, false,
        [&, i](ScannerConfig& cfg) {
          cfg.temporal = TemporalBehavior::OneOff;
          cfg.activeFrom = params_.start + sim::weeks(burstWeek[i]);
          cfg.knowledge = Knowledge::BgpReactive;
          cfg.reaction = {sim::hours(1), sim::hours(12)};
          cfg.netsel = NetSelStrategy::SinglePrefix;
          cfg.preferNewest = true; // bursts chase the fresh announcement
          cfg.prefixInterest = 1.0;
          cfg.addrsel = i == 0 ? TargetStrategy::FullRandom
                               : TargetStrategy::RandomIid;
          cfg.packetsPerSessionMean = bursts[i] * volume;
          cfg.packetsPerSessionSigma = 0.2;
          cfg.interPacketMean = sim::millis(25);
          cfg.protocol.icmpWeight = 0.85;
          cfg.protocol.tcpWeight = 0.15;
          cfg.payloadProbability = 0.0;
        },
        nullptr);
  }

  // HH7: the October T4 campaign — a single deep dive into the reactive
  // telescope (unscaled: T4-grade volume is small in absolute terms).
  add(net::NetworkType::Hosting, false, [&](ScannerConfig& cfg) {
    cfg.temporal = TemporalBehavior::OneOff;
    cfg.activeFrom = params_.start + sim::weeks(9);
    cfg.knowledge = Knowledge::StaticList;
    cfg.staticPrefixes = {params_.t4Prefix};
    cfg.netsel = NetSelStrategy::SinglePrefix;
    cfg.addrsel = TargetStrategy::LowByte;
    cfg.packetsPerSessionMean = 1800.0;
    cfg.packetsPerSessionSigma = 0.1;
    cfg.interPacketMean = sim::seconds(2);
    cfg.protocol.icmpWeight = 0.9;
    cfg.protocol.tcpWeight = 0.1;
  }, nullptr);

  // HH8/HH9: T3's "heavy hitters" are trivial in absolute terms — any
  // sweeper with a handful of packets crosses 10% of T3's tiny total; they
  // emerge from the sweeper group, nothing to add here.

  // HH10: a T1 research burst with an rDNS entry (3 of 10 hitters have
  // one, 7 of 10 are research).
  add(net::NetworkType::Education, true, [&](ScannerConfig& cfg) {
    cfg.temporal = TemporalBehavior::OneOff;
    cfg.activeFrom = params_.start + sim::weeks(20);
    cfg.knowledge = Knowledge::BgpReactive;
    cfg.reaction = {sim::hours(2), sim::hours(24)};
    cfg.netsel = NetSelStrategy::SizeIndependent;
    cfg.addrsel = TargetStrategy::TreeWalk;
    cfg.packetsPerSessionMean = 8.0e5 * volume;
    cfg.packetsPerSessionSigma = 0.2;
    cfg.interPacketMean = sim::millis(50);
    cfg.protocol.icmpWeight = 1.0;
    cfg.payloadProbability = 0.8;
    cfg.tool = net::ScanTool::Yarrp6;
  }, "topo.measurement.uni.example");
}

PopulationPlan PopulationBuilder::plan() {
  rng_ = sim::Rng{params_.seed};
  asSlots_.clear();
  nextScannerId_ = 1;
  nextSourceNet_ = 1;
  PopulationPlan plan;
  buildAsUniverse(plan);
  addAtlasProbes(plan);
  addResearchFarm(plan);
  addSizeIndependentScanners(plan);
  addLiveBgpMonitors(plan);
  addInconsistentScanners(plan);
  addSizeDependentScanners(plan);
  addDnsAttractorScanners(plan);
  addStaticListScanners(plan);
  addSweepersAndExplorers(plan);
  addHeavyHitters(plan);
  return plan;
}

Population instantiate(const PopulationPlan& plan, sim::Engine& engine,
                       telescope::DeliveryFabric& fabric,
                       unsigned shardCount, unsigned shardId) {
  Population pop;
  pop.asRegistry = plan.asRegistry;
  pop.rdns = plan.rdns;
  pop.scanners.reserve(plan.specs.size() / std::max(shardCount, 1u) + 1);
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    if (shardCount > 1 && i % shardCount != shardId) continue;
    pop.scanners.push_back(
        std::make_unique<Scanner>(plan.specs[i], engine, fabric));
  }
  return pop;
}

} // namespace v6t::scanner
