#include "scanner/scanner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace v6t::scanner {

namespace {

/// Margin added on top of the sessionization timeout between two sessions
/// of the same scanner, so generated sessions can never merge.
constexpr sim::Duration kSessionGap = sim::minutes(70);

} // namespace

std::string_view toClassName(Knowledge k) {
  switch (k) {
    case Knowledge::BgpReactive: return "bgp_reactive";
    case Knowledge::LiveBgpMonitor: return "live_monitor";
    case Knowledge::HitlistDriven: return "hitlist";
    case Knowledge::DnsAttractor: return "dns_attractor";
    case Knowledge::StaticList: return "static_list";
    case Knowledge::SubprefixSweeper: return "subprefix_sweeper";
    case Knowledge::ResponsiveExplorer: return "responsive_explorer";
  }
  return "unknown";
}

Scanner::Scanner(ScannerConfig config, sim::Engine& engine,
                 telescope::DeliveryFabric& fabric)
    : config_(std::move(config)),
      engine_(engine),
      fabric_(fabric),
      rng_(config_.seed),
      nextFree_(config_.activeFrom) {
  rotateSource();
  // The source network is globally routed — register it so telescopes can
  // attribute the origin AS (public routing data, not ground truth).
  fabric_.registerSourceRoute(config_.sourceNet, config_.asn);
}

net::Ipv6Address Scanner::deriveSource(const ScannerConfig& config,
                                       sim::Rng& rng,
                                       const net::Ipv6Address& current) {
  if (config.rotateSourceIid) {
    return net::Ipv6Address{config.sourceNet.address().hi64(), rng.next()};
  }
  if (current == net::Ipv6Address{}) {
    // Stable source: a plausible host address inside the /64.
    return net::Ipv6Address{config.sourceNet.address().hi64(),
                            0x1ULL + rng.below(0xffff)};
  }
  return current;
}

net::Ipv6Address Scanner::initialSourceFor(const ScannerConfig& config) {
  sim::Rng rng{config.seed};
  return deriveSource(config, rng, net::Ipv6Address{});
}

void Scanner::rotateSource() { source_ = deriveSource(config_, rng_, source_); }

void Scanner::start(bgp::BgpFeed* feed, bgp::HitlistService* hitlist,
                    obs::trace::Tracer* tracer) {
  tracer_ = tracer;
  switch (config_.knowledge) {
    case Knowledge::BgpReactive:
    case Knowledge::LiveBgpMonitor:
      if (feed != nullptr) {
        // The agent comes online at activeFrom: it bootstraps from a full
        // table dump (in announcement order, oldest first, so known_
        // keeps recency order — announcement chasers rely on it) and only
        // then starts consuming deltas.
        const sim::SimTime when =
            std::max(engine_.now(), config_.activeFrom);
        engine_.schedule(when, [this, feed]() {
          auto routes = feed->rib().announcedRoutes();
          std::stable_sort(routes.begin(), routes.end(),
                           [](const auto& a, const auto& b) {
                             return a.second.announcedAt <
                                    b.second.announcedAt;
                           });
          for (const auto& [p, entry] : routes) learnPrefix(p);
          // Keyed by the scanner id: the lag stream survives population
          // sharding (see BgpFeed::subscribe).
          feed->subscribe(config_.reaction, config_.id,
                          [this](const bgp::BgpUpdate& u) {
                            const bool isAnnounce =
                                u.kind == bgp::UpdateKind::Announce;
                            if (tracer_ != nullptr) {
                              tracer_->record(
                                  {u.ts.millis(), u.traceId, u.seq,
                                   isAnnounce ? 1u : 0u,
                                   static_cast<std::uint32_t>(config_.id),
                                   obs::trace::EventKind::FeedDelivery,
                                   obs::trace::ClockDomain::Sim});
                            }
                            // The cause rides along only for the duration
                            // of the synchronous learn call.
                            pendingCause_ = {u.traceId, u.originTs.millis()};
                            if (isAnnounce) {
                              learnPrefix(u.prefix);
                            } else {
                              forgetPrefix(u.prefix);
                            }
                            pendingCause_ = Cause{};
                          });
        });
      }
      break;
    case Knowledge::HitlistDriven:
      if (hitlist != nullptr) {
        hitlist->onListed(
            [this](const net::Prefix& p, sim::SimTime) { learnPrefix(p); });
      }
      break;
    case Knowledge::DnsAttractor:
    case Knowledge::StaticList:
    case Knowledge::SubprefixSweeper:
    case Knowledge::ResponsiveExplorer:
      known_ = config_.staticPrefixes;
      if (!known_.empty() || config_.fixedTarget) ensureScheduled();
      break;
  }
}

void Scanner::learnPrefix(const net::Prefix& prefix) {
  if (engine_.now() > config_.activeUntil) return;
  if (ignored_.contains(prefix)) return;
  if (std::find(known_.begin(), known_.end(), prefix) != known_.end()) return;
  if (config_.prefixInterest < 1.0 && !rng_.chance(config_.prefixInterest)) {
    ignored_.insert(prefix);
    return;
  }
  known_.push_back(prefix);
  ++stats_.prefixesLearned;
  if (pendingCause_.traceId != 0) {
    causeByPrefix_[prefix] = pendingCause_;
    if (tracer_ != nullptr) {
      tracer_->record({engine_.now().millis(), pendingCause_.traceId,
                       prefix.address().hi64(), prefix.length(),
                       static_cast<std::uint32_t>(config_.id),
                       obs::trace::EventKind::PrefixLearned,
                       obs::trace::ClockDomain::Sim});
    }
  }
  // A one-off scanner that already fired stays quiet forever.
  if (config_.temporal == TemporalBehavior::OneOff && anySweepDone_) return;
  if (config_.sweepOnLearn) {
    // Live BGP monitors show up within half an hour of the announcement —
    // independent of any regular sweep already on the calendar. One
    // trigger per announcement burst.
    if (!learnSweepPending_) {
      learnSweepPending_ = true;
      const auto delay = sim::minutes(
          static_cast<std::int64_t>(1 + rng_.uniform() * 6.0));
      engine_.scheduleAfter(delay, [this]() {
        learnSweepPending_ = false;
        runSweep();
      });
    }
    return;
  }
  ensureScheduled();
}

void Scanner::forgetPrefix(const net::Prefix& prefix) {
  known_.erase(std::remove(known_.begin(), known_.end(), prefix),
               known_.end());
  causeByPrefix_.erase(prefix);
}

void Scanner::ensureScheduled() {
  if (sweepScheduled_) return;
  const sim::SimTime now = engine_.now();
  sim::SimTime when = std::max(now, config_.activeFrom);
  switch (config_.temporal) {
    case TemporalBehavior::OneOff:
      // Fires once, shortly after the trigger (knowledge acquisition).
      when = when + sim::minutes(static_cast<std::int64_t>(
                        rng_.uniform() * 240.0));
      break;
    case TemporalBehavior::Periodic: {
      // Deterministic phase within the period, then strict periodicity.
      const auto phase = static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(config_.period.millis()));
      when = when + sim::millis(phase);
      break;
    }
    case TemporalBehavior::Intermittent: {
      const double meanGapDays = 7.0 / std::max(config_.sweepsPerWeek, 0.01);
      when = when + sim::millis(static_cast<std::int64_t>(
                        rng_.exponential(meanGapDays) * 86'400'000.0));
      break;
    }
  }
  sweepScheduled_ = true;
  engine_.schedule(when, [this]() {
    sweepScheduled_ = false;
    runSweep();
  });
}

void Scanner::scheduleNextSweep(sim::SimTime notBefore) {
  if (sweepScheduled_) return;
  if (notBefore > config_.activeUntil) return;
  sweepScheduled_ = true;
  engine_.schedule(notBefore, [this]() {
    sweepScheduled_ = false;
    runSweep();
  });
}

void Scanner::runSweep() {
  const sim::SimTime now = engine_.now();
  if (now > config_.activeUntil) return;
  anySweepDone_ = true;
  ++sweepCount_;

  if (config_.fixedTarget) {
    for (int s = 0; s < std::max(config_.sessionsPerSweep, 1); ++s) {
      enqueueSession(net::Prefix{*config_.fixedTarget, 128});
    }
  } else if (config_.knowledge == Knowledge::SubprefixSweeper ||
             config_.knowledge == Knowledge::ResponsiveExplorer) {
    // Importance-sampled systematic walk: per sweep, the iteration reaches
    // each observable sub-prefix with `hitProbability` (the full walk over
    // all 2^k sub-prefixes is not simulated — only its observable slice).
    for (const net::Prefix& p : known_) {
      if (rng_.chance(config_.hitProbability)) enqueueSession(p);
    }
  } else if (!known_.empty()) {
    switch (config_.netsel) {
      case NetSelStrategy::SinglePrefix: {
        // An arbitrary known prefix (or the newest, for announcement
        // chasers); the pick may vary between sweeps.
        enqueueSession(config_.preferNewest
                           ? known_.back()
                           : known_[rng_.below(known_.size())]);
        break;
      }
      case NetSelStrategy::SizeIndependent: {
        // Most recently learned prefixes first: fresh announcements are
        // what BGP-reactive scanners came for, and the serialization gap
        // would otherwise delay them behind long-known space.
        for (auto it = known_.rbegin(); it != known_.rend(); ++it) {
          enqueueSession(*it);
        }
        break;
      }
      case NetSelStrategy::SizeDependent: {
        // Coarse-grained scanning: the chance of a probe landing in a
        // prefix is proportional to its size, so expected sessions halve
        // with every extra prefix bit. A /48-only telescope never sees
        // these scanners (§7.1).
        unsigned maxHostBits = 0;
        for (const net::Prefix& p : known_) {
          maxHostBits = std::max(maxHostBits, p.hostBits());
        }
        for (const net::Prefix& p : known_) {
          const auto deficit =
              static_cast<double>(maxHostBits - p.hostBits());
          // Compressed exponent: strictly proportional coverage across a
          // /29../48 span (2^19) would never touch small prefixes at all;
          // real coarse scanners are size-*sensitive*, not strictly
          // proportional.
          const double expected = 4.0 * std::pow(2.0, -deficit / 3.0);
          auto sessions = static_cast<unsigned>(expected);
          if (rng_.chance(expected - sessions)) ++sessions;
          for (unsigned s = 0; s < sessions; ++s) enqueueSession(p);
        }
        break;
      }
      case NetSelStrategy::Inconsistent: {
        // Early in its life the scanner prefers the larger prefixes; later
        // it converges to uniform coverage (§7.1). The switch sits a bit
        // before the lifetime midpoint so both phases cover several
        // announcement cycles.
        const sim::SimTime midpoint =
            config_.activeFrom +
            (config_.activeUntil - config_.activeFrom) * 3 / 5;
        if (now < midpoint) {
          // The three largest known prefixes, two sessions each.
          std::vector<net::Prefix> byLength = known_;
          std::sort(byLength.begin(), byLength.end(),
                    [](const net::Prefix& a, const net::Prefix& b) {
                      return a.length() < b.length();
                    });
          for (std::size_t i = 0; i < byLength.size() && i < 3; ++i) {
            enqueueSession(byLength[i]);
            enqueueSession(byLength[i]);
          }
        } else {
          for (const net::Prefix& p : known_) enqueueSession(p);
        }
        break;
      }
    }
  }

  // Sweepers / explorers: importance-sampled walk over the sub-prefixes of
  // their covering space (see header) — handled via staticPrefixes above
  // (their known_ contains exactly the observable sub-prefixes).

  // Schedule the next sweep per temporal model.
  switch (config_.temporal) {
    case TemporalBehavior::OneOff:
      break; // done forever
    case TemporalBehavior::Periodic: {
      scheduleNextSweep(now + config_.period);
      break;
    }
    case TemporalBehavior::Intermittent: {
      const double meanGapDays = 7.0 / std::max(config_.sweepsPerWeek, 0.01);
      const auto gap = static_cast<std::int64_t>(
          rng_.exponential(meanGapDays) * 86'400'000.0);
      scheduleNextSweep(now + sim::millis(std::max<std::int64_t>(
                                  gap, kSessionGap.millis())));
      break;
    }
  }
}

void Scanner::scheduleDrill(const net::Prefix& hot) {
  const auto gap = static_cast<std::int64_t>(rng_.exponential(
      static_cast<double>(config_.drillInterval.millis())));
  const sim::SimTime when =
      engine_.now() + sim::millis(std::max<std::int64_t>(gap, 3'600'000));
  if (when > config_.activeUntil) return;
  engine_.schedule(when, [this, hot]() {
    if (engine_.now() > config_.activeUntil) return;
    enqueueSession(hot);
    scheduleDrill(hot);
  });
}

std::uint64_t Scanner::sessionSize() {
  const double raw = rng_.lognormal(std::log(config_.packetsPerSessionMean),
                                    config_.packetsPerSessionSigma);
  const auto n = static_cast<std::uint64_t>(raw + 0.5);
  return std::clamp<std::uint64_t>(n, 1, config_.packetsPerSessionCap);
}

void Scanner::enqueueSession(const net::Prefix& prefix) {
  // Consume the causal link: the first session into a freshly learned
  // prefix is the scanner's reaction to the BGP update; later sweeps of
  // the same prefix are routine coverage, not reactions.
  Cause cause;
  if (const auto it = causeByPrefix_.find(prefix);
      it != causeByPrefix_.end()) {
    cause = it->second;
    causeByPrefix_.erase(it);
  }
  if (config_.rotateSourceIid) {
    // Rotating sources appear as distinct /128s, so their sessions may
    // overlap in time — that is exactly how T2's /128 session counts pull
    // away from the /64 aggregation (Fig. 4).
    const auto spread = static_cast<std::int64_t>(rng_.uniform() * 1.08e7);
    emitSession(prefix, engine_.now() + sim::millis(spread), cause);
    return;
  }
  // Serialize sessions of this scanner with a super-timeout gap.
  const sim::SimTime start = std::max(engine_.now(), nextFree_);
  // Reserve the slot pessimistically; the actual end updates nextFree_
  // again when the last packet goes out.
  nextFree_ = start + kSessionGap;
  emitSession(prefix, start, cause);
}

struct Scanner::SessionState {
  TargetGenerator gen;
  std::uint64_t remaining;
  net::Ipv6Address src;
  Cause cause;
  bool reactionPending = false;
};

void Scanner::emitSession(const net::Prefix& prefix, sim::SimTime start,
                          const Cause& cause) {
  rotateSource();
  ++stats_.sessionsEmitted;

  // Sweepers always probe shallowly; explorers probe shallowly until a
  // subnet answers, then drill with full-size sessions.
  std::uint64_t size = sessionSize();
  if (config_.knowledge == Knowledge::SubprefixSweeper ||
      (config_.knowledge == Knowledge::ResponsiveExplorer &&
       !responsive_.contains(prefix))) {
    size = std::max<std::uint64_t>(config_.exploreProbePackets, 1);
  }

  auto state = std::make_shared<SessionState>(
      SessionState{TargetGenerator{config_.addrsel, prefix, rng_}, size,
                   source_, cause, cause.traceId != 0});
  if (tracer_ != nullptr) {
    tracer_->record({start.millis(), cause.traceId,
                     prefix.address().hi64(), size,
                     static_cast<std::uint32_t>(config_.id),
                     obs::trace::EventKind::SessionScheduled,
                     obs::trace::ClockDomain::Sim});
  }
  // Emit as a chain of events: O(1) pending events per active session.
  engine_.schedule(start, [this, state]() { sessionStep(state); });
}

void Scanner::sessionStep(const std::shared_ptr<SessionState>& state) {
  if (state->remaining == 0) return;
  --state->remaining;
  net::Ipv6Address dst = config_.fixedTarget ? *config_.fixedTarget
                                             : state->gen.next();
  net::Packet p = makePacket(dst);
  p.src = state->src;
  const std::uint64_t originSeq = p.originSeq;
  const sim::SimTime now = engine_.now();
  if (tracer_ != nullptr) {
    tracer_->record({now.millis(), state->cause.traceId, originSeq,
                     dst.hi64(), static_cast<std::uint32_t>(config_.id),
                     obs::trace::EventKind::PacketSent,
                     obs::trace::ClockDomain::Sim});
    // Delivery is synchronous: the telescope's capture hook reads this
    // context slot to link (originId, originSeq) back to the update.
    tracer_->setContext({state->cause.traceId, state->cause.originTsMillis});
  }
  const telescope::DeliveryResult result = fabric_.send(std::move(p));
  if (tracer_ != nullptr) tracer_->clearContext();
  ++stats_.packetsEmitted;
  if (state->reactionPending && result.captured) {
    // First captured probe of an update-caused session: the paper's
    // reactivity observable (announcement -> first probe at the telescope).
    state->reactionPending = false;
    const std::int64_t delayMillis = now.millis() - state->cause.originTsMillis;
    if (tracer_ != nullptr) {
      tracer_->observeReaction(static_cast<std::size_t>(config_.knowledge),
                               toClassName(config_.knowledge),
                               static_cast<double>(delayMillis) / 1000.0);
      tracer_->record({now.millis(), state->cause.traceId,
                       static_cast<std::uint64_t>(delayMillis), originSeq,
                       static_cast<std::uint32_t>(config_.id),
                       obs::trace::EventKind::ReactionObserved,
                       obs::trace::ClockDomain::Sim});
    }
  }
  if (result.responded) {
    ++stats_.responsesSeen;
    if (config_.knowledge == Knowledge::ResponsiveExplorer) {
      const net::Prefix hot{state->gen.prefix().address(),
                            state->gen.prefix().length()};
      if (!responsive_.contains(hot)) {
        responsive_.insert(hot);
        scheduleDrill(hot); // dynamic-TGA: keep digging where it answers
      }
    }
  }
  if (state->remaining > 0) {
    const auto gap = static_cast<std::int64_t>(rng_.exponential(
        static_cast<double>(config_.interPacketMean.millis())));
    engine_.scheduleAfter(sim::millis(std::max<std::int64_t>(gap, 1)),
                          [this, state]() { sessionStep(state); });
  } else {
    // Session complete: release the serialization slot after the
    // sessionization timeout.
    nextFree_ = std::max(nextFree_, engine_.now() + kSessionGap);
  }
}

net::Packet Scanner::makePacket(const net::Ipv6Address& dst) {
  net::Packet p;
  p.dst = dst;
  // Origin tag: (scanner, emission index) is unique and independent of how
  // the population is sharded — the key the parallel runner's capture merge
  // orders by.
  p.originId = static_cast<std::uint32_t>(config_.id);
  p.originSeq = stats_.packetsEmitted;
  if (config_.tracerouteHops) {
    // Cycle outward through the path: 1, 2, 3, ... up to 24 hops.
    p.hopLimit = static_cast<std::uint8_t>(1 + stats_.packetsEmitted % 24);
  } else {
    p.hopLimit = static_cast<std::uint8_t>(40 + rng_.below(25));
  }

  const double weights[3] = {config_.protocol.icmpWeight,
                             config_.protocol.tcpWeight,
                             config_.protocol.udpWeight};
  const std::size_t pick = rng_.weightedPick(weights);
  switch (pick) {
    case 1: {
      p.proto = net::Protocol::Tcp;
      p.srcPort = static_cast<std::uint16_t>(32768 + rng_.below(28000));
      const std::size_t portIdx =
          rng_.weightedPick(config_.protocol.tcpPortWeights);
      p.dstPort = portIdx < config_.protocol.tcpPorts.size()
                      ? config_.protocol.tcpPorts[portIdx]
                      : net::kPortHttp;
      break;
    }
    case 2: {
      p.proto = net::Protocol::Udp;
      p.srcPort = static_cast<std::uint16_t>(32768 + rng_.below(28000));
      if (config_.protocol.udpTracerouteRange ||
          config_.protocol.udpPorts.empty()) {
        p.dstPort = static_cast<std::uint16_t>(
            net::kTracerouteLo +
            rng_.below(net::kTracerouteHi - net::kTracerouteLo + 1));
      } else {
        const std::size_t portIdx =
            rng_.weightedPick(config_.protocol.udpPortWeights);
        p.dstPort = portIdx < config_.protocol.udpPorts.size()
                        ? config_.protocol.udpPorts[portIdx]
                        : net::kPortDns;
      }
      break;
    }
    default: {
      p.proto = net::Protocol::Icmpv6;
      p.icmpType = net::kIcmpEchoRequest;
      break;
    }
  }

  if (config_.payloadProbability > 0.0 &&
      rng_.chance(config_.payloadProbability)) {
    if (config_.tool != net::ScanTool::Unknown) {
      for (const net::ToolSignature& sig : net::kToolSignatures) {
        if (sig.tool != config_.tool) continue;
        p.payload.assign(sig.magic.begin(),
                         sig.magic.begin() +
                             static_cast<std::ptrdiff_t>(sig.magicLen));
        break;
      }
      // Tool-specific trailer: mostly constant, two counter bytes — keeps
      // payloads of one tool dense in feature space so DBSCAN groups them.
      p.payload.push_back(0x00);
      p.payload.push_back(0x2a);
      p.payload.push_back(static_cast<std::uint8_t>(stats_.packetsEmitted));
      p.payload.push_back(
          static_cast<std::uint8_t>(stats_.packetsEmitted >> 8));
      while (p.payload.size() < 12) p.payload.push_back(0x00);
    } else {
      // Unattributable random payload.
      for (int i = 0; i < 12; ++i) {
        p.payload.push_back(static_cast<std::uint8_t>(rng_.below(256)));
      }
    }
  }
  return p;
}

} // namespace v6t::scanner
