#include "scanner/target_gen.hpp"

#include <algorithm>

namespace v6t::scanner {

namespace {

// Ports embedded by the EmbeddedPort strategy, in the "decimal-as-hex"
// form scanners favor (2001:db8::443 probes the HTTPS service).
constexpr std::uint64_t kPortIids[] = {0x80, 0x443, 0x22, 0x53,
                                       0x25, 0x8080, 0x21, 0x143};

} // namespace

std::string_view toString(TargetStrategy s) {
  switch (s) {
    case TargetStrategy::LowByte: return "low-byte";
    case TargetStrategy::SubnetAnycast: return "subnet-anycast";
    case TargetStrategy::RandomIid: return "random-iid";
    case TargetStrategy::FullRandom: return "full-random";
    case TargetStrategy::EmbeddedIpv4: return "embedded-ipv4";
    case TargetStrategy::EmbeddedPort: return "embedded-port";
    case TargetStrategy::PatternBytes: return "pattern-bytes";
    case TargetStrategy::IeeeDerived: return "ieee-derived";
    case TargetStrategy::Wordy: return "wordy";
    case TargetStrategy::SequentialSubnets: return "sequential-subnets";
    case TargetStrategy::TreeWalk: return "tree-walk";
  }
  return "?";
}

TargetGenerator::TargetGenerator(TargetStrategy strategy, net::Prefix prefix,
                                 sim::Rng& rng)
    : strategy_(strategy), prefix_(std::move(prefix)), rng_(rng) {}

net::Ipv6Address TargetGenerator::subnetBase(std::uint64_t subnetIndex) const {
  // Subnets are /64s inside the prefix. For prefixes longer than /64 the
  // prefix itself is the (only) subnet.
  if (prefix_.length() >= 64) return prefix_.address();
  const unsigned subnetBits = 64u - prefix_.length();
  const std::uint64_t mask = subnetBits >= 64
                                 ? ~0ULL
                                 : ((1ULL << subnetBits) - 1);
  const net::u128 offset = static_cast<net::u128>(subnetIndex & mask) << 64;
  return prefix_.addressAt(offset);
}

net::Ipv6Address TargetGenerator::next() {
  const std::uint64_t i = seq_++;
  switch (strategy_) {
    case TargetStrategy::LowByte: {
      // Walk low subnets, probing ::1, ::2, … ::ff in each.
      const std::uint64_t subnet = i / 16;
      const std::uint64_t low = 1 + i % 16;
      return subnetBase(subnet).plus(low);
    }
    case TargetStrategy::SubnetAnycast: {
      return subnetBase(i);
    }
    case TargetStrategy::RandomIid: {
      // Low subnets, uniformly random interface ID.
      const net::Ipv6Address base = subnetBase(i % 4);
      return net::Ipv6Address{base.hi64(), rng_.next()};
    }
    case TargetStrategy::FullRandom: {
      // Anywhere in the prefix — the aliased-prefix/topology probe.
      const net::u128 offset =
          (static_cast<net::u128>(rng_.next()) << 64) | rng_.next();
      return prefix_.addressAt(offset);
    }
    case TargetStrategy::EmbeddedIpv4: {
      // Plausible dotted-quad in the low 32 bits; first octet non-zero.
      const std::uint64_t v4 =
          ((1 + rng_.below(223)) << 24) | (rng_.next() & 0x00ffffff);
      return net::Ipv6Address{subnetBase(0).hi64(), v4};
    }
    case TargetStrategy::EmbeddedPort: {
      const std::uint64_t iid =
          kPortIids[i % (sizeof(kPortIids) / sizeof(kPortIids[0]))];
      return net::Ipv6Address{subnetBase(i / 8).hi64(), iid};
    }
    case TargetStrategy::PatternBytes: {
      // One byte value repeated across the IID.
      const std::uint64_t b = 0x11 * (1 + (i % 15)); // 0x11, 0x22, … 0xff
      std::uint64_t iid = 0;
      for (int k = 0; k < 8; ++k) iid = (iid << 8) | b;
      return net::Ipv6Address{subnetBase(i / 15).hi64(), iid};
    }
    case TargetStrategy::IeeeDerived: {
      // EUI-64 from a synthetic MAC with a stable OUI.
      const std::uint64_t mac = rng_.next() & 0xffffffULL; // NIC-specific part
      const std::uint64_t oui = 0x00163eULL; // a common virtualization OUI
      const std::uint64_t iid = ((oui ^ 0x020000ULL) << 40) |
                                (0xfffeULL << 24) | mac;
      return net::Ipv6Address{subnetBase(0).hi64(), iid};
    }
    case TargetStrategy::Wordy: {
      static constexpr std::uint64_t kWordIids[] = {
          0xcafe, 0xbeef, 0xdead, 0xbabe, 0xface, 0xfeed,
          0xdeadbeef, 0xcafebabe, 0xfeedface, 0xdeadc0de};
      const std::uint64_t iid =
          kWordIids[i % (sizeof(kWordIids) / sizeof(kWordIids[0]))];
      return net::Ipv6Address{subnetBase(i / 10).hi64(), iid};
    }
    case TargetStrategy::SequentialSubnets: {
      // Lexicographic subnet walk with a tiny IID set: yields the striped
      // pattern of Fig. 12(a).
      const std::uint64_t subnet = subnetCursor_++;
      return subnetBase(subnet).plus(1 + (i & 0x3));
    }
    case TargetStrategy::TreeWalk: {
      // Depth-first descent: visit a subnet, then split it and descend,
      // producing the tree structure visible after sorting (Fig. 13).
      const unsigned maxDepth =
          prefix_.length() >= 64 ? 0 : std::min(64u - prefix_.length(), 16u);
      if (treeDepth_ > maxDepth) {
        treeDepth_ = 0;
        ++treePath_;
      }
      const unsigned depth = treeDepth_++;
      const std::uint64_t path = treePath_ << (maxDepth - std::min(depth, maxDepth));
      const net::Ipv6Address base = subnetBase(path);
      return net::Ipv6Address{base.hi64(), 1 + (rng_.next() & 0xff)};
    }
  }
  return prefix_.address();
}

} // namespace v6t::scanner
