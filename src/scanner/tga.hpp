// v6t::scanner — dynamic target generation (6Tree / DET style).
//
// The paper's background section surveys target generation algorithms
// (TGAs): static ones derive candidates from a fixed seed set, dynamic
// ones refine their model from scan feedback while probing. This module
// implements the classic space-partition approach:
//
//   * the address space under a base prefix is organized as a nibble
//     trie; seed addresses (known-active hosts) populate it,
//   * regions are weighted by seed/hit density; candidate targets are
//     drawn by weighted descent and completed randomly below the known
//     frontier,
//   * scan feedback (responsive / silent) reinforces or decays region
//     weights — the "dynamic" in dynamic TGA.
//
// It backs the ResponsiveExplorer agents conceptually and is exposed as a
// public API so the library can be used for TGA experimentation on its
// own (see bench/ablation_tga).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"
#include "sim/rng.hpp"

namespace v6t::scanner {

class DynamicTga {
public:
  struct Params {
    /// Nibble levels tracked below the base prefix (4 bits per level).
    unsigned maxDepth = 16;
    /// Seeds in one node before it splits into children. Low values let
    /// even a handful of seeds carve the trie down to their region.
    std::size_t splitThreshold = 2;
    /// Share of candidates drawn uniformly at random (exploration).
    double exploreShare = 0.1;
    /// Weight increments for scan feedback.
    double hitBonus = 1.0;
    double missPenalty = 0.25;
  };

  DynamicTga(net::Prefix base, Params params, std::uint64_t seed);

  /// Register a known-active address (hitlist entry, previous response).
  /// Addresses outside the base prefix are ignored.
  void addSeed(const net::Ipv6Address& addr);

  /// Draw the next batch of scan candidates.
  [[nodiscard]] std::vector<net::Ipv6Address> nextCandidates(std::size_t n);

  /// Report a probe outcome; responsive candidates also become seeds.
  void feedback(const net::Ipv6Address& candidate, bool responsive);

  [[nodiscard]] const net::Prefix& base() const { return base_; }
  [[nodiscard]] std::size_t seedCount() const { return seeds_; }
  [[nodiscard]] std::size_t nodeCount() const { return nodes_; }
  [[nodiscard]] std::uint64_t probesIssued() const { return probes_; }
  [[nodiscard]] std::uint64_t hitsSeen() const { return hits_; }
  [[nodiscard]] double hitRate() const {
    return probes_ == 0 ? 0.0
                        : static_cast<double>(hits_) /
                              static_cast<double>(probes_);
  }

private:
  struct Node {
    double weight = 0.0; // density score (seeds + feedback)
    std::size_t seeds = 0;
    std::unique_ptr<Node> children[16];
    bool split = false;
  };

  /// Nibble index of `addr` at trie depth `depth` (0 = first nibble below
  /// the base prefix, rounded to nibble granularity).
  [[nodiscard]] unsigned nibbleAt(const net::Ipv6Address& addr,
                                  unsigned depth) const;
  void insert(Node& node, const net::Ipv6Address& addr, unsigned depth,
              double weight);
  [[nodiscard]] net::Ipv6Address draw(const Node& node, unsigned depth,
                                      net::Ipv6Address partial);

  net::Prefix base_;
  Params params_;
  sim::Rng rng_;
  Node root_;
  unsigned firstNibble_; // first nibble position inside the address
  std::size_t seeds_ = 0;
  std::size_t nodes_ = 1;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
};

} // namespace v6t::scanner
