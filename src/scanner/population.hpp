// v6t::scanner — the calibrated scanner ecosystem (DESIGN.md §6).
//
// PopulationBuilder assembles every scanner class the paper observes into
// one agent population:
//
//   * RIPE-Atlas-style one-off probes (55% of T1 sources; always ::1)
//   * a commercial research scanner farm (Alpha-Strike-like: many sources,
//     one hosting AS, single-prefix structured scans)
//   * BGP-aware size-independent periodic/intermittent scanners carrying
//     the public tool fingerprints of Table 7 (Yarrp6, CAIDA Ark, 6Scan,
//     6Seeks, Htrace6, classic traceroute)
//   * live BGP monitors (react < 30 min, §7.2)
//   * inconsistent high-rate scanners (few sources, ~half of all sessions)
//   * size-dependent coarse scanners (skip small prefixes)
//   * DNS-attractor chasers and /64 source rotators (T2's signature crowd)
//   * static-list scanners of long-announced space (T2)
//   * sub-prefix sweepers and responsive explorers (how T3 stays near-dark
//     while T4 accumulates two orders of magnitude more)
//   * heavy hitters (10 sources, ~73% of packets, incl. a DNS megaspeaker
//     and 6Sense-style research campaigns)
//
// Counts and volumes follow the paper's marginals, multiplied by
// `sourceScale` / `volumeScale` so a full 44-week run fits in seconds.
#pragma once

#include <memory>
#include <vector>

#include "bgp/feed.hpp"
#include "bgp/hitlist.hpp"
#include "net/asn.hpp"
#include "scanner/scanner.hpp"
#include "sim/engine.hpp"
#include "telescope/fabric.hpp"

namespace v6t::scanner {

struct PopulationParams {
  std::uint64_t seed = 42;
  /// Multiplier on agent counts (1.0 = the paper's source population).
  double sourceScale = 0.25;
  /// Multiplier on the packet volume of high-volume classes (heavy
  /// hitters, large topology sessions). T3/T4-grade trickle traffic is
  /// never scaled — it is already tiny.
  double volumeScale = 0.02;

  // Experiment context (addresses of the observable world).
  net::Prefix t1Base; // the /32 under BGP control
  net::Prefix t2Prefix; // the long-announced /48
  net::Ipv6Address t2Attractor; // the DNS-named address in T2
  net::Prefix t3Prefix; // silent /48 within the covering prefix
  net::Prefix t4Prefix; // reactive /48 within the covering prefix
  net::Prefix coveringPrefix; // the /29 announced by a third party

  sim::SimTime start; // first telescope goes live
  sim::SimTime end; // end of measurement
};

struct Population {
  std::vector<std::unique_ptr<Scanner>> scanners;
  net::AsRegistry asRegistry;
  net::RdnsRegistry rdns;

  /// Wire every agent to its knowledge channels. Call once.
  void startAll(bgp::BgpFeed* feed, bgp::HitlistService* hitlist) {
    for (auto& s : scanners) s->start(feed, hitlist);
  }

  [[nodiscard]] std::size_t size() const { return scanners.size(); }
};

class PopulationBuilder {
public:
  PopulationBuilder(PopulationParams params, sim::Engine& engine,
                    telescope::DeliveryFabric& fabric)
      : params_(std::move(params)), engine_(engine), fabric_(fabric) {}

  [[nodiscard]] Population build();

private:
  struct AsSlot {
    net::Asn asn;
    net::Prefix space; // /32 the AS assigns sources from
    net::NetworkType type;
    bool research;
  };

  /// Generate the AS universe with Table 8's type mix.
  void buildAsUniverse(Population& pop);
  [[nodiscard]] const AsSlot& pickAs(net::NetworkType type);
  [[nodiscard]] net::Prefix allocateSourceNet(const AsSlot& slot);

  [[nodiscard]] std::uint64_t scaledCount(double paperCount) const;

  void addAtlasProbes(Population& pop);
  void addResearchFarm(Population& pop);
  void addSizeIndependentScanners(Population& pop);
  void addLiveBgpMonitors(Population& pop);
  void addInconsistentScanners(Population& pop);
  void addSizeDependentScanners(Population& pop);
  void addDnsAttractorScanners(Population& pop);
  void addStaticListScanners(Population& pop);
  void addSweepersAndExplorers(Population& pop);
  void addHeavyHitters(Population& pop);

  ScannerConfig baseConfig();

  PopulationParams params_;
  sim::Engine& engine_;
  telescope::DeliveryFabric& fabric_;
  sim::Rng rng_{0};
  std::vector<AsSlot> asSlots_;
  std::uint64_t nextScannerId_ = 1;
  std::uint64_t nextSourceNet_ = 1;
};

} // namespace v6t::scanner
