// v6t::scanner — the calibrated scanner ecosystem (DESIGN.md §6).
//
// PopulationBuilder assembles every scanner class the paper observes into
// one agent population:
//
//   * RIPE-Atlas-style one-off probes (55% of T1 sources; always ::1)
//   * a commercial research scanner farm (Alpha-Strike-like: many sources,
//     one hosting AS, single-prefix structured scans)
//   * BGP-aware size-independent periodic/intermittent scanners carrying
//     the public tool fingerprints of Table 7 (Yarrp6, CAIDA Ark, 6Scan,
//     6Seeks, Htrace6, classic traceroute)
//   * live BGP monitors (react < 30 min, §7.2)
//   * inconsistent high-rate scanners (few sources, ~half of all sessions)
//   * size-dependent coarse scanners (skip small prefixes)
//   * DNS-attractor chasers and /64 source rotators (T2's signature crowd)
//   * static-list scanners of long-announced space (T2)
//   * sub-prefix sweepers and responsive explorers (how T3 stays near-dark
//     while T4 accumulates two orders of magnitude more)
//   * heavy hitters (10 sources, ~73% of packets, incl. a DNS megaspeaker
//     and 6Sense-style research campaigns)
//
// Counts and volumes follow the paper's marginals, multiplied by
// `sourceScale` / `volumeScale` so a full 44-week run fits in seconds.
#pragma once

#include <memory>
#include <vector>

#include "bgp/feed.hpp"
#include "bgp/hitlist.hpp"
#include "net/asn.hpp"
#include "scanner/scanner.hpp"
#include "sim/engine.hpp"
#include "telescope/fabric.hpp"

namespace v6t::scanner {

struct PopulationParams {
  std::uint64_t seed = 42;
  /// Multiplier on agent counts (1.0 = the paper's source population).
  double sourceScale = 0.25;
  /// Multiplier on the packet volume of high-volume classes (heavy
  /// hitters, large topology sessions). T3/T4-grade trickle traffic is
  /// never scaled — it is already tiny.
  double volumeScale = 0.02;

  // Experiment context (addresses of the observable world).
  net::Prefix t1Base; // the /32 under BGP control
  net::Prefix t2Prefix; // the long-announced /48
  net::Ipv6Address t2Attractor; // the DNS-named address in T2
  net::Prefix t3Prefix; // silent /48 within the covering prefix
  net::Prefix t4Prefix; // reactive /48 within the covering prefix
  net::Prefix coveringPrefix; // the /29 announced by a third party

  sim::SimTime start; // first telescope goes live
  sim::SimTime end; // end of measurement
};

/// The population before any agent exists: every scanner's full config
/// plus the world metadata (AS universe, rDNS names). A plan is computed
/// once — the builder's RNG draw sequence defines the population — and can
/// then be materialized whole into one engine or split across shard
/// engines, with every shard seeing identical configs for its subset.
struct PopulationPlan {
  std::vector<ScannerConfig> specs;
  net::AsRegistry asRegistry;
  net::RdnsRegistry rdns;

  [[nodiscard]] std::size_t size() const { return specs.size(); }
};

struct Population {
  std::vector<std::unique_ptr<Scanner>> scanners;
  net::AsRegistry asRegistry;
  net::RdnsRegistry rdns;

  /// Wire every agent to its knowledge channels (and, optionally, the
  /// owning shard's flight recorder). Call once.
  void startAll(bgp::BgpFeed* feed, bgp::HitlistService* hitlist,
                obs::trace::Tracer* tracer = nullptr) {
    for (auto& s : scanners) s->start(feed, hitlist, tracer);
  }

  [[nodiscard]] std::size_t size() const { return scanners.size(); }
};

/// Materialize (a shard of) a plan into `engine`/`fabric`. Spec `i` lands
/// in shard `i % shardCount`; the default 1/0 builds the whole population.
/// Registries are copied whole into every shard — they are read-only world
/// context, not per-agent state.
[[nodiscard]] Population instantiate(const PopulationPlan& plan,
                                     sim::Engine& engine,
                                     telescope::DeliveryFabric& fabric,
                                     unsigned shardCount = 1,
                                     unsigned shardId = 0);

class PopulationBuilder {
public:
  explicit PopulationBuilder(PopulationParams params)
      : params_(std::move(params)) {}

  /// Generate every scanner config. Deterministic in `params_` alone: no
  /// engine is involved, so serial and sharded runs share one plan.
  [[nodiscard]] PopulationPlan plan();

private:
  struct AsSlot {
    net::Asn asn;
    net::Prefix space; // /32 the AS assigns sources from
    net::NetworkType type;
    bool research;
  };

  /// Generate the AS universe with Table 8's type mix.
  void buildAsUniverse(PopulationPlan& plan);
  [[nodiscard]] const AsSlot& pickAs(net::NetworkType type);
  [[nodiscard]] net::Prefix allocateSourceNet(const AsSlot& slot);

  [[nodiscard]] std::uint64_t scaledCount(double paperCount) const;

  void addAtlasProbes(PopulationPlan& plan);
  void addResearchFarm(PopulationPlan& plan);
  void addSizeIndependentScanners(PopulationPlan& plan);
  void addLiveBgpMonitors(PopulationPlan& plan);
  void addInconsistentScanners(PopulationPlan& plan);
  void addSizeDependentScanners(PopulationPlan& plan);
  void addDnsAttractorScanners(PopulationPlan& plan);
  void addStaticListScanners(PopulationPlan& plan);
  void addSweepersAndExplorers(PopulationPlan& plan);
  void addHeavyHitters(PopulationPlan& plan);

  ScannerConfig baseConfig();

  PopulationParams params_;
  sim::Rng rng_{0};
  std::vector<AsSlot> asSlots_;
  std::uint64_t nextScannerId_ = 1;
  std::uint64_t nextSourceNet_ = 1;
};

} // namespace v6t::scanner
