// v6t::scanner — target address generation.
//
// Every address-selection strategy the paper observes (§5.3, Table 3,
// Fig. 12/13), implemented as a stateful per-session generator: given a
// target prefix, produce the session's destination sequence. The analysis
// pipeline must be able to recover each strategy from the traffic alone —
// the classifier cross-validation tests in tests/ check exactly that.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"
#include "sim/rng.hpp"

namespace v6t::scanner {

enum class TargetStrategy : std::uint8_t {
  LowByte, // ::1, ::2, … in selected subnets
  SubnetAnycast, // ::0 of subnets
  RandomIid, // structured subnet walk, uniformly random IID
  FullRandom, // random subnet and IID (topology probing)
  EmbeddedIpv4, // ::c0a8:101-style IIDs
  EmbeddedPort, // ::80, ::443-style IIDs
  PatternBytes, // repetitive byte fillers
  IeeeDerived, // EUI-64 (ff:fe) IIDs
  Wordy, // 2001:db8::cafe-style hex words
  SequentialSubnets, // lexicographic walk over subnets, low IIDs (Fig. 12a)
  TreeWalk, // recursive descent into subnets (Fig. 13 tail)
};

inline constexpr std::size_t kTargetStrategyCount = 11;

[[nodiscard]] std::string_view toString(TargetStrategy s);

/// Stateful generator for one scan session into one prefix.
class TargetGenerator {
public:
  /// `rng` must outlive the generator.
  TargetGenerator(TargetStrategy strategy, net::Prefix prefix, sim::Rng& rng);

  /// Next destination address. Never exhausts (generators wrap).
  [[nodiscard]] net::Ipv6Address next();

  [[nodiscard]] TargetStrategy strategy() const { return strategy_; }
  [[nodiscard]] const net::Prefix& prefix() const { return prefix_; }

private:
  [[nodiscard]] net::Ipv6Address subnetBase(std::uint64_t subnetIndex) const;

  TargetStrategy strategy_;
  net::Prefix prefix_;
  sim::Rng& rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t subnetCursor_ = 0;
  // Tree-walk state: current depth and path within the prefix.
  std::uint64_t treePath_ = 0;
  unsigned treeDepth_ = 0;
};

} // namespace v6t::scanner
