#include "sim/rng.hpp"

#include <cmath>

namespace v6t::sim {

double Rng::exponential(double mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // traffic-volume scales used here.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::normal(double mu, double sigma) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(6.283185307179586476925 * u2);
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weightedPick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

} // namespace v6t::sim
