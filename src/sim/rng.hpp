// v6t::sim — deterministic random number generation.
//
// The simulation must be bit-for-bit reproducible from a single seed, so we
// implement our own small, well-studied generators instead of relying on
// implementation-defined std::random distributions:
//   * SplitMix64 — seed expansion / cheap independent streams,
//   * Xoshiro256** — the workhorse generator.
// All distribution mappings are written out explicitly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace v6t::sim {

/// SplitMix64 (Steele, Lea, Flood 2014). Primarily used to seed Xoshiro and
/// to derive independent per-agent streams from an experiment master seed.
class SplitMix64 {
public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Derive the seed of an independent stream identified by (seed, streamKey).
/// The mapping depends only on its two inputs — never on how many other
/// streams exist or in which order they are derived — which is what makes
/// sharded runs reproduce serial ones: a consumer keyed by a stable id draws
/// the same sequence no matter which shard it lands on.
[[nodiscard]] constexpr std::uint64_t deriveStreamSeed(std::uint64_t seed,
                                                       std::uint64_t key) {
  SplitMix64 outer{seed};
  SplitMix64 inner{key};
  SplitMix64 mixed{outer.next() ^ inner.next()};
  return mixed.next();
}

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
public:
  /// Seeds the 256-bit state by expanding `seed` through SplitMix64.
  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  /// Derive an independent generator (for a scanner agent, a telescope, …).
  /// Streams derived with distinct tags are statistically independent.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    SplitMix64 sm{next() ^ (tag * 0x9e3779b97f4a7c15ULL)};
    Rng child{sm.next()};
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean (mean = 1/lambda). Used for Poisson
  /// inter-arrival times of scan sessions and packets.
  double exponential(double mean);

  /// Poisson-distributed count with given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Standard normal via Box–Muller (no cached value; both draws folded).
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Pareto (power-law) sample with scale xm > 0 and shape alpha > 0.
  /// Heavy-hitter packet volumes are Pareto-distributed.
  double pareto(double xm, double alpha);

  /// Log-normal sample.
  double lognormal(double mu, double sigma);

  /// Pick an index according to non-negative weights. Returns weights.size()
  /// only if all weights are zero.
  std::size_t weightedPick(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

} // namespace v6t::sim
