// v6t::sim — simulated time.
//
// All simulation state is keyed by SimTime, a strong type counting
// milliseconds since the experiment epoch (the instant the first telescope
// goes live). Wall-clock time never enters the simulation; determinism is a
// design invariant (see DESIGN.md §5).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace v6t::sim {

/// A span of simulated time, in milliseconds. Value type, totally ordered.
class Duration {
public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t millis) : millis_(millis) {}

  [[nodiscard]] constexpr std::int64_t millis() const { return millis_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(millis_) / 1000.0;
  }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }
  [[nodiscard]] constexpr double days() const { return hours() / 24.0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration{millis_ + o.millis_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{millis_ - o.millis_};
  }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration{millis_ * k};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{millis_ / k};
  }

private:
  std::int64_t millis_ = 0;
};

constexpr Duration millis(std::int64_t n) { return Duration{n}; }
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
constexpr Duration hours(std::int64_t n) { return minutes(n * 60); }
constexpr Duration days(std::int64_t n) { return hours(n * 24); }
constexpr Duration weeks(std::int64_t n) { return days(n * 7); }

/// An instant on the simulated clock: milliseconds since experiment epoch.
class SimTime {
public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t millis) : millis_(millis) {}

  [[nodiscard]] constexpr std::int64_t millis() const { return millis_; }

  /// Index of the hour/day/week bucket this instant falls into.
  [[nodiscard]] constexpr std::int64_t hourIndex() const {
    return millis_ / (3600LL * 1000);
  }
  [[nodiscard]] constexpr std::int64_t dayIndex() const {
    return millis_ / (24LL * 3600 * 1000);
  }
  [[nodiscard]] constexpr std::int64_t weekIndex() const {
    return millis_ / (7LL * 24 * 3600 * 1000);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime{millis_ + d.millis()};
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime{millis_ - d.millis()};
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration{millis_ - o.millis_};
  }
  SimTime& operator+=(Duration d) {
    millis_ += d.millis();
    return *this;
  }

private:
  std::int64_t millis_ = 0;
};

/// Epoch constant — the start of the experiment.
inline constexpr SimTime kEpoch{0};

/// Render as "Dd HH:MM:SS.mmm" for logs and reports.
[[nodiscard]] std::string toString(SimTime t);
[[nodiscard]] std::string toString(Duration d);

} // namespace v6t::sim
