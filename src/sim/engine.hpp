// v6t::sim — discrete-event simulation engine.
//
// A minimal, deterministic event loop: events are (time, sequence, action)
// triples ordered by time with FIFO tie-breaking, so two events scheduled
// for the same instant always fire in scheduling order regardless of heap
// internals. Actions may schedule further events. Memory is proportional to
// the number of *pending* events, not to the total executed — a full
// 44-week experiment executes millions of events.
//
// Hot-path layout (DESIGN.md §11): actions are SmallFunc (inline captures,
// slab fallback — no per-event malloc), the priority queue is a 4-ary
// implicit heap (shallower than binary, sift steps stay in one cache
// line's worth of children), and cancellation is a generation-stamped
// live-slot table: cancel() is an O(1) stamp check and a flag flip, with
// dead entries discarded lazily when they surface at the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/small_func.hpp"
#include "sim/time.hpp"

namespace v6t::sim {

/// Handle for a scheduled event; can be used to cancel it. Encodes a slot
/// index in the low 32 bits and that slot's generation stamp in the high
/// 32, so a handle goes stale the moment its event runs or is cancelled —
/// a recycled slot can never be cancelled through an old handle.
using EventId = std::uint64_t;

class Engine {
public:
  using Action = SmallFunc;

  /// Current simulated time. Starts at kEpoch; monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `when`. Scheduling in the past is a
  /// logic error and is clamped to `now()` (the event fires immediately on
  /// the next step) — the capture path must never time-travel.
  EventId schedule(SimTime when, Action action);

  /// Schedule `action` after a relative delay.
  EventId scheduleAfter(Duration delay, Action action) {
    return schedule(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed. O(1): a generation check on the slot
  /// table; the heap entry is discarded lazily.
  bool cancel(EventId id);

  /// Run events until the queue is empty or simulated time would exceed
  /// `until` (events at exactly `until` still run). Advances now() to
  /// `until` even if the queue drains early. Returns events executed.
  std::uint64_t run(SimTime until);

  /// Run everything to quiescence.
  std::uint64_t runAll();

  /// Epoch-wise execution: advance from now() to `until` in fixed slices of
  /// `epoch`, invoking `beforeEpoch(index, epochEnd)` before the events of
  /// each slice run. Epoch k covers (now + k*epoch, now + (k+1)*epoch]; the
  /// last slice is clipped to `until`. This is the synchronization hook of
  /// the sharded experiment runner: the callback is where a worker waits on
  /// the cross-shard barrier and injects the control-plane actions falling
  /// inside the upcoming slice. Equivalent to run(until) when the callback
  /// schedules nothing. Returns events executed.
  std::uint64_t runEpochs(SimTime until, Duration epoch,
                          const std::function<void(int, SimTime)>& beforeEpoch);

  /// Drop all pending events (e.g., between independent experiment phases).
  void clear();

  [[nodiscard]] std::size_t pendingEvents() const {
    return heap_.size() - cancelledPending_;
  }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }
  /// Largest pending-queue size ever reached — the engine's memory
  /// high-water mark, reported through the obs registry.
  [[nodiscard]] std::size_t queueDepthHighWater() const {
    return queueHighWater_;
  }

private:
  struct Entry {
    SimTime when;
    std::uint64_t seq; // monotonic scheduling order; FIFO tie-break
    EventId id;
    Action action;
  };

  /// One row per live-or-cancelled pending event. `generation` advances
  /// every time the slot is released, invalidating outstanding EventIds.
  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
  };

  // Min-heap ordering on (when, seq).
  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  [[nodiscard]] bool isLive(EventId id) const {
    const Slot& s = slots_[static_cast<std::uint32_t>(id)];
    return s.live && s.generation == static_cast<std::uint32_t>(id >> 32);
  }
  void releaseSlot(EventId id);

  void push(Entry e);
  /// Remove the root entry (heap must be non-empty).
  void dropTop();
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);

  SimTime now_ = kEpoch;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t queueHighWater_ = 0;
  std::size_t cancelledPending_ = 0;
  std::vector<Entry> heap_; // 4-ary implicit heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
};

} // namespace v6t::sim
