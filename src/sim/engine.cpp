#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"

namespace v6t::sim {

namespace {
constexpr std::size_t kArity = 4;
} // namespace

void Engine::siftUp(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void Engine::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(e, heap_[best])) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

void Engine::push(Entry e) {
  heap_.push_back(std::move(e));
  siftUp(heap_.size() - 1);
  if (heap_.size() > queueHighWater_) queueHighWater_ = heap_.size();
}

void Engine::dropTop() {
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    siftDown(0);
  } else {
    heap_.pop_back();
  }
}

void Engine::releaseSlot(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  Slot& s = slots_[slot];
  s.live = false;
  ++s.generation; // outstanding handles to this slot go stale here
  freeSlots_.push_back(slot);
}

EventId Engine::schedule(SimTime when, Action action) {
  if (when < now_) {
    // Clamped-to-now is tolerated but suspicious; surface it without
    // flooding (schedule() is the hottest call in the system).
    if (obs::Logger::global().enabled(obs::Level::Debug)) {
      static obs::EveryN rateLimit{4096};
      if (rateLimit.allow()) {
        obs::logDebug("sim", "schedule in the past clamped to now",
                      {{"behind_ms", (now_ - when).millis()},
                       {"occurrences", rateLimit.seen()}});
      }
    }
    when = now_;
  }
  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.live = true;
  const EventId id = (static_cast<EventId>(s.generation) << 32) | slot;
  push(Entry{when, nextSeq_++, id, std::move(action)});
  return id;
}

bool Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false; // already ran, already cancelled, or never existed
  }
  s.live = false;
  ++cancelledPending_;
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    Entry& top = heap_.front();
    if (!isLive(top.id)) {
      // Cancelled: discard lazily as it surfaces.
      releaseSlot(top.id);
      --cancelledPending_;
      dropTop();
      continue;
    }
    // Peek-before-pop: an entry past the horizon is simply left at the
    // root — no pop, no re-push through the heap.
    if (top.when > until) break;
    now_ = top.when;
    Action action = std::move(top.action);
    releaseSlot(top.id);
    dropTop();
    action(); // may schedule; the entry is already out of the heap
    ++n;
    ++executed_;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Engine::runEpochs(
    SimTime until, Duration epoch,
    const std::function<void(int, SimTime)>& beforeEpoch) {
  std::uint64_t n = 0;
  int index = 0;
  while (now_ < until) {
    const SimTime sliceEnd = std::min(now_ + epoch, until);
    beforeEpoch(index, sliceEnd);
    n += run(sliceEnd);
    ++index;
  }
  return n;
}

std::uint64_t Engine::runAll() {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    Entry& top = heap_.front();
    if (!isLive(top.id)) {
      releaseSlot(top.id);
      --cancelledPending_;
      dropTop();
      continue;
    }
    now_ = top.when;
    Action action = std::move(top.action);
    releaseSlot(top.id);
    dropTop();
    action();
    ++n;
    ++executed_;
  }
  return n;
}

void Engine::clear() {
  // Each heap entry owns its slot until popped, so releasing per entry
  // releases each exactly once and stales every outstanding handle.
  for (const Entry& e : heap_) releaseSlot(e.id);
  heap_.clear();
  cancelledPending_ = 0;
}

} // namespace v6t::sim
