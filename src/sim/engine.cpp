#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"

namespace v6t::sim {

void Engine::push(Entry e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (heap_.size() > queueHighWater_) queueHighWater_ = heap_.size();
}

Engine::Entry Engine::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

bool Engine::popLive(Entry& out) {
  while (!heap_.empty()) {
    Entry e = pop();
    auto it = cancelled_.find(e.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

EventId Engine::schedule(SimTime when, Action action) {
  if (when < now_) {
    // Clamped-to-now is tolerated but suspicious; surface it without
    // flooding (schedule() is the hottest call in the system).
    if (obs::Logger::global().enabled(obs::Level::Debug)) {
      static obs::EveryN rateLimit{4096};
      if (rateLimit.allow()) {
        obs::logDebug("sim", "schedule in the past clamped to now",
                      {{"behind_ms", (now_ - when).millis()},
                       {"occurrences", rateLimit.seen()}});
      }
    }
    when = now_;
  }
  const EventId id = nextSeq_++;
  push(Entry{when, id, std::move(action)});
  return id;
}

bool Engine::cancel(EventId id) {
  if (id >= nextSeq_) return false;
  // Only mark ids that are actually pending; scanning the heap is O(n) but
  // cancellation is rare (prefix withdrawals, scanner retirement).
  const bool pending = std::any_of(
      heap_.begin(), heap_.end(),
      [id](const Entry& e) { return e.seq == id; });
  if (!pending || cancelled_.contains(id)) return false;
  cancelled_.insert(id);
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  Entry e;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (!popLive(e)) break;
    if (e.when > until) {
      // Lost the race against cancellations; put it back.
      push(std::move(e));
      break;
    }
    now_ = e.when;
    e.action();
    ++n;
    ++executed_;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Engine::runEpochs(
    SimTime until, Duration epoch,
    const std::function<void(int, SimTime)>& beforeEpoch) {
  std::uint64_t n = 0;
  int index = 0;
  while (now_ < until) {
    const SimTime sliceEnd = std::min(now_ + epoch, until);
    beforeEpoch(index, sliceEnd);
    n += run(sliceEnd);
    ++index;
  }
  return n;
}

std::uint64_t Engine::runAll() {
  std::uint64_t n = 0;
  Entry e;
  while (popLive(e)) {
    now_ = e.when;
    e.action();
    ++n;
    ++executed_;
  }
  return n;
}

void Engine::clear() {
  heap_.clear();
  cancelled_.clear();
}

} // namespace v6t::sim
