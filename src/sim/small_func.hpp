// v6t::sim — small-buffer-optimized move-only callable for engine actions.
//
// std::function's inline buffer (two pointers on libstdc++) is smaller
// than the typical engine lambda — `[this, feed]`, `[this, sid,
// delivered]`, `[this, cycle]` — so the old `Engine::Action` paid one heap
// allocation per scheduled event, millions per run. SmallFunc stores up to
// kInlineBytes of capture state inline in the event-queue entry itself.
// Callables that do not fit (or whose move may throw) fall back to a
// process-wide slab pool of fixed-size blocks, so even the cold path
// recycles memory instead of hitting malloc.
//
// Move-only by design: the event queue never copies actions, and dropping
// the copy requirement is what lets move-only captures (unique_ptr, etc.)
// ride along for free.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace v6t::sim {

/// Fixed-block slab allocator backing oversized SmallFunc callables.
/// Blocks are carved from kSlabBlocks-block slabs and recycled through a
/// free list; blocks larger than kBlockBytes (rare — a capture that big is
/// a design smell) go straight to operator new. The free list is shared
/// across threads behind a mutex: this path is off the steady-state hot
/// path by construction, and cross-thread frees (a shard's world torn
/// down on the main thread after the merge) must be safe.
class ActionSlabPool {
public:
  static constexpr std::size_t kBlockBytes = 128;
  static constexpr std::size_t kSlabBlocks = 64;

  static ActionSlabPool& instance() {
    static ActionSlabPool pool;
    return pool;
  }

  void* allocate(std::size_t bytes) {
    if (bytes > kBlockBytes) return ::operator new(bytes);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) grow();
    void* block = free_.back();
    free_.pop_back();
    return block;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    if (bytes > kBlockBytes) {
      ::operator delete(p);
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(p);
  }

  /// Blocks currently carved out of slabs (free or not) — test hook.
  [[nodiscard]] std::size_t blocksFree() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

private:
  struct alignas(std::max_align_t) Block {
    std::byte bytes[kBlockBytes];
  };

  void grow() {
    slabs_.push_back(std::make_unique<Block[]>(kSlabBlocks));
    Block* slab = slabs_.back().get();
    free_.reserve(free_.size() + kSlabBlocks);
    for (std::size_t i = 0; i < kSlabBlocks; ++i) free_.push_back(&slab[i]);
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<Block[]>> slabs_;
  std::vector<void*> free_;
};

class SmallFunc {
public:
  /// Inline capture capacity: sized for `this` plus a handful of values —
  /// every lambda the simulation schedules today fits.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFunc() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFunc> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFunc(F&& f) { // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inlineOps<Fn>;
    } else {
      void* block = ActionSlabPool::instance().allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      heapObj() = block;
      ops_ = &heapOps<Fn>;
    }
  }

  SmallFunc(SmallFunc&& other) noexcept { moveFrom(other); }
  SmallFunc& operator=(SmallFunc&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  SmallFunc(const SmallFunc&) = delete;
  SmallFunc& operator=(const SmallFunc&) = delete;

  ~SmallFunc() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  /// True when the callable lives in the inline buffer — bench/test hook.
  [[nodiscard]] bool usesInline() const noexcept {
    return ops_ != nullptr && ops_->inlineStored;
  }

private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inlineStored;
  };

  template <typename Fn>
  static constexpr bool fitsInline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heapOps{
      [](void* s) { (*static_cast<Fn*>(*static_cast<void**>(s)))(); },
      [](void* from, void* to) noexcept {
        *static_cast<void**>(to) = *static_cast<void**>(from);
      },
      [](void* s) noexcept {
        Fn* obj = static_cast<Fn*>(*static_cast<void**>(s));
        obj->~Fn();
        ActionSlabPool::instance().deallocate(obj, sizeof(Fn));
      },
      false,
  };

  void moveFrom(SmallFunc& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] void*& heapObj() noexcept {
    return *reinterpret_cast<void**>(storage_);
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

} // namespace v6t::sim
