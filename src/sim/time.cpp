#include "sim/time.hpp"

#include "obs/format.hpp"

namespace v6t::sim {

std::string toString(SimTime t) { return obs::fmt::daysClock(t.millis(), true); }

std::string toString(Duration d) { return obs::fmt::daysClock(d.millis(), true); }

} // namespace v6t::sim
