#include "sim/time.hpp"

#include <cstdio>

namespace v6t::sim {

namespace {

std::string format(std::int64_t ms, bool signedValue) {
  const bool neg = signedValue && ms < 0;
  if (neg) ms = -ms;
  const std::int64_t d = ms / (24LL * 3600 * 1000);
  ms %= 24LL * 3600 * 1000;
  const std::int64_t h = ms / (3600LL * 1000);
  ms %= 3600LL * 1000;
  const std::int64_t m = ms / 60000;
  ms %= 60000;
  const std::int64_t s = ms / 1000;
  ms %= 1000;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(d),
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

} // namespace

std::string toString(SimTime t) { return format(t.millis(), true); }

std::string toString(Duration d) { return format(d.millis(), true); }

} // namespace v6t::sim
