// v6t_run — run a telescope experiment from a configuration file.
//
//   v6t_run [config-file] [--out DIR] [--dump-captures] [--print-config]
//
// Without a config file the paper's default configuration runs. The tool
// writes a summary report to stdout and, with --dump-captures, one
// .v6tcap file per telescope into the output directory.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/guidance.hpp"
#include "core/summary.hpp"

namespace {

int usage() {
  std::cerr << "usage: v6t_run [config-file] [--out DIR] [--dump-captures]"
               " [--print-config]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;

  std::string configPath;
  std::string outDir = ".";
  bool dumpCaptures = false;
  bool printConfig = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (++i >= argc) return usage();
      outDir = argv[i];
    } else if (arg == "--dump-captures") {
      dumpCaptures = true;
    } else if (arg == "--print-config") {
      printConfig = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    } else {
      configPath = arg;
    }
  }

  core::ExperimentConfig config;
  if (!configPath.empty()) {
    std::ifstream in{configPath};
    if (!in) {
      std::cerr << "cannot open " << configPath << "\n";
      return 1;
    }
    const auto parsed = core::parseExperimentConfig(in);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) {
        std::cerr << configPath << ": " << e << "\n";
      }
      return 1;
    }
    config = parsed.config;
  }
  if (printConfig) {
    std::cout << core::formatExperimentConfig(config);
    return 0;
  }

  std::cout << "running experiment (seed " << config.seed << ", "
            << config.splits << " splits) ...\n";
  core::Experiment experiment{config};
  experiment.run();
  const auto summary = core::ExperimentSummary::compute(experiment);

  // Per-telescope overview.
  analysis::TextTable table{{"telescope", "mode", "packets", "sources /128",
                             "sessions /128", "one-off", "periodic",
                             "intermittent"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& scope = experiment.telescope(t);
    const auto& sessions = summary.telescope(t).sessions128;
    const auto taxonomy = analysis::classifyCapture(
        scope.capture().packets(), sessions,
        t == core::T1 ? &experiment.schedule() : nullptr);
    table.addRow(
        {scope.name(), std::string{telescope::toString(scope.config().mode)},
         analysis::withThousands(scope.capture().packetCount()),
         analysis::withThousands(scope.capture().distinctSources128()),
         analysis::withThousands(sessions.size()),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::OneOff)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Periodic)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Intermittent))});
  }
  table.render(std::cout);

  // Guidance.
  std::cout << "\n";
  for (const auto& finding : core::GuidanceEngine::derive(experiment,
                                                          summary)) {
    std::cout << "* " << finding.topic << ": " << finding.statement << "\n  ("
              << finding.evidence << ")\n";
  }

  if (dumpCaptures) {
    std::filesystem::create_directories(outDir);
    for (std::size_t t = 0; t < 4; ++t) {
      const auto path = std::filesystem::path{outDir} /
                        (experiment.telescope(t).name() + ".v6tcap");
      std::ofstream out{path, std::ios::binary};
      experiment.telescope(t).capture().writeTo(out);
      std::cout << "wrote " << path.string() << " ("
                << experiment.telescope(t).capture().packetCount()
                << " records)\n";
    }
  }
  return 0;
}
