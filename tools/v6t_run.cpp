// v6t_run — run a telescope experiment from a configuration file.
//
//   v6t_run [config-file] [--out DIR] [--dump-captures] [--print-config]
//           [--threads N]
//
// Without a config file the paper's default configuration runs. The tool
// writes a summary report to stdout and, with --dump-captures, one
// .v6tcap file per telescope into the output directory.
//
// With --threads N (or `threads = N` in the config file) the sharded
// ExperimentRunner executes the population across N worker shards and
// merges captures into canonical order; results are bitwise-identical for
// every N. Without either, the classic serial Experiment runs, which also
// produces the §8 operator guidance.
#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/guidance.hpp"
#include "core/runner.hpp"
#include "core/summary.hpp"

namespace {

int usage() {
  std::cerr << "usage: v6t_run [config-file] [--out DIR] [--dump-captures]"
               " [--print-config] [--threads N]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;

  std::string configPath;
  std::string outDir = ".";
  bool dumpCaptures = false;
  bool printConfig = false;
  unsigned threadsOverride = 0; // 0 = not given on the command line
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (++i >= argc) return usage();
      outDir = argv[i];
    } else if (arg == "--threads") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 1 || v > 64) {
        std::cerr << "--threads must be 1..64\n";
        return usage();
      }
      threadsOverride = static_cast<unsigned>(v);
    } else if (arg == "--dump-captures") {
      dumpCaptures = true;
    } else if (arg == "--print-config") {
      printConfig = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    } else {
      configPath = arg;
    }
  }

  core::ExperimentConfig config;
  if (!configPath.empty()) {
    std::ifstream in{configPath};
    if (!in) {
      std::cerr << "cannot open " << configPath << "\n";
      return 1;
    }
    const auto parsed = core::parseExperimentConfig(in);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) {
        std::cerr << configPath << ": " << e << "\n";
      }
      return 1;
    }
    config = parsed.config;
  }
  if (threadsOverride != 0) config.threads = threadsOverride;
  if (printConfig) {
    std::cout << core::formatExperimentConfig(config);
    return 0;
  }

  const bool useRunner = threadsOverride != 0 || config.threads > 1;

  // Both paths produce the same capture/summary data (the runner merges
  // shards into canonical order); only the guidance report is serial-only.
  std::array<const telescope::CaptureStore*, 4> captures{};
  std::array<std::string, 4> names;
  std::unique_ptr<core::Experiment> experiment;
  std::unique_ptr<core::ExperimentRunner> runner;
  const bgp::SplitSchedule* schedule = nullptr;

  if (useRunner) {
    std::cout << "running sharded experiment (seed " << config.seed << ", "
              << config.splits << " splits, " << config.threads
              << " threads) ...\n";
    core::RunnerConfig runnerConfig;
    runnerConfig.experiment = config;
    runner = std::make_unique<core::ExperimentRunner>(runnerConfig);
    runner->run();
    captures = runner->captures();
    for (std::size_t t = 0; t < 4; ++t) names[t] = runner->telescopeName(t);
    schedule = &runner->schedule();
  } else {
    std::cout << "running experiment (seed " << config.seed << ", "
              << config.splits << " splits) ...\n";
    experiment = std::make_unique<core::Experiment>(config);
    experiment->run();
    for (std::size_t t = 0; t < 4; ++t) {
      captures[t] = &experiment->telescope(t).capture();
      names[t] = experiment->telescope(t).name();
    }
    schedule = &experiment->schedule();
  }
  const auto summary =
      useRunner ? core::ExperimentSummary::compute(*runner)
                : core::ExperimentSummary::compute(*experiment);

  // Per-telescope overview.
  analysis::TextTable table{{"telescope", "packets", "sources /128",
                             "sessions /128", "one-off", "periodic",
                             "intermittent"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& sessions = summary.telescope(t).sessions128;
    const auto taxonomy = analysis::classifyCapture(
        captures[t]->packets(), sessions,
        t == core::T1 ? schedule : nullptr);
    table.addRow(
        {names[t], analysis::withThousands(captures[t]->packetCount()),
         analysis::withThousands(captures[t]->distinctSources128()),
         analysis::withThousands(sessions.size()),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::OneOff)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Periodic)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Intermittent))});
  }
  table.render(std::cout);

  if (useRunner) {
    const core::RunnerStats& stats = runner->stats();
    std::cout << "\nshards:\n";
    for (const core::ShardStats& shard : stats.shards) {
      std::cout << "  shard " << shard.shardId << ": scanners="
                << shard.scanners << " events=" << shard.events
                << " captured=" << shard.packetsCaptured << " wall="
                << shard.wallSeconds << "s\n";
    }
    std::cout << "merged " << stats.packetsMerged << " packets in "
              << stats.mergeWallSeconds << "s (run " << stats.runWallSeconds
              << "s)\n";
  } else {
    // Guidance (serial path only; the engine reads the Experiment object).
    std::cout << "\n";
    for (const auto& finding :
         core::GuidanceEngine::derive(*experiment, summary)) {
      std::cout << "* " << finding.topic << ": " << finding.statement
                << "\n  (" << finding.evidence << ")\n";
    }
  }

  if (dumpCaptures) {
    std::filesystem::create_directories(outDir);
    for (std::size_t t = 0; t < 4; ++t) {
      const auto path =
          std::filesystem::path{outDir} / (names[t] + ".v6tcap");
      std::ofstream out{path, std::ios::binary};
      captures[t]->writeTo(out);
      std::cout << "wrote " << path.string() << " ("
                << captures[t]->packetCount() << " records)\n";
    }
  }
  return 0;
}
