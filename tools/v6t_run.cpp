// v6t_run — run a telescope experiment from a configuration file.
//
//   v6t_run [config-file] [--out DIR] [--dump-captures] [--print-config]
//           [--threads N] [--analysis-threads N] [--faults SPEC]
//           [--fault-seed N] [--metrics-out FILE] [--metrics-prom FILE]
//           [--metrics-interval SEC] [--log-level LEVEL]
//
// Without a config file the paper's default configuration runs. The tool
// writes a summary report to stdout and, with --dump-captures, one
// .v6tcap file per telescope into the output directory. --from/--to
// restrict the dump to ts in [from, to) milliseconds; in spill mode the
// start position comes from the segments' sparse time index
// (SegmentReader::lowerBound), so nothing before `from` is read off disk.
//
// With --threads N (or `threads = N` in the config file) the sharded
// ExperimentRunner executes the population across N worker shards and
// merges captures into canonical order; results are bitwise-identical for
// every N. Without either, the classic serial Experiment runs, which also
// produces the §8 operator guidance.
//
// --analysis-threads N (or `analysis.threads = N` in the config file)
// fans the post-run analysis pipeline — summary sessionization plus the
// per-telescope taxonomy over the shared capture index — across N
// workers; the report is bitwise-identical for every N (DESIGN.md §12).
// Unset, it inherits the simulation's thread count.
//
// --faults takes a comma-separated fault spec (see fault/spec.hpp), e.g.
//   --faults "packet_loss=0.01,bgp_drop=0.1,gap=T1@2w+3d"
// and forces the runner path (the fault layer lives in the sharded
// runner); --fault-seed replays the same spec under different draws.
// Faulty runs remain bitwise-reproducible for any --threads value.
//
// --metrics-out streams one JSONL metrics snapshot per --metrics-interval
// seconds of wall time (plus a final post-analysis snapshot) and prints a
// live progress heartbeat to stderr; --metrics-prom writes a final
// Prometheus text dump. Both are pure observers: a run with metrics
// enabled produces bitwise-identical captures to one without.
//
// --trace-out FILE enables the flight recorder (implies trace.enabled and
// full event retention) and writes a Chrome trace-event JSON that loads in
// Perfetto / chrome://tracing: one "simulation" process on the simulated
// clock (byte-identical for any --threads value) and one "analysis
// scheduler" process on the wall clock. Tracing is observation-only —
// captures and the report stay bitwise-identical to an untraced run.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/pipeline.hpp"
#include "analysis/report.hpp"
#include "analysis/streaming.hpp"
#include "analysis/taxonomy.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/guidance.hpp"
#include "core/metrics.hpp"
#include "core/runner.hpp"
#include "core/summary.hpp"
#include "fault/invariants.hpp"
#include "fault/spec.hpp"
#include "obs/exporter.hpp"
#include "obs/format.hpp"
#include "net/pcap.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telescope/kway_merge.hpp"

namespace {

int usage() {
  std::cerr << "usage: v6t_run [config-file] [--out DIR] [--dump-captures]"
               " [--print-config] [--threads N]\n"
               "               [--analysis-threads N] [--faults SPEC]"
               " [--fault-seed N] [--metrics-out FILE]\n"
               "               [--metrics-prom FILE] [--metrics-interval SEC]"
               " [--log-level LEVEL]\n"
               "               [--trace-out FILE] [--spill-dir DIR]"
               " [--spill-bytes N]\n"
               "               [--from MS] [--to MS] [--source ADDR]\n"
               "\n"
               "--from/--to restrict --dump-captures to packets with\n"
               "from <= ts < to (simulated milliseconds since epoch); in\n"
               "spill mode the start lands via the segments' sparse time\n"
               "index instead of a full scan.\n"
               "--source restricts --dump-captures to packets from one\n"
               "/128 source address; in spill mode segments that hold\n"
               "nothing from it (per their source tables) are never read.\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;

  std::string configPath;
  std::string outDir = ".";
  std::string metricsOut;
  std::string metricsProm;
  std::string traceOut;
  double metricsInterval = 1.0;
  bool dumpCaptures = false;
  bool printConfig = false;
  unsigned threadsOverride = 0; // 0 = not given on the command line
  unsigned analysisThreadsOverride = 0;
  std::string faultsSpec;
  std::optional<std::uint64_t> faultSeedOverride;
  std::string spillDir;
  std::uint64_t spillBytes = 0;
  std::optional<std::int64_t> dumpFromMs;
  std::optional<std::int64_t> dumpToMs;
  std::optional<net::Ipv6Address> dumpSource;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (++i >= argc) return usage();
      outDir = argv[i];
    } else if (arg == "--faults") {
      if (++i >= argc) return usage();
      faultsSpec = argv[i];
    } else if (arg == "--fault-seed") {
      if (++i >= argc) return usage();
      faultSeedOverride = std::strtoull(argv[i], nullptr, 10);
    } else if (arg == "--threads") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 1 || v > 64) {
        std::cerr << "--threads must be 1..64\n";
        return usage();
      }
      threadsOverride = static_cast<unsigned>(v);
    } else if (arg == "--analysis-threads") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 1 || v > 64) {
        std::cerr << "--analysis-threads must be 1..64\n";
        return usage();
      }
      analysisThreadsOverride = static_cast<unsigned>(v);
    } else if (arg == "--spill-dir") {
      if (++i >= argc) return usage();
      spillDir = argv[i];
    } else if (arg == "--spill-bytes") {
      if (++i >= argc) return usage();
      spillBytes = std::strtoull(argv[i], nullptr, 10);
      if (spillBytes == 0) {
        std::cerr << "--spill-bytes must be > 0\n";
        return usage();
      }
    } else if (arg == "--metrics-out") {
      if (++i >= argc) return usage();
      metricsOut = argv[i];
    } else if (arg == "--metrics-prom") {
      if (++i >= argc) return usage();
      metricsProm = argv[i];
    } else if (arg == "--trace-out") {
      if (++i >= argc) return usage();
      traceOut = argv[i];
    } else if (arg == "--metrics-interval") {
      if (++i >= argc) return usage();
      metricsInterval = std::strtod(argv[i], nullptr);
      if (!(metricsInterval > 0.0)) {
        std::cerr << "--metrics-interval must be > 0\n";
        return usage();
      }
    } else if (arg == "--log-level") {
      if (++i >= argc) return usage();
      const std::string name = argv[i];
      if (name != "trace" && name != "debug" && name != "info" &&
          name != "warn" && name != "error" && name != "off") {
        std::cerr << "--log-level must be trace|debug|info|warn|error|off\n";
        return usage();
      }
      obs::Logger::global().setLevel(obs::parseLevel(name));
    } else if (arg == "--from") {
      if (++i >= argc) return usage();
      dumpFromMs = std::strtoll(argv[i], nullptr, 10);
    } else if (arg == "--to") {
      if (++i >= argc) return usage();
      dumpToMs = std::strtoll(argv[i], nullptr, 10);
    } else if (arg == "--source") {
      if (++i >= argc) return usage();
      dumpSource = net::Ipv6Address::parse(argv[i]);
      if (!dumpSource) {
        std::cerr << "--source: not a valid IPv6 address: " << argv[i]
                  << "\n";
        return usage();
      }
    } else if (arg == "--dump-captures") {
      dumpCaptures = true;
    } else if (arg == "--print-config") {
      printConfig = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    } else {
      configPath = arg;
    }
  }

  if (dumpFromMs && dumpToMs && *dumpToMs <= *dumpFromMs) {
    std::cerr << "--to must be greater than --from\n";
    return usage();
  }

  core::ExperimentConfig config;
  if (!configPath.empty()) {
    std::ifstream in{configPath};
    if (!in) {
      std::cerr << "cannot open " << configPath << "\n";
      return 1;
    }
    const auto parsed = core::parseExperimentConfig(in);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) {
        std::cerr << configPath << ": " << e << "\n";
      }
      return 1;
    }
    config = parsed.config;
  }
  if (threadsOverride != 0) config.threads = threadsOverride;
  if (analysisThreadsOverride != 0) {
    config.analysisThreads = analysisThreadsOverride;
  }
  if (!faultsSpec.empty()) {
    const auto parsed = fault::FaultSpec::parse(faultsSpec);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) std::cerr << "--faults: " << e << "\n";
      return 1;
    }
    config.faults = parsed.spec;
  }
  if (faultSeedOverride) config.faultSeed = *faultSeedOverride;
  if (!spillDir.empty()) config.captureSpillDir = spillDir;
  if (spillBytes != 0) config.captureSpillBytes = spillBytes;
  const bool spillMode = config.captureSpillEnabled();
  if (!traceOut.empty()) {
    // Export needs every sim-domain event, not just the bounded ring.
    config.traceEnabled = true;
    config.traceRetainAll = true;
    if (!obs::trace::kCompiledIn) {
      std::cerr << "--trace-out requires a build with V6T_TRACE=ON\n";
      return 1;
    }
  }
  if (printConfig) {
    std::cout << core::formatExperimentConfig(config);
    return 0;
  }

  // Faults force the runner: the fault layer wraps the runner's script
  // broadcast and per-shard fabrics, not the serial reference Experiment.
  // So does spill mode — the segment stores are per-shard structures.
  const bool useRunner = threadsOverride != 0 || config.threads > 1 ||
                         !config.faults.empty() || spillMode;

  // Both paths produce the same capture/summary data (the runner merges
  // shards into canonical order); only the guidance report is serial-only.
  std::array<const telescope::CaptureStore*, 4> captures{};
  std::array<std::string, 4> names;
  std::unique_ptr<core::Experiment> experiment;
  std::unique_ptr<core::ExperimentRunner> runner;
  const bgp::SplitSchedule* schedule = nullptr;

  std::unique_ptr<obs::PeriodicExporter> exporter;
  obs::ExporterOptions exporterOptions;
  exporterOptions.jsonlPath = metricsOut;
  exporterOptions.intervalSeconds = metricsInterval;

  // Flight-recorder handles (one per shard; the serial path has one).
  std::vector<obs::trace::Tracer*> traceHandles;
  auto armFlightRecorder = [&] {
    if (!config.traceEnabled) return;
    // Fatal signals dump the retained ring windows to stderr post-mortem.
    obs::trace::registerCrashDumpTracers(traceHandles);
    obs::trace::installCrashHandler();
  };

  if (useRunner) {
    std::cout << "running sharded experiment (seed " << config.seed << ", "
              << config.splits << " splits, " << config.threads
              << " threads) ...\n";
    core::RunnerConfig runnerConfig;
    runnerConfig.experiment = config;
    runner = std::make_unique<core::ExperimentRunner>(runnerConfig);
    traceHandles = runner->tracersMutable();
    armFlightRecorder();
    if (!metricsOut.empty()) {
      // The exporter thread only reads relaxed-atomic metric values; it
      // cannot perturb the shards (DESIGN.md §9 determinism contract).
      exporter = std::make_unique<obs::PeriodicExporter>(
          exporterOptions,
          [&runner](std::ostream& out) {
            obs::Registry snapshot;
            runner->snapshotMetrics(snapshot);
            snapshot.writeJsonLine(
                out, {{"phase", "live"},
                      {"wall_time", obs::fmt::isoTimestampUtc()}});
          },
          [&runner] { return runner->progressLine(); });
    }
    runner->run();
    captures = runner->captures();
    for (std::size_t t = 0; t < 4; ++t) names[t] = runner->telescopeName(t);
    schedule = &runner->schedule();
  } else {
    std::cout << "running experiment (seed " << config.seed << ", "
              << config.splits << " splits) ...\n";
    experiment = std::make_unique<core::Experiment>(config);
    traceHandles = {&experiment->tracer()};
    armFlightRecorder();
    if (!metricsOut.empty()) {
      exporter = std::make_unique<obs::PeriodicExporter>(
          exporterOptions,
          [&experiment](std::ostream& out) {
            obs::Registry snapshot;
            snapshot.aggregateFrom(experiment->metrics());
            snapshot.writeJsonLine(
                out, {{"phase", "live"},
                      {"wall_time", obs::fmt::isoTimestampUtc()}});
          },
          [] { return std::string{}; });
    }
    experiment->run();
    for (std::size_t t = 0; t < 4; ++t) {
      captures[t] = &experiment->telescope(t).capture();
      names[t] = experiment->telescope(t).name();
    }
    schedule = &experiment->schedule();
  }

  obs::Registry& metrics =
      useRunner ? runner->metrics() : experiment->metrics();

  // Flush every observability artifact — last metrics snapshot, Prometheus
  // dump, trace file — used by both the normal-exit path and the
  // invariant-failure abort, so a run never dies between heartbeats with
  // its last interval lost.
  auto flushObservability = [&](const char* phase) {
    if (exporter) {
      exporter->stop();
      exporter.reset();
    }
    if (!metricsOut.empty()) {
      std::ofstream out{metricsOut, std::ios::app};
      if (!out) {
        std::cerr << "cannot write " << metricsOut << "\n";
        return false;
      }
      metrics.writeJsonLine(
          out, {{"phase", phase}, {"wall_time", obs::fmt::isoTimestampUtc()}});
    }
    if (!metricsProm.empty()) {
      std::ofstream out{metricsProm};
      if (!out) {
        std::cerr << "cannot write " << metricsProm << "\n";
        return false;
      }
      metrics.writePrometheus(out);
    }
    if (!traceOut.empty()) {
      const std::vector<const obs::trace::Tracer*> view(traceHandles.begin(),
                                                        traceHandles.end());
      const auto simEvents = obs::trace::collectCanonicalSimEvents(view);
      const auto wallEvents = obs::trace::collectWallEvents(view);
      std::ofstream out{traceOut};
      if (!out) {
        std::cerr << "cannot write " << traceOut << "\n";
        return false;
      }
      obs::trace::writeChromeTrace(out, simEvents, wallEvents);
      std::cout << "wrote " << traceOut << " (" << simEvents.size()
                << " sim events, " << wallEvents.size()
                << " scheduler events)\n";
    }
    return true;
  };

  auto printRunnerStats = [&] {
    const core::RunnerStats& stats = runner->stats();
    std::cout << "\nshards:\n";
    double maxWall = 0.0;
    double sumWall = 0.0;
    double sumBarrierWait = 0.0;
    for (const core::ShardStats& shard : stats.shards) {
      std::uint64_t minEpochEvents = 0;
      std::uint64_t maxEpochEvents = 0;
      if (!shard.epochEvents.empty()) {
        const auto [lo, hi] = std::minmax_element(shard.epochEvents.begin(),
                                                  shard.epochEvents.end());
        minEpochEvents = *lo;
        maxEpochEvents = *hi;
      }
      std::cout << "  shard " << shard.shardId << ": scanners="
                << shard.scanners << " events=" << shard.events
                << " captured=" << shard.packetsCaptured << " wall="
                << obs::fmt::fixed(shard.wallSeconds, 3) << "s barrier_wait="
                << obs::fmt::fixed(shard.barrierWaitSeconds, 3)
                << "s epoch_events=" << minEpochEvents << ".."
                << maxEpochEvents << " queue_hwm="
                << shard.queueDepthHighWater << "\n";
      maxWall = std::max(maxWall, shard.wallSeconds);
      sumWall += shard.wallSeconds;
      sumBarrierWait += shard.barrierWaitSeconds;
    }
    const double meanWall =
        stats.shards.empty() ? 0.0
                             : sumWall / static_cast<double>(stats.shards.size());
    std::cout << "imbalance: slowest/mean wall="
              << obs::fmt::fixed(meanWall > 0 ? maxWall / meanWall : 0.0, 2)
              << "x, total barrier wait="
              << obs::fmt::fixed(sumBarrierWait, 3) << "s\n";
    std::cout << "merged " << stats.packetsMerged << " packets in "
              << obs::fmt::fixed(stats.mergeWallSeconds, 3) << "s (run "
              << obs::fmt::fixed(stats.runWallSeconds, 3) << "s)\n";
  };

  // Spill mode: the in-memory captures drained to per-shard segment stores
  // during the run, so every downstream consumer streams the canonical
  // k-way merge instead of touching captures[] (which is empty). The
  // windowed analysis digest is bitwise-identical to the in-memory path
  // (DESIGN.md §15); the canonical-order invariant gate runs inline on the
  // stream for the same reason.
  if (spillMode) {
    const unsigned analysisThreads = config.effectiveAnalysisThreads();
    std::array<analysis::StreamingResult, 4> results;
    std::array<std::uint64_t, 4> segmentCounts{};
    std::vector<std::string> orderViolations;
    {
      obs::Span phaseSpan(metrics, "runner.phase.analyze_seconds");
      for (std::size_t t = 0; t < 4; ++t) {
        for (const telescope::SegmentStore* store : runner->spillStores(t)) {
          segmentCounts[t] += store->segmentCount();
        }
        analysis::StreamingOptions opts;
        opts.threads = analysisThreads;
        opts.metrics = &metrics;
        opts.captureGaps = config.faults.gapWindowsFor(t);
        analysis::StreamingAnalyzer analyzer{opts};
        auto cursor = runner->streamCapture(t);
        bool first = true;
        std::tuple<std::int64_t, std::uint32_t, std::uint64_t> prev{};
        if (!cursor.empty()) {
          do {
            const net::Packet& p = cursor.head();
            const std::tuple<std::int64_t, std::uint32_t, std::uint64_t> key{
                p.ts.millis(), p.originId, p.originSeq};
            if (!first && !(prev < key)) {
              orderViolations.push_back(
                  names[t] + ": spilled stream not strictly canonical at ts=" +
                  std::to_string(p.ts.millis()));
            }
            prev = key;
            first = false;
            analyzer.ingest(p);
          } while (cursor.advance());
        }
        results[t] = analyzer.finish();
      }
    }
    if (!orderViolations.empty()) {
      std::cerr << "FATAL: capture invariant violated\n";
      for (const std::string& v : orderViolations) {
        std::cerr << "  " << v << "\n";
      }
      obs::trace::dumpRegisteredRings(std::cerr);
      flushObservability("abort");
      return 1;
    }
    if (!flushObservability("final")) return 1;

    analysis::TextTable table{{"telescope", "packets", "sources /128",
                               "sessions /128", "heavy hitters", "windows",
                               "segments"}};
    for (std::size_t t = 0; t < 4; ++t) {
      const analysis::StreamingResult& r = results[t];
      const bool inGap = !config.faults.gapWindowsFor(t).empty();
      table.addRow({analysis::gapFlagged(names[t], inGap),
                    analysis::withThousands(r.totalPackets),
                    analysis::withThousands(r.sources.size()),
                    analysis::withThousands(r.sessionStats.opened),
                    analysis::withThousands(r.heavyHitters.size()),
                    analysis::withThousands(r.windows.size()),
                    analysis::withThousands(segmentCounts[t])});
    }
    table.render(std::cout);
    std::cout << "\ncapture digests (streamed, canonical order):\n";
    for (std::size_t t = 0; t < 4; ++t) {
      std::cout << "  " << names[t] << ": 0x" << std::hex
                << results[t].digest() << std::dec << "\n";
    }

    printRunnerStats();

    if (dumpCaptures) {
      std::filesystem::create_directories(outDir);
      for (std::size_t t = 0; t < 4; ++t) {
        const auto path =
            std::filesystem::path{outDir} / (names[t] + ".v6tcap");
        std::ofstream out{path, std::ios::binary};
        net::CaptureWriter writer{out};
        // Ranged dump: the cursor starts at the sparse-index lower bound
        // for --from, and --to stops the ts-ordered stream early; the
        // bytes written equal a full dump filtered to [from, to). With
        // --source the cursor also skips whole segments whose source
        // tables prove they hold nothing from that address; the stream
        // is a superset, so the per-record filter below still applies —
        // which is exactly why the output is byte-identical to
        // post-filtering a full dump (a filter over a subsequence-
        // preserving stream equals a filter over the full stream).
        const std::optional<sim::SimTime> fromTime =
            dumpFromMs ? std::optional{sim::SimTime{*dumpFromMs}}
                       : std::nullopt;
        auto cursor =
            dumpSource
                ? runner->streamCaptureForSource(t, *dumpSource, fromTime)
                : (fromTime ? runner->streamCapture(t, *fromTime)
                            : runner->streamCapture(t));
        if (!cursor.empty()) {
          do {
            const net::Packet& p = cursor.head();
            if (dumpToMs && p.ts.millis() >= *dumpToMs) break;
            if (dumpSource && p.src != *dumpSource) continue;
            writer.write(p);
          } while (cursor.advance());
        }
        std::cout << "wrote " << path.string() << " ("
                  << writer.recordsWritten() << " records)\n";
      }
    }
    return 0;
  }

  // Post-merge invariant gate: canonical capture order is the anchor every
  // downstream analysis assumes. On violation, dump the flight-recorder
  // rings (the most recent causal history) and flush a final "abort"
  // snapshot instead of dying between heartbeats.
  {
    fault::InvariantChecker checker;
    for (std::size_t t = 0; t < 4; ++t) {
      checker.checkCanonicalOrder(*captures[t]);
    }
    if (!checker.ok()) {
      std::cerr << "FATAL: capture invariant violated\n";
      for (const std::string& v : checker.violations()) {
        std::cerr << "  " << v << "\n";
      }
      obs::trace::dumpRegisteredRings(std::cerr);
      flushObservability("abort");
      return 1;
    }
  }

  // Post-run analysis: summary sessionization plus the per-telescope
  // pipeline (shared capture index, parallel taxonomy), all inside the
  // runner.phase.analyze_seconds span so the final snapshot carries the
  // full analysis cost and the analysis.* instrumentation.
  const unsigned analysisThreads = config.effectiveAnalysisThreads();
  std::optional<core::ExperimentSummary> summary;
  std::array<analysis::PipelineResult, 4> reports;
  // Analysis scheduler slices/steals land in tracer 0's wall-domain lane.
  if (config.traceEnabled && !traceHandles.empty()) {
    obs::trace::setWallTracer(traceHandles.front());
  }
  {
    obs::Span phaseSpan(metrics, "runner.phase.analyze_seconds");
    {
      obs::Span analyzeSpan(metrics, "experiment.phase.analyze_seconds");
      summary = core::ExperimentSummary::compute(captures, names,
                                                 config.faults,
                                                 analysisThreads);
    }
    core::collectSummaryMetrics(*summary, metrics);

    analysis::PipelineOptions pipelineOptions;
    pipelineOptions.threads = analysisThreads;
    pipelineOptions.minSplitCost = config.analysisMinSplitCost;
    pipelineOptions.fingerprint = false; // overview needs taxonomy + hitters
    for (std::size_t t = 0; t < 4; ++t) {
      const analysis::Pipeline pipeline{captures[t]->packets(),
                                        summary->telescope(t).sessions128,
                                        &metrics};
      reports[t] = pipeline.run(t == core::T1 ? schedule : nullptr,
                                pipelineOptions);
    }
  }

  obs::trace::setWallTracer(nullptr);

  // The live exporter's ticks are done; the final post-analysis snapshot,
  // the Prometheus dump, and the trace file come from the fully aggregated
  // state.
  if (!flushObservability("final")) return 1;

  // Per-telescope overview.
  analysis::TextTable table{{"telescope", "packets", "sources /128",
                             "sessions /128", "one-off", "periodic",
                             "intermittent"}};
  for (std::size_t t = 0; t < 4; ++t) {
    const auto& sessions = summary->telescope(t).sessions128;
    const analysis::TaxonomyResult& taxonomy = reports[t].taxonomy;
    // A telescope whose observation window overlaps a declared capture
    // outage is flagged: its numbers are lower bounds, not measurements.
    const bool inGap = !config.faults.gapWindowsFor(t).empty();
    table.addRow(
        {analysis::gapFlagged(names[t], inGap),
         analysis::withThousands(captures[t]->packetCount()),
         analysis::withThousands(captures[t]->distinctSources128()),
         analysis::withThousands(sessions.size()),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::OneOff)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Periodic)),
         analysis::withThousands(
             taxonomy.scannersOf(analysis::TemporalClass::Intermittent))});
  }
  table.render(std::cout);

  if (useRunner) {
    printRunnerStats();
  } else {
    // Guidance (serial path only; the engine reads the Experiment object).
    std::cout << "\n";
    for (const auto& finding :
         core::GuidanceEngine::derive(*experiment, *summary)) {
      std::cout << "* " << finding.topic << ": " << finding.statement
                << "\n  (" << finding.evidence << ")\n";
    }
  }

  if (dumpCaptures) {
    std::filesystem::create_directories(outDir);
    for (std::size_t t = 0; t < 4; ++t) {
      const auto path =
          std::filesystem::path{outDir} / (names[t] + ".v6tcap");
      std::ofstream out{path, std::ios::binary};
      if (!dumpFromMs && !dumpToMs && !dumpSource) {
        captures[t]->writeTo(out);
        std::cout << "wrote " << path.string() << " ("
                  << captures[t]->packetCount() << " records)\n";
        continue;
      }
      // Ranged dump over the ts-ordered in-memory capture: one lower
      // bound for --from, early stop at --to, linear --source filter;
      // byte-identical to a full dump filtered the same way.
      const std::vector<net::Packet>& pkts = captures[t]->packets();
      auto it = pkts.begin();
      if (dumpFromMs) {
        it = std::lower_bound(pkts.begin(), pkts.end(), *dumpFromMs,
                              [](const net::Packet& p, std::int64_t ms) {
                                return p.ts.millis() < ms;
                              });
      }
      net::CaptureWriter writer{out};
      for (; it != pkts.end(); ++it) {
        if (dumpToMs && it->ts.millis() >= *dumpToMs) break;
        if (dumpSource && it->src != *dumpSource) continue;
        writer.write(*it);
      }
      std::cout << "wrote " << path.string() << " ("
                << writer.recordsWritten() << " records)\n";
    }
  }
  return 0;
}
