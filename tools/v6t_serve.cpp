// v6t_serve — event-driven query service over a recorded capture.
//
//   v6t_serve (--capture FILE | --spill-dir DIR) [config-file]
//             [--telescope NAME] [--port N] [--threads N]
//             [--analysis-threads N] [--cache-bytes N] [--no-schedule]
//
// Loads one telescope's capture — either an in-memory .v6tcap dump or a
// spilled SegmentStore directory (a single store, or a runner spill root
// with shard-*/NAME subdirectories merged in canonical order) — builds
// the immutable analysis::CaptureIndex once, and serves the read-only
// JSON endpoints of DESIGN.md §17 over HTTP/1.1:
//
//   GET /reports/table6      taxonomy scanner/session counts (Table 6)
//   GET /heavy-hitters?k=N   top-k heavy hitters + their traffic impact
//   GET /sources/<addr>      one source's aggregates and temporal class
//   GET /reaction-delays     first capture vs announcement per cycle
//   GET /metrics             Prometheus text (serve.* instrumentation)
//   GET /healthz             liveness
//
// The config file (same format as v6t_run's) supplies both the split
// schedule that /reaction-delays is computed against and the serve.*
// tuning keys; command-line flags override. The schedule is rebuilt from
// the timeline parameters alone (SplitSchedule::make is pure), so serving
// does not re-run the experiment. --no-schedule drops it for captures
// taken outside the BGP experiment (T2/T3/T4): /reaction-delays then 404s.
//
// Responses are deterministic functions of the capture, which is what the
// sharded result cache (serve.cache_bytes; 0 disables) exploits — see
// bench/serve_load for the cached-vs-uncached contract.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bgp/splitter.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "sim/time.hpp"
#include "telescope/capture_store.hpp"
#include "telescope/kway_merge.hpp"
#include "telescope/segment_store.hpp"
#include "telescope/session.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: v6t_serve (--capture FILE | --spill-dir DIR) [config-file]\n"
         "                 [--telescope NAME] [--port N] [--threads N]\n"
         "                 [--analysis-threads N] [--cache-bytes N]\n"
         "                 [--no-schedule]\n"
         "\n"
         "--capture FILE     .v6tcap dump (v6t_run --dump-captures)\n"
         "--spill-dir DIR    v6tseg SegmentStore dir, or a runner spill\n"
         "                   root with shard-*/NAME subdirectories\n"
         "--telescope NAME   telescope subdirectory in a spill root\n"
         "                   (default T1)\n"
         "--no-schedule      serve without a split schedule\n"
         "                   (/reaction-delays returns 404)\n";
  return 2;
}

std::atomic<bool> gStop{false};

void onSignal(int) { gStop.store(true, std::memory_order_relaxed); }

} // namespace

int main(int argc, char** argv) {
  using namespace v6t;

  std::string capturePath;
  std::string spillDir;
  std::string configPath;
  std::string telescopeName = "T1";
  bool noSchedule = false;
  int portOverride = -1;
  unsigned threadsOverride = 0;
  unsigned analysisThreadsOverride = 0;
  std::int64_t cacheBytesOverride = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--capture") {
      if (++i >= argc) return usage();
      capturePath = argv[i];
    } else if (arg == "--spill-dir") {
      if (++i >= argc) return usage();
      spillDir = argv[i];
    } else if (arg == "--telescope") {
      if (++i >= argc) return usage();
      telescopeName = argv[i];
    } else if (arg == "--port") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 0 || v > 65535) {
        std::cerr << "--port must be 0..65535 (0 = ephemeral)\n";
        return usage();
      }
      portOverride = static_cast<int>(v);
    } else if (arg == "--threads") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 1 || v > 64) {
        std::cerr << "--threads must be 1..64\n";
        return usage();
      }
      threadsOverride = static_cast<unsigned>(v);
    } else if (arg == "--analysis-threads") {
      if (++i >= argc) return usage();
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v < 1 || v > 64) {
        std::cerr << "--analysis-threads must be 1..64\n";
        return usage();
      }
      analysisThreadsOverride = static_cast<unsigned>(v);
    } else if (arg == "--cache-bytes") {
      if (++i >= argc) return usage();
      cacheBytesOverride = std::strtoll(argv[i], nullptr, 10);
      if (cacheBytesOverride < 0) {
        std::cerr << "--cache-bytes must be >= 0 (0 disables the cache)\n";
        return usage();
      }
    } else if (arg == "--no-schedule") {
      noSchedule = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    } else {
      configPath = arg;
    }
  }

  if (capturePath.empty() == spillDir.empty()) {
    std::cerr << "exactly one of --capture / --spill-dir is required\n";
    return usage();
  }

  core::ExperimentConfig config;
  if (!configPath.empty()) {
    std::ifstream in{configPath};
    if (!in) {
      std::cerr << "cannot open " << configPath << "\n";
      return 1;
    }
    const auto parsed = core::parseExperimentConfig(in);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) {
        std::cerr << configPath << ": " << e << "\n";
      }
      return 1;
    }
    config = parsed.config;
  }

  // Load the capture into one canonical-order packet vector. The spill
  // path streams the same k-way merge the analysis uses, so the packets —
  // and therefore every response — are identical to the in-memory path.
  std::vector<net::Packet> packets;
  if (!capturePath.empty()) {
    std::ifstream in{capturePath, std::ios::binary};
    if (!in) {
      std::cerr << "cannot open " << capturePath << "\n";
      return 1;
    }
    telescope::CaptureStore store;
    store.readFrom(in);
    packets = store.packets();
    std::cout << "loaded " << packets.size() << " packets from "
              << capturePath << "\n";
  } else {
    namespace fs = std::filesystem;
    if (!fs::is_directory(spillDir)) {
      std::cerr << spillDir << " is not a directory\n";
      return 1;
    }
    // Runner spill roots hold shard-<s>/<telescope> stores; a bare store
    // directory holds the segments directly.
    std::vector<fs::path> storeDirs;
    for (const auto& entry : fs::directory_iterator(spillDir)) {
      if (entry.is_directory() &&
          entry.path().filename().string().rfind("shard-", 0) == 0) {
        const fs::path sub = entry.path() / telescopeName;
        if (fs::is_directory(sub)) storeDirs.push_back(sub);
      }
    }
    std::sort(storeDirs.begin(), storeDirs.end());
    if (storeDirs.empty()) storeDirs.push_back(spillDir);
    std::vector<std::unique_ptr<telescope::SegmentStore>> stores;
    std::vector<telescope::SegmentStore::Cursor> cursors;
    std::uint64_t total = 0;
    for (const fs::path& dir : storeDirs) {
      telescope::SegmentStoreOptions opts;
      opts.dir = dir;
      stores.push_back(std::make_unique<telescope::SegmentStore>(opts));
      total += stores.back()->recordCount();
      cursors.push_back(stores.back()->cursor());
    }
    packets.reserve(total);
    telescope::KWayMerge<telescope::SegmentStore::Cursor> merge{
        std::move(cursors)};
    while (!merge.done()) {
      packets.push_back(merge.head());
      merge.pop();
    }
    std::cout << "loaded " << packets.size() << " packets from "
              << storeDirs.size() << " segment store(s) under " << spillDir
              << "\n";
  }

  // Sessions at /128 — the unit of classification (§3.3) the index is
  // built over, same as the analysis pipeline's default.
  const std::vector<telescope::Session> sessions =
      telescope::sessionize(packets, telescope::SourceAgg::Addr128);

  // The schedule is pure data computed from the timeline parameters — no
  // experiment run needed to know when each child prefix went live.
  std::unique_ptr<bgp::SplitSchedule> schedule;
  if (!noSchedule) {
    bgp::SplitSchedule::Params params;
    params.base = config.t1Base;
    params.start = sim::kEpoch;
    params.baseline = config.baseline;
    params.cycle = config.cycle;
    params.withdrawGap = config.withdrawGap;
    params.splits = config.splits;
    schedule =
        std::make_unique<bgp::SplitSchedule>(bgp::SplitSchedule::make(params));
  }

  obs::Registry registry;
  serve::QueryEngineOptions engineOptions;
  engineOptions.analysisThreads = analysisThreadsOverride != 0
                                      ? analysisThreadsOverride
                                      : config.effectiveAnalysisThreads();
  engineOptions.minSplitCost = config.analysisMinSplitCost;
  std::cout << "building capture index (" << sessions.size()
            << " sessions) ...\n";
  const serve::QueryEngine engine{packets, sessions, schedule.get(),
                                  engineOptions, &registry};

  serve::ServerOptions serverOptions;
  serverOptions.port = portOverride >= 0
                           ? static_cast<std::uint16_t>(portOverride)
                           : config.servePort;
  serverOptions.threads =
      threadsOverride != 0 ? threadsOverride : config.serveThreads;
  serverOptions.cacheBytes = cacheBytesOverride >= 0
                                 ? static_cast<std::uint64_t>(cacheBytesOverride)
                                 : config.serveCacheBytes;
  serverOptions.cacheShards = config.serveCacheShards;
  serverOptions.maxConnections = config.serveMaxConnections;
  serverOptions.maxRequestBytes = config.serveMaxRequestBytes;
  serverOptions.idleTimeoutSeconds =
      static_cast<double>(config.serveIdleTimeoutSeconds);
  serverOptions.registry = &registry;

  serve::Server server{engine, serverOptions};
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "cannot start server: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::cout << "serving on http://127.0.0.1:" << server.port() << " ("
            << serverOptions.threads << " workers, cache "
            << serverOptions.cacheBytes << " bytes)\n"
            << std::flush;

  while (!gStop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "shutting down after " << server.requestsServed()
            << " requests\n";
  server.stop();
  return 0;
}
