// A tour of the scanner ecosystem: every target-generation strategy with
// sample addresses and how the addr6-style classifier sees them, plus the
// public tool fingerprints and what the payload matcher makes of them.
//
//   ./scanner_zoo
#include <iostream>

#include "analysis/addr_class.hpp"
#include "analysis/report.hpp"
#include "net/tool_signatures.hpp"
#include "scanner/target_gen.hpp"

int main() {
  using namespace v6t;

  const net::Prefix prefix = net::Prefix::mustParse("3fff:db8::/32");
  sim::Rng rng{7};

  std::cout << "=== target-generation strategies over "
            << prefix.toString() << " ===\n";
  analysis::TextTable strategies{{"strategy", "sample targets",
                                  "classified as"}};
  for (std::size_t s = 0; s < scanner::kTargetStrategyCount; ++s) {
    const auto strategy = static_cast<scanner::TargetStrategy>(s);
    scanner::TargetGenerator gen{strategy, prefix, rng};
    std::string samples;
    analysis::AddressTypeHistogram histogram;
    for (int i = 0; i < 64; ++i) {
      const net::Ipv6Address a = gen.next();
      if (i < 2) {
        if (!samples.empty()) samples += "  ";
        samples += a.toString();
      }
      histogram.add(analysis::classifyAddress(a));
    }
    // Dominant class of the 64 samples.
    std::size_t best = 0;
    for (std::size_t i = 1; i < analysis::kAddressTypeCount; ++i) {
      if (histogram.count[i] > histogram.count[best]) best = i;
    }
    strategies.addRow(
        {std::string{scanner::toString(strategy)}, samples,
         std::string{analysis::toString(
             static_cast<analysis::AddressType>(best))} +
             " (" +
             analysis::fixed(100.0 * static_cast<double>(
                                         histogram.count[best]) /
                                 64.0,
                             0) +
             "%)"});
  }
  strategies.render(std::cout);

  std::cout << "\n=== public tool fingerprints (§5.4) ===\n";
  analysis::TextTable tools{{"tool", "magic bytes", "rDNS suffix",
                             "matcher verdict"}};
  for (const net::ToolSignature& sig : net::kToolSignatures) {
    std::string magic;
    for (std::size_t i = 0; i < sig.magicLen; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%02x ", sig.magic[i]);
      magic += buf;
    }
    std::vector<std::uint8_t> payload(sig.magic.begin(),
                                      sig.magic.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              sig.magicLen));
    payload.resize(12, 0);
    tools.addRow({std::string{net::toString(sig.tool)}, magic,
                  std::string{sig.rdnsSuffix.empty() ? "-" : sig.rdnsSuffix},
                  std::string{net::toString(net::matchToolSignature(payload))}});
  }
  tools.render(std::cout);
  return 0;
}
