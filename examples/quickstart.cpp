// Quickstart: the v6telescope basics in ~80 lines.
//
// Build a telescope, announce its prefix, point a couple of scanner agents
// at it, run the simulation for two weeks, then sessionize and classify
// the capture — the same pipeline the full paper reproduction uses.
//
//   ./quickstart
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "bgp/feed.hpp"
#include "scanner/scanner.hpp"
#include "telescope/fabric.hpp"

int main() {
  using namespace v6t;

  // --- the world: a clock, a routing table, a delivery fabric ---
  sim::Engine engine;
  bgp::Rib rib;
  bgp::BgpFeed feed{engine, rib, /*seed=*/1};
  telescope::DeliveryFabric fabric{engine, rib};

  // --- one passive telescope on a /48 ---
  telescope::Telescope scope{telescope::TelescopeConfig{
      "demo", {net::Prefix::mustParse("3fff:db8:1::/48")},
      telescope::Mode::Passive, std::nullopt, std::nullopt}};
  fabric.attach(scope);

  // --- two scanners with different personalities ---
  scanner::ScannerConfig periodic;
  periodic.id = 1;
  periodic.seed = 11;
  periodic.sourceNet = net::Prefix::mustParse("2400:cafe:1:2::/64");
  periodic.asn = net::Asn{64512};
  periodic.temporal = scanner::TemporalBehavior::Periodic;
  periodic.period = sim::days(2);
  periodic.knowledge = scanner::Knowledge::BgpReactive;
  periodic.addrsel = scanner::TargetStrategy::LowByte;
  periodic.packetsPerSessionMean = 25;
  scanner::Scanner lowByteScanner{periodic, engine, fabric};

  scanner::ScannerConfig oneOff = periodic;
  oneOff.id = 2;
  oneOff.seed = 22;
  oneOff.sourceNet = net::Prefix::mustParse("2400:beef:3:4::/64");
  oneOff.temporal = scanner::TemporalBehavior::OneOff;
  oneOff.addrsel = scanner::TargetStrategy::RandomIid;
  oneOff.packetsPerSessionMean = 150;
  scanner::Scanner randomScanner{oneOff, engine, fabric};

  lowByteScanner.start(&feed, nullptr);
  randomScanner.start(&feed, nullptr);

  // --- announce the prefix and let two weeks pass ---
  engine.schedule(sim::kEpoch, [&] {
    feed.announce(net::Prefix::mustParse("3fff:db8:1::/48"),
                  net::Asn{65010});
  });
  engine.run(sim::kEpoch + sim::weeks(2));

  // --- analyze what arrived ---
  const auto& packets = scope.capture().packets();
  const auto sessions =
      telescope::sessionize(packets, telescope::SourceAgg::Addr128);
  const auto taxonomy = analysis::classifyCapture(packets, sessions, nullptr);

  std::cout << "captured " << packets.size() << " packets in "
            << sessions.size() << " sessions from "
            << scope.capture().distinctSources128() << " sources\n\n";

  analysis::TextTable table{{"source", "sessions", "temporal", "addr-sel of "
                                                               "1st session"}};
  for (const auto& profile : taxonomy.profiles) {
    table.addRow({profile.source.addr.toString(),
                  std::to_string(profile.sessionIdx.size()),
                  std::string{analysis::toString(profile.temporal.cls)},
                  std::string{analysis::toString(
                      taxonomy.sessionAddrSel[profile.sessionIdx.front()])}});
  }
  table.render(std::cout);
  return 0;
}
