// The paper's experiment, end to end, at reduced scale: a 4-week baseline
// and six bi-weekly prefix splits. Prints the announcement timeline and
// how traffic follows the BGP signals.
//
//   ./bgp_split_experiment
#include <iostream>

#include "analysis/report.hpp"
#include "core/experiment.hpp"
#include "core/summary.hpp"

int main() {
  using namespace v6t;

  core::ExperimentConfig config;
  config.seed = 2026;
  config.sourceScale = 0.1;
  config.volumeScale = 0.01;
  config.baseline = sim::weeks(4);
  config.splits = 6;
  config.routeObjectAt = sim::weeks(6);

  std::cout << "running " << config.splits << " split cycles on "
            << config.t1Base.toString() << " ...\n\n";
  core::Experiment experiment{config};
  experiment.run();
  const auto summary = core::ExperimentSummary::compute(experiment);

  // The announcement timeline.
  std::cout << "announcement schedule (Fig. 2 logic):\n";
  for (const auto& cycle : experiment.schedule().cycles()) {
    std::cout << "  cycle " << cycle.index << " @ "
              << sim::toString(cycle.announceAt) << ": "
              << cycle.announced.size() << " prefixes";
    if (cycle.index > 0) {
      std::cout << " (split " << cycle.splitParent.toString() << " -> "
                << cycle.newChildren.first.toString() << " + "
                << cycle.newChildren.second.toString() << ")";
    }
    std::cout << "\n";
  }

  // Traffic per cycle at T1.
  std::cout << "\nT1 packets and sessions per cycle:\n";
  analysis::TextTable table{{"cycle", "prefixes", "packets", "sessions",
                             "sources"}};
  for (const auto& cycle : experiment.schedule().cycles()) {
    const core::Period period{cycle.announceAt, cycle.endsAt};
    const auto stats = summary.windowStats(experiment, core::T1, period);
    table.addRow({std::to_string(cycle.index),
                  std::to_string(cycle.announced.size()),
                  analysis::withThousands(stats.packets),
                  analysis::withThousands(stats.sessions128),
                  analysis::withThousands(stats.sources128)});
  }
  table.render(std::cout);

  std::cout << "\nfinal RIB (" << experiment.rib().size()
            << " routes):\n";
  for (const auto& prefix : experiment.rib().announcedPrefixes()) {
    std::cout << "  " << prefix.toString() << "\n";
  }
  std::cout << "\nhitlist knows "
            << experiment.hitlist()
                   .listedPrefixes(experiment.experimentEnd())
                   .size()
            << " of our prefixes (listings lag announcements by ~5 days)\n";
  return 0;
}
