// Operational guidance for telescope operators (§8): run the experiment
// and derive the five practical findings from the measured data.
//
//   ./telescope_placement
#include <iostream>

#include "core/experiment.hpp"
#include "core/guidance.hpp"
#include "core/summary.hpp"

int main() {
  using namespace v6t;

  core::ExperimentConfig config;
  config.seed = 99;
  config.sourceScale = 0.1;
  config.volumeScale = 0.01;
  config.baseline = sim::weeks(6);
  config.splits = 8;
  config.routeObjectAt = sim::weeks(8);

  std::cout << "simulating a telescope deployment study ...\n\n";
  core::Experiment experiment{config};
  experiment.run();
  const auto summary = core::ExperimentSummary::compute(experiment);

  const auto findings = core::GuidanceEngine::derive(experiment, summary);
  std::cout << "operational guidance, derived from this run:\n\n";
  int index = 1;
  for (const auto& finding : findings) {
    std::cout << "(" << index++ << ") " << finding.topic << "\n    "
              << finding.statement << "\n    evidence: " << finding.evidence
              << "\n\n";
  }
  return 0;
}
