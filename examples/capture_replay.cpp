// Capture tooling: persist a telescope capture to a v6tcap file, then
// reload it and run the offline analysis pipeline on the file — the
// workflow a real deployment would use (tcpdump during the run, analysis
// afterwards).
//
//   ./capture_replay [output.v6tcap]
#include <fstream>
#include <iostream>

#include "analysis/fingerprint.hpp"
#include "analysis/report.hpp"
#include "analysis/taxonomy.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace v6t;
  const std::string path = argc > 1 ? argv[1] : "t1_capture.v6tcap";

  // Phase 1 — "measurement": run a short experiment and dump T1's capture.
  {
    core::ExperimentConfig config;
    config.seed = 5;
    config.sourceScale = 0.05;
    config.volumeScale = 0.005;
    config.baseline = sim::weeks(2);
    config.splits = 3;
    config.routeObjectAt = sim::weeks(3);
    core::Experiment experiment{config};
    experiment.run();

    std::ofstream out{path, std::ios::binary};
    experiment.telescope(core::T1).capture().writeTo(out);
    std::cout << "wrote "
              << experiment.telescope(core::T1).capture().packetCount()
              << " records to " << path << "\n";
  }

  // Phase 2 — "offline analysis": reload the file and analyze it without
  // any access to the live experiment.
  telescope::CaptureStore replay;
  {
    std::ifstream in{path, std::ios::binary};
    const auto records = replay.readFrom(in);
    std::cout << "reloaded " << records << " records\n\n";
  }

  const auto sessions =
      telescope::sessionize(replay.packets(), telescope::SourceAgg::Addr128);
  const auto taxonomy =
      analysis::classifyCapture(replay.packets(), sessions, nullptr);
  const auto tools = analysis::fingerprintSessions(replay.packets(), sessions);

  analysis::TextTable table{{"metric", "value"}};
  table.addRow({"packets", std::to_string(replay.packetCount())});
  table.addRow({"/128 sources", std::to_string(replay.distinctSources128())});
  table.addRow({"/64 sources", std::to_string(replay.distinctSources64())});
  table.addRow({"sessions", std::to_string(sessions.size())});
  table.addRow({"one-off scanners",
                std::to_string(taxonomy.scannersOf(
                    analysis::TemporalClass::OneOff))});
  table.addRow({"periodic scanners",
                std::to_string(taxonomy.scannersOf(
                    analysis::TemporalClass::Periodic))});
  table.addRow({"payload sessions", std::to_string(tools.payloadSessions)});
  table.render(std::cout);

  std::cout << "\ntools seen offline:\n";
  for (const auto& [tool, count] : tools.byTool) {
    std::cout << "  " << net::toString(tool) << ": " << count.scanners
              << " scanners, " << count.sessions << " sessions\n";
  }
  return 0;
}
