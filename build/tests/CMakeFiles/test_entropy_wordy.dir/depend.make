# Empty dependencies file for test_entropy_wordy.
# This may be replaced when dependencies are built.
