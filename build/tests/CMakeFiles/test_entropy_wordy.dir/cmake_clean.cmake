file(REMOVE_RECURSE
  "CMakeFiles/test_entropy_wordy.dir/test_entropy_wordy.cpp.o"
  "CMakeFiles/test_entropy_wordy.dir/test_entropy_wordy.cpp.o.d"
  "test_entropy_wordy"
  "test_entropy_wordy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entropy_wordy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
