# Empty compiler generated dependencies file for test_addr_class.
# This may be replaced when dependencies are built.
