file(REMOVE_RECURSE
  "CMakeFiles/test_addr_class.dir/test_addr_class.cpp.o"
  "CMakeFiles/test_addr_class.dir/test_addr_class.cpp.o.d"
  "test_addr_class"
  "test_addr_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addr_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
