file(REMOVE_RECURSE
  "CMakeFiles/test_telescope.dir/test_telescope.cpp.o"
  "CMakeFiles/test_telescope.dir/test_telescope.cpp.o.d"
  "test_telescope"
  "test_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
