# Empty compiler generated dependencies file for test_telescope.
# This may be replaced when dependencies are built.
