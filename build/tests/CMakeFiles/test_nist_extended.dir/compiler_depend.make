# Empty compiler generated dependencies file for test_nist_extended.
# This may be replaced when dependencies are built.
