file(REMOVE_RECURSE
  "CMakeFiles/test_nist_extended.dir/test_nist_extended.cpp.o"
  "CMakeFiles/test_nist_extended.dir/test_nist_extended.cpp.o.d"
  "test_nist_extended"
  "test_nist_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nist_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
