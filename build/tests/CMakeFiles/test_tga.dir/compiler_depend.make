# Empty compiler generated dependencies file for test_tga.
# This may be replaced when dependencies are built.
