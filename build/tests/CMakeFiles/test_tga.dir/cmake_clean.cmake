file(REMOVE_RECURSE
  "CMakeFiles/test_tga.dir/test_tga.cpp.o"
  "CMakeFiles/test_tga.dir/test_tga.cpp.o.d"
  "test_tga"
  "test_tga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
