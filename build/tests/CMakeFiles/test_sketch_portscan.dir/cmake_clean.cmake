file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_portscan.dir/test_sketch_portscan.cpp.o"
  "CMakeFiles/test_sketch_portscan.dir/test_sketch_portscan.cpp.o.d"
  "test_sketch_portscan"
  "test_sketch_portscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_portscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
