# Empty compiler generated dependencies file for test_sketch_portscan.
# This may be replaced when dependencies are built.
