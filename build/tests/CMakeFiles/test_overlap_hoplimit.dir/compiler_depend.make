# Empty compiler generated dependencies file for test_overlap_hoplimit.
# This may be replaced when dependencies are built.
