file(REMOVE_RECURSE
  "CMakeFiles/test_overlap_hoplimit.dir/test_overlap_hoplimit.cpp.o"
  "CMakeFiles/test_overlap_hoplimit.dir/test_overlap_hoplimit.cpp.o.d"
  "test_overlap_hoplimit"
  "test_overlap_hoplimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlap_hoplimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
