file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_misc.dir/test_analysis_misc.cpp.o"
  "CMakeFiles/test_analysis_misc.dir/test_analysis_misc.cpp.o.d"
  "test_analysis_misc"
  "test_analysis_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
