file(REMOVE_RECURSE
  "CMakeFiles/test_nist.dir/test_nist.cpp.o"
  "CMakeFiles/test_nist.dir/test_nist.cpp.o.d"
  "test_nist"
  "test_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
