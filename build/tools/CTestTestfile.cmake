# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[v6t_run_print_config]=] "/root/repo/build/tools/v6t_run" "--print-config")
set_tests_properties([=[v6t_run_print_config]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[v6t_run_rejects_bad_config]=] "/root/repo/build/tools/v6t_run" "/nonexistent.conf")
set_tests_properties([=[v6t_run_rejects_bad_config]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
