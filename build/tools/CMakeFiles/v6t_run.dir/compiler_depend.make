# Empty compiler generated dependencies file for v6t_run.
# This may be replaced when dependencies are built.
