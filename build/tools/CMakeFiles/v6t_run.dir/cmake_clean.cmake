file(REMOVE_RECURSE
  "CMakeFiles/v6t_run.dir/v6t_run.cpp.o"
  "CMakeFiles/v6t_run.dir/v6t_run.cpp.o.d"
  "v6t_run"
  "v6t_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6t_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
