file(REMOVE_RECURSE
  "CMakeFiles/v6t_analysis.dir/addr_class.cpp.o"
  "CMakeFiles/v6t_analysis.dir/addr_class.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/autocorr.cpp.o"
  "CMakeFiles/v6t_analysis.dir/autocorr.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/entropy_profile.cpp.o"
  "CMakeFiles/v6t_analysis.dir/entropy_profile.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/fingerprint.cpp.o"
  "CMakeFiles/v6t_analysis.dir/fingerprint.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/heavy_hitter.cpp.o"
  "CMakeFiles/v6t_analysis.dir/heavy_hitter.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/hoplimit.cpp.o"
  "CMakeFiles/v6t_analysis.dir/hoplimit.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/nist.cpp.o"
  "CMakeFiles/v6t_analysis.dir/nist.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/overlap.cpp.o"
  "CMakeFiles/v6t_analysis.dir/overlap.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/portscan.cpp.o"
  "CMakeFiles/v6t_analysis.dir/portscan.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/report.cpp.o"
  "CMakeFiles/v6t_analysis.dir/report.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/stats.cpp.o"
  "CMakeFiles/v6t_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/v6t_analysis.dir/taxonomy.cpp.o"
  "CMakeFiles/v6t_analysis.dir/taxonomy.cpp.o.d"
  "libv6t_analysis.a"
  "libv6t_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6t_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
