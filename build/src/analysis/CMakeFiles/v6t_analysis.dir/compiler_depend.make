# Empty compiler generated dependencies file for v6t_analysis.
# This may be replaced when dependencies are built.
