file(REMOVE_RECURSE
  "libv6t_analysis.a"
)
