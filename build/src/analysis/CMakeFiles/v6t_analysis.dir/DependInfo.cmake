
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/addr_class.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/addr_class.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/addr_class.cpp.o.d"
  "/root/repo/src/analysis/autocorr.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/autocorr.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/autocorr.cpp.o.d"
  "/root/repo/src/analysis/entropy_profile.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/entropy_profile.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/entropy_profile.cpp.o.d"
  "/root/repo/src/analysis/fingerprint.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/fingerprint.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/fingerprint.cpp.o.d"
  "/root/repo/src/analysis/heavy_hitter.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/heavy_hitter.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/heavy_hitter.cpp.o.d"
  "/root/repo/src/analysis/hoplimit.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/hoplimit.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/hoplimit.cpp.o.d"
  "/root/repo/src/analysis/nist.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/nist.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/nist.cpp.o.d"
  "/root/repo/src/analysis/overlap.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/overlap.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/overlap.cpp.o.d"
  "/root/repo/src/analysis/portscan.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/portscan.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/portscan.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/taxonomy.cpp" "src/analysis/CMakeFiles/v6t_analysis.dir/taxonomy.cpp.o" "gcc" "src/analysis/CMakeFiles/v6t_analysis.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6t_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/v6t_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/v6t_telescope.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
