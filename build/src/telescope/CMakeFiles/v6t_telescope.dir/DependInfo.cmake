
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telescope/capture_store.cpp" "src/telescope/CMakeFiles/v6t_telescope.dir/capture_store.cpp.o" "gcc" "src/telescope/CMakeFiles/v6t_telescope.dir/capture_store.cpp.o.d"
  "/root/repo/src/telescope/fabric.cpp" "src/telescope/CMakeFiles/v6t_telescope.dir/fabric.cpp.o" "gcc" "src/telescope/CMakeFiles/v6t_telescope.dir/fabric.cpp.o.d"
  "/root/repo/src/telescope/session.cpp" "src/telescope/CMakeFiles/v6t_telescope.dir/session.cpp.o" "gcc" "src/telescope/CMakeFiles/v6t_telescope.dir/session.cpp.o.d"
  "/root/repo/src/telescope/telescope.cpp" "src/telescope/CMakeFiles/v6t_telescope.dir/telescope.cpp.o" "gcc" "src/telescope/CMakeFiles/v6t_telescope.dir/telescope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6t_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/v6t_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
