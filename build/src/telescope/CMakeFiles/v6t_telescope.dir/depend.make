# Empty dependencies file for v6t_telescope.
# This may be replaced when dependencies are built.
