file(REMOVE_RECURSE
  "libv6t_telescope.a"
)
