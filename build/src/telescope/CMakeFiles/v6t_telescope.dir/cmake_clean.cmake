file(REMOVE_RECURSE
  "CMakeFiles/v6t_telescope.dir/capture_store.cpp.o"
  "CMakeFiles/v6t_telescope.dir/capture_store.cpp.o.d"
  "CMakeFiles/v6t_telescope.dir/fabric.cpp.o"
  "CMakeFiles/v6t_telescope.dir/fabric.cpp.o.d"
  "CMakeFiles/v6t_telescope.dir/session.cpp.o"
  "CMakeFiles/v6t_telescope.dir/session.cpp.o.d"
  "CMakeFiles/v6t_telescope.dir/telescope.cpp.o"
  "CMakeFiles/v6t_telescope.dir/telescope.cpp.o.d"
  "libv6t_telescope.a"
  "libv6t_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6t_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
