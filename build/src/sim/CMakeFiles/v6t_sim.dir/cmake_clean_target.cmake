file(REMOVE_RECURSE
  "libv6t_sim.a"
)
