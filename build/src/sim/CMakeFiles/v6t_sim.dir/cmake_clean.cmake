file(REMOVE_RECURSE
  "CMakeFiles/v6t_sim.dir/engine.cpp.o"
  "CMakeFiles/v6t_sim.dir/engine.cpp.o.d"
  "CMakeFiles/v6t_sim.dir/rng.cpp.o"
  "CMakeFiles/v6t_sim.dir/rng.cpp.o.d"
  "CMakeFiles/v6t_sim.dir/time.cpp.o"
  "CMakeFiles/v6t_sim.dir/time.cpp.o.d"
  "libv6t_sim.a"
  "libv6t_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6t_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
