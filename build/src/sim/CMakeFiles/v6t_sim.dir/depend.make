# Empty dependencies file for v6t_sim.
# This may be replaced when dependencies are built.
