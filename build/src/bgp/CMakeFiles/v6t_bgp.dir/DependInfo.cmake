
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/feed.cpp" "src/bgp/CMakeFiles/v6t_bgp.dir/feed.cpp.o" "gcc" "src/bgp/CMakeFiles/v6t_bgp.dir/feed.cpp.o.d"
  "/root/repo/src/bgp/hitlist.cpp" "src/bgp/CMakeFiles/v6t_bgp.dir/hitlist.cpp.o" "gcc" "src/bgp/CMakeFiles/v6t_bgp.dir/hitlist.cpp.o.d"
  "/root/repo/src/bgp/looking_glass.cpp" "src/bgp/CMakeFiles/v6t_bgp.dir/looking_glass.cpp.o" "gcc" "src/bgp/CMakeFiles/v6t_bgp.dir/looking_glass.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/v6t_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/v6t_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/splitter.cpp" "src/bgp/CMakeFiles/v6t_bgp.dir/splitter.cpp.o" "gcc" "src/bgp/CMakeFiles/v6t_bgp.dir/splitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6t_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
